// The paper's other two running examples:
//
//  * "students that take courses outside their department"
//      G(s) :- SD(s, d), SC(s, c), CD(c, d'), d != d'.
//    — an acyclic ≠-query solved by the Theorem 2 engine;
//
//  * "employees that have a higher salary than their manager"
//      G(e) :- EM(e, m), ES(e, s), ES(m, s'), s' < s.
//    — an acyclic *comparison* query: Theorem 3 shows this class is
//    W[1]-complete, so the engine first runs the Klug consistency closure
//    and then falls back to backtracking.
//
//   ./university
#include <iostream>

#include "core/engine.hpp"
#include "workload/generators.hpp"

using namespace paraquery;

int main() {
  std::cout << "--- students taking courses outside their department ---\n";
  Database uni = StudentCourses(/*students=*/5000, /*courses=*/400,
                                /*departments=*/12, /*courses_per_student=*/4,
                                /*outside_fraction=*/0.25, /*seed=*/11);
  Engine uni_engine(uni);
  ConjunctiveQuery outside = OutsideDepartmentQuery();
  std::cout << uni_engine.ExplainText(outside.ToString()).ValueOrDie() << "\n";
  auto students = uni_engine.Run(outside);
  students.status().Expect("outside-department query");
  std::cout << "students flagged: " << students.value().size() << " of 5000\n\n";

  std::cout << "--- employees paid more than their manager ---\n";
  Database firm = EmployeeSalaries(/*employees=*/3000, /*max_salary=*/100000,
                                   /*seed=*/5);
  Engine firm_engine(firm);
  ConjunctiveQuery higher = HigherPaidThanManagerQuery();
  std::cout << firm_engine.ExplainText(higher.ToString()).ValueOrDie() << "\n";
  auto paid_more = firm_engine.Run(higher);
  paid_more.status().Expect("salary query");
  std::cout << "employees paid more than their manager: "
            << paid_more.value().size() << " of 3000\n\n";

  std::cout << "--- an inconsistent comparison query ---\n";
  const char* contradictory =
      "g(e) :- EM(e, m), ES(e, s), ES(m, t), t < s, s < t.";
  std::cout << firm_engine.ExplainText(contradictory).ValueOrDie();
  auto empty = firm_engine.RunText(contradictory);
  empty.status().Expect("contradictory query");
  std::cout << "answers: " << empty.value().size() << " (as predicted)\n";
  return 0;
}

// A guided tour of the Theorem 1 reductions: clique -> conjunctive query ->
// weighted 2-CNF -> clique again (footnote 2), plus the weighted-formula ->
// positive-query and monotone-circuit -> first-order constructions.
//
//   ./clique_reduction_demo
#include <iostream>

#include "circuit/weighted_sat.hpp"
#include "eval/fo.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/clique.hpp"
#include "graph/generators.hpp"
#include "reductions/circuit_to_fo.hpp"
#include "reductions/clique_to_cq.hpp"
#include "reductions/cq_to_clique.hpp"
#include "reductions/cq_to_w2cnf.hpp"
#include "reductions/wformula_to_positive.hpp"

using namespace paraquery;

int main() {
  const int n = 30, k = 4;
  Graph g = PlantedClique(n, 0.25, k, /*seed=*/123);
  std::cout << "graph: " << n << " vertices, " << g.num_edges()
            << " edges, planted " << k << "-clique\n\n";

  // Step 1: clique -> conjunctive query (Theorem 1 lower bound).
  CliqueToCqResult cq = CliqueToCq(g, k);
  std::cout << "clique->CQ: " << cq.query.ToString() << "\n";
  std::cout << "  q = " << cq.query.QuerySize()
            << ", v = " << cq.query.NumVariables() << "\n";
  bool nonempty = NaiveCqNonempty(cq.db, cq.query).ValueOrDie();
  std::cout << "  query nonempty: " << (nonempty ? "yes" : "no")
            << " (clique exists: "
            << (FindCliqueBb(g, k).has_value() ? "yes" : "no") << ")\n\n";

  // Step 2: CQ decision -> weighted 2-CNF (Theorem 1 upper bound).
  auto w2 = CqToW2Cnf(cq.db, cq.query).ValueOrDie();
  std::cout << "CQ->weighted 2-CNF: " << w2.instance.num_vars
            << " variables in " << w2.instance.groups.size() << " groups, "
            << w2.instance.clauses.size() << " clauses, weight k = " << w2.k
            << "\n";
  auto sol = SolveGroupedW2Cnf(w2.instance);
  std::cout << "  weight-" << w2.k
            << " satisfiable: " << (sol.has_value() ? "yes" : "no") << "\n\n";

  // Step 3: back to clique (footnote 2) — the compatibility graph.
  auto clique_again = CqDecisionToClique(cq.db, cq.query).ValueOrDie();
  std::cout << "CQ->clique: compatibility graph with "
            << clique_again.graph.num_vertices() << " vertices, target k = "
            << clique_again.k << "\n";
  std::cout << "  clique found: "
            << (FindCliqueBb(clique_again.graph, clique_again.k).has_value()
                    ? "yes"
                    : "no")
            << "\n\n";

  // Step 4: weighted formula -> positive query (parameter v).
  Circuit formula(5);
  int or1 = formula.AddGate(GateKind::kOr, {0, 1});
  int nand = formula.AddGate(GateKind::kNot, {2});
  int and1 = formula.AddGate(GateKind::kAnd, {or1, nand, 3});
  formula.SetOutput(formula.AddGate(GateKind::kOr, {and1, 4}));
  auto pos = WFormulaToPositive(formula, /*k=*/2).ValueOrDie();
  std::cout << "weighted formula -> positive query over EQ/NEQ: v = "
            << pos.query.NumVariables() << " variables\n";
  std::cout << "  formula weight-2 satisfiable: "
            << (WeightedCircuitSat(formula, 2).has_value() ? "yes" : "no")
            << ", query true: "
            << (PositiveNonempty(pos.db, pos.query).ValueOrDie() ? "yes"
                                                                  : "no")
            << "\n\n";

  // Step 5: monotone circuit -> first-order query (W[P] lower bound).
  Circuit mono(6);
  int g1 = mono.AddGate(GateKind::kOr, {0, 1, 2});
  int g2 = mono.AddGate(GateKind::kOr, {3, 4});
  mono.SetOutput(mono.AddGate(GateKind::kAnd, {g1, g2, 5}));
  auto fo = MonotoneCircuitToFo(mono, /*k=*/3).ValueOrDie();
  std::cout << "monotone circuit -> FO query: v = "
            << fo.query.NumVariables() << " (= k + 2), alternation depth 2t = "
            << fo.top_level << "\n";
  std::cout << "  circuit weight-3 satisfiable: "
            << (WeightedMonotoneCircuitSat(mono, 3).has_value() ? "yes" : "no")
            << ", FO query true: "
            << (FirstOrderNonempty(fo.db, fo.query).ValueOrDie() ? "yes"
                                                                  : "no")
            << "\n";
  return 0;
}

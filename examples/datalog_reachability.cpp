// Datalog: semi-naive transitive closure, plus the arity experiment behind
// the paper's Section 4 remark — with IDB arity r, the fixpoint runs for up
// to n^r stages, which is why unbounded-arity Datalog provably has the query
// size in the exponent (Vardi), while bounded arity stays in W[1].
//
//   ./datalog_reachability
#include <cstdio>

#include "common/timer.hpp"
#include "eval/datalog_eval.hpp"
#include "graph/generators.hpp"
#include "workload/generators.hpp"

using namespace paraquery;

int main() {
  std::printf("--- transitive closure on a sparse random digraph ---\n");
  std::printf("%8s %10s %12s %12s %10s\n", "n", "edges", "tc pairs",
              "iterations", "ms");
  for (int n : {100, 200, 400, 800}) {
    Database db = GraphDatabase(GnpRandom(n, 2.0 / n, /*seed=*/n));
    DatalogProgram tc = TransitiveClosureProgram();
    DatalogStats stats;
    Timer t;
    auto out = EvaluateDatalog(db, tc, {}, &stats);
    out.status().Expect("transitive closure");
    RelId e = db.FindRelation("E").ValueOrDie();
    std::printf("%8d %10zu %12zu %12zu %10.1f\n", n, db.relation(e).size(),
                out.value().size(), stats.iterations, t.Millis());
  }

  std::printf(
      "\n--- IDB arity in the exponent: r-walks over a dense graph ---\n");
  std::printf("%8s %8s %14s %12s %10s\n", "arity r", "n", "derived tuples",
              "iterations", "ms");
  for (int r : {2, 3, 4}) {
    int n = 16;  // dense graph: derived tuples approach the n^r IDB bound
    Database db = GraphDatabase(GnpRandom(n, 0.5, /*seed=*/99));
    DatalogProgram prog = ArityRWalkProgram(r);
    DatalogStats stats;
    Timer t;
    auto out = EvaluateDatalog(db, prog, {}, &stats);
    out.status().Expect("arity walk");
    std::printf("%8d %8d %14zu %12zu %10.1f\n", r, n, stats.derived_tuples,
                stats.iterations, t.Millis());
  }
  std::printf(
      "\nThe derived-tuple count (and hence time) scales like n^r: the IDB\n"
      "arity — part of the query — sits in the exponent, exactly Vardi's\n"
      "lower bound cited in Section 4 of the paper.\n");
  return 0;
}

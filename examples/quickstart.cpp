// Quickstart: build a database, run queries in all four languages through
// the Engine facade, and ask for a parametrized-complexity EXPLAIN.
//
//   ./quickstart
#include <iostream>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "workload/generators.hpp"

using namespace paraquery;

int main() {
  // A small social graph: E(x, y) = "x follows y" (we store both directions
  // of an undirected friendship graph), V(x) = known users.
  Database db = GraphDatabase(GnpRandom(/*n=*/50, /*p=*/0.08, /*seed=*/2024));
  Engine engine(db);

  std::cout << "=== conjunctive query (acyclic -> Yannakakis) ===\n";
  const char* friends_of_friends = "ans(x, z) :- E(x, y), E(y, z).";
  auto r1 = engine.RunText(friends_of_friends);
  r1.status().Expect("friends-of-friends");
  std::cout << friends_of_friends << "\n  -> " << r1.value().size()
            << " answer tuples\n\n";

  std::cout << "=== acyclic + inequality (Theorem 2 color coding) ===\n";
  const char* two_distinct =
      "ans(x) :- E(x, y), E(x, z), E(y, u), E(z, w), u != w.";
  auto r2 = engine.RunText(two_distinct);
  r2.status().Expect("two-distinct");
  std::cout << two_distinct << "\n  -> " << r2.value().size()
            << " answer tuples\n\n";

  std::cout << "=== first-order (active-domain calculus) ===\n";
  const char* lonely = "ans(x) := V(x) and not (exists y . E(x, y)).";
  auto r3 = engine.RunText(lonely);
  r3.status().Expect("lonely");
  std::cout << lonely << "\n  -> " << r3.value().size()
            << " users with no friends\n\n";

  std::cout << "=== Datalog (semi-naive fixpoint) ===\n";
  const char* reach =
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n";
  auto r4 = engine.RunText(reach);
  r4.status().Expect("reachability");
  std::cout << "transitive closure -> " << r4.value().size() << " pairs\n\n";

  std::cout << "=== EXPLAIN: what does the paper say about my query? ===\n";
  auto report = engine.ExplainText(two_distinct);
  report.status().Expect("explain");
  std::cout << report.value() << "\n";
  return 0;
}

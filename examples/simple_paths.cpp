// Simple paths of length k — the special case of Theorem 2 the paper
// singles out ("the problem of finding simple paths of a specified length k
// in a graph ... proved f.p. tractable by Monien, improved via color coding
// by Alon-Yuster-Zwick. Our algorithm combines this technique with acyclic
// query processing").
//
// The query is the chain E(x1,x2), ..., E(xk, xk+1) plus all-pairs ≠: every
// pairwise inequality between non-adjacent variables lands in I1, so the
// engine runs genuine color coding over the join tree.
//
//   ./simple_paths [k]
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "core/classifier.hpp"
#include "eval/inequality.hpp"
#include "graph/generators.hpp"
#include "workload/generators.hpp"

using namespace paraquery;

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 4;
  if (k < 2 || k > 8) {
    std::fprintf(stderr, "k must be between 2 and 8\n");
    return 1;
  }
  ConjunctiveQuery query = SimplePathQuery(k);
  std::printf("query: %s\n", query.ToString().c_str());
  Classification c = ClassifyConjunctive(query);
  std::printf("classified: %s under q; engine: %s\n\n",
              c.class_under_q.c_str(), EngineChoiceName(c.engine));

  std::printf("%8s %10s %10s %12s %8s %10s\n", "n", "edges", "k(hash)",
              "colorings", "found", "ms");
  for (int n : {500, 1000, 2000, 4000}) {
    // Sparse graph: long simple paths exist but are rare.
    Database db = GraphDatabase(GnpRandom(n, 1.2 / n, /*seed=*/n + k));
    IneqOptions options;
    options.driver = IneqOptions::Driver::kMonteCarlo;
    options.mc_error_exponent = 4.0;
    options.seed = 99;
    IneqStats stats;
    Timer timer;
    auto found = IneqNonempty(db, query, options, &stats);
    double ms = timer.Millis();
    found.status().Expect("simple path decision");
    RelId e = db.FindRelation("E").ValueOrDie();
    std::printf("%8d %10zu %10d %12zu %8s %10.1f\n", n,
                db.relation(e).size() / 2, stats.k, stats.family_size,
                found.value() ? "yes" : "no", ms);
  }
  std::printf(
      "\nDecision time is f(k) * n log n: linear in the graph at fixed k,\n"
      "with the exponential confined to the number of colorings (c * e^k).\n"
      "Compare bench_theorem2_fpt's trivial n^{k+1} enumeration baseline.\n");
  return 0;
}

// The paper's first motivating example for Theorem 2: "find the employees
// that work on more than one project":
//
//   G(e) :- EP(e, p), EP(e, p'), p != p'.
//
// The inequality p != p' would destroy acyclicity if treated as a hyperedge;
// the Theorem 2 engine handles it by color coding instead. This example runs
// the query at increasing database sizes with the FPT engine and the naive
// evaluator and prints the timings side by side.
//
//   ./employees_projects
#include <cstdio>

#include "common/timer.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "workload/generators.hpp"

using namespace paraquery;

int main() {
  ConjunctiveQuery query = MultiProjectQuery();
  std::printf("query: %s\n", query.ToString().c_str());
  std::printf("%10s %12s %14s %14s %10s\n", "employees", "EP tuples",
              "theorem2 (ms)", "naive (ms)", "answers");
  for (int employees : {1000, 4000, 16000, 64000}) {
    Database db = EmployeeProjects(employees, /*projects=*/employees / 10,
                                   /*min_assignments=*/1,
                                   /*max_assignments=*/4, /*seed=*/7);
    IneqOptions options;
    options.driver = IneqOptions::Driver::kCertified;
    // The witness values (projects) are plentiful; certification over all
    // of them is infeasible, but k = 2 needs only a tiny Monte Carlo
    // family. Fall back automatically.
    options.driver = IneqOptions::Driver::kAuto;
    options.mc_error_exponent = 8.0;

    Timer t1;
    auto fpt = IneqEvaluate(db, query, options);
    double fpt_ms = t1.Millis();
    fpt.status().Expect("theorem 2 engine");

    Timer t2;
    auto naive = NaiveEvaluateCq(db, query);
    double naive_ms = t2.Millis();
    naive.status().Expect("naive engine");

    RelId ep = db.FindRelation("EP").ValueOrDie();
    std::printf("%10d %12zu %14.2f %14.2f %10zu\n", employees,
                db.relation(ep).size(), fpt_ms, naive_ms,
                fpt.value().size());
    if (!fpt.value().EqualsAsSet(naive.value())) {
      std::printf("!! engines disagree\n");
      return 1;
    }
  }
  std::printf(
      "\nBoth engines are polynomial here (k = 2), but the FPT engine's\n"
      "advantage grows with the number of inequality variables; see\n"
      "bench_theorem2_fpt for the full parameter sweep.\n");
  return 0;
}

#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace paraquery {

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    n += counts_[i].load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t Histogram::ApproxQuantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target >= total) target = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen > target) return BucketBound(i);
  }
  return BucketBound(kBuckets - 1);
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view help,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name == name) return e;  // kind mismatch: caller bug, first wins
  }
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name = std::string(name);
  e.help = std::string(help);
  e.kind = kind;
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return FindOrCreate(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return FindOrCreate(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  return FindOrCreate(name, help, Kind::kHistogram).histogram;
}

std::string MetricsRegistry::PrometheusText() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  std::ostringstream out;
  for (const Entry* e : sorted) {
    if (!e->help.empty()) {
      out << "# HELP " << e->name << " " << e->help << "\n";
    }
    switch (e->kind) {
      case Kind::kCounter:
        out << "# TYPE " << e->name << " counter\n";
        out << e->name << " " << e->counter.value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << e->name << " gauge\n";
        out << e->name << " " << e->gauge.value() << "\n";
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << e->name << " histogram\n";
        const Histogram& h = e->histogram;
        // Highest non-empty bucket bounds the emitted tail.
        size_t top = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) > 0) top = i;
        }
        uint64_t cum = 0;
        for (size_t i = 0; i <= top; ++i) {
          cum += h.bucket(i);
          out << e->name << "_bucket{le=\"" << Histogram::BucketBound(i)
              << "\"} " << cum << "\n";
        }
        out << e->name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        out << e->name << "_sum " << h.sum() << "\n";
        out << e->name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::JsonDump() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : entries_) sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Entry* e : sorted) {
    out << (first ? "" : ",") << "\"" << e->name << "\":";
    first = false;
    switch (e->kind) {
      case Kind::kCounter:
        out << e->counter.value();
        break;
      case Kind::kGauge:
        out << e->gauge.value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = e->histogram;
        out << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
            << ",\"p50\":" << h.ApproxQuantile(0.50)
            << ",\"p90\":" << h.ApproxQuantile(0.90)
            << ",\"p99\":" << h.ApproxQuantile(0.99) << ",\"buckets\":[";
        bool bfirst = true;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          uint64_t n = h.bucket(i);
          if (n == 0) continue;
          out << (bfirst ? "" : ",") << "{\"le\":"
              << Histogram::BucketBound(i) << ",\"count\":" << n << "}";
          bfirst = false;
        }
        out << "]}";
        break;
      }
    }
  }
  out << "}";
  return out.str();
}

}  // namespace paraquery

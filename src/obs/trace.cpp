#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace paraquery {

namespace {

/// Epoch source shared by all tracers: a (tracer address, epoch) pair cached
/// in a thread-local can never alias a different tracer instance or a
/// cleared generation, because no two generations ever share an epoch.
std::atomic<uint64_t> g_epoch_source{1};

struct TlsTrack {
  const void* tracer = nullptr;
  uint64_t epoch = 0;
  void* buffer = nullptr;
};
thread_local TlsTrack tls_track;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatMillis(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

Tracer::Tracer() : epoch_(g_epoch_source.fetch_add(1) + 1) {}

Tracer::~Tracer() = default;

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  by_thread_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  uint64_t epoch = g_epoch_source.fetch_add(1) + 1;
  epoch_.store(epoch, std::memory_order_release);
  // The clearing thread (the query thread) becomes track 0 so the outer
  // query/route spans render first in the export.
  buffers_.push_back(Buffer{0, {}});
  Buffer* buf = &buffers_.back();
  by_thread_[std::this_thread::get_id()] = buf;
  tls_track = {this, epoch, buf};
}

Tracer::Buffer* Tracer::RegisterThisThread(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  Buffer* buf;
  auto it = by_thread_.find(std::this_thread::get_id());
  if (it != by_thread_.end()) {
    buf = it->second;
  } else {
    buffers_.push_back(Buffer{static_cast<uint32_t>(buffers_.size()), {}});
    buf = &buffers_.back();
    by_thread_[std::this_thread::get_id()] = buf;
  }
  tls_track = {this, epoch, buf};
  return buf;
}

void Tracer::Record(const char* name, std::string detail, uint64_t start_ns,
                    uint64_t end_ns) {
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  Buffer* buf =
      tls_track.tracer == this && tls_track.epoch == epoch
          ? static_cast<Buffer*>(tls_track.buffer)
          : RegisterThisThread(epoch);
  if (buf->events.size() >= kMaxEventsPerTrack) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(TraceEvent{name, std::move(detail), start_ns, end_ns});
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const Buffer& b : buffers_) n += b.events.size();
  return n;
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t base = UINT64_MAX;
  for (const Buffer& b : buffers_) {
    for (const TraceEvent& e : b.events) base = std::min(base, e.start_ns);
  }
  if (base == UINT64_MAX) base = 0;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const Buffer& b : buffers_) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s %u\"}}",
                  first ? "" : ",", b.track,
                  b.track == 0 ? "query" : "worker", b.track);
    out += buf;
    first = false;
    for (const TraceEvent& e : b.events) {
      double ts_us = static_cast<double>(e.start_ns - base) / 1e3;
      double dur_us = static_cast<double>(e.end_ns - e.start_ns) / 1e3;
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"name\":\"",
                    b.track, ts_us, dur_us);
      out += buf;
      AppendJsonEscaped(out, e.name);
      out += '"';
      if (!e.detail.empty()) {
        out += ",\"args\":{\"detail\":\"";
        AppendJsonEscaped(out, e.detail);
        out += "\"}";
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string Tracer::TextProfile(size_t max_lines) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Per-name aggregate: count and total wall.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_name;
  size_t total_events = 0;
  for (const Buffer& b : buffers_) {
    for (const TraceEvent& e : b.events) {
      auto& agg = by_name[e.name];
      ++agg.first;
      agg.second += e.end_ns - e.start_ns;
      ++total_events;
    }
  }
  std::ostringstream out;
  out << "== spans (" << total_events << " events";
  if (uint64_t d = dropped_.load(std::memory_order_relaxed); d > 0) {
    out << ", " << d << " dropped";
  }
  out << ") ==\n";
  for (const auto& [name, agg] : by_name) {
    out << "  " << name << "  count=" << agg.first
        << "  total_ms=" << FormatMillis(agg.second) << "\n";
  }
  // Per-track timeline, indented by containment: spans sorted by
  // (start asc, end desc) so an enclosing span precedes everything inside
  // it; a stack of open end-times gives the nesting depth.
  size_t lines = 0, suppressed = 0;
  for (const Buffer& b : buffers_) {
    if (b.events.empty()) continue;
    out << "== track " << b.track << (b.track == 0 ? " (query)" : "")
        << " ==\n";
    std::vector<const TraceEvent*> sorted;
    sorted.reserve(b.events.size());
    for (const TraceEvent& e : b.events) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_ns != b->start_ns) {
                  return a->start_ns < b->start_ns;
                }
                return a->end_ns > b->end_ns;
              });
    std::vector<uint64_t> open;
    for (const TraceEvent* e : sorted) {
      while (!open.empty() && e->start_ns >= open.back()) open.pop_back();
      if (lines < max_lines) {
        for (size_t i = 0; i <= open.size(); ++i) out << "  ";
        out << e->name;
        if (!e->detail.empty()) out << " [" << e->detail << "]";
        out << "  " << FormatMillis(e->end_ns - e->start_ns) << " ms\n";
        ++lines;
      } else {
        ++suppressed;
      }
      open.push_back(e->end_ns);
    }
  }
  if (suppressed > 0) {
    out << "  ... (" << suppressed << " more spans)\n";
  }
  return out.str();
}

}  // namespace paraquery

// Query tracer: hierarchical wall-clock spans (query → route → round /
// disjunct / coloring → plan operator → morsel batch) recorded into
// per-thread buffers and exportable as Chrome trace-event JSON (loadable in
// chrome://tracing or Perfetto) or as an indented text profile.
//
// Design
// ------
// Recording must not perturb the execution it measures, so the hot path is
// lock-free per thread: each recording thread owns one append-only buffer,
// found through a thread-local cache keyed by (tracer address, epoch). The
// epoch comes from a process-global monotonic counter and is bumped on every
// Clear(), so a stale cache entry — from a destroyed tracer reallocated at
// the same address, or from a previous query — can never alias a live
// buffer. Only registration of a new thread takes the tracer mutex.
//
// Spans are recorded at *close* time by the TraceSpan RAII guard, complete
// with both endpoints. A query that aborts mid-flight (deadline, cancel,
// fault injection) unwinds through the guards, so an exported trace is
// always well-formed — there are no dangling "begin" events to balance.
//
// Lifecycle: the Engine owns one Tracer, Clear()s it at the start of each
// traced query (single-threaded point; the clearing thread becomes track 0),
// and exports after the query returns. Clear()/export must not race with
// recording; recording from many threads concurrently is the point.
#ifndef PARAQUERY_OBS_TRACE_H_
#define PARAQUERY_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.hpp"

namespace paraquery {

/// One closed span. `name` must be a string literal (or otherwise outlive
/// the tracer's current epoch); `detail` is an optional free-form payload
/// shown in the export ("round 3", "rows=1024").
struct TraceEvent {
  const char* name;
  std::string detail;
  uint64_t start_ns;
  uint64_t end_ns;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Drops all recorded spans and thread registrations and registers the
  /// calling thread as track 0. Call between queries, never concurrently
  /// with recording.
  void Clear();

  /// Records one closed span on the calling thread's track. Lock-free after
  /// the thread's first event of the current epoch.
  void Record(const char* name, uint64_t start_ns, uint64_t end_ns) {
    Record(name, std::string(), start_ns, end_ns);
  }
  void Record(const char* name, std::string detail, uint64_t start_ns,
              uint64_t end_ns);

  /// Chrome trace-event JSON ("X" complete events, one tid per recording
  /// thread, timestamps in microseconds relative to the earliest span).
  std::string ChromeTraceJson() const;

  /// Indented text profile: a per-name summary followed by per-track span
  /// timelines indented by nesting (capped at `max_lines` timeline lines).
  std::string TextProfile(size_t max_lines = 2000) const;

  /// Total spans currently recorded (stitched across all tracks).
  size_t event_count() const;
  /// Spans dropped because a track hit its buffer cap.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  /// Cap per track; a runaway query degrades to dropped-span counting
  /// instead of unbounded memory growth.
  static constexpr size_t kMaxEventsPerTrack = 1 << 20;

  struct Buffer {
    uint32_t track = 0;
    std::vector<TraceEvent> events;
  };

  Buffer* RegisterThisThread(uint64_t epoch);

  mutable std::mutex mutex_;  // guards buffers_/by_thread_ shape, not appends
  std::deque<Buffer> buffers_;  // deque: stable addresses across registration
  std::unordered_map<std::thread::id, Buffer*> by_thread_;
  std::atomic<uint64_t> epoch_;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span: opens at construction, records at destruction. A null tracer
/// makes every operation a no-op, so instrumentation sites pay one branch
/// when tracing is off.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name)
      : tracer_(tracer), name_(name),
        start_ns_(tracer != nullptr ? NowNanos() : 0) {}
  TraceSpan(Tracer* tracer, const char* name, std::string detail)
      : tracer_(tracer), name_(name), detail_(std::move(detail)),
        start_ns_(tracer != nullptr ? NowNanos() : 0) {}
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, std::move(detail_), start_ns_, NowNanos());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches or replaces the detail payload (e.g. a row count known only
  /// once the work is done).
  void set_detail(std::string detail) {
    if (tracer_ != nullptr) detail_ = std::move(detail);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::string detail_;
  uint64_t start_ns_;
};

}  // namespace paraquery

#endif  // PARAQUERY_OBS_TRACE_H_

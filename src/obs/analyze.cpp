#include "obs/analyze.hpp"

#include <sstream>

#include "plan/plan.hpp"

namespace paraquery {

void PlanCapture::Note(const PlanNode& root, const VarTable* vars) {
  // Render outside the lock: RenderAnalyzedPlan only reads the plan, and
  // the executor guarantees one execution of a given root at a time.
  std::string render = RenderAnalyzedPlan(root, vars);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : plans_) {
    if (e.root == &root) {
      e.render = std::move(render);
      ++e.executions;
      return;
    }
  }
  if (plans_.size() >= kMaxPlans) {
    ++overflow_;
    return;
  }
  plans_.push_back(Entry{&root, std::move(render), 1});
}

void PlanCapture::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  overflow_ = 0;
}

std::string PlanCapture::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (size_t i = 0; i < plans_.size(); ++i) {
    const Entry& e = plans_[i];
    out << "-- plan " << (i + 1) << " (executions=" << e.executions << ")\n";
    out << e.render;
  }
  if (overflow_ > 0) {
    out << "-- " << overflow_ << " further executions of uncaptured plans\n";
  }
  return out.str();
}

size_t PlanCapture::plan_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

}  // namespace paraquery

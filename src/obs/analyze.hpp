// EXPLAIN ANALYZE capture: collects the analyzed renders (per-node actual
// rows + wall time) of every plan executed while armed.
//
// The executor resets a plan's actuals at the start of each execution, so a
// render taken after the query returns would only show the *last* execution
// of each cached plan. PlanCapture instead snapshots the render right after
// each execution (success or failure — an aborted plan still shows the rows
// and time it accrued) and keeps the latest render plus an execution count
// per distinct plan root. A Datalog query re-executes a handful of rule
// plans hundreds of times; the capture stays bounded by distinct roots, not
// executions.
#ifndef PARAQUERY_OBS_ANALYZE_H_
#define PARAQUERY_OBS_ANALYZE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace paraquery {

struct PlanNode;
class VarTable;

class PlanCapture {
 public:
  /// Snapshots the analyzed render of `root`. Thread-safe (parallel Datalog
  /// firings execute plans concurrently).
  void Note(const PlanNode& root, const VarTable* vars);

  void Clear();

  /// All captured plans in first-execution order:
  ///
  ///   -- plan 1 (executions=121)
  ///   HashJoin(x, y) est=40 actual=31 time=0.412ms self=0.210ms
  ///   ...
  std::string Report() const;

  size_t plan_count() const;

 private:
  /// Distinct-root cap: a pathological workload degrades to counting
  /// overflow instead of accumulating renders without bound.
  static constexpr size_t kMaxPlans = 24;

  struct Entry {
    const PlanNode* root;  // identity key only, never dereferenced later
    std::string render;
    uint64_t executions;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> plans_;
  uint64_t overflow_ = 0;
};

}  // namespace paraquery

#endif  // PARAQUERY_OBS_ANALYZE_H_

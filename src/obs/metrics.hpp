// Engine-wide metrics registry: named counters, gauges, and log-scale
// histograms with Prometheus-style text exposition and a JSON dump.
//
// Instruments are created once through the registry (find-or-create under a
// mutex, stable addresses) and then updated lock-free through relaxed
// atomics — hot paths hold a pre-resolved pointer, never a name lookup.
// Histograms use log2 buckets (bucket i holds values with bit_width i, so
// upper bounds 0, 1, 3, 7, ... 2^i - 1): constant-time observation, ~2x
// resolution, 65 buckets covering the full uint64 range — the standard
// trade for latency/row-count distributions.
#ifndef PARAQUERY_OBS_METRICS_H_
#define PARAQUERY_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

namespace paraquery {

/// Monotonically increasing count. Set() exists for scraping an external
/// monotonic source (e.g. PlanCacheStats) into the registry.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, live threads).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram over non-negative integer observations.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bucket i: bit_width(v) == i

  void Observe(uint64_t value) {
    counts_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (inclusive): 0, 1, 3, 7, ... 2^i - 1.
  static uint64_t BucketBound(size_t i) {
    return i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  }
  /// Upper bound of the bucket holding the q-quantile observation (0 when
  /// empty). Accurate to the bucket's factor-of-2 resolution.
  uint64_t ApproxQuantile(double q) const;

 private:
  std::atomic<uint64_t> counts_[kBuckets]{};
  std::atomic<uint64_t> sum_{0};
};

/// Name → instrument map. Instruments live as long as the registry;
/// returned references are stable.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "");

  /// Prometheus text exposition (HELP/TYPE comments, cumulative `le`
  /// buckets, `_sum`/`_count`), instruments sorted by name.
  std::string PrometheusText() const;
  /// One JSON object keyed by metric name; histograms include count, sum,
  /// approximate p50/p90/p99, and per-bucket counts.
  std::string JsonDump() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& FindOrCreate(std::string_view name, std::string_view help,
                      Kind kind);

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;  // deque: stable addresses
};

/// Pre-resolved instrument handles for the per-query hot paths (Datalog
/// fires thousands of small plans per query; a registry lookup per plan
/// would dominate). Threaded through RuntimeOptions; all-null when metrics
/// are disabled.
struct QueryMetrics {
  Histogram* operator_rows = nullptr;  // rows produced per executed operator
};

}  // namespace paraquery

#endif  // PARAQUERY_OBS_METRICS_H_

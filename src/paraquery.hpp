// Umbrella header: the public API of ParaQuery in one include.
//
//   #include "paraquery.hpp"
//   using namespace paraquery;
//
//   Database db = ...;
//   Engine engine(db);
//   auto answers = engine.RunText("g(e) :- EP(e, p), EP(e, q), p != q.");
//
// Fine-grained headers remain available for users who want a single
// subsystem (e.g. only the Theorem 2 evaluator or only the reductions).
#ifndef PARAQUERY_PARAQUERY_H_
#define PARAQUERY_PARAQUERY_H_

// Error model and utilities.
#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"

// Relational substrate.
#include "relational/csv.hpp"
#include "relational/database.hpp"
#include "relational/named_relation.hpp"
#include "relational/ops.hpp"
#include "relational/predicate.hpp"
#include "relational/relation.hpp"
#include "relational/row_index.hpp"

// Graphs, hypergraphs, circuits, hashing.
#include "circuit/circuit.hpp"
#include "circuit/cnf.hpp"
#include "circuit/normalize.hpp"
#include "circuit/weighted_sat.hpp"
#include "graph/clique.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/scc.hpp"
#include "hashing/coloring.hpp"
#include "hypergraph/gyo.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/join_tree.hpp"

// Query languages.
#include "query/builder.hpp"
#include "query/comparison_closure.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "query/first_order_query.hpp"
#include "query/ineq_formula.hpp"
#include "query/parser.hpp"
#include "query/positive_query.hpp"
#include "query/term.hpp"

// Physical plan IR, planner, the shared executor, and the plan cache.
#include "plan/executor.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"

// Evaluation engines.
#include "eval/acyclic.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"

// The paper's reductions.
#include "reductions/alternating.hpp"
#include "reductions/circuit_to_fo.hpp"
#include "reductions/clique_to_comparisons.hpp"
#include "reductions/clique_to_cq.hpp"
#include "reductions/cq_to_clique.hpp"
#include "reductions/cq_to_w2cnf.hpp"
#include "reductions/hampath_to_neq.hpp"
#include "reductions/positive_to_wformula.hpp"
#include "reductions/schema_folding.hpp"
#include "reductions/wformula_to_positive.hpp"

// Classification, engine facade, workloads.
#include "core/classifier.hpp"
#include "core/engine.hpp"
#include "core/explain.hpp"
#include "workload/generators.hpp"

#endif  // PARAQUERY_PARAQUERY_H_

#include "relational/csv.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/fault_injection.hpp"

namespace paraquery {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

// Returns false — the caller then interns the cell as a string — when `s` is
// not an integer at all, when it overflows Value (e.g.
// "99999999999999999999", which std::stoll would have turned into an
// uncaught std::out_of_range), or when it parses but lands in the
// dictionary's reserved code range (admitting it would make the stored Value
// indistinguishable from an interned string's code).
bool ParseIntegerCell(std::string_view s, Value* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  return !Dictionary::InCodeRange(*out);
}

Result<RelId> LoadCsv(Database* db, const std::string& name,
                      std::string_view csv_text) {
  PQ_FAULT_POINT("csv.load");
  std::vector<ValueVec> rows;
  size_t arity = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= csv_text.size()) {
    size_t end = csv_text.find('\n', start);
    if (end == std::string_view::npos) end = csv_text.size();
    std::string_view line = Trim(csv_text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') {
      if (end == csv_text.size()) break;
      continue;
    }
    ValueVec row;
    size_t cell_start = 0;
    for (;;) {
      size_t comma = line.find(',', cell_start);
      std::string_view cell =
          Trim(line.substr(cell_start, comma == std::string_view::npos
                                           ? std::string_view::npos
                                           : comma - cell_start));
      Value parsed;
      if (ParseIntegerCell(cell, &parsed)) {
        row.push_back(parsed);
      } else {
        row.push_back(db->dict().Intern(cell));
      }
      if (comma == std::string_view::npos) break;
      cell_start = comma + 1;
    }
    if (rows.empty()) {
      arity = row.size();
    } else if (row.size() != arity) {
      return Status::InvalidArgument(internal::StrCat(
          "CSV line ", line_no, " has ", row.size(), " cells, expected ",
          arity));
    }
    rows.push_back(std::move(row));
    if (end == csv_text.size()) break;
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV contains no data rows");
  }
  PQ_ASSIGN_OR_RETURN(RelId id, db->AddRelation(name, arity));
  for (const ValueVec& row : rows) db->relation(id).Add(row);
  return id;
}

Result<RelId> LoadCsvFile(Database* db, const std::string& name,
                          const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(internal::StrCat("cannot open '", path, "'"));
  }
  PQ_FAULT_POINT("csv.open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(db, name, buffer.str());
}

void WriteCsv(const Database& db, RelId rel, std::ostream* out,
              bool use_dict) {
  const Relation& r = db.relation(rel);
  for (size_t row = 0; row < r.size(); ++row) {
    for (size_t col = 0; col < r.arity(); ++col) {
      if (col > 0) *out << ",";
      Value v = r.At(row, col);
      if (use_dict && db.dict().Contains(v)) {
        *out << db.dict().Lookup(v);
      } else {
        *out << v;
      }
    }
    *out << "\n";
  }
}

}  // namespace paraquery

#include "relational/csv.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace paraquery {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

Result<RelId> LoadCsv(Database* db, const std::string& name,
                      std::string_view csv_text) {
  std::vector<ValueVec> rows;
  size_t arity = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= csv_text.size()) {
    size_t end = csv_text.find('\n', start);
    if (end == std::string_view::npos) end = csv_text.size();
    std::string_view line = Trim(csv_text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') {
      if (end == csv_text.size()) break;
      continue;
    }
    ValueVec row;
    size_t cell_start = 0;
    for (;;) {
      size_t comma = line.find(',', cell_start);
      std::string_view cell =
          Trim(line.substr(cell_start, comma == std::string_view::npos
                                           ? std::string_view::npos
                                           : comma - cell_start));
      if (IsInteger(cell)) {
        row.push_back(std::stoll(std::string(cell)));
      } else {
        row.push_back(db->dict().Intern(cell));
      }
      if (comma == std::string_view::npos) break;
      cell_start = comma + 1;
    }
    if (rows.empty()) {
      arity = row.size();
    } else if (row.size() != arity) {
      return Status::InvalidArgument(internal::StrCat(
          "CSV line ", line_no, " has ", row.size(), " cells, expected ",
          arity));
    }
    rows.push_back(std::move(row));
    if (end == csv_text.size()) break;
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV contains no data rows");
  }
  PQ_ASSIGN_OR_RETURN(RelId id, db->AddRelation(name, arity));
  for (const ValueVec& row : rows) db->relation(id).Add(row);
  return id;
}

Result<RelId> LoadCsvFile(Database* db, const std::string& name,
                          const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(internal::StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(db, name, buffer.str());
}

void WriteCsv(const Database& db, RelId rel, std::ostream* out,
              bool use_dict) {
  const Relation& r = db.relation(rel);
  for (size_t row = 0; row < r.size(); ++row) {
    for (size_t col = 0; col < r.arity(); ++col) {
      if (col > 0) *out << ",";
      Value v = r.At(row, col);
      if (use_dict && db.dict().Contains(v)) {
        *out << db.dict().Lookup(v);
      } else {
        *out << v;
      }
    }
    *out << "\n";
  }
}

}  // namespace paraquery

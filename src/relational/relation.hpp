// Positional (unnamed-column) relation: a multiset of fixed-arity rows stored
// row-major in a single contiguous buffer.
#ifndef PARAQUERY_RELATIONAL_RELATION_H_
#define PARAQUERY_RELATIONAL_RELATION_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "relational/value.hpp"

namespace paraquery {

/// A fixed-arity table of Values with set or multiset semantics.
///
/// Storage is row-major (`data_[row * arity + col]`), the layout used for the
/// tuple-at-a-time operators in this library. Set semantics are obtained by
/// calling SortAndDedup(); operators that require sortedness check the
/// `sorted()` flag in debug builds.
class Relation {
 public:
  /// Creates an empty relation of the given arity. Arity 0 is allowed and
  /// models Boolean (goal) relations: such a relation has either zero rows
  /// (false) or one empty row (true).
  explicit Relation(size_t arity) : arity_(arity) {}

  /// Wraps a prefilled row-major buffer (`data.size()` must be a multiple of
  /// `arity`; arity 0 is not supported here). Used by operators that emit
  /// rows directly into a flat buffer to skip per-row Add calls.
  Relation(size_t arity, std::vector<Value> data);

  size_t arity() const { return arity_; }

  /// Number of rows.
  size_t size() const { return arity_ == 0 ? zero_ary_rows_ : data_.size() / arity_; }
  bool empty() const { return size() == 0; }

  /// Appends a row; `row.size()` must equal arity().
  void Add(std::span<const Value> row);
  void Add(std::initializer_list<Value> row) {
    Add(std::span<const Value>(row.begin(), row.size()));
  }

  /// Appends the empty row to an arity-0 relation (sets it "true").
  void AddEmptyRow();

  Value At(size_t row, size_t col) const { return data_[row * arity_ + col]; }
  std::span<const Value> Row(size_t row) const {
    return std::span<const Value>(data_.data() + row * arity_, arity_);
  }

  /// Raw row-major buffer (size() * arity() values).
  const std::vector<Value>& data() const { return data_; }

  /// Sorts rows lexicographically and removes duplicates (set semantics).
  void SortAndDedup();

  /// Removes duplicate rows in one hash pass, keeping the first occurrence
  /// of each row in its original position (no sorting). Preferred over
  /// SortAndDedup wherever the caller needs only set semantics, not a
  /// sorted order.
  void HashDedup();

  /// True if SortAndDedup has run and no row was added since.
  bool sorted() const { return sorted_; }

  /// Membership test. O(log n) when sorted, O(n·arity) otherwise.
  bool Contains(std::span<const Value> row) const;

  /// Set equality (sorts copies of both sides; duplicates ignored).
  bool EqualsAsSet(const Relation& other) const;

  /// Removes all rows.
  void Clear();

  /// Reserves space for `rows` rows.
  void Reserve(size_t rows) { data_.reserve(rows * arity_); }

  /// Releases excess capacity (for relations cached long-term).
  void ShrinkToFit() { data_.shrink_to_fit(); }

  /// Debug rendering: "{(1,2),(3,4)}".
  std::string ToString() const;

 private:
  size_t arity_;
  std::vector<Value> data_;
  size_t zero_ary_rows_ = 0;  // row count for arity-0 relations
  bool sorted_ = false;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_RELATION_H_

// Positional (unnamed-column) relation: a multiset of fixed-arity rows stored
// row-major in a single contiguous buffer.
//
// Shared-storage design
// ---------------------
// The row buffer lives in a ref-counted, logically immutable RowBlock shared
// between Relation instances. Copying a Relation (and therefore a
// NamedRelation — attribute relabeling, whole-relation aliasing, identity
// selections/projections) copies only the shared_ptr, never the rows; this is
// what lets evaluators treat S_j materializations as cheap views (the
// fixed-query regime of Papadimitriou & Yannakakis makes the data the large
// object, so views must not duplicate it). Mutation goes through a
// copy-on-write gate: the first mutating call on a Relation whose block is
// shared clones the block, so aliases never observe each other's writes.
// SharesStorageWith() exposes the aliasing relation for tests, stats, and
// index-validity checks.
#ifndef PARAQUERY_RELATIONAL_RELATION_H_
#define PARAQUERY_RELATIONAL_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/query_context.hpp"
#include "common/status.hpp"
#include "relational/value.hpp"

namespace paraquery {

class ColumnarTable;
class TrieIndex;

/// Ref-counted flat row-major buffer shared between Relation views.
/// Logically immutable while shared: Relation's copy-on-write gate clones it
/// before the first mutation through any alias.
///
/// Besides the rows the block carries lazily computed per-column statistics
/// (currently distinct-value counts, see Relation::DistinctCount). Keeping
/// them here — not on the Relation view — means every storage-sharing view
/// of one materialization sees the same cache, and copy-on-write naturally
/// invalidates: a clone starts with empty stats, an in-place mutation clears
/// them (see Relation::MutableValues).
struct RowBlock {
  std::vector<Value> values;

  /// Guards `distinct_counts` (stats are computed lazily, possibly from
  /// concurrent read-only views of the same block).
  std::mutex stats_mutex;
  /// Per-column distinct-value counts; empty until first computed, entries
  /// of kStatUnknown not yet computed. Sized to the owning relation's arity.
  std::vector<size_t> distinct_counts;

  /// Cached column-major mirror of this block (see Relation::ColumnarView),
  /// guarded by `stats_mutex` like the stats. Invalidated wherever
  /// `distinct_counts` is — any in-place mutation — and not copied by the
  /// copy-on-write clone (the user-defined copy constructor below copies
  /// only the rows).
  std::shared_ptr<const ColumnarTable> columnar;

  /// Cached sorted-trie indexes of this block, keyed by column order (see
  /// Relation::TrieView) — the leapfrog multiway-join access path. Guarded
  /// by `stats_mutex` and invalidated exactly like `columnar`: cleared on
  /// any in-place mutation, not copied by the copy-on-write clone.
  std::vector<std::pair<std::vector<int>, std::shared_ptr<const TrieIndex>>>
      tries;

  /// Byte accounting for query memory budgets: the thread-current accountant
  /// at construction time (null outside engine runs), and the capacity bytes
  /// already charged to it. Account() keeps the charge equal to the buffer's
  /// capacity; the destructor releases it. Shared blocks never change
  /// capacity (copy-on-write clones first), so Account() on a shared block
  /// is a read-only no-op and needs no synchronization.
  std::shared_ptr<MemoryAccountant> accountant;
  size_t charged_bytes = 0;

  static constexpr size_t kStatUnknown = ~size_t{0};

  RowBlock() : accountant(MemoryAccountant::Current()) {}
  explicit RowBlock(std::vector<Value> v)
      : values(std::move(v)), accountant(MemoryAccountant::Current()) {
    Account();
  }
  /// Clones only the rows; the copy recomputes its stats lazily and charges
  /// the cloning thread's accountant (not the source's).
  RowBlock(const RowBlock& o)
      : values(o.values), accountant(MemoryAccountant::Current()) {
    Account();
  }
  RowBlock& operator=(const RowBlock&) = delete;
  ~RowBlock() {
    if (accountant) accountant->Charge(-static_cast<int64_t>(charged_bytes));
  }

  /// Brings the charged byte count up to date with the buffer's capacity.
  /// Called by Relation::Sync after every mutation.
  void Account() {
    if (!accountant) return;
    size_t cap = values.capacity() * sizeof(Value);
    if (cap == charged_bytes) return;
    accountant->Charge(static_cast<int64_t>(cap) -
                       static_cast<int64_t>(charged_bytes));
    charged_bytes = cap;
  }
};

/// A fixed-arity table of Values with set or multiset semantics.
///
/// Storage is row-major (`values[row * arity + col]`) inside a shared
/// RowBlock, the layout used for the tuple-at-a-time operators in this
/// library. Set semantics are obtained by calling SortAndDedup(); operators
/// that require sortedness check the `sorted()` flag in debug builds.
class Relation {
 public:
  /// Creates an empty relation of the given arity. Arity 0 is allowed and
  /// models Boolean (goal) relations: such a relation has either zero rows
  /// (false) or one empty row (true). Empty relations share one global empty
  /// block, so construction allocates nothing; the copy-on-write gate
  /// (which always sees the global block as shared) detaches on first
  /// mutation.
  explicit Relation(size_t arity) : arity_(arity), block_(EmptyBlock()) {
    Sync();
  }

  // Copying produces an independent VIEW: it shares rows but never the
  // mutation counter — a view's copy-on-write mutations change its own
  // content, not the bound owner's. Copy-assignment, by contrast, REPLACES
  // this relation's content, so a bound target reports the mutation.
  // Moves NEVER transfer the binding: a relation moved out of a Database
  // slot must not carry a pointer into the Database's lifetime (its later
  // mutations are its own business), while the emptied source stays bound
  // and reports the theft. Database rebinds its elements after vector
  // growth, the one place relocation would otherwise strand bindings.
  Relation(const Relation& o)
      : arity_(o.arity_),
        block_(o.block_),
        base_(o.base_),
        nvalues_(o.nvalues_),
        zero_ary_rows_(o.zero_ary_rows_),
        sorted_(o.sorted_) {}
  Relation& operator=(const Relation& o) {
    arity_ = o.arity_;
    block_ = o.block_;
    base_ = o.base_;
    nvalues_ = o.nvalues_;
    zero_ary_rows_ = o.zero_ary_rows_;
    sorted_ = o.sorted_;
    Bump();
    return *this;
  }
  Relation(Relation&& o) noexcept
      : arity_(o.arity_),
        block_(std::move(o.block_)),
        base_(o.base_),
        nvalues_(o.nvalues_),
        zero_ary_rows_(o.zero_ary_rows_),
        sorted_(o.sorted_) {
    o.block_ = EmptyBlock();
    o.Sync();
    o.zero_ary_rows_ = 0;
    o.Bump();  // the source was emptied (a content change where bound)
  }
  Relation& operator=(Relation&& o) noexcept {
    arity_ = o.arity_;
    block_ = std::move(o.block_);
    base_ = o.base_;
    nvalues_ = o.nvalues_;
    zero_ary_rows_ = o.zero_ary_rows_;
    sorted_ = o.sorted_;
    o.block_ = EmptyBlock();
    o.Sync();
    o.zero_ary_rows_ = 0;
    o.Bump();  // source emptied
    Bump();    // this relation's content replaced
    return *this;
  }

  /// Binds a mutation counter (Database::generation): every content
  /// mutation THROUGH THIS RELATION — including via a retained `Relation&`
  /// handle — increments it, which is what invalidates plan caches. When
  /// `stamp` is given (Database's per-relation stamp slot), each mutation
  /// also records the new clock value there, so caches can tell WHICH
  /// relation changed. Copies (zero-copy views) do not inherit the binding.
  void BindMutationCounter(uint64_t* counter, uint64_t* stamp = nullptr) {
    on_mutate_ = counter;
    rel_stamp_ = stamp;
  }

  /// Wraps a prefilled row-major buffer (`data.size()` must be a multiple of
  /// `arity`; arity 0 is not supported here). Used by operators that emit
  /// rows directly into a flat buffer to skip per-row Add calls.
  Relation(size_t arity, std::vector<Value> data);

  size_t arity() const { return arity_; }

  /// Number of rows.
  size_t size() const {
    return arity_ == 0 ? zero_ary_rows_ : nvalues_ / arity_;
  }
  bool empty() const { return size() == 0; }

  /// Appends a row; `row.size()` must equal arity().
  void Add(std::span<const Value> row);
  void Add(std::initializer_list<Value> row) {
    Add(std::span<const Value>(row.begin(), row.size()));
  }

  /// Appends the empty row to an arity-0 relation (sets it "true").
  void AddEmptyRow();

  // Reads go through base_/nvalues_, a cache of the block's buffer pointer
  // and length maintained by every mutator: sharing costs no indirection on
  // the hot paths relative to an owned vector.
  Value At(size_t row, size_t col) const { return base_[row * arity_ + col]; }
  std::span<const Value> Row(size_t row) const {
    return std::span<const Value>(base_ + row * arity_, arity_);
  }

  /// Raw row-major buffer (size() * arity() values).
  const std::vector<Value>& data() const { return block_->values; }

  /// True iff this relation and `other` are views over the same RowBlock
  /// (copies that have not diverged through copy-on-write; all empty
  /// relations trivially share the global empty block). Arity-0 relations
  /// never share: their row count lives outside the block.
  bool SharesStorageWith(const Relation& other) const {
    return arity_ > 0 && block_ == other.block_;
  }

  /// Sorts rows lexicographically and removes duplicates (set semantics).
  void SortAndDedup();

  /// Removes duplicate rows in one hash pass, keeping the first occurrence
  /// of each row in its original position (no sorting). Preferred over
  /// SortAndDedup wherever the caller needs only set semantics, not a
  /// sorted order. A duplicate-free relation keeps its shared storage.
  void HashDedup() { HashDedup({}); }

  /// As HashDedup(); with `pfor` bound, large inputs deduplicate with a
  /// hash-partitioned parallel pass (hash rows, scatter row ids into
  /// partitions by hash prefix, dedup each partition independently, compact
  /// survivors in row order). Duplicates of a row share its hash and
  /// therefore its partition, and within a partition row ids stay
  /// increasing, so the survivor set — first occurrence of each row — is
  /// exactly the sequential one: results are byte-identical at any width.
  void HashDedup(const ParallelForFn& pfor);

  /// The cached column-major mirror of this relation's storage, transposing
  /// on first use (morselized through `pfor` when bound) and cached on the
  /// shared RowBlock — storage-sharing views share one mirror, and any
  /// mutation invalidates it, exactly like the distinct-count stats. Null
  /// for arity-0 or empty relations.
  std::shared_ptr<const ColumnarTable> ColumnarView(
      const ParallelForFn& pfor = {}) const;

  /// The cached columnar mirror if one has already been built for the
  /// current mutation epoch, null otherwise — a peek that never pays the
  /// transpose. Kernels with a row-layout fallback (e.g. the RowIndex hash
  /// pass) use it to consume the mirror opportunistically.
  std::shared_ptr<const ColumnarTable> CachedColumnarView() const {
    if (arity_ == 0 || empty()) return nullptr;
    std::lock_guard<std::mutex> lock(block_->stats_mutex);
    return block_->columnar;
  }

  /// The cached sorted-trie index of this relation's storage over `cols`
  /// (a column order; see trie_index.hpp), built on first use (morselized
  /// through `pfor` when bound) and cached on the shared RowBlock —
  /// storage-sharing views share one trie per column order, and any
  /// mutation invalidates the cache, exactly like the columnar mirror.
  /// Empty relations return an uncached empty trie.
  std::shared_ptr<const TrieIndex> TrieView(const std::vector<int>& cols,
                                            const ParallelForFn& pfor = {}) const;

  /// True if SortAndDedup has run and no row was added since.
  bool sorted() const { return sorted_; }

  /// Membership test. O(log n) when sorted, O(n·arity) otherwise.
  bool Contains(std::span<const Value> row) const;

  /// Set equality (sorts copies of both sides; duplicates ignored).
  bool EqualsAsSet(const Relation& other) const;

  /// Number of distinct values in column `col`, computed lazily with one
  /// RowIndex pass and cached on the shared RowBlock — storage-sharing views
  /// share the cache, and any mutation (copy-on-write or in-place)
  /// invalidates it. Thread-safe against concurrent reads; feeds the
  /// planner's join cardinality estimates.
  size_t DistinctCount(size_t col) const;

  /// Removes all rows. Detaches from shared storage instead of clearing it.
  void Clear();

  /// Reserves space for `rows` rows (detaches from shared storage).
  void Reserve(size_t rows) {
    if (arity_ == 0) return;
    MutableValues().reserve(rows * arity_);
    Sync();
  }

  /// Releases excess capacity (for relations cached long-term). No-op on
  /// shared storage: trimming an alias is never worth a full copy.
  void ShrinkToFit() {
    if (block_.use_count() == 1) {
      block_->values.shrink_to_fit();
      Sync();
    }
  }

  /// Debug rendering: "{(1,2),(3,4)}".
  std::string ToString() const;

 private:
  /// The block shared by all freshly constructed (empty) relations.
  static const std::shared_ptr<RowBlock>& EmptyBlock();

  /// Refreshes the read cache after any operation that may have changed the
  /// block's buffer (COW clone, insert-with-reallocation, replacement), and
  /// settles the block's byte charge against the query memory budget.
  void Sync() {
    base_ = block_->values.data();
    nvalues_ = block_->values.size();
    block_->Account();
  }

  /// Copy-on-write gate: clones the block if any other view shares it,
  /// then returns the (now exclusively owned) buffer. Callers must Sync()
  /// after mutating the returned vector. In-place mutation of an exclusive
  /// block invalidates its cached column stats (a clone starts empty).
  std::vector<Value>& MutableValues() {
    if (block_.use_count() > 1) {
      block_ = std::make_shared<RowBlock>(*block_);
    } else {
      block_->distinct_counts.clear();
      block_->columnar.reset();
      block_->tries.clear();
    }
    return block_->values;
  }

  /// Replaces the storage with a freshly owned buffer (no clone of the old
  /// contents; other views keep the previous block alive).
  void ReplaceValues(std::vector<Value> values) {
    block_ = std::make_shared<RowBlock>(std::move(values));
    Sync();
  }

  /// Append without the copy-on-write check, for owners that know their
  /// block is exclusive (RowHashSet's backing relation, which detaches from
  /// the global empty block up front). Arity > 0 only.
  void AppendRowUnchecked(std::span<const Value> row) {
    PQ_DCHECK(block_.use_count() == 1,
              "AppendRowUnchecked requires exclusive storage");
    block_->distinct_counts.clear();
    block_->columnar.reset();
    block_->tries.clear();
    block_->values.insert(block_->values.end(), row.begin(), row.end());
    Sync();
    sorted_ = false;
    Bump();
  }

  /// Reports a content mutation to the bound counter (no-op when unbound),
  /// stamping the bound per-relation slot with the new clock value.
  void Bump() {
    if (on_mutate_ != nullptr) {
      ++*on_mutate_;
      if (rel_stamp_ != nullptr) *rel_stamp_ = *on_mutate_;
    }
  }

  friend class RowHashSet;

  size_t arity_;
  std::shared_ptr<RowBlock> block_;  // never null
  const Value* base_ = nullptr;      // cached block_->values.data()
  size_t nvalues_ = 0;               // cached block_->values.size()
  size_t zero_ary_rows_ = 0;         // row count for arity-0 relations
  bool sorted_ = false;
  /// Bound mutation counter (Database::generation) or null, plus the
  /// per-relation stamp slot it updates. Not copied to views; not
  /// transferred by moves.
  uint64_t* on_mutate_ = nullptr;
  uint64_t* rel_stamp_ = nullptr;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_RELATION_H_

// Sorted-trie (prefix) index for worst-case-optimal multi-way joins.
//
// A TrieIndex over a Relation and a column order (c0, c1, ..., ck-1) is the
// set of the relation's rows projected to those columns, stored as DISTINCT
// tuples sorted lexicographically in that column order. Because the buffer
// is sorted, the index IS a trie: the tuples sharing a length-d prefix form
// one contiguous row range, so descending a trie edge is a range narrowing
// and the leapfrog seek/next-geq primitives are binary searches within the
// current range (relational/leapfrog.hpp walks it that way).
//
// Like the columnar mirror and the per-column distinct-count stats, tries
// are built lazily and cached on the shared RowBlock (Relation::TrieView):
// every storage-sharing view of one materialization — relabels, aliases,
// snapshot pins — sees the same cache, keyed by column order; any mutation
// (in place or copy-on-write) invalidates it. The tuple buffer settles its
// capacity bytes against the thread-current MemoryAccountant through the
// same ColumnBlock accounting RowBlock and the columnar mirror use, so trie
// construction is charged to the query that triggers it and released when
// the owning relation mutates or dies.
#ifndef PARAQUERY_RELATIONAL_TRIE_INDEX_H_
#define PARAQUERY_RELATIONAL_TRIE_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/parallel_for.hpp"
#include "relational/column_block.hpp"
#include "relational/relation.hpp"
#include "relational/value.hpp"

namespace paraquery {

/// Immutable sorted-tuple trie over one column permutation of a relation.
class TrieIndex {
 public:
  /// Projects `rel` to `cols` (each must index a column of `rel`), sorts
  /// the projected tuples lexicographically and deduplicates. The gather
  /// pass morsels through `pfor` when bound; the result is byte-identical
  /// at any width. Prefer Relation::TrieView, which caches the build on the
  /// shared RowBlock.
  static std::shared_ptr<const TrieIndex> Build(const Relation& rel,
                                                const std::vector<int>& cols,
                                                const ParallelForFn& pfor = {});

  /// Number of indexed columns (trie depth).
  size_t arity() const { return cols_.size(); }
  /// Number of distinct projected tuples (trie leaves).
  size_t rows() const { return rows_; }
  /// The source columns, in trie level order.
  const std::vector<int>& cols() const { return cols_; }
  /// Flat row-major sorted tuple buffer (rows() * arity() values).
  const Value* data() const { return tuples_.values.data(); }

  /// Value at (row, level).
  Value At(size_t row, size_t level) const {
    return tuples_.values[row * cols_.size() + level];
  }

  /// First row in [lo, hi) whose `level` column is >= v (rows [lo, hi) must
  /// share their length-`level` prefix, so that column is sorted on it).
  size_t SeekGeq(size_t lo, size_t hi, size_t level, Value v) const;

  /// First row in [lo, hi) whose `level` column is > v (the end of v's
  /// group; same precondition as SeekGeq).
  size_t GroupEnd(size_t lo, size_t hi, size_t level, Value v) const;

 private:
  TrieIndex() = default;

  std::vector<int> cols_;
  size_t rows_ = 0;
  /// Byte-accounted flat buffer (ColumnBlock reused purely for its
  /// MemoryAccountant bookkeeping).
  ColumnBlock tuples_;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_TRIE_INDEX_H_

#include "relational/dictionary.hpp"

#include "common/status.hpp"

namespace paraquery {

Value Dictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  Value code = kCodeBase + static_cast<Value>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

Value Dictionary::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& Dictionary::Lookup(Value code) const {
  PQ_CHECK(Contains(code), "Dictionary::Lookup: invalid code");
  return strings_[static_cast<size_t>(code - kCodeBase)];
}

}  // namespace paraquery

// Leapfrog triejoin: the worst-case-optimal multi-way join kernel behind
// PlanOp::kMultiwayJoin.
//
// The join is evaluated attribute-by-attribute over a global attribute
// order 0..num_attrs-1. Each input relation participates at the levels its
// attributes map to (strictly increasing positions in the global order) and
// is accessed through a TrieIndex built on its columns in that order. At
// each level the participating tries' current ranges are intersected with
// the classic leapfrog loop — repeatedly seek every iterator to the current
// maximum key (binary-search next-geq within the range) until all agree —
// and each agreed value narrows the ranges one trie level before recursing.
// Total work is within log factors of the AGM bound (Ngo–Porat–Ré–Rudra /
// Veldhuizen), which is what makes triangle/clique cores run in ~N^{3/2}
// instead of the quadratic binary-join blowup.
//
// Parallelism: the kernel partitions the level-0 value groups of the
// participant with the fewest of them into contiguous chunks; each chunk
// enumerates its value span independently into its own output buffer, and
// buffers concatenate in chunk order — ascending level-0 values — so the
// output is byte-identical to the sequential enumeration at any width. The
// bound QueryContext is polled every ~1k intersection steps per chunk.
#ifndef PARAQUERY_RELATIONAL_LEAPFROG_H_
#define PARAQUERY_RELATIONAL_LEAPFROG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "relational/relation.hpp"
#include "relational/trie_index.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// One multiway-join input: a trie plus the global attribute position of
/// each trie level (strictly increasing).
struct LeapfrogInput {
  std::shared_ptr<const TrieIndex> trie;
  std::vector<int> attr_of_level;
};

/// Intersects the inputs over attributes 0..num_attrs-1 and returns the
/// distinct result tuples in ascending lexicographic order, one column per
/// global attribute. Every attribute must be covered by at least one input.
/// `max_output_rows` (0 = unlimited) aborts with ResourceExhausted;
/// `runtime` supplies the scheduler, the chunking knob, and the abort
/// context. `morsels` (optional) receives the number of parallel chunks
/// processed (0 when the kernel ran sequentially).
Result<Relation> LeapfrogJoin(const std::vector<LeapfrogInput>& inputs,
                              size_t num_attrs, const RuntimeOptions& runtime,
                              uint64_t max_output_rows = 0,
                              size_t* morsels = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_LEAPFROG_H_

#include "relational/relation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/status.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

const std::shared_ptr<RowBlock>& Relation::EmptyBlock() {
  // The global empty block is never charged to any query's budget: it is
  // process-lifetime shared state, and first construction must not capture
  // whichever accountant happens to be thread-current at that moment.
  static const std::shared_ptr<RowBlock> kEmpty = [] {
    auto block = std::make_shared<RowBlock>();
    block->accountant = nullptr;
    return block;
  }();
  return kEmpty;
}

Relation::Relation(size_t arity, std::vector<Value> data)
    : arity_(arity), block_(std::make_shared<RowBlock>(std::move(data))) {
  PQ_CHECK(arity > 0, "Relation buffer constructor requires arity > 0");
  PQ_CHECK(block_->values.size() % arity == 0,
           "Relation buffer size is not a multiple of the arity");
  Sync();
}

void Relation::Add(std::span<const Value> row) {
  PQ_DCHECK(row.size() == arity_, "Relation::Add: arity mismatch");
  if (arity_ == 0) {
    ++zero_ary_rows_;
    sorted_ = false;
    Bump();
    return;
  }
  std::vector<Value>& values = MutableValues();
  values.insert(values.end(), row.begin(), row.end());
  Sync();
  sorted_ = false;
  Bump();
}

void Relation::AddEmptyRow() {
  PQ_DCHECK(arity_ == 0, "AddEmptyRow requires arity 0");
  ++zero_ary_rows_;
  sorted_ = false;
  Bump();
}

void Relation::SortAndDedup() {
  if (arity_ == 0) {
    zero_ary_rows_ = zero_ary_rows_ > 0 ? 1 : 0;
    sorted_ = true;
    Bump();
    return;
  }
  size_t n = size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* base = base_;
  size_t arity = arity_;
  auto cmp = [base, arity](size_t a, size_t b) {
    return std::lexicographical_compare(base + a * arity, base + (a + 1) * arity,
                                        base + b * arity, base + (b + 1) * arity);
  };
  auto eq = [base, arity](size_t a, size_t b) {
    return std::equal(base + a * arity, base + (a + 1) * arity,
                      base + b * arity);
  };
  std::sort(order.begin(), order.end(), cmp);
  std::vector<Value> out;
  out.reserve(block_->values.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && eq(order[i], order[i - 1])) continue;
    out.insert(out.end(), base + order[i] * arity, base + (order[i] + 1) * arity);
  }
  ReplaceValues(std::move(out));
  sorted_ = true;
  Bump();
}

void Relation::HashDedup() {
  if (arity_ == 0) {
    zero_ary_rows_ = zero_ary_rows_ > 0 ? 1 : 0;
    sorted_ = true;
    Bump();
    return;
  }
  if (sorted_) return;  // already deduplicated (and sorted)
  size_t n = size();
  RowHashSet set(arity_);
  set.Reserve(n);
  for (size_t r = 0; r < n; ++r) set.Insert(Row(r));
  // Duplicate-free input keeps its (possibly shared) storage untouched.
  if (set.size() != n) {
    block_ = std::move(set.TakeRelation().block_);
    Sync();
    Bump();
  }
  sorted_ = size() <= 1;
}

bool Relation::Contains(std::span<const Value> row) const {
  PQ_DCHECK(row.size() == arity_, "Relation::Contains: arity mismatch");
  if (arity_ == 0) return zero_ary_rows_ > 0;
  size_t n = size();
  if (sorted_) {
    size_t lo = 0, hi = n;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      auto mid_row = Row(mid);
      if (std::lexicographical_compare(mid_row.begin(), mid_row.end(),
                                       row.begin(), row.end())) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < n && std::equal(Row(lo).begin(), Row(lo).end(), row.begin());
  }
  for (size_t i = 0; i < n; ++i) {
    if (std::equal(Row(i).begin(), Row(i).end(), row.begin())) return true;
  }
  return false;
}

size_t Relation::DistinctCount(size_t col) const {
  PQ_CHECK(col < arity_, "DistinctCount: column out of range");
  // Empty relations share the one global block across all arities; never
  // touch its stats (and the answer is trivially 0).
  if (empty()) return 0;
  std::lock_guard<std::mutex> lock(block_->stats_mutex);
  std::vector<size_t>& counts = block_->distinct_counts;
  if (counts.size() != arity_) counts.assign(arity_, RowBlock::kStatUnknown);
  if (counts[col] == RowBlock::kStatUnknown) {
    counts[col] = RowIndex(*this, {static_cast<int>(col)}).distinct_keys();
  }
  return counts[col];
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  Relation a = *this;
  Relation b = other;
  a.SortAndDedup();
  b.SortAndDedup();
  if (arity_ == 0) return a.zero_ary_rows_ == b.zero_ary_rows_;
  return a.block_->values == b.block_->values;
}

void Relation::Clear() {
  if (block_.use_count() == 1) {
    block_->values.clear();  // keep the exclusive buffer's capacity
    block_->distinct_counts.clear();
  } else {
    block_ = EmptyBlock();
  }
  Sync();
  zero_ary_rows_ = 0;
  sorted_ = false;
  Bump();
}

std::string Relation::ToString() const {
  std::ostringstream oss;
  oss << "{";
  size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) oss << ",";
    oss << "(";
    for (size_t j = 0; j < arity_; ++j) {
      if (j > 0) oss << ",";
      oss << At(i, j);
    }
    oss << ")";
  }
  oss << "}";
  return oss.str();
}

}  // namespace paraquery

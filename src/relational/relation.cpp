#include "relational/relation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/status.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

const std::shared_ptr<RowBlock>& Relation::EmptyBlock() {
  // The global empty block is never charged to any query's budget: it is
  // process-lifetime shared state, and first construction must not capture
  // whichever accountant happens to be thread-current at that moment.
  static const std::shared_ptr<RowBlock> kEmpty = [] {
    auto block = std::make_shared<RowBlock>();
    block->accountant = nullptr;
    return block;
  }();
  return kEmpty;
}

Relation::Relation(size_t arity, std::vector<Value> data)
    : arity_(arity), block_(std::make_shared<RowBlock>(std::move(data))) {
  PQ_CHECK(arity > 0, "Relation buffer constructor requires arity > 0");
  PQ_CHECK(block_->values.size() % arity == 0,
           "Relation buffer size is not a multiple of the arity");
  Sync();
}

void Relation::Add(std::span<const Value> row) {
  PQ_DCHECK(row.size() == arity_, "Relation::Add: arity mismatch");
  if (arity_ == 0) {
    ++zero_ary_rows_;
    sorted_ = false;
    Bump();
    return;
  }
  std::vector<Value>& values = MutableValues();
  values.insert(values.end(), row.begin(), row.end());
  Sync();
  sorted_ = false;
  Bump();
}

void Relation::AddEmptyRow() {
  PQ_DCHECK(arity_ == 0, "AddEmptyRow requires arity 0");
  ++zero_ary_rows_;
  sorted_ = false;
  Bump();
}

void Relation::SortAndDedup() {
  if (arity_ == 0) {
    zero_ary_rows_ = zero_ary_rows_ > 0 ? 1 : 0;
    sorted_ = true;
    Bump();
    return;
  }
  size_t n = size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* base = base_;
  size_t arity = arity_;
  auto cmp = [base, arity](size_t a, size_t b) {
    return std::lexicographical_compare(base + a * arity, base + (a + 1) * arity,
                                        base + b * arity, base + (b + 1) * arity);
  };
  auto eq = [base, arity](size_t a, size_t b) {
    return std::equal(base + a * arity, base + (a + 1) * arity,
                      base + b * arity);
  };
  std::sort(order.begin(), order.end(), cmp);
  std::vector<Value> out;
  out.reserve(block_->values.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && eq(order[i], order[i - 1])) continue;
    out.insert(out.end(), base + order[i] * arity, base + (order[i] + 1) * arity);
  }
  ReplaceValues(std::move(out));
  sorted_ = true;
  Bump();
}

namespace {

size_t DedupNextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Rows per chunk of the partitioned parallel dedup passes. Every pass must
/// chunk identically, so this is fixed rather than taken from the runtime's
/// morsel knob.
constexpr size_t kDedupGrain = 4096;
/// Below this the sequential single-pass dedup wins outright.
constexpr size_t kParallelDedupMinRows = size_t{1} << 13;
/// Hash-prefix partition count (top 6 bits of the row hash).
constexpr size_t kDedupParts = 64;
constexpr int kDedupPartShift = 58;

}  // namespace

void Relation::HashDedup(const ParallelForFn& pfor) {
  if (arity_ == 0) {
    zero_ary_rows_ = zero_ary_rows_ > 0 ? 1 : 0;
    sorted_ = true;
    Bump();
    return;
  }
  if (sorted_) return;  // already deduplicated (and sorted)
  size_t n = size();
  if (!pfor || n < kParallelDedupMinRows) {
    RowHashSet set(arity_);
    set.Reserve(n);
    for (size_t r = 0; r < n; ++r) set.Insert(Row(r));
    // Duplicate-free input keeps its (possibly shared) storage untouched.
    if (set.size() != n) {
      block_ = std::move(set.TakeRelation().block_);
      Sync();
      Bump();
    }
    sorted_ = size() <= 1;
    return;
  }

  // Partitioned parallel dedup. Duplicates of a row share its full-row hash
  // and therefore its hash-prefix partition; the scatter below keeps row ids
  // increasing within each partition, so marking the first occurrence per
  // partition marks exactly the rows the sequential RowHashSet pass keeps.
  const Value* base = base_;
  const size_t arity = arity_;
  std::vector<uint64_t> hashes(n);
  size_t chunks =
      ForChunks(pfor, n, kDedupGrain, [&](size_t, size_t b, size_t e) {
        for (size_t r = b; r < e; ++r) {
          hashes[r] =
              HashRow(std::span<const Value>(base + r * arity, arity));
        }
      });
  // Per-(chunk, partition) counts -> deterministic scatter offsets.
  std::vector<size_t> counts(chunks * kDedupParts, 0);
  ForChunks(pfor, n, kDedupGrain, [&](size_t c, size_t b, size_t e) {
    size_t* local = counts.data() + c * kDedupParts;
    for (size_t r = b; r < e; ++r) ++local[hashes[r] >> kDedupPartShift];
  });
  std::vector<size_t> part_start(kDedupParts + 1, 0);
  for (size_t c = 0; c < chunks; ++c) {
    for (size_t p = 0; p < kDedupParts; ++p) {
      part_start[p + 1] += counts[c * kDedupParts + p];
    }
  }
  for (size_t p = 0; p < kDedupParts; ++p) part_start[p + 1] += part_start[p];
  std::vector<size_t> offs(chunks * kDedupParts);
  for (size_t p = 0; p < kDedupParts; ++p) {
    size_t acc = part_start[p];
    for (size_t c = 0; c < chunks; ++c) {
      offs[c * kDedupParts + p] = acc;
      acc += counts[c * kDedupParts + p];
    }
  }
  std::vector<uint32_t> part_rows(n);
  ForChunks(pfor, n, kDedupGrain, [&](size_t c, size_t b, size_t e) {
    size_t local[kDedupParts];
    std::copy(offs.begin() + c * kDedupParts,
              offs.begin() + (c + 1) * kDedupParts, local);
    for (size_t r = b; r < e; ++r) {
      part_rows[local[hashes[r] >> kDedupPartShift]++] =
          static_cast<uint32_t>(r);
    }
  });
  // Each partition dedups independently (disjoint keep[] entries).
  std::vector<uint8_t> keep(n, 0);
  std::vector<size_t> part_kept(kDedupParts, 0);
  ForChunks(pfor, kDedupParts, 1, [&](size_t, size_t pb, size_t pe) {
    for (size_t p = pb; p < pe; ++p) {
      size_t pbegin = part_start[p], pend = part_start[p + 1];
      if (pbegin == pend) continue;
      size_t cap = DedupNextPowerOfTwo(std::max<size_t>(
          (pend - pbegin) * 2, 16));
      uint64_t mask = cap - 1;
      std::vector<uint32_t> slots(cap, UINT32_MAX);
      size_t kept = 0;
      for (size_t i = pbegin; i < pend; ++i) {
        uint32_t r = part_rows[i];
        uint64_t h = hashes[r];
        size_t s = h & mask;
        bool dup = false;
        while (slots[s] != UINT32_MAX) {
          uint32_t o = slots[s];
          if (hashes[o] == h &&
              std::equal(base + size_t{o} * arity,
                         base + (size_t{o} + 1) * arity,
                         base + size_t{r} * arity)) {
            dup = true;
            break;
          }
          s = (s + 1) & mask;
        }
        if (!dup) {
          slots[s] = r;
          keep[r] = 1;
          ++kept;
        }
      }
      part_kept[p] = kept;
    }
  });
  size_t total = 0;
  for (size_t p = 0; p < kDedupParts; ++p) total += part_kept[p];
  if (total == n) {  // duplicate-free: keep the (possibly shared) storage
    sorted_ = size() <= 1;
    return;
  }
  // Ordered compaction of the survivors into a fresh flat buffer.
  std::vector<size_t> chunk_off(chunks + 1, 0);
  ForChunks(pfor, n, kDedupGrain, [&](size_t c, size_t b, size_t e) {
    size_t k = 0;
    for (size_t r = b; r < e; ++r) k += keep[r];
    chunk_off[c + 1] = k;
  });
  for (size_t c = 0; c < chunks; ++c) chunk_off[c + 1] += chunk_off[c];
  std::vector<Value> out(total * arity);
  ForChunks(pfor, n, kDedupGrain, [&](size_t c, size_t b, size_t e) {
    Value* dst = out.data() + chunk_off[c] * arity;
    for (size_t r = b; r < e; ++r) {
      if (!keep[r]) continue;
      dst = std::copy(base + r * arity, base + (r + 1) * arity, dst);
    }
  });
  ReplaceValues(std::move(out));
  sorted_ = size() <= 1;
  Bump();
}

bool Relation::Contains(std::span<const Value> row) const {
  PQ_DCHECK(row.size() == arity_, "Relation::Contains: arity mismatch");
  if (arity_ == 0) return zero_ary_rows_ > 0;
  size_t n = size();
  if (sorted_) {
    size_t lo = 0, hi = n;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      auto mid_row = Row(mid);
      if (std::lexicographical_compare(mid_row.begin(), mid_row.end(),
                                       row.begin(), row.end())) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < n && std::equal(Row(lo).begin(), Row(lo).end(), row.begin());
  }
  for (size_t i = 0; i < n; ++i) {
    if (std::equal(Row(i).begin(), Row(i).end(), row.begin())) return true;
  }
  return false;
}

size_t Relation::DistinctCount(size_t col) const {
  PQ_CHECK(col < arity_, "DistinctCount: column out of range");
  // Empty relations share the one global block across all arities; never
  // touch its stats (and the answer is trivially 0).
  if (empty()) return 0;
  {
    std::lock_guard<std::mutex> lock(block_->stats_mutex);
    const std::vector<size_t>& counts = block_->distinct_counts;
    if (counts.size() == arity_ && counts[col] != RowBlock::kStatUnknown) {
      return counts[col];
    }
  }
  // Compute outside the lock: the RowIndex build peeks the columnar-mirror
  // cache (CachedColumnarView), which takes stats_mutex itself. Concurrent
  // misses recompute the same value; last store wins.
  size_t distinct = RowIndex(*this, {static_cast<int>(col)}).distinct_keys();
  std::lock_guard<std::mutex> lock(block_->stats_mutex);
  std::vector<size_t>& counts = block_->distinct_counts;
  if (counts.size() != arity_) counts.assign(arity_, RowBlock::kStatUnknown);
  counts[col] = distinct;
  return distinct;
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  Relation a = *this;
  Relation b = other;
  a.SortAndDedup();
  b.SortAndDedup();
  if (arity_ == 0) return a.zero_ary_rows_ == b.zero_ary_rows_;
  return a.block_->values == b.block_->values;
}

void Relation::Clear() {
  if (block_.use_count() == 1) {
    block_->values.clear();  // keep the exclusive buffer's capacity
    block_->distinct_counts.clear();
    block_->columnar.reset();
    block_->tries.clear();
  } else {
    block_ = EmptyBlock();
  }
  Sync();
  zero_ary_rows_ = 0;
  sorted_ = false;
  Bump();
}

std::string Relation::ToString() const {
  std::ostringstream oss;
  oss << "{";
  size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) oss << ",";
    oss << "(";
    for (size_t j = 0; j < arity_; ++j) {
      if (j > 0) oss << ",";
      oss << At(i, j);
    }
    oss << ")";
  }
  oss << "}";
  return oss.str();
}

}  // namespace paraquery

// Process-wide counters for the storage-attached caches: the columnar
// mirror (Relation::ColumnarView) and the sorted tries
// (Relation::TrieView), both cached per shared RowBlock. The caches are a
// property of storage, not of any engine instance, so the counters are
// process-global; the engine scrapes them into its metrics registry after
// each query (Counter::Set over monotonic sources).
#ifndef PARAQUERY_RELATIONAL_STORAGE_CACHE_STATS_H_
#define PARAQUERY_RELATIONAL_STORAGE_CACHE_STATS_H_

#include <atomic>
#include <cstdint>

namespace paraquery {

struct StorageCacheStats {
  std::atomic<uint64_t> columnar_hits{0};
  std::atomic<uint64_t> columnar_builds{0};
  std::atomic<uint64_t> trie_hits{0};
  std::atomic<uint64_t> trie_builds{0};
};

/// The process-wide instance.
StorageCacheStats& GlobalStorageCacheStats();

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_STORAGE_CACHE_STATS_H_

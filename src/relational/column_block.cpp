#include "relational/column_block.hpp"

#include <utility>

#include "common/status.hpp"
#include "relational/storage_cache_stats.hpp"

namespace paraquery {

namespace {
// Rows per transpose chunk. Matches the runtime's default morsel size so a
// parallel transpose produces the same work granularity as the operators
// that consume it.
constexpr size_t kTransposeGrain = 4096;
}  // namespace

std::shared_ptr<const ColumnarTable> ColumnarTable::FromRelation(
    const Relation& rel, const ParallelForFn& pfor) {
  PQ_CHECK(rel.arity() > 0, "ColumnarTable requires arity > 0");
  const size_t arity = rel.arity();
  const size_t rows = rel.size();
  auto table = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  table->rows_ = rows;
  table->cols_.reserve(arity);
  std::vector<Value*> out(arity);
  for (size_t c = 0; c < arity; ++c) {
    auto block = std::make_shared<ColumnBlock>(std::vector<Value>(rows));
    out[c] = block->values.data();
    table->cols_.push_back(std::move(block));
  }
  const Value* base = rel.data().data();
  ForChunks(pfor, rows, kTransposeGrain,
            [&](size_t /*chunk*/, size_t begin, size_t end) {
              for (size_t r = begin; r < end; ++r) {
                const Value* row = base + r * arity;
                for (size_t c = 0; c < arity; ++c) out[c][r] = row[c];
              }
            });
  return table;
}

std::shared_ptr<const ColumnarTable> ColumnarTable::FromColumns(
    std::vector<std::shared_ptr<const ColumnBlock>> cols, size_t rows) {
  for (const auto& c : cols) {
    (void)c;
    PQ_DCHECK(c != nullptr && c->values.size() == rows,
              "ColumnarTable::FromColumns: column length mismatch");
  }
  auto table = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  table->cols_ = std::move(cols);
  table->rows_ = rows;
  return table;
}

std::shared_ptr<const ColumnarTable> Relation::ColumnarView(
    const ParallelForFn& pfor) const {
  if (arity_ == 0 || empty()) return nullptr;
  StorageCacheStats& cache_stats = GlobalStorageCacheStats();
  {
    std::lock_guard<std::mutex> lock(block_->stats_mutex);
    if (block_->columnar != nullptr) {
      cache_stats.columnar_hits.fetch_add(1, std::memory_order_relaxed);
      return block_->columnar;
    }
  }
  // Build outside the lock: concurrent views of one block may race to build
  // the same mirror; the loser's copy is discarded by the re-check below.
  std::shared_ptr<const ColumnarTable> mirror =
      ColumnarTable::FromRelation(*this, pfor);
  cache_stats.columnar_builds.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(block_->stats_mutex);
  if (block_->columnar == nullptr) block_->columnar = mirror;
  return block_->columnar;
}

}  // namespace paraquery

// Flat hash index over the rows of a Relation — the shared join/lookup kernel
// behind NaturalJoin, Semijoin, Difference, Intersect, hash-based dedup, and
// the naive evaluator's indexed backtracking.
//
// Memory layout (RowIndex)
// ------------------------
// Three contiguous arrays, no per-key heap allocations:
//
//   hashes_[r]  : uint64  cached hash of row r's key columns (one per row)
//   slots_[s]   : uint32  open-addressing table, power-of-two size, linear
//                         probing; each occupied slot holds the FIRST row id
//                         of one distinct key (kNone = empty slot)
//   next_[r]    : uint32  intrusive chain: next row with the SAME key as row
//                         r (full key equality, not just equal hash), in
//                         increasing row order; kNone terminates the chain
//
// Invariants:
//   * slots_.size() is a power of two and at least 2 * rel.size(), so the
//     load factor never exceeds 1/2 and linear probing terminates.
//   * Each occupied slot corresponds to exactly one distinct key value; hash
//     collisions between different keys occupy different slots (probing
//     continues past a slot whose key differs).
//   * The chain hanging off a slot's head row enumerates every row with that
//     key in increasing row order, so probes see rows in insertion order —
//     the same match order a scan would produce.
//   * The index borrows `rel`'s row storage; it must not outlive it, and the
//     relation must not be modified while the index is in use. Because row
//     storage is a shared RowBlock (see relation.hpp), the index is equally
//     valid for ANY Relation view sharing storage with `rel`
//     (SharesStorageWith) — e.g. an attribute-relabeled view of a cached EDB
//     materialization. Copy-on-write keeps borrowed storage alive and
//     unmodified even if some alias later mutates.
//
// Build is one pass over the rows (O(n) expected); a probe is one hash, an
// expected O(1) slot walk, and a single full-key comparison, after which
// matches stream off the chain with no further comparisons.
#ifndef PARAQUERY_RELATIONAL_ROW_INDEX_H_
#define PARAQUERY_RELATIONAL_ROW_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel_for.hpp"
#include "relational/relation.hpp"
#include "relational/value.hpp"

namespace paraquery {

/// Hash index over a Relation's rows keyed on a column subset.
class RowIndex {
 public:
  /// Sentinel row id: "no row" / end of chain.
  static constexpr uint32_t kNone = UINT32_MAX;

  /// Builds the index over `rel` keyed on `key_cols` (each must be a valid
  /// column of `rel`). An empty `key_cols` keys every row to the same value,
  /// which makes Find enumerate all rows — the degenerate cross-product case.
  ///
  /// Large inputs build partitioned: the hash pass morsels over row chunks,
  /// rows scatter into hash-prefix partitions, and each partition fills its
  /// own sub-table region of the one flat `slots_` array (sized to its own
  /// content, so skew can never overflow a region). The partition count is a
  /// pure function of the row count — never of the thread count — so the
  /// layout, and a fortiori every observable probe result (chain heads,
  /// increasing-row-order chains, MatchCount, distinct_keys), is identical
  /// at any execution width, `pfor` bound or not.
  RowIndex(const Relation& rel, std::vector<int> key_cols,
           const ParallelForFn& pfor = {});

  /// First row of `rel` whose key equals `key` (values in key_cols order),
  /// or kNone. Follow the chain with Next for further matches.
  uint32_t Find(std::span<const Value> key) const;

  /// As Find(key), but the key is read from `probe`'s row `probe_row` at
  /// columns `probe_cols` (parallel to this index's key columns) without
  /// materializing it.
  uint32_t Find(const Relation& probe, size_t probe_row,
                std::span<const int> probe_cols) const;

  /// Next row with the same key as `row`, or kNone.
  uint32_t Next(uint32_t row) const { return next_[row]; }

  /// Number of rows in the chain headed by `head` (a row returned by Find).
  /// Lets joins size their output exactly before materializing.
  uint32_t MatchCount(uint32_t head) const { return counts_[head]; }

  bool Contains(const Relation& probe, size_t probe_row,
                std::span<const int> probe_cols) const {
    return Find(probe, probe_row, probe_cols) != kNone;
  }

  /// Vectorized probe for the columnar kernels: for each selected probe
  /// position `sel[i]`, reads the key from the column stripes `probe_cols`
  /// (raw column pointers parallel to this index's key columns), and writes
  /// the matching chain-head row — or kNone — to `heads[i]`. Hashing runs a
  /// column stripe at a time through `hash_scratch` (caller-provided, length
  /// >= sel.size()), folding MixRowHash over each key column for all
  /// selected positions before any slot is touched; results are exactly
  /// Find()'s, position by position.
  void BatchFind(std::span<const Value* const> probe_cols,
                 std::span<const uint32_t> sel, uint32_t* heads,
                 uint64_t* hash_scratch) const;

  /// Number of distinct keys in the indexed relation.
  size_t distinct_keys() const { return distinct_; }

  const std::vector<int>& key_cols() const { return key_cols_; }
  const Relation& rel() const { return *rel_; }

 private:
  // Indexed-row access via the base pointer cached at build time (skips the
  // RowBlock indirection on every probe; valid because the storage is
  // immutable while borrowed).
  Value IndexedAt(uint32_t row, int col) const {
    return base_[static_cast<size_t>(row) * rel_arity_ + col];
  }

  bool RowKeysEqual(uint32_t a, uint32_t b) const;

  // Shared probe loop: walks slots from `h` until an empty slot (kNone) or a
  // head whose hash matches and `key_eq(head)` confirms full key equality.
  template <typename KeyEq>
  uint32_t Probe(uint64_t h, KeyEq key_eq) const;

  const Relation* rel_;
  const Value* base_ = nullptr;  // rel_'s row-major buffer
  size_t rel_arity_ = 0;
  std::vector<int> key_cols_;
  std::vector<uint64_t> hashes_;  // per-row key hash
  std::vector<uint32_t> slots_;   // open-addressing table of chain heads
  std::vector<uint32_t> next_;    // per-row same-key chain
  std::vector<uint32_t> counts_;  // chain length, valid at chain-head rows
  uint64_t mask_ = 0;             // slots_.size() - 1 (single-partition)
  size_t distinct_ = 0;
  /// Partitioned layout (part_count_ > 1): partition p of hash h is its top
  /// bits (h >> kPartShift); its sub-table occupies
  /// slots_[part_base_[p] .. part_base_[p] + part_mask_[p]].
  size_t part_count_ = 1;
  std::vector<size_t> part_base_;
  std::vector<uint64_t> part_mask_;
};

/// Incrementally grown set of distinct rows, backed by an owned Relation.
/// Same flat layout as RowIndex minus the chains (members are distinct, so
/// every slot maps to exactly one stored row). Used for hash-based dedup and
/// for fixpoint "seen tuple" bookkeeping, replacing re-sorting on every
/// insertion round.
class RowHashSet {
 public:
  explicit RowHashSet(size_t arity);

  /// Pre-sizes the table and backing storage for `rows` insertions,
  /// avoiding growth rehashes when the input size is known.
  void Reserve(size_t rows);

  /// Adds `row` if absent. Returns true iff the row was newly inserted.
  bool Insert(std::span<const Value> row);

  bool Contains(std::span<const Value> row) const;

  /// The distinct rows inserted so far, in first-insertion order.
  const Relation& rel() const { return rel_; }
  size_t size() const { return rel_.size(); }

  /// Moves the backing relation out; the set must not be used afterwards.
  Relation TakeRelation() { return std::move(rel_); }

 private:
  // Probes for `row` (with hash `h`): returns the slot holding an equal row,
  // or the first empty slot.
  size_t ProbeSlot(std::span<const Value> row, uint64_t h) const;
  void Grow();
  void Rehash(size_t cap);

  Relation rel_;
  std::vector<uint64_t> hashes_;  // per stored row
  std::vector<uint32_t> slots_;
  uint64_t mask_ = 0;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_ROW_INDEX_H_

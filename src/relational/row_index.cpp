#include "relational/row_index.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "relational/column_block.hpp"

namespace paraquery {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t HashRowAt(const Relation& rel, size_t row, std::span<const int> cols) {
  uint64_t h = kRowHashSeed;
  for (int c : cols) h = MixRowHash(h, rel.At(row, c));
  return h;
}

/// Rows per chunk of the parallel build passes (hash, count, scatter); all
/// passes must chunk identically.
constexpr size_t kBuildGrain = 4096;
/// Partition count switches from 1 to kBuildParts at this row count — a
/// function of the input only, so the table layout never depends on the
/// execution width.
constexpr size_t kPartitionedBuildMinRows = size_t{1} << 15;
constexpr size_t kBuildParts = 64;
constexpr int kBuildPartShift = 58;

}  // namespace

RowIndex::RowIndex(const Relation& rel, std::vector<int> key_cols,
                   const ParallelForFn& pfor)
    : rel_(&rel),
      base_(rel.data().data()),
      rel_arity_(rel.arity()),
      key_cols_(std::move(key_cols)) {
  size_t n = rel.size();
  if (n == 0) return;
  hashes_.resize(n);
  next_.assign(n, kNone);
  counts_.assign(n, 0);
  // Hash pass. When a columnar mirror is already cached for this storage
  // (a prior vectorized pipeline paid the transpose), fold the hashes from
  // the contiguous key-column stripes instead of striding the row-major
  // buffer — same values, same per-column fold order as HashRowAt, so the
  // hashes and therefore the whole table layout are byte-identical; only
  // the memory access pattern changes.
  std::shared_ptr<const ColumnarTable> mirror = rel.CachedColumnarView();
  size_t chunks;
  if (mirror != nullptr && mirror->rows() == n && !key_cols_.empty()) {
    std::vector<const Value*> stripes;
    stripes.reserve(key_cols_.size());
    for (int c : key_cols_) stripes.push_back(mirror->col(c));
    chunks =
        ForChunks(pfor, n, kBuildGrain, [&](size_t, size_t b, size_t e) {
          for (size_t r = b; r < e; ++r) hashes_[r] = kRowHashSeed;
          for (const Value* col : stripes) {
            for (size_t r = b; r < e; ++r) {
              hashes_[r] = MixRowHash(hashes_[r], col[r]);
            }
          }
        });
  } else {
    chunks =
        ForChunks(pfor, n, kBuildGrain, [&](size_t, size_t b, size_t e) {
          for (size_t r = b; r < e; ++r) {
            hashes_[r] = HashRowAt(*rel_, r, key_cols_);
          }
        });
  }

  // Shared per-partition insert loop: walks rows of one slot region in
  // increasing row order, appending same-key rows to their chain tail.
  // With part_count_ == 1 (region = whole table, every row) this is exactly
  // the historical sequential build.
  auto insert_rows = [&](size_t slot_base, uint64_t mask,
                         auto&& next_row) -> size_t {
    std::vector<uint32_t> tails(mask + 1, kNone);
    size_t distinct = 0;
    for (uint32_t r = next_row(); r != kNone; r = next_row()) {
      uint64_t h = hashes_[r];
      size_t s = slot_base + (h & mask);
      for (;;) {
        uint32_t head = slots_[s];
        if (head == kNone) {
          slots_[s] = r;
          tails[s - slot_base] = r;
          counts_[r] = 1;
          ++distinct;
          break;
        }
        if (hashes_[head] == h && RowKeysEqual(head, r)) {
          next_[tails[s - slot_base]] = r;
          tails[s - slot_base] = r;
          ++counts_[head];
          break;
        }
        s = slot_base + ((s - slot_base + 1) & mask);
      }
    }
    return distinct;
  };

  if (n < kPartitionedBuildMinRows) {
    size_t cap = NextPowerOfTwo(std::max<size_t>(n * 2, 8));
    slots_.assign(cap, kNone);
    mask_ = cap - 1;
    uint32_t r = 0;
    distinct_ = insert_rows(0, mask_, [&]() -> uint32_t {
      return r < n ? r++ : kNone;
    });
    return;
  }

  // Partitioned build: scatter row ids into hash-prefix partitions (stable,
  // so within a partition row ids stay increasing), then fill disjoint
  // sub-table regions of the flat slots_ array — in parallel when `pfor` is
  // bound, with a layout independent of the width either way.
  part_count_ = kBuildParts;
  std::vector<size_t> counts(chunks * kBuildParts, 0);
  ForChunks(pfor, n, kBuildGrain, [&](size_t c, size_t b, size_t e) {
    size_t* local = counts.data() + c * kBuildParts;
    for (size_t r = b; r < e; ++r) ++local[hashes_[r] >> kBuildPartShift];
  });
  std::vector<size_t> part_rows_start(kBuildParts + 1, 0);
  for (size_t c = 0; c < chunks; ++c) {
    for (size_t p = 0; p < kBuildParts; ++p) {
      part_rows_start[p + 1] += counts[c * kBuildParts + p];
    }
  }
  for (size_t p = 0; p < kBuildParts; ++p) {
    part_rows_start[p + 1] += part_rows_start[p];
  }
  std::vector<size_t> offs(chunks * kBuildParts);
  for (size_t p = 0; p < kBuildParts; ++p) {
    size_t acc = part_rows_start[p];
    for (size_t c = 0; c < chunks; ++c) {
      offs[c * kBuildParts + p] = acc;
      acc += counts[c * kBuildParts + p];
    }
  }
  std::vector<uint32_t> part_rows(n);
  ForChunks(pfor, n, kBuildGrain, [&](size_t c, size_t b, size_t e) {
    size_t local[kBuildParts];
    std::copy(offs.begin() + c * kBuildParts,
              offs.begin() + (c + 1) * kBuildParts, local);
    for (size_t r = b; r < e; ++r) {
      part_rows[local[hashes_[r] >> kBuildPartShift]++] =
          static_cast<uint32_t>(r);
    }
  });
  // Size each sub-table to its own partition's content (load <= 1/2 holds
  // per region regardless of skew) and lay the regions out back to back.
  part_base_.assign(kBuildParts, 0);
  part_mask_.assign(kBuildParts, 0);
  size_t total_cap = 0;
  for (size_t p = 0; p < kBuildParts; ++p) {
    size_t rows_p = part_rows_start[p + 1] - part_rows_start[p];
    size_t cap = NextPowerOfTwo(std::max<size_t>(rows_p * 2, 8));
    part_base_[p] = total_cap;
    part_mask_[p] = cap - 1;
    total_cap += cap;
  }
  slots_.assign(total_cap, kNone);
  std::vector<size_t> part_distinct(kBuildParts, 0);
  ForChunks(pfor, kBuildParts, 1, [&](size_t, size_t pb, size_t pe) {
    for (size_t p = pb; p < pe; ++p) {
      size_t i = part_rows_start[p];
      const size_t end = part_rows_start[p + 1];
      part_distinct[p] =
          insert_rows(part_base_[p], part_mask_[p], [&]() -> uint32_t {
            return i < end ? part_rows[i++] : kNone;
          });
    }
  });
  for (size_t p = 0; p < kBuildParts; ++p) distinct_ += part_distinct[p];
}

bool RowIndex::RowKeysEqual(uint32_t a, uint32_t b) const {
  for (int c : key_cols_) {
    if (IndexedAt(a, c) != IndexedAt(b, c)) return false;
  }
  return true;
}

template <typename KeyEq>
uint32_t RowIndex::Probe(uint64_t h, KeyEq key_eq) const {
  size_t base = 0;
  uint64_t mask = mask_;
  if (part_count_ > 1) {
    size_t p = h >> kBuildPartShift;
    base = part_base_[p];
    mask = part_mask_[p];
  }
  size_t s = base + (h & mask);
  while (slots_[s] != kNone) {
    uint32_t head = slots_[s];
    if (hashes_[head] == h && key_eq(head)) return head;
    s = base + ((s - base + 1) & mask);
  }
  return kNone;
}

uint32_t RowIndex::Find(std::span<const Value> key) const {
  PQ_DCHECK(key.size() == key_cols_.size(), "RowIndex::Find: key arity");
  if (slots_.empty()) return kNone;
  return Probe(HashRow(key), [&](uint32_t head) {
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      if (IndexedAt(head, key_cols_[i]) != key[i]) return false;
    }
    return true;
  });
}

uint32_t RowIndex::Find(const Relation& probe, size_t probe_row,
                        std::span<const int> probe_cols) const {
  PQ_DCHECK(probe_cols.size() == key_cols_.size(), "RowIndex::Find: key arity");
  if (slots_.empty()) return kNone;
  return Probe(HashRowAt(probe, probe_row, probe_cols), [&](uint32_t head) {
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      if (IndexedAt(head, key_cols_[i]) != probe.At(probe_row, probe_cols[i])) {
        return false;
      }
    }
    return true;
  });
}

void RowIndex::BatchFind(std::span<const Value* const> probe_cols,
                         std::span<const uint32_t> sel, uint32_t* heads,
                         uint64_t* hash_scratch) const {
  PQ_DCHECK(probe_cols.size() == key_cols_.size(),
            "RowIndex::BatchFind: key arity");
  const size_t m = sel.size();
  if (slots_.empty()) {
    std::fill(heads, heads + m, kNone);
    return;
  }
  // Stripe hashing: fold each key column over every selected position
  // before touching a slot — identical fold order to HashRowAt, so the
  // hashes (and therefore the probes) match the scalar path bit for bit.
  for (size_t i = 0; i < m; ++i) hash_scratch[i] = kRowHashSeed;
  for (size_t j = 0; j < probe_cols.size(); ++j) {
    const Value* col = probe_cols[j];
    for (size_t i = 0; i < m; ++i) {
      hash_scratch[i] = MixRowHash(hash_scratch[i], col[sel[i]]);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    const uint32_t row = sel[i];
    heads[i] = Probe(hash_scratch[i], [&](uint32_t head) {
      for (size_t j = 0; j < key_cols_.size(); ++j) {
        if (IndexedAt(head, key_cols_[j]) != probe_cols[j][row]) return false;
      }
      return true;
    });
  }
}

RowHashSet::RowHashSet(size_t arity) : rel_(arity) {
  // Detach the backing relation from the global empty block up front so the
  // AppendRowUnchecked fast path in Insert owns its storage exclusively.
  if (arity > 0) rel_.Reserve(8);
  slots_.assign(16, RowIndex::kNone);
  mask_ = slots_.size() - 1;
}

void RowHashSet::Reserve(size_t rows) {
  size_t cap = NextPowerOfTwo(std::max<size_t>(rows * 2, 16));
  if (cap <= slots_.size()) return;
  if (rel_.arity() > 0) rel_.Reserve(rows);
  hashes_.reserve(rows);
  Rehash(cap);
}

size_t RowHashSet::ProbeSlot(std::span<const Value> row, uint64_t h) const {
  size_t s = h & mask_;
  while (slots_[s] != RowIndex::kNone) {
    uint32_t r = slots_[s];
    if (hashes_[r] == h) {
      auto stored = rel_.Row(r);
      if (std::equal(stored.begin(), stored.end(), row.begin())) return s;
    }
    s = (s + 1) & mask_;
  }
  return s;
}

bool RowHashSet::Insert(std::span<const Value> row) {
  PQ_DCHECK(row.size() == rel_.arity(), "RowHashSet::Insert: arity mismatch");
  uint64_t h = HashRow(row);
  size_t s = ProbeSlot(row, h);
  if (slots_[s] != RowIndex::kNone) return false;  // already present
  uint32_t r = static_cast<uint32_t>(rel_.size());
  // The backing relation is exclusively owned until TakeRelation, so the
  // copy-on-write gate in Relation::Add is pure overhead here.
  if (rel_.arity() == 0) {
    rel_.AddEmptyRow();
  } else {
    rel_.AppendRowUnchecked(row);
  }
  hashes_.push_back(h);
  slots_[s] = r;
  // Load factor capped at 1/2; Reserve(n) sizes the table so that exactly n
  // insertions never trigger this.
  if (rel_.size() * 2 > slots_.size()) Grow();
  return true;
}

bool RowHashSet::Contains(std::span<const Value> row) const {
  PQ_DCHECK(row.size() == rel_.arity(), "RowHashSet::Contains: arity mismatch");
  return slots_[ProbeSlot(row, HashRow(row))] != RowIndex::kNone;
}

void RowHashSet::Grow() { Rehash(slots_.size() * 2); }

void RowHashSet::Rehash(size_t cap) {
  slots_.assign(cap, RowIndex::kNone);
  mask_ = cap - 1;
  for (uint32_t r = 0; r < rel_.size(); ++r) {
    size_t s = hashes_[r] & mask_;
    while (slots_[s] != RowIndex::kNone) s = (s + 1) & mask_;
    slots_[s] = r;
  }
}

}  // namespace paraquery

#include "relational/row_index.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace paraquery {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t HashRowAt(const Relation& rel, size_t row, std::span<const int> cols) {
  uint64_t h = kRowHashSeed;
  for (int c : cols) h = MixRowHash(h, rel.At(row, c));
  return h;
}

}  // namespace

RowIndex::RowIndex(const Relation& rel, std::vector<int> key_cols)
    : rel_(&rel),
      base_(rel.data().data()),
      rel_arity_(rel.arity()),
      key_cols_(std::move(key_cols)) {
  size_t n = rel.size();
  if (n == 0) return;
  hashes_.resize(n);
  next_.assign(n, kNone);
  counts_.assign(n, 0);
  size_t cap = NextPowerOfTwo(std::max<size_t>(n * 2, 8));
  slots_.assign(cap, kNone);
  mask_ = cap - 1;
  // Per-slot chain tail, so same-key rows append in increasing row order.
  // Scratch only; discarded after the build.
  std::vector<uint32_t> tails(cap, kNone);
  for (size_t r = 0; r < n; ++r) {
    uint64_t h = HashRowAt(rel, r, key_cols_);
    hashes_[r] = h;
    size_t s = h & mask_;
    for (;;) {
      uint32_t head = slots_[s];
      if (head == kNone) {
        slots_[s] = static_cast<uint32_t>(r);
        tails[s] = static_cast<uint32_t>(r);
        counts_[r] = 1;
        ++distinct_;
        break;
      }
      if (hashes_[head] == h && RowKeysEqual(head, static_cast<uint32_t>(r))) {
        next_[tails[s]] = static_cast<uint32_t>(r);
        tails[s] = static_cast<uint32_t>(r);
        ++counts_[head];
        break;
      }
      s = (s + 1) & mask_;
    }
  }
}

bool RowIndex::RowKeysEqual(uint32_t a, uint32_t b) const {
  for (int c : key_cols_) {
    if (IndexedAt(a, c) != IndexedAt(b, c)) return false;
  }
  return true;
}

template <typename KeyEq>
uint32_t RowIndex::Probe(uint64_t h, KeyEq key_eq) const {
  size_t s = h & mask_;
  while (slots_[s] != kNone) {
    uint32_t head = slots_[s];
    if (hashes_[head] == h && key_eq(head)) return head;
    s = (s + 1) & mask_;
  }
  return kNone;
}

uint32_t RowIndex::Find(std::span<const Value> key) const {
  PQ_DCHECK(key.size() == key_cols_.size(), "RowIndex::Find: key arity");
  if (slots_.empty()) return kNone;
  return Probe(HashRow(key), [&](uint32_t head) {
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      if (IndexedAt(head, key_cols_[i]) != key[i]) return false;
    }
    return true;
  });
}

uint32_t RowIndex::Find(const Relation& probe, size_t probe_row,
                        std::span<const int> probe_cols) const {
  PQ_DCHECK(probe_cols.size() == key_cols_.size(), "RowIndex::Find: key arity");
  if (slots_.empty()) return kNone;
  return Probe(HashRowAt(probe, probe_row, probe_cols), [&](uint32_t head) {
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      if (IndexedAt(head, key_cols_[i]) != probe.At(probe_row, probe_cols[i])) {
        return false;
      }
    }
    return true;
  });
}

RowHashSet::RowHashSet(size_t arity) : rel_(arity) {
  // Detach the backing relation from the global empty block up front so the
  // AppendRowUnchecked fast path in Insert owns its storage exclusively.
  if (arity > 0) rel_.Reserve(8);
  slots_.assign(16, RowIndex::kNone);
  mask_ = slots_.size() - 1;
}

void RowHashSet::Reserve(size_t rows) {
  size_t cap = NextPowerOfTwo(std::max<size_t>(rows * 2, 16));
  if (cap <= slots_.size()) return;
  if (rel_.arity() > 0) rel_.Reserve(rows);
  hashes_.reserve(rows);
  Rehash(cap);
}

size_t RowHashSet::ProbeSlot(std::span<const Value> row, uint64_t h) const {
  size_t s = h & mask_;
  while (slots_[s] != RowIndex::kNone) {
    uint32_t r = slots_[s];
    if (hashes_[r] == h) {
      auto stored = rel_.Row(r);
      if (std::equal(stored.begin(), stored.end(), row.begin())) return s;
    }
    s = (s + 1) & mask_;
  }
  return s;
}

bool RowHashSet::Insert(std::span<const Value> row) {
  PQ_DCHECK(row.size() == rel_.arity(), "RowHashSet::Insert: arity mismatch");
  uint64_t h = HashRow(row);
  size_t s = ProbeSlot(row, h);
  if (slots_[s] != RowIndex::kNone) return false;  // already present
  uint32_t r = static_cast<uint32_t>(rel_.size());
  // The backing relation is exclusively owned until TakeRelation, so the
  // copy-on-write gate in Relation::Add is pure overhead here.
  if (rel_.arity() == 0) {
    rel_.AddEmptyRow();
  } else {
    rel_.AppendRowUnchecked(row);
  }
  hashes_.push_back(h);
  slots_[s] = r;
  // Load factor capped at 1/2; Reserve(n) sizes the table so that exactly n
  // insertions never trigger this.
  if (rel_.size() * 2 > slots_.size()) Grow();
  return true;
}

bool RowHashSet::Contains(std::span<const Value> row) const {
  PQ_DCHECK(row.size() == rel_.arity(), "RowHashSet::Contains: arity mismatch");
  return slots_[ProbeSlot(row, HashRow(row))] != RowIndex::kNone;
}

void RowHashSet::Grow() { Rehash(slots_.size() * 2); }

void RowHashSet::Rehash(size_t cap) {
  slots_.assign(cap, RowIndex::kNone);
  mask_ = cap - 1;
  for (uint32_t r = 0; r < rel_.size(); ++r) {
    size_t s = hashes_[r] & mask_;
    while (slots_[s] != RowIndex::kNone) s = (s + 1) & mask_;
    slots_[s] = r;
  }
}

}  // namespace paraquery

// Row predicates for selections: conjunctions of atomic column/column and
// column/constant constraints. This is exactly the selection language the
// paper's algorithms need (constants in atoms, repeated variables, the I2
// inequalities, comparison atoms, and Algorithm 1's F-selections).
#ifndef PARAQUERY_RELATIONAL_PREDICATE_H_
#define PARAQUERY_RELATIONAL_PREDICATE_H_

#include <span>
#include <string>
#include <vector>

#include "relational/value.hpp"

namespace paraquery {

/// One atomic constraint over a row.
struct Constraint {
  enum class Kind {
    kEqConst,   // row[lhs] == value
    kNeqConst,  // row[lhs] != value
    kLtConst,   // row[lhs] <  value
    kLeConst,   // row[lhs] <= value
    kGtConst,   // row[lhs] >  value
    kGeConst,   // row[lhs] >= value
    kEqCols,    // row[lhs] == row[rhs]
    kNeqCols,   // row[lhs] != row[rhs]
    kLtCols,    // row[lhs] <  row[rhs]
    kLeCols,    // row[lhs] <= row[rhs]
  };

  Kind kind;
  int lhs = 0;     // column index
  int rhs = 0;     // column index (kind *Cols only)
  Value value = 0; // constant (kind *Const only)

  bool Eval(std::span<const Value> row) const;
  std::string ToString() const;

  static Constraint EqConst(int col, Value v) {
    return {Kind::kEqConst, col, 0, v};
  }
  static Constraint NeqConst(int col, Value v) {
    return {Kind::kNeqConst, col, 0, v};
  }
  static Constraint LtConst(int col, Value v) {
    return {Kind::kLtConst, col, 0, v};
  }
  static Constraint LeConst(int col, Value v) {
    return {Kind::kLeConst, col, 0, v};
  }
  static Constraint GtConst(int col, Value v) {
    return {Kind::kGtConst, col, 0, v};
  }
  static Constraint GeConst(int col, Value v) {
    return {Kind::kGeConst, col, 0, v};
  }
  static Constraint EqCols(int a, int b) { return {Kind::kEqCols, a, b, 0}; }
  static Constraint NeqCols(int a, int b) { return {Kind::kNeqCols, a, b, 0}; }
  static Constraint LtCols(int a, int b) { return {Kind::kLtCols, a, b, 0}; }
  static Constraint LeCols(int a, int b) { return {Kind::kLeCols, a, b, 0}; }
};

/// A conjunction of constraints. An empty predicate accepts every row.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Constraint> cs) : constraints_(std::move(cs)) {}

  void Add(Constraint c) { constraints_.push_back(c); }
  bool empty() const { return constraints_.empty(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// True iff every constraint holds on `row`.
  bool Eval(std::span<const Value> row) const {
    for (const Constraint& c : constraints_) {
      if (!c.Eval(row)) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_PREDICATE_H_

// Attribute-labelled relation: a Relation whose columns carry integer
// attribute ids (in query evaluation these are variable ids). All relational
// algebra in ops.hpp is defined over NamedRelation.
//
// NamedRelation is a cheap view: the rows live in Relation's shared RowBlock,
// so copying a NamedRelation, relabeling its attributes (WithAttrs /
// RenameAttr), and whole-relation aliasing never copy row data — only the
// small attribute vector. Mutation through any alias triggers Relation's
// copy-on-write, so views stay independent.
#ifndef PARAQUERY_RELATIONAL_NAMED_RELATION_H_
#define PARAQUERY_RELATIONAL_NAMED_RELATION_H_

#include <string>
#include <vector>

#include "relational/relation.hpp"

namespace paraquery {

/// Attribute id; semantics (query variable, primed hash copy, ...) are owned
/// by the caller. Ids within one NamedRelation are distinct.
using AttrId = int;

/// A relation together with its ordered list of distinct attribute ids.
class NamedRelation {
 public:
  /// Empty 0-ary relation (no attributes, no rows: Boolean FALSE).
  NamedRelation() : rel_(0) {}

  /// Empty relation with the given attribute list.
  explicit NamedRelation(std::vector<AttrId> attrs);

  /// Wraps an existing relation; `attrs.size()` must equal `rel.arity()`.
  NamedRelation(std::vector<AttrId> attrs, Relation rel);

  const std::vector<AttrId>& attrs() const { return attrs_; }
  Relation& rel() { return rel_; }
  const Relation& rel() const { return rel_; }

  size_t arity() const { return attrs_.size(); }
  size_t size() const { return rel_.size(); }
  bool empty() const { return rel_.empty(); }

  /// Column index of `attr`, or -1 if absent. O(arity).
  int ColumnOf(AttrId attr) const;
  bool HasAttr(AttrId attr) const { return ColumnOf(attr) >= 0; }

  /// Replaces attribute ids via parallel old->new lists (for renaming).
  /// Touches only the attribute vector; rows stay shared.
  void RenameAttr(AttrId from, AttrId to);

  /// Returns a view of this relation under a different attribute list
  /// (`attrs.size()` must equal arity()). The view shares row storage with
  /// this relation — a whole-schema relabeling with no row copies.
  NamedRelation WithAttrs(std::vector<AttrId> attrs) const;

  /// True if both hold the same attribute set and, after aligning column
  /// order, the same set of rows.
  bool EquivalentTo(const NamedRelation& other) const;

  std::string ToString() const;

 private:
  std::vector<AttrId> attrs_;
  Relation rel_;
};

/// Returns a NamedRelation with one row of zero arity (Boolean TRUE).
NamedRelation BooleanTrue();

/// Returns the 0-ary empty relation (Boolean FALSE).
NamedRelation BooleanFalse();

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_NAMED_RELATION_H_

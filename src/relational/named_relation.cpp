#include "relational/named_relation.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/status.hpp"

namespace paraquery {

namespace {
void CheckDistinct(const std::vector<AttrId>& attrs) {
  std::set<AttrId> seen(attrs.begin(), attrs.end());
  PQ_CHECK(seen.size() == attrs.size(),
           "NamedRelation attributes must be distinct");
}
}  // namespace

NamedRelation::NamedRelation(std::vector<AttrId> attrs)
    : attrs_(std::move(attrs)), rel_(attrs_.size()) {
  CheckDistinct(attrs_);
}

NamedRelation::NamedRelation(std::vector<AttrId> attrs, Relation rel)
    : attrs_(std::move(attrs)), rel_(std::move(rel)) {
  CheckDistinct(attrs_);
  PQ_CHECK(attrs_.size() == rel_.arity(),
           "NamedRelation: attribute count != relation arity");
}

int NamedRelation::ColumnOf(AttrId attr) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

void NamedRelation::RenameAttr(AttrId from, AttrId to) {
  int col = ColumnOf(from);
  PQ_CHECK(col >= 0, "RenameAttr: attribute not present");
  PQ_CHECK(ColumnOf(to) < 0, "RenameAttr: target attribute already present");
  attrs_[col] = to;
}

NamedRelation NamedRelation::WithAttrs(std::vector<AttrId> attrs) const {
  PQ_CHECK(attrs.size() == arity(),
           "WithAttrs: attribute count != relation arity");
  // Copying rel_ shares the underlying RowBlock: no row data moves.
  return NamedRelation{std::move(attrs), rel_};
}

bool NamedRelation::EquivalentTo(const NamedRelation& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  std::vector<int> perm(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    int col = other.ColumnOf(attrs_[i]);
    if (col < 0) return false;
    perm[i] = col;
  }
  // Re-order other's columns to match ours, then compare as sets.
  Relation reordered(attrs_.size());
  for (size_t r = 0; r < other.size(); ++r) {
    ValueVec row(attrs_.size());
    for (size_t i = 0; i < attrs_.size(); ++i) {
      row[i] = other.rel().At(r, perm[i]);
    }
    reordered.Add(row);
  }
  return rel_.EqualsAsSet(reordered);
}

std::string NamedRelation::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) oss << ",";
    oss << attrs_[i];
  }
  oss << "]" << rel_.ToString();
  return oss.str();
}

NamedRelation BooleanTrue() {
  NamedRelation out{std::vector<AttrId>{}};
  out.rel().AddEmptyRow();
  return out;
}

NamedRelation BooleanFalse() { return NamedRelation{std::vector<AttrId>{}}; }

}  // namespace paraquery

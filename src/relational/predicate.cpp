#include "relational/predicate.hpp"

#include <sstream>

namespace paraquery {

bool Constraint::Eval(std::span<const Value> row) const {
  switch (kind) {
    case Kind::kEqConst:
      return row[lhs] == value;
    case Kind::kNeqConst:
      return row[lhs] != value;
    case Kind::kLtConst:
      return row[lhs] < value;
    case Kind::kLeConst:
      return row[lhs] <= value;
    case Kind::kGtConst:
      return row[lhs] > value;
    case Kind::kGeConst:
      return row[lhs] >= value;
    case Kind::kEqCols:
      return row[lhs] == row[rhs];
    case Kind::kNeqCols:
      return row[lhs] != row[rhs];
    case Kind::kLtCols:
      return row[lhs] < row[rhs];
    case Kind::kLeCols:
      return row[lhs] <= row[rhs];
  }
  return false;
}

std::string Constraint::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kEqConst:
      oss << "$" << lhs << "=" << value;
      break;
    case Kind::kNeqConst:
      oss << "$" << lhs << "!=" << value;
      break;
    case Kind::kLtConst:
      oss << "$" << lhs << "<" << value;
      break;
    case Kind::kLeConst:
      oss << "$" << lhs << "<=" << value;
      break;
    case Kind::kGtConst:
      oss << "$" << lhs << ">" << value;
      break;
    case Kind::kGeConst:
      oss << "$" << lhs << ">=" << value;
      break;
    case Kind::kEqCols:
      oss << "$" << lhs << "=$" << rhs;
      break;
    case Kind::kNeqCols:
      oss << "$" << lhs << "!=$" << rhs;
      break;
    case Kind::kLtCols:
      oss << "$" << lhs << "<$" << rhs;
      break;
    case Kind::kLeCols:
      oss << "$" << lhs << "<=$" << rhs;
      break;
  }
  return oss.str();
}

std::string Predicate::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) oss << " AND ";
    oss << constraints_[i].ToString();
  }
  if (constraints_.empty()) oss << "TRUE";
  return oss.str();
}

}  // namespace paraquery

// Catalog metadata: relation names and arities (and optional column names).
#ifndef PARAQUERY_RELATIONAL_SCHEMA_H_
#define PARAQUERY_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

namespace paraquery {

/// Schema of one stored relation.
struct RelationSchema {
  std::string name;
  size_t arity = 0;
  /// Optional human-readable column names; empty or arity-sized.
  std::vector<std::string> columns;

  std::string ToString() const;
};

/// Schema of a database: the list of relation schemas. The paper
/// distinguishes fixed-schema from variable-schema parametrizations
/// (Figure 1); DatabaseSchema is the object those statements quantify over.
struct DatabaseSchema {
  std::vector<RelationSchema> relations;

  /// Largest arity over all relations (0 for an empty schema). The
  /// bounded-arity condition in the paper's Datalog discussion is a bound on
  /// this quantity.
  size_t MaxArity() const;

  std::string ToString() const;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_SCHEMA_H_

#include "relational/storage_cache_stats.hpp"

namespace paraquery {

StorageCacheStats& GlobalStorageCacheStats() {
  static StorageCacheStats stats;
  return stats;
}

}  // namespace paraquery

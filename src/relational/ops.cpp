#include "relational/ops.hpp"

#include <algorithm>

#include "relational/row_index.hpp"
#include "relational/value.hpp"

namespace paraquery {

namespace {

// Positions of the common attributes, as (left column, right column) pairs in
// left-attribute order.
std::vector<std::pair<int, int>> CommonColumns(const NamedRelation& left,
                                               const NamedRelation& right) {
  std::vector<std::pair<int, int>> out;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) out.emplace_back(static_cast<int>(i), rc);
  }
  return out;
}

// All column positions of `rel` (identity key: the full row).
std::vector<int> AllColumns(const Relation& rel) {
  std::vector<int> cols(rel.arity());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  return cols;
}

}  // namespace

std::vector<int> JoinKeyColumns(const NamedRelation& left,
                                const NamedRelation& right) {
  std::vector<int> rcols;
  for (auto [lc, rc] : CommonColumns(left, right)) rcols.push_back(rc);
  return rcols;
}

NamedRelation Select(const NamedRelation& in, const Predicate& pred) {
  // Identity selection: every row passes, so return a storage-sharing view.
  if (pred.empty()) return in;
  NamedRelation out{in.attrs()};
  out.rel().Reserve(in.size());
  for (size_t r = 0; r < in.size(); ++r) {
    auto row = in.rel().Row(r);
    if (pred.Eval(row)) out.rel().Add(row);
  }
  return out;
}

NamedRelation Project(const NamedRelation& in, const std::vector<AttrId>& attrs,
                      bool dedup) {
  // No-op projection (same attributes, same order): return a view sharing the
  // input's row storage. HashDedup only copies if duplicates actually exist.
  if (attrs == in.attrs()) {
    NamedRelation out = in;
    if (dedup) out.rel().HashDedup();
    return out;
  }
  std::vector<int> cols(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    int c = in.ColumnOf(attrs[i]);
    PQ_CHECK(c >= 0, "Project: attribute not present in input");
    cols[i] = c;
  }
  NamedRelation out{attrs};
  out.rel().Reserve(in.size());
  ValueVec row(attrs.size());
  for (size_t r = 0; r < in.size(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) row[i] = in.rel().At(r, cols[i]);
    out.rel().Add(row);
  }
  if (dedup) out.rel().HashDedup();
  return out;
}

Result<NamedRelation> NaturalJoin(const NamedRelation& left,
                                  const NamedRelation& right,
                                  const JoinOptions& options) {
  RowIndex index(right.rel(), JoinKeyColumns(left, right));
  return NaturalJoin(left, right, index, options);
}

Result<NamedRelation> NaturalJoin(const NamedRelation& left,
                                  const NamedRelation& right,
                                  const RowIndex& right_index,
                                  const JoinOptions& options) {
  // The index may have been built over any view sharing `right`'s row
  // storage (e.g. the Datalog EDB cache's canonical materialization probed
  // through a relabeled view); key columns are positional, so storage
  // identity plus column equality is the full validity condition.
  PQ_DCHECK((right.arity() == 0 ||
             right_index.rel().SharesStorageWith(right.rel())) &&
                right_index.key_cols() == JoinKeyColumns(left, right),
            "NaturalJoin: index does not match the join's key columns");
  auto common = CommonColumns(left, right);
  std::vector<int> lcols;
  for (auto [lc, rc] : common) lcols.push_back(lc);
  // Output schema: all of left, then right-only columns.
  std::vector<AttrId> out_attrs = left.attrs();
  std::vector<int> right_extra;  // right columns not in left
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (!left.HasAttr(right.attrs()[i])) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  size_t larity = left.arity();
  size_t out_arity = out_attrs.size();

  // Fast path: no filter, no row limit — stream matches straight into a flat
  // row-major buffer, copying the left prefix once per probed row.
  if (options.post_filter.empty() && options.max_output_rows == 0 &&
      out_arity > 0) {
    // Probe pass: remember each left row's chain head and size the output
    // exactly, so the emit pass is pure pointer writes into one allocation.
    size_t nl = left.size();
    std::vector<uint32_t> first(nl);
    size_t total = 0;
    for (size_t lr = 0; lr < nl; ++lr) {
      uint32_t rr = right_index.Find(left.rel(), lr, lcols);
      first[lr] = rr;
      if (rr != RowIndex::kNone) total += right_index.MatchCount(rr);
    }
    std::vector<Value> out_data(total * out_arity);
    Value* dst = out_data.data();
    const std::vector<Value>& ldata = left.rel().data();
    const std::vector<Value>& rdata = right.rel().data();
    size_t rarity = right.arity();
    for (size_t lr = 0; lr < nl; ++lr) {
      uint32_t rr = first[lr];
      if (rr == RowIndex::kNone) continue;
      const Value* lrow = ldata.data() + lr * larity;
      for (; rr != RowIndex::kNone; rr = right_index.Next(rr)) {
        for (size_t i = 0; i < larity; ++i) *dst++ = lrow[i];
        const Value* rrow = rdata.data() + static_cast<size_t>(rr) * rarity;
        for (int c : right_extra) *dst++ = rrow[c];
      }
    }
    return NamedRelation{std::move(out_attrs),
                         Relation(out_arity, std::move(out_data))};
  }

  NamedRelation out{out_attrs};
  ValueVec row(out_arity);
  uint64_t emitted = 0;
  for (size_t lr = 0; lr < left.size(); ++lr) {
    for (uint32_t rr = right_index.Find(left.rel(), lr, lcols);
         rr != RowIndex::kNone; rr = right_index.Next(rr)) {
      for (size_t i = 0; i < larity; ++i) row[i] = left.rel().At(lr, i);
      for (size_t i = 0; i < right_extra.size(); ++i) {
        row[larity + i] = right.rel().At(rr, right_extra[i]);
      }
      if (!options.post_filter.Eval(row)) continue;
      if (options.max_output_rows != 0 && emitted >= options.max_output_rows) {
        return Status::ResourceExhausted(internal::StrCat(
            "NaturalJoin output exceeds limit of ", options.max_output_rows,
            " rows"));
      }
      out.rel().Add(row);
      ++emitted;
    }
  }
  return out;
}

NamedRelation Semijoin(const NamedRelation& left, const NamedRelation& right) {
  auto common = CommonColumns(left, right);
  std::vector<int> lcols, rcols;
  for (auto [lc, rc] : common) {
    lcols.push_back(lc);
    rcols.push_back(rc);
  }
  if (common.empty()) {
    // Degenerate semijoin: keep left iff right is nonempty (zero-copy).
    return right.empty() ? NamedRelation{left.attrs()} : left;
  }
  RowIndex index(right.rel(), std::move(rcols));
  size_t nl = left.size();
  std::vector<uint32_t> keep;
  keep.reserve(nl);
  for (size_t lr = 0; lr < nl; ++lr) {
    if (index.Contains(left.rel(), lr, lcols)) {
      keep.push_back(static_cast<uint32_t>(lr));
    }
  }
  // Every row survived: the result IS left — share its storage.
  if (keep.size() == nl) return left;
  // Emit survivors into one exactly-sized flat buffer.
  size_t arity = left.arity();
  std::vector<Value> out_data(keep.size() * arity);
  Value* dst = out_data.data();
  const Value* src = left.rel().data().data();
  for (uint32_t lr : keep) {
    const Value* row = src + static_cast<size_t>(lr) * arity;
    for (size_t i = 0; i < arity; ++i) *dst++ = row[i];
  }
  return NamedRelation{left.attrs(), Relation(arity, std::move(out_data))};
}

namespace {
// Aligns `right` rows to `left`'s attribute order; both must have the same
// attribute set.
Relation AlignTo(const NamedRelation& left, const NamedRelation& right) {
  PQ_CHECK(left.attrs().size() == right.attrs().size(),
           "set operation requires identical attribute sets");
  std::vector<int> perm(left.attrs().size());
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int c = right.ColumnOf(left.attrs()[i]);
    PQ_CHECK(c >= 0, "set operation requires identical attribute sets");
    perm[i] = c;
  }
  Relation out(left.arity());
  ValueVec row(left.arity());
  for (size_t r = 0; r < right.size(); ++r) {
    for (size_t i = 0; i < perm.size(); ++i) row[i] = right.rel().At(r, perm[i]);
    out.Add(row);
  }
  return out;
}
}  // namespace

NamedRelation UnionSet(const NamedRelation& left, const NamedRelation& right) {
  if (left.arity() == 0) {
    // Zero-ary: nonempty iff either side nonempty.
    return (left.empty() && right.empty()) ? BooleanFalse() : BooleanTrue();
  }
  Relation aligned = AlignTo(left, right);
  RowHashSet merged(left.arity());
  merged.Reserve(left.size() + aligned.size());
  for (size_t r = 0; r < left.size(); ++r) merged.Insert(left.rel().Row(r));
  for (size_t r = 0; r < aligned.size(); ++r) merged.Insert(aligned.Row(r));
  return NamedRelation{left.attrs(), merged.TakeRelation()};
}

NamedRelation Difference(const NamedRelation& left, const NamedRelation& right) {
  Relation aligned = AlignTo(left, right);
  if (left.arity() == 0) {
    if (!left.empty() && aligned.empty()) return BooleanTrue();
    return BooleanFalse();
  }
  RowIndex index(aligned, AllColumns(aligned));
  std::vector<int> all = AllColumns(left.rel());
  RowHashSet kept(left.arity());
  kept.Reserve(left.size());
  for (size_t r = 0; r < left.size(); ++r) {
    if (!index.Contains(left.rel(), r, all)) kept.Insert(left.rel().Row(r));
  }
  return NamedRelation{left.attrs(), kept.TakeRelation()};
}

NamedRelation Intersect(const NamedRelation& left, const NamedRelation& right) {
  Relation aligned = AlignTo(left, right);
  if (left.arity() == 0) {
    if (!left.empty() && !aligned.empty()) return BooleanTrue();
    return BooleanFalse();
  }
  RowIndex index(aligned, AllColumns(aligned));
  std::vector<int> all = AllColumns(left.rel());
  RowHashSet kept(left.arity());
  kept.Reserve(std::min(left.size(), aligned.size()));
  for (size_t r = 0; r < left.size(); ++r) {
    if (index.Contains(left.rel(), r, all)) kept.Insert(left.rel().Row(r));
  }
  return NamedRelation{left.attrs(), kept.TakeRelation()};
}

Result<NamedRelation> CrossProduct(const NamedRelation& left,
                                   const NamedRelation& right,
                                   uint64_t max_output_rows) {
  for (AttrId a : right.attrs()) {
    PQ_CHECK(!left.HasAttr(a), "CrossProduct requires disjoint attributes");
  }
  JoinOptions options;
  options.max_output_rows = max_output_rows;
  return NaturalJoin(left, right, options);
}

Result<NamedRelation> DomainPower(const std::vector<AttrId>& attrs,
                                  const std::vector<Value>& domain,
                                  uint64_t max_rows) {
  uint64_t rows = 1;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (domain.empty() || rows > max_rows / domain.size() + 1) {
      rows = max_rows + 1;
      break;
    }
    rows *= domain.size();
  }
  if (max_rows != 0 && rows > max_rows) {
    return Status::ResourceExhausted(internal::StrCat(
        "DomainPower of |D|=", domain.size(), " over ", attrs.size(),
        " attributes exceeds limit of ", max_rows, " rows"));
  }
  NamedRelation out{attrs};
  if (attrs.empty()) {
    out.rel().AddEmptyRow();
    return out;
  }
  if (domain.empty()) return out;
  ValueVec row(attrs.size(), domain[0]);
  std::vector<size_t> idx(attrs.size(), 0);
  for (;;) {
    out.rel().Add(row);
    // Odometer increment.
    size_t pos = attrs.size();
    while (pos > 0) {
      --pos;
      if (++idx[pos] < domain.size()) {
        row[pos] = domain[idx[pos]];
        break;
      }
      idx[pos] = 0;
      row[pos] = domain[0];
      if (pos == 0) return out;
    }
  }
}

Result<NamedRelation> Complement(const NamedRelation& in,
                                 const std::vector<Value>& domain,
                                 uint64_t max_rows) {
  PQ_ASSIGN_OR_RETURN(NamedRelation all, DomainPower(in.attrs(), domain,
                                                     max_rows));
  return Difference(all, in);
}

}  // namespace paraquery

#include "relational/ops.hpp"

#include <algorithm>
#include <unordered_map>

#include "relational/value.hpp"

namespace paraquery {

namespace {

// Positions of the common attributes, as (left column, right column) pairs in
// left-attribute order.
std::vector<std::pair<int, int>> CommonColumns(const NamedRelation& left,
                                               const NamedRelation& right) {
  std::vector<std::pair<int, int>> out;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) out.emplace_back(static_cast<int>(i), rc);
  }
  return out;
}

uint64_t HashKey(const Relation& rel, size_t row, const std::vector<int>& cols) {
  uint64_t h = 0x243f6a8885a308d3ull;
  for (int c : cols) h = (h ^ HashValue(rel.At(row, c))) * 0x100000001b3ull;
  return h;
}

bool KeysEqual(const Relation& a, size_t ra, const std::vector<int>& ca,
               const Relation& b, size_t rb, const std::vector<int>& cb) {
  for (size_t i = 0; i < ca.size(); ++i) {
    if (a.At(ra, ca[i]) != b.At(rb, cb[i])) return false;
  }
  return true;
}

// Hash index: key hash -> row indices (collisions resolved by the caller via
// KeysEqual). Values verified on probe, so hash collisions are benign.
std::unordered_map<uint64_t, std::vector<uint32_t>> BuildIndex(
    const Relation& rel, const std::vector<int>& cols) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  index.reserve(rel.size() * 2);
  for (size_t r = 0; r < rel.size(); ++r) {
    index[HashKey(rel, r, cols)].push_back(static_cast<uint32_t>(r));
  }
  return index;
}

}  // namespace

NamedRelation Select(const NamedRelation& in, const Predicate& pred) {
  NamedRelation out{in.attrs()};
  out.rel().Reserve(in.size() / 2);
  for (size_t r = 0; r < in.size(); ++r) {
    auto row = in.rel().Row(r);
    if (pred.Eval(row)) out.rel().Add(row);
  }
  return out;
}

NamedRelation Project(const NamedRelation& in, const std::vector<AttrId>& attrs,
                      bool dedup) {
  std::vector<int> cols(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    int c = in.ColumnOf(attrs[i]);
    PQ_CHECK(c >= 0, "Project: attribute not present in input");
    cols[i] = c;
  }
  NamedRelation out{attrs};
  out.rel().Reserve(in.size());
  ValueVec row(attrs.size());
  for (size_t r = 0; r < in.size(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) row[i] = in.rel().At(r, cols[i]);
    out.rel().Add(row);
  }
  if (dedup) out.rel().SortAndDedup();
  return out;
}

Result<NamedRelation> NaturalJoin(const NamedRelation& left,
                                  const NamedRelation& right,
                                  const JoinOptions& options) {
  auto common = CommonColumns(left, right);
  std::vector<int> lcols, rcols;
  for (auto [lc, rc] : common) {
    lcols.push_back(lc);
    rcols.push_back(rc);
  }
  // Output schema: all of left, then right-only columns.
  std::vector<AttrId> out_attrs = left.attrs();
  std::vector<int> right_extra;  // right columns not in left
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (!left.HasAttr(right.attrs()[i])) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  NamedRelation out{out_attrs};

  auto index = BuildIndex(right.rel(), rcols);
  ValueVec row(out_attrs.size());
  uint64_t emitted = 0;
  for (size_t lr = 0; lr < left.size(); ++lr) {
    auto it = index.find(HashKey(left.rel(), lr, lcols));
    if (it == index.end()) continue;
    for (uint32_t rr : it->second) {
      if (!KeysEqual(left.rel(), lr, lcols, right.rel(), rr, rcols)) continue;
      for (size_t i = 0; i < left.arity(); ++i) row[i] = left.rel().At(lr, i);
      for (size_t i = 0; i < right_extra.size(); ++i) {
        row[left.arity() + i] = right.rel().At(rr, right_extra[i]);
      }
      if (!options.post_filter.Eval(row)) continue;
      if (options.max_output_rows != 0 && emitted >= options.max_output_rows) {
        return Status::ResourceExhausted(internal::StrCat(
            "NaturalJoin output exceeds limit of ", options.max_output_rows,
            " rows"));
      }
      out.rel().Add(row);
      ++emitted;
    }
  }
  return out;
}

NamedRelation Semijoin(const NamedRelation& left, const NamedRelation& right) {
  auto common = CommonColumns(left, right);
  std::vector<int> lcols, rcols;
  for (auto [lc, rc] : common) {
    lcols.push_back(lc);
    rcols.push_back(rc);
  }
  NamedRelation out{left.attrs()};
  if (common.empty()) {
    // Degenerate semijoin: keep left iff right is nonempty.
    if (!right.empty()) out = left;
    return out;
  }
  auto index = BuildIndex(right.rel(), rcols);
  for (size_t lr = 0; lr < left.size(); ++lr) {
    auto it = index.find(HashKey(left.rel(), lr, lcols));
    if (it == index.end()) continue;
    bool matched = false;
    for (uint32_t rr : it->second) {
      if (KeysEqual(left.rel(), lr, lcols, right.rel(), rr, rcols)) {
        matched = true;
        break;
      }
    }
    if (matched) out.rel().Add(left.rel().Row(lr));
  }
  return out;
}

namespace {
// Aligns `right` rows to `left`'s attribute order; both must have the same
// attribute set.
Relation AlignTo(const NamedRelation& left, const NamedRelation& right) {
  PQ_CHECK(left.attrs().size() == right.attrs().size(),
           "set operation requires identical attribute sets");
  std::vector<int> perm(left.attrs().size());
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int c = right.ColumnOf(left.attrs()[i]);
    PQ_CHECK(c >= 0, "set operation requires identical attribute sets");
    perm[i] = c;
  }
  Relation out(left.arity());
  ValueVec row(left.arity());
  for (size_t r = 0; r < right.size(); ++r) {
    for (size_t i = 0; i < perm.size(); ++i) row[i] = right.rel().At(r, perm[i]);
    out.Add(row);
  }
  return out;
}
}  // namespace

NamedRelation UnionSet(const NamedRelation& left, const NamedRelation& right) {
  Relation merged = left.rel();
  Relation aligned = AlignTo(left, right);
  for (size_t r = 0; r < aligned.size(); ++r) merged.Add(aligned.Row(r));
  if (left.arity() == 0) {
    // Zero-ary: nonempty iff either side nonempty.
    NamedRelation out = (left.empty() && right.empty()) ? BooleanFalse()
                                                        : BooleanTrue();
    return out;
  }
  merged.SortAndDedup();
  return NamedRelation{left.attrs(), std::move(merged)};
}

NamedRelation Difference(const NamedRelation& left, const NamedRelation& right) {
  Relation aligned = AlignTo(left, right);
  aligned.SortAndDedup();
  NamedRelation out{left.attrs()};
  if (left.arity() == 0) {
    if (!left.empty() && aligned.empty()) return BooleanTrue();
    return BooleanFalse();
  }
  for (size_t r = 0; r < left.size(); ++r) {
    if (!aligned.Contains(left.rel().Row(r))) out.rel().Add(left.rel().Row(r));
  }
  out.rel().SortAndDedup();
  return out;
}

NamedRelation Intersect(const NamedRelation& left, const NamedRelation& right) {
  Relation aligned = AlignTo(left, right);
  aligned.SortAndDedup();
  NamedRelation out{left.attrs()};
  if (left.arity() == 0) {
    if (!left.empty() && !aligned.empty()) return BooleanTrue();
    return BooleanFalse();
  }
  Relation left_sorted = left.rel();
  left_sorted.SortAndDedup();
  for (size_t r = 0; r < left_sorted.size(); ++r) {
    if (aligned.Contains(left_sorted.Row(r))) out.rel().Add(left_sorted.Row(r));
  }
  return out;
}

Result<NamedRelation> CrossProduct(const NamedRelation& left,
                                   const NamedRelation& right,
                                   uint64_t max_output_rows) {
  for (AttrId a : right.attrs()) {
    PQ_CHECK(!left.HasAttr(a), "CrossProduct requires disjoint attributes");
  }
  JoinOptions options;
  options.max_output_rows = max_output_rows;
  return NaturalJoin(left, right, options);
}

Result<NamedRelation> DomainPower(const std::vector<AttrId>& attrs,
                                  const std::vector<Value>& domain,
                                  uint64_t max_rows) {
  uint64_t rows = 1;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (domain.empty() || rows > max_rows / domain.size() + 1) {
      rows = max_rows + 1;
      break;
    }
    rows *= domain.size();
  }
  if (max_rows != 0 && rows > max_rows) {
    return Status::ResourceExhausted(internal::StrCat(
        "DomainPower of |D|=", domain.size(), " over ", attrs.size(),
        " attributes exceeds limit of ", max_rows, " rows"));
  }
  NamedRelation out{attrs};
  if (attrs.empty()) {
    out.rel().AddEmptyRow();
    return out;
  }
  if (domain.empty()) return out;
  ValueVec row(attrs.size(), domain[0]);
  std::vector<size_t> idx(attrs.size(), 0);
  for (;;) {
    out.rel().Add(row);
    // Odometer increment.
    size_t pos = attrs.size();
    while (pos > 0) {
      --pos;
      if (++idx[pos] < domain.size()) {
        row[pos] = domain[idx[pos]];
        break;
      }
      idx[pos] = 0;
      row[pos] = domain[0];
      if (pos == 0) return out;
    }
  }
}

Result<NamedRelation> Complement(const NamedRelation& in,
                                 const std::vector<Value>& domain,
                                 uint64_t max_rows) {
  PQ_ASSIGN_OR_RETURN(NamedRelation all, DomainPower(in.attrs(), domain,
                                                     max_rows));
  return Difference(all, in);
}

}  // namespace paraquery

#include "relational/vectorized.hpp"

namespace paraquery {
namespace vec {

namespace {

// Runs `pred(position)` over a dense range, appending survivors.
template <typename Pred>
inline void DenseLoop(Pred pred, size_t begin, size_t end,
                      std::vector<SelIdx>& out) {
  for (size_t r = begin; r < end; ++r) {
    if (pred(r)) out.push_back(static_cast<SelIdx>(r));
  }
}

// Runs `pred(position)` over an existing selection, compacting survivors to
// the front without reordering.
template <typename Pred>
inline size_t SelLoop(Pred pred, SelIdx* sel, size_t n) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    SelIdx r = sel[i];
    sel[k] = r;
    k += pred(static_cast<size_t>(r)) ? 1 : 0;
  }
  return k;
}

// Dispatches the Kind switch exactly once, handing `fn` a position predicate
// bound to the right stripe(s)/constant.
template <typename Fn>
inline auto WithPredicate(const Constraint& c, const Value* const* cols,
                          Fn&& fn) {
  const Value* a = cols[c.lhs];
  switch (c.kind) {
    case Constraint::Kind::kEqConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] == v; });
    }
    case Constraint::Kind::kNeqConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] != v; });
    }
    case Constraint::Kind::kLtConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] < v; });
    }
    case Constraint::Kind::kLeConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] <= v; });
    }
    case Constraint::Kind::kGtConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] > v; });
    }
    case Constraint::Kind::kGeConst: {
      Value v = c.value;
      return fn([a, v](size_t r) { return a[r] >= v; });
    }
    case Constraint::Kind::kEqCols: {
      const Value* b = cols[c.rhs];
      return fn([a, b](size_t r) { return a[r] == b[r]; });
    }
    case Constraint::Kind::kNeqCols: {
      const Value* b = cols[c.rhs];
      return fn([a, b](size_t r) { return a[r] != b[r]; });
    }
    case Constraint::Kind::kLtCols: {
      const Value* b = cols[c.rhs];
      return fn([a, b](size_t r) { return a[r] < b[r]; });
    }
    case Constraint::Kind::kLeCols: {
      const Value* b = cols[c.rhs];
      return fn([a, b](size_t r) { return a[r] <= b[r]; });
    }
  }
  // Unreachable: the switch covers every Kind.
  return fn([](size_t) { return false; });
}

}  // namespace

void FilterDense(const Constraint& c, const Value* const* cols, size_t begin,
                 size_t end, std::vector<SelIdx>& out) {
  WithPredicate(c, cols,
                [&](auto pred) { DenseLoop(pred, begin, end, out); });
}

size_t FilterSel(const Constraint& c, const Value* const* cols, SelIdx* sel,
                 size_t n) {
  return WithPredicate(c, cols,
                       [&](auto pred) { return SelLoop(pred, sel, n); });
}

void FilterRange(const std::vector<Constraint>& cs, const Value* const* cols,
                 size_t begin, size_t end, std::vector<SelIdx>& out) {
  out.clear();
  if (cs.empty()) {
    out.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) out.push_back(static_cast<SelIdx>(r));
    return;
  }
  FilterDense(cs[0], cols, begin, end, out);
  for (size_t i = 1; i < cs.size() && !out.empty(); ++i) {
    out.resize(FilterSel(cs[i], cols, out.data(), out.size()));
  }
}

void Gather(const Value* col, const SelIdx* sel, size_t n, Value* out) {
  for (size_t i = 0; i < n; ++i) out[i] = col[sel[i]];
}

}  // namespace vec
}  // namespace paraquery

#include "relational/database.hpp"

#include <algorithm>
#include <set>

namespace paraquery {

Database::Database(const Database& o)
    : dict_(o.dict_),
      generation_(std::make_unique<uint64_t>(*o.generation_)),
      relations_(o.relations_),
      names_(o.names_),
      index_(o.index_) {
  // Relation's copy constructor deliberately drops mutation bindings (a
  // copy is a view); a copied DATABASE owns its relations, so rebind them
  // to the copy's own counter.
  for (Relation& r : relations_) r.BindMutationCounter(generation_.get());
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  dict_ = o.dict_;
  // Destroy the old relations BEFORE replacing the counter box: they are
  // bound to it, and element-wise copy-assignment would Bump() through the
  // freed pointer. Fresh elements copy-construct unbound and are rebound
  // below. The new stamp moves past BOTH histories so plan-cache entries
  // stamped under either old value can never match the new content.
  relations_.clear();
  generation_ =
      std::make_unique<uint64_t>(std::max(*generation_, *o.generation_) + 1);
  relations_ = o.relations_;
  names_ = o.names_;
  index_ = o.index_;
  for (Relation& r : relations_) r.BindMutationCounter(generation_.get());
  return *this;
}

Database::Database(Database&& o)
    : dict_(std::move(o.dict_)),
      generation_(std::move(o.generation_)),
      relations_(std::move(o.relations_)),
      names_(std::move(o.names_)),
      index_(std::move(o.index_)) {
  // Leave the source usable: an empty database with its own fresh counter
  // (the old all-value Database had a safe moved-from state; keep that).
  o.generation_ = std::make_unique<uint64_t>(1);
}

Database& Database::operator=(Database&& o) {
  if (this == &o) return *this;
  dict_ = std::move(o.dict_);
  // Drop our relations before our counter box: Relation destructors never
  // touch their binding, but keeping the teardown ordered costs nothing.
  uint64_t old_generation = *generation_;
  relations_.clear();
  generation_ = std::move(o.generation_);
  relations_ = std::move(o.relations_);
  names_ = std::move(o.names_);
  index_ = std::move(o.index_);
  o.generation_ = std::make_unique<uint64_t>(1);
  // Like copy-assignment: move past BOTH histories, or a plan cache stamped
  // with this database's old generation could coincide with the adopted
  // counter and serve plans compiled over the replaced contents. Written
  // through the adopted box so the moved-in relations stay bound to it.
  *generation_ = std::max(old_generation, *generation_) + 1;
  return *this;
}

Result<RelId> Database::AddRelation(const std::string& name, size_t arity) {
  if (index_.count(name) != 0) {
    return Status::AlreadyExists(
        internal::StrCat("relation '", name, "' already exists"));
  }
  RelId id = static_cast<RelId>(relations_.size());
  ++*generation_;
  relations_.emplace_back(arity);
  // Stored relations report every content mutation to the database
  // generation — even through retained Relation& handles. Relation moves
  // deliberately do NOT carry the binding (an escaping relation must not
  // point into this database's lifetime), so vector growth strands it on
  // relocated elements: rebind them all (relation counts are tiny).
  for (Relation& r : relations_) r.BindMutationCounter(generation_.get());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<RelId> Database::FindRelation(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(internal::StrCat("relation '", name, "' not found"));
  }
  return it->second;
}

bool Database::HasRelation(const std::string& name) const {
  return index_.count(name) != 0;
}

DatabaseSchema Database::GetSchema() const {
  DatabaseSchema schema;
  for (size_t i = 0; i < relations_.size(); ++i) {
    schema.relations.push_back({names_[i], relations_[i].arity(), {}});
  }
  return schema;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> dom;
  for (const Relation& rel : relations_) {
    for (Value v : rel.data()) dom.insert(v);
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const Relation& rel : relations_) total += rel.size();
  return total;
}

size_t Database::SizeMeasure() const {
  size_t total = relations_.size();
  for (const Relation& rel : relations_) {
    total += rel.size() * std::max<size_t>(1, rel.arity());
  }
  return total;
}

}  // namespace paraquery

#include "relational/database.hpp"

#include <algorithm>
#include <set>

namespace paraquery {

Result<RelId> Database::AddRelation(const std::string& name, size_t arity) {
  if (index_.count(name) != 0) {
    return Status::AlreadyExists(
        internal::StrCat("relation '", name, "' already exists"));
  }
  RelId id = static_cast<RelId>(relations_.size());
  relations_.emplace_back(arity);
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<RelId> Database::FindRelation(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(internal::StrCat("relation '", name, "' not found"));
  }
  return it->second;
}

bool Database::HasRelation(const std::string& name) const {
  return index_.count(name) != 0;
}

DatabaseSchema Database::GetSchema() const {
  DatabaseSchema schema;
  for (size_t i = 0; i < relations_.size(); ++i) {
    schema.relations.push_back({names_[i], relations_[i].arity(), {}});
  }
  return schema;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> dom;
  for (const Relation& rel : relations_) {
    for (Value v : rel.data()) dom.insert(v);
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const Relation& rel : relations_) total += rel.size();
  return total;
}

size_t Database::SizeMeasure() const {
  size_t total = relations_.size();
  for (const Relation& rel : relations_) {
    total += rel.size() * std::max<size_t>(1, rel.arity());
  }
  return total;
}

}  // namespace paraquery

#include "relational/database.hpp"

#include <algorithm>
#include <set>

namespace paraquery {

Database::Database(const Database& o)
    : dict_(o.dict_),
      generation_(std::make_unique<uint64_t>(*o.generation_)),
      relations_(o.relations_),
      rel_stamps_(o.rel_stamps_),
      names_(o.names_),
      index_(o.index_) {
  // Relation's copy constructor deliberately drops mutation bindings (a
  // copy is a view); a copied DATABASE owns its relations, so rebind them
  // to the copy's own counter and stamp slots. The copied stamps stay
  // valid: the copy's clock starts at the source's value.
  RebindAll();
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  dict_ = o.dict_;
  // Destroy the old relations BEFORE replacing the counter box: they are
  // bound to it, and element-wise copy-assignment would Bump() through the
  // freed pointer. Fresh elements copy-construct unbound and are rebound
  // below. The new stamp moves past BOTH histories so plan-cache entries
  // stamped under either old value can never match the new content.
  relations_.clear();
  generation_ =
      std::make_unique<uint64_t>(std::max(*generation_, *o.generation_) + 1);
  relations_ = o.relations_;
  rel_stamps_ = o.rel_stamps_;
  names_ = o.names_;
  index_ = o.index_;
  // Every relation's content was (potentially) replaced, and the source's
  // stamps came from a different clock: re-stamp them all past both
  // histories so no (id, stamp) pair from either database can match.
  for (uint64_t& stamp : rel_stamps_) stamp = ++*generation_;
  RebindAll();
  return *this;
}

Database::Database(Database&& o)
    : dict_(std::move(o.dict_)),
      generation_(std::move(o.generation_)),
      relations_(std::move(o.relations_)),
      rel_stamps_(std::move(o.rel_stamps_)),
      names_(std::move(o.names_)),
      index_(std::move(o.index_)) {
  // Leave the source usable: an empty database with its own fresh counter
  // (the old all-value Database had a safe moved-from state; keep that).
  o.generation_ = std::make_unique<uint64_t>(1);
  o.rel_stamps_.clear();
  // Relation moves drop bindings and deque moves are not guaranteed to
  // preserve element addresses: rebind explicitly. Stamps stay valid (same
  // clock traveled with the box).
  RebindAll();
}

Database& Database::operator=(Database&& o) {
  if (this == &o) return *this;
  dict_ = std::move(o.dict_);
  // Drop our relations before our counter box: Relation destructors never
  // touch their binding, but keeping the teardown ordered costs nothing.
  uint64_t old_generation = *generation_;
  relations_.clear();
  generation_ = std::move(o.generation_);
  relations_ = std::move(o.relations_);
  rel_stamps_ = std::move(o.rel_stamps_);
  names_ = std::move(o.names_);
  index_ = std::move(o.index_);
  o.generation_ = std::make_unique<uint64_t>(1);
  o.rel_stamps_.clear();
  // Like copy-assignment: move past BOTH histories, or a plan cache stamped
  // with this database's old generation could coincide with the adopted
  // counter and serve plans compiled over the replaced contents. Written
  // through the adopted box so the moved-in relations stay bound to it.
  *generation_ = std::max(old_generation, *generation_) + 1;
  // Re-stamp: the adopted stamps were drawn from the adopted clock, but
  // THIS database's old (id, stamp) pairs also came from values ≤ our old
  // generation — stamps from either history must never match again.
  for (uint64_t& stamp : rel_stamps_) stamp = ++*generation_;
  RebindAll();
  return *this;
}

void Database::RebindAll() {
  for (size_t i = 0; i < relations_.size(); ++i) {
    relations_[i].BindMutationCounter(generation_.get(), &rel_stamps_[i]);
  }
}

Result<RelId> Database::AddRelation(const std::string& name, size_t arity) {
  if (index_.count(name) != 0) {
    return Status::AlreadyExists(
        internal::StrCat("relation '", name, "' already exists"));
  }
  RelId id = static_cast<RelId>(relations_.size());
  ++*generation_;
  relations_.emplace_back(arity);
  rel_stamps_.push_back(*generation_);
  // Stored relations report every content mutation to the database
  // generation — even through retained Relation& handles. Relation moves
  // deliberately do NOT carry the binding (an escaping relation must not
  // point into this database's lifetime), so vector growth strands it on
  // relocated elements: rebind them all (relation counts are tiny).
  RebindAll();
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<RelId> Database::FindRelation(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(internal::StrCat("relation '", name, "' not found"));
  }
  return it->second;
}

bool Database::HasRelation(const std::string& name) const {
  return index_.count(name) != 0;
}

DatabaseSchema Database::GetSchema() const {
  DatabaseSchema schema;
  for (size_t i = 0; i < relations_.size(); ++i) {
    schema.relations.push_back({names_[i], relations_[i].arity(), {}});
  }
  return schema;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> dom;
  for (const Relation& rel : relations_) {
    for (Value v : rel.data()) dom.insert(v);
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const Relation& rel : relations_) total += rel.size();
  return total;
}

size_t Database::SizeMeasure() const {
  size_t total = relations_.size();
  for (const Relation& rel : relations_) {
    total += rel.size() * std::max<size_t>(1, rel.arity());
  }
  return total;
}

}  // namespace paraquery

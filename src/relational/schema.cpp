#include "relational/schema.hpp"

#include <sstream>

namespace paraquery {

std::string RelationSchema::ToString() const {
  std::ostringstream oss;
  oss << name << "/" << arity;
  if (!columns.empty()) {
    oss << "(";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) oss << ",";
      oss << columns[i];
    }
    oss << ")";
  }
  return oss.str();
}

size_t DatabaseSchema::MaxArity() const {
  size_t max_arity = 0;
  for (const auto& r : relations) max_arity = std::max(max_arity, r.arity);
  return max_arity;
}

std::string DatabaseSchema::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << relations[i].ToString();
  }
  return oss.str();
}

}  // namespace paraquery

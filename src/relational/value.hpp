// Scalar value representation.
//
// All database values are 64-bit integers. String data is supported through
// per-database dictionary interning (see dictionary.hpp): a string column
// stores the interned codes, and the Dictionary maps codes back to strings at
// the edges. This keeps the hot paths (joins, selections, hashing) branch-free
// over a single POD type, which is the standard design in analytic engines.
#ifndef PARAQUERY_RELATIONAL_VALUE_H_
#define PARAQUERY_RELATIONAL_VALUE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace paraquery {

/// A database value: either a plain integer or a dictionary code.
using Value = int64_t;

/// A materialized tuple (row) of values.
using ValueVec = std::vector<Value>;

/// 64-bit mixing hash for a single value (SplitMix64 finalizer).
inline uint64_t HashValue(Value v) {
  uint64_t z = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seed and fold step of the row-fragment hash. Exposed so callers hashing
/// scattered columns (e.g. RowIndex) fold values incrementally yet stay
/// byte-identical to HashRow over the materialized key.
inline constexpr uint64_t kRowHashSeed = 0x243f6a8885a308d3ull;
inline uint64_t MixRowHash(uint64_t h, Value v) {
  return (h ^ HashValue(v)) * 0x100000001b3ull;
}

/// Order-dependent hash of a row fragment (for join keys).
inline uint64_t HashRow(std::span<const Value> row) {
  uint64_t h = kRowHashSeed;
  for (Value v : row) h = MixRowHash(h, v);
  return h;
}

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_VALUE_H_

// CSV import/export for relations: integer cells are stored directly,
// anything else is interned through the database dictionary. This is the
// data-on-disk edge of the library (examples, the shell tool, user data).
#ifndef PARAQUERY_RELATIONAL_CSV_H_
#define PARAQUERY_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Parses CSV text into a new relation `name` of `db`. The arity is taken
/// from the first row; all rows must agree. Empty lines and lines starting
/// with '#' are skipped. Cells are trimmed; purely numeric cells (optional
/// leading '-') become integer values, all others are dictionary-interned.
/// Numeric cells that overflow Value or fall into the dictionary's reserved
/// code range (>= Dictionary::kCodeBase) are interned as strings instead, so
/// loading never aborts and stored integers stay disjoint from codes.
/// Fails with AlreadyExists if the relation exists, InvalidArgument on
/// ragged rows.
Result<RelId> LoadCsv(Database* db, const std::string& name,
                      std::string_view csv_text);

/// Reads a whole file and delegates to LoadCsv.
Result<RelId> LoadCsvFile(Database* db, const std::string& name,
                          const std::string& path);

/// Parses `cell` as a plain integer value under the loader's admission rule:
/// returns false (caller should intern the cell as a string) when it is not
/// an integer, overflows Value, or falls in the dictionary's reserved code
/// range. Shared by LoadCsv and the shell's .insert command.
bool ParseIntegerCell(std::string_view cell, Value* out);

/// Writes `rel` as CSV; values that are dictionary codes are exported as
/// their strings when `use_dict` is set, everything else as integers. Codes
/// live in a reserved range disjoint from loader-admitted integers, so a
/// genuine integer cell can never be misprinted as a dictionary string.
void WriteCsv(const Database& db, RelId rel, std::ostream* out,
              bool use_dict = false);

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_CSV_H_

// CSV import/export for relations: integer cells are stored directly,
// anything else is interned through the database dictionary. This is the
// data-on-disk edge of the library (examples, the shell tool, user data).
#ifndef PARAQUERY_RELATIONAL_CSV_H_
#define PARAQUERY_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Parses CSV text into a new relation `name` of `db`. The arity is taken
/// from the first row; all rows must agree. Empty lines and lines starting
/// with '#' are skipped. Cells are trimmed; purely numeric cells (optional
/// leading '-') become integer values, all others are dictionary-interned.
/// Fails with AlreadyExists if the relation exists, InvalidArgument on
/// ragged rows.
Result<RelId> LoadCsv(Database* db, const std::string& name,
                      std::string_view csv_text);

/// Reads a whole file and delegates to LoadCsv.
Result<RelId> LoadCsvFile(Database* db, const std::string& name,
                          const std::string& path);

/// Writes `rel` as CSV; values that are dictionary codes are exported as
/// their strings when `use_dict` is set (codes outside the dictionary are
/// written as integers).
void WriteCsv(const Database& db, RelId rel, std::ostream* out,
              bool use_dict = false);

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_CSV_H_

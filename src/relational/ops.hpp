// Relational algebra over NamedRelation: selection, projection, natural join,
// semijoin, union, difference, intersection, cross product, active-domain
// complement. These are the operators the paper's algorithms are stated in
// (S_j = π_{U_j} σ_{F_j}(R_{i_j}), P_u := σ_F(P_u ⋈ π_{Y_j∩Y_u}(P_j)), ...).
#ifndef PARAQUERY_RELATIONAL_OPS_H_
#define PARAQUERY_RELATIONAL_OPS_H_

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"

namespace paraquery {

class RowIndex;

/// σ: rows of `in` satisfying `pred` (columns indexed by position in `in`).
/// An empty predicate returns a zero-copy view of `in` (shared row storage).
NamedRelation Select(const NamedRelation& in, const Predicate& pred);

/// π: keeps `attrs` (each must exist in `in`) in the given order.
/// Deduplicates the result when `dedup` is true (set semantics).
/// A no-op projection (attrs == in.attrs()) returns a zero-copy view.
NamedRelation Project(const NamedRelation& in, const std::vector<AttrId>& attrs,
                      bool dedup = true);

/// Options for joins.
struct JoinOptions {
  /// Applied to each output row before it is materialized; column indices
  /// refer to the OUTPUT schema (left attrs then right-only attrs).
  Predicate post_filter;
  /// Abort (ResourceExhausted) if the output would exceed this many rows.
  /// 0 means unlimited.
  uint64_t max_output_rows = 0;
};

/// ⋈: natural join on the common attributes. Output schema is `left.attrs()`
/// followed by the attributes of `right` not present in `left`.
Result<NamedRelation> NaturalJoin(const NamedRelation& left,
                                  const NamedRelation& right,
                                  const JoinOptions& options = {});

/// Key columns of `right` that NaturalJoin(left, right) probes: for each left
/// attribute present in right, the matching right column, in left-attribute
/// order. Use to prebuild a RowIndex for the overload below.
std::vector<int> JoinKeyColumns(const NamedRelation& left,
                                const NamedRelation& right);

/// NaturalJoin against a caller-owned index over `right.rel()`, for reuse of
/// one build across many probes (e.g. fixpoint iterations over a static EDB
/// relation). `right_index` must index `right.rel()` — or any Relation view
/// sharing its row storage, such as an attribute-relabeled view of the same
/// cached materialization — on exactly JoinKeyColumns(left, right).
Result<NamedRelation> NaturalJoin(const NamedRelation& left,
                                  const NamedRelation& right,
                                  const RowIndex& right_index,
                                  const JoinOptions& options = {});

/// ⋉: rows of `left` that join with at least one row of `right` on the
/// common attributes. Output schema equals `left.attrs()`.
NamedRelation Semijoin(const NamedRelation& left, const NamedRelation& right);

/// ∪ over identical attribute sets (column order of `right` is aligned to
/// `left`). Result is deduplicated.
NamedRelation UnionSet(const NamedRelation& left, const NamedRelation& right);

/// Set difference left − right over identical attribute sets.
NamedRelation Difference(const NamedRelation& left, const NamedRelation& right);

/// Set intersection over identical attribute sets.
NamedRelation Intersect(const NamedRelation& left, const NamedRelation& right);

/// × over disjoint attribute sets.
Result<NamedRelation> CrossProduct(const NamedRelation& left,
                                   const NamedRelation& right,
                                   uint64_t max_output_rows = 0);

/// All |domain|^|attrs| rows over `attrs` (used by active-domain complement).
/// Fails with ResourceExhausted if the result exceeds `max_rows`.
Result<NamedRelation> DomainPower(const std::vector<AttrId>& attrs,
                                  const std::vector<Value>& domain,
                                  uint64_t max_rows);

/// Active-domain complement: DomainPower(attrs, domain) − in.
Result<NamedRelation> Complement(const NamedRelation& in,
                                 const std::vector<Value>& domain,
                                 uint64_t max_rows);

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_OPS_H_

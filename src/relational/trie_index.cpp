#include "relational/trie_index.hpp"

#include <algorithm>
#include <numeric>

#include "common/status.hpp"
#include "relational/storage_cache_stats.hpp"

namespace paraquery {

namespace {
/// Rows per gather chunk; matches the runtime's default morsel size.
constexpr size_t kGatherGrain = 4096;
}  // namespace

std::shared_ptr<const TrieIndex> TrieIndex::Build(const Relation& rel,
                                                  const std::vector<int>& cols,
                                                  const ParallelForFn& pfor) {
  PQ_CHECK(!cols.empty(), "TrieIndex requires at least one column");
  for (int c : cols) {
    PQ_CHECK(c >= 0 && static_cast<size_t>(c) < rel.arity(),
             "TrieIndex column out of range");
  }
  auto trie = std::shared_ptr<TrieIndex>(new TrieIndex());
  trie->cols_ = cols;
  const size_t n = rel.size();
  const size_t k = cols.size();
  if (n == 0) return trie;

  // Gather the projection row-major (parallel chunks write disjoint
  // pre-sized slices, so the buffer is width-independent).
  std::vector<Value> proj(n * k);
  const Value* base = rel.data().data();
  const size_t arity = rel.arity();
  ForChunks(pfor, n, kGatherGrain, [&](size_t, size_t b, size_t e) {
    for (size_t r = b; r < e; ++r) {
      const Value* row = base + r * arity;
      Value* out = proj.data() + r * k;
      for (size_t j = 0; j < k; ++j) out[j] = row[cols[j]];
    }
  });

  // Sort an index permutation, then compact distinct tuples in order.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* p = proj.data();
  std::sort(order.begin(), order.end(), [p, k](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(p + size_t{a} * k,
                                        p + (size_t{a} + 1) * k,
                                        p + size_t{b} * k,
                                        p + (size_t{b} + 1) * k);
  });
  std::vector<Value> out;
  out.reserve(proj.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* t = p + size_t{order[i]} * k;
    if (i > 0 && std::equal(t, t + k, p + size_t{order[i - 1]} * k)) continue;
    out.insert(out.end(), t, t + k);
  }
  out.shrink_to_fit();
  trie->rows_ = out.size() / k;
  trie->tuples_.values = std::move(out);
  trie->tuples_.Account();
  return trie;
}

size_t TrieIndex::SeekGeq(size_t lo, size_t hi, size_t level, Value v) const {
  const size_t k = cols_.size();
  const Value* p = tuples_.values.data() + level;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (p[mid * k] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t TrieIndex::GroupEnd(size_t lo, size_t hi, size_t level, Value v) const {
  const size_t k = cols_.size();
  const Value* p = tuples_.values.data() + level;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (p[mid * k] <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::shared_ptr<const TrieIndex> Relation::TrieView(
    const std::vector<int>& cols, const ParallelForFn& pfor) const {
  // Empty relations all share the one global block; never cache on it (the
  // build below is trivially cheap there anyway).
  if (arity_ == 0 || empty()) return TrieIndex::Build(*this, cols, pfor);
  StorageCacheStats& cache_stats = GlobalStorageCacheStats();
  {
    std::lock_guard<std::mutex> lock(block_->stats_mutex);
    for (const auto& [key, trie] : block_->tries) {
      if (key == cols) {
        cache_stats.trie_hits.fetch_add(1, std::memory_order_relaxed);
        return trie;
      }
    }
  }
  // Build outside the lock: concurrent views may race to build the same
  // trie; the loser's copy is discarded by the re-check below.
  std::shared_ptr<const TrieIndex> built = TrieIndex::Build(*this, cols, pfor);
  cache_stats.trie_builds.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(block_->stats_mutex);
  for (const auto& [key, trie] : block_->tries) {
    if (key == cols) return trie;
  }
  block_->tries.emplace_back(cols, built);
  return built;
}

}  // namespace paraquery

// String interning: maps strings to Value codes in a reserved range and back.
#ifndef PARAQUERY_RELATIONAL_DICTIONARY_H_
#define PARAQUERY_RELATIONAL_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/value.hpp"

namespace paraquery {

/// Bidirectional string <-> code mapping owned by a Database.
///
/// Codes are assigned densely from kCodeBase (2^62) upward, so the code range
/// is disjoint from any integer a loader admits as a plain value: a stored
/// Value is a dictionary code iff Contains(v), and consumers like
/// WriteCsv(use_dict=true) can render codes as strings without ever
/// misreading a genuine integer cell that happens to equal a code. Loaders
/// must keep integers out of the reserved range (LoadCsv interns such
/// out-of-range literals as strings instead).
class Dictionary {
 public:
  /// First interned code; everything at or above it is reserved for codes.
  static constexpr Value kCodeBase = Value{1} << 62;

  /// Sentinel returned by Find for never-interned strings (below kCodeBase,
  /// so it can never collide with a real code).
  static constexpr Value kNotFound = -1;

  /// True if `v` lies in the reserved code range [kCodeBase, +inf), whether
  /// or not a string was actually interned at that slot. Loaders use this to
  /// keep plain integers disjoint from codes.
  static constexpr bool InCodeRange(Value v) { return v >= kCodeBase; }

  /// Returns the code for `s`, interning it on first use.
  Value Intern(std::string_view s);

  /// Returns the code for `s` or kNotFound if it was never interned.
  Value Find(std::string_view s) const;

  /// Returns the string for `code`; code must be a valid interned code.
  const std::string& Lookup(Value code) const;

  /// True if `code` names an interned string.
  bool Contains(Value code) const {
    return code >= kCodeBase &&
           static_cast<size_t>(code - kCodeBase) < strings_.size();
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_DICTIONARY_H_

// String interning: maps strings to dense Value codes and back.
#ifndef PARAQUERY_RELATIONAL_DICTIONARY_H_
#define PARAQUERY_RELATIONAL_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/value.hpp"

namespace paraquery {

/// Bidirectional string <-> code mapping owned by a Database.
///
/// Codes are assigned densely from 0. Columns holding interned strings and
/// columns holding raw integers share the Value type; which interpretation
/// applies is schema-level knowledge held by the caller.
class Dictionary {
 public:
  /// Returns the code for `s`, interning it on first use.
  Value Intern(std::string_view s);

  /// Returns the code for `s` or -1 if it was never interned.
  Value Find(std::string_view s) const;

  /// Returns the string for `code`; code must be a valid interned code.
  const std::string& Lookup(Value code) const;

  /// True if `code` names an interned string.
  bool Contains(Value code) const {
    return code >= 0 && static_cast<size_t>(code) < strings_.size();
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_DICTIONARY_H_

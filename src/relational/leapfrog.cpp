#include "relational/leapfrog.hpp"

#include <algorithm>
#include <atomic>

#include "obs/trace.hpp"

namespace paraquery {

namespace {

/// One participant of a level's intersection: the input index and the trie
/// level its column sits at.
struct Participant {
  int input;
  int trie_level;
};

/// Recursive enumeration state for one (possibly chunked) span of the join.
struct Walker {
  const std::vector<LeapfrogInput>* inputs;
  const std::vector<std::vector<Participant>>* parts;  // per global level
  size_t num_attrs;
  /// Current row range per input, narrowed one trie level per participating
  /// global level.
  std::vector<std::pair<size_t, size_t>> range;
  std::vector<Value> binding;
  std::vector<Value> out;

  const QueryContext* qc = nullptr;
  uint64_t max_output_rows = 0;
  std::atomic<uint64_t>* rows_emitted = nullptr;  // shared across chunks
  std::atomic<bool>* stop = nullptr;              // shared abort flag
  uint64_t steps = 0;
  Status status = Status::OK();

  /// Polled every ~1k intersection steps: cooperative abort (deadline,
  /// cancellation, memory budget) and cross-chunk stop propagation.
  bool ShouldStop() {
    if (stop->load(std::memory_order_relaxed)) return true;
    if (qc != nullptr && qc->Aborted()) {
      status = qc->Check();
      stop->store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool Emit() {
    if (max_output_rows != 0 &&
        rows_emitted->fetch_add(1, std::memory_order_relaxed) + 1 >
            max_output_rows) {
      status = Status::ResourceExhausted(internal::StrCat(
          "operator output exceeds limit of ", max_output_rows, " rows"));
      stop->store(true, std::memory_order_relaxed);
      return false;
    }
    out.insert(out.end(), binding.begin(), binding.end());
    return true;
  }

  /// Enumerates all bindings of attributes [level, num_attrs) consistent
  /// with the current ranges. Returns false on abort (status/stop set).
  /// Invariant: `range` is left exactly as found, on every exit path — a
  /// sibling subtree at an outer level reads range[i] for inputs that do
  /// NOT participate at that outer level, so any narrowing this frame (or
  /// a deeper one) leaves behind would silently drop its answers.
  bool Recurse(size_t level) {
    if (level == num_attrs) return Emit();
    const std::vector<Participant>& ps = (*parts)[level];
    const size_t m = ps.size();
    // Local cursor positions within each participant's current range.
    size_t pos[16];
    size_t end[16];
    size_t orig[16];
    const TrieIndex* trie[16];
    int tl[16];
    for (size_t j = 0; j < m; ++j) {
      const Participant& p = ps[j];
      trie[j] = (*inputs)[p.input].trie.get();
      tl[j] = p.trie_level;
      orig[j] = range[p.input].first;
      pos[j] = orig[j];
      end[j] = range[p.input].second;
      // Nothing narrowed yet: the plain return keeps the invariant.
      if (pos[j] == end[j]) return true;  // empty intersection
    }
    auto leave = [&](bool ok) {
      for (size_t j = 0; j < m; ++j) {
        range[ps[j].input] = {orig[j], end[j]};
      }
      return ok;
    };
    for (;;) {
      if ((++steps & 1023) == 0 && ShouldStop()) return leave(false);
      Value maxv = trie[0]->At(pos[0], tl[0]);
      bool equal = true;
      for (size_t j = 1; j < m; ++j) {
        Value v = trie[j]->At(pos[j], tl[j]);
        if (v != maxv) equal = false;
        if (v > maxv) maxv = v;
      }
      if (!equal) {
        // Leapfrog: seek every lagging iterator to the current max.
        for (size_t j = 0; j < m; ++j) {
          if (trie[j]->At(pos[j], tl[j]) < maxv) {
            pos[j] = trie[j]->SeekGeq(pos[j], end[j], tl[j], maxv);
            if (pos[j] == end[j]) return leave(true);  // exhausted: done
          }
        }
        continue;
      }
      // All iterators agree on maxv: open the trie edge (narrow each
      // participant's range to its maxv group) and recurse.
      size_t group_end[16];
      for (size_t j = 0; j < m; ++j) {
        group_end[j] = trie[j]->GroupEnd(pos[j], end[j], tl[j], maxv);
        range[ps[j].input] = {pos[j], group_end[j]};
      }
      binding[level] = maxv;
      if (!Recurse(level + 1)) return leave(false);
      for (size_t j = 0; j < m; ++j) {
        pos[j] = group_end[j];
        if (pos[j] == end[j]) return leave(true);
      }
    }
  }
};

}  // namespace

Result<Relation> LeapfrogJoin(const std::vector<LeapfrogInput>& inputs,
                              size_t num_attrs, const RuntimeOptions& runtime,
                              uint64_t max_output_rows, size_t* morsels) {
  if (num_attrs == 0 || inputs.empty()) {
    return Status::Internal("leapfrog join requires attributes and inputs");
  }
  std::vector<std::vector<Participant>> parts(num_attrs);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const LeapfrogInput& in = inputs[i];
    if (in.trie == nullptr ||
        in.attr_of_level.size() != in.trie->arity()) {
      return Status::Internal("leapfrog input trie/level mapping mismatch");
    }
    int prev = -1;
    for (size_t l = 0; l < in.attr_of_level.size(); ++l) {
      int a = in.attr_of_level[l];
      if (a <= prev || a >= static_cast<int>(num_attrs)) {
        return Status::Internal("leapfrog level mapping is not increasing");
      }
      prev = a;
      parts[a].push_back({static_cast<int>(i), static_cast<int>(l)});
    }
    if (in.trie->rows() == 0) return Relation(num_attrs);  // empty join
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    if (parts[a].empty()) {
      return Status::Internal("leapfrog attribute covered by no input");
    }
    if (parts[a].size() > 16) {
      return Status::Internal("leapfrog level has too many participants");
    }
  }

  std::atomic<uint64_t> rows_emitted{0};
  std::atomic<bool> stop{false};
  auto make_walker = [&]() {
    Walker w;
    w.inputs = &inputs;
    w.parts = &parts;
    w.num_attrs = num_attrs;
    w.range.reserve(inputs.size());
    for (const LeapfrogInput& in : inputs) {
      w.range.emplace_back(0, in.trie->rows());
    }
    w.binding.assign(num_attrs, 0);
    w.qc = runtime.query_ctx;
    w.max_output_rows = max_output_rows;
    w.rows_emitted = &rows_emitted;
    w.stop = &stop;
    return w;
  };

  // Partition the level-0 value groups of the smallest level-0 participant:
  // the chunks' value spans are disjoint and ascending, so per-chunk outputs
  // concatenated in chunk order reproduce the sequential enumeration.
  const Participant split = *std::min_element(
      parts[0].begin(), parts[0].end(), [&](const Participant& a,
                                            const Participant& b) {
        return inputs[a.input].trie->rows() < inputs[b.input].trie->rows();
      });
  const TrieIndex& strie = *inputs[split.input].trie;
  std::vector<size_t> group_start;
  if (runtime.parallel()) {
    size_t r = 0, n = strie.rows();
    while (r < n) {
      group_start.push_back(r);
      r = strie.GroupEnd(r, n, 0, strie.At(r, 0));
    }
    group_start.push_back(n);
  }
  const size_t groups = group_start.empty() ? 0 : group_start.size() - 1;
  if (!runtime.parallel() || groups < 4) {
    TraceSpan span(runtime.tracer, "leapfrog");
    Walker w = make_walker();
    bool completed = w.Recurse(0);
    PQ_RETURN_NOT_OK(w.status);
    if (!completed) {
      PQ_RETURN_NOT_OK(runtime.CheckInterrupt());
      return Status::Internal("leapfrog join stopped without a status");
    }
    if (w.out.empty()) return Relation(num_attrs);
    return Relation(num_attrs, std::move(w.out));
  }

  const size_t width = runtime.scheduler->threads();
  const size_t grain =
      std::max<size_t>(1, (groups + width * 4 - 1) / (width * 4));
  const size_t chunks = ChunkCount(groups, grain);
  std::vector<Walker> walkers;
  walkers.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) walkers.push_back(make_walker());
  ParallelChunks(runtime.scheduler, groups, grain,
                 [&](size_t c, size_t gb, size_t ge) {
                   Walker& w = walkers[c];
                   if (w.stop->load(std::memory_order_relaxed)) return;
                   TraceSpan span(runtime.tracer, "leapfrog.chunk");
                   w.range[split.input] = {group_start[gb], group_start[ge]};
                   w.Recurse(0);
                 });
  if (morsels != nullptr) *morsels = chunks;
  for (const Walker& w : walkers) {
    PQ_RETURN_NOT_OK(w.status);  // first failing chunk, in chunk order
  }
  PQ_RETURN_NOT_OK(runtime.CheckInterrupt());
  size_t total = 0;
  for (const Walker& w : walkers) total += w.out.size();
  if (total == 0) return Relation(num_attrs);
  std::vector<Value> out;
  out.reserve(total);
  for (Walker& w : walkers) {
    out.insert(out.end(), w.out.begin(), w.out.end());
  }
  return Relation(num_attrs, std::move(out));
}

}  // namespace paraquery

// Database instance: a catalog of named relations plus a string dictionary.
// This is the object d = [D; R_1, ..., R_m] of the paper.
#ifndef PARAQUERY_RELATIONAL_DATABASE_H_
#define PARAQUERY_RELATIONAL_DATABASE_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "relational/dictionary.hpp"
#include "relational/relation.hpp"
#include "relational/schema.hpp"

namespace paraquery {

/// Dense id of a relation within its Database.
using RelId = int;

/// In-memory relational database instance.
class Database {
 public:
  Database() = default;
  // The generation counter lives behind a stable heap pointer the stored
  // relations are bound to, so moving a Database keeps the bindings valid
  // (they travel with the box). Copies get their own counter and rebind
  // their relation copies to it; a moved-from Database is reset to a valid
  // empty database (fresh counter), never a null one.
  Database(const Database& o);
  Database& operator=(const Database& o);
  Database(Database&& o);
  Database& operator=(Database&& o);

  /// Creates an empty relation; fails with AlreadyExists on duplicate name.
  Result<RelId> AddRelation(const std::string& name, size_t arity);

  /// Relation id for `name`, or NotFound.
  Result<RelId> FindRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const;

  size_t relation_count() const { return relations_.size(); }
  /// Stored relations carry the database's generation counter bound as
  /// their mutation hook (Relation::BindMutationCounter), so any content
  /// mutation — including through a RETAINED `Relation&` handle — bumps
  /// generation() and invalidates every cached artifact keyed by it.
  Relation& relation(RelId id) { return relations_[id]; }
  const Relation& relation(RelId id) const { return relations_[id]; }
  const std::string& relation_name(RelId id) const { return names_[id]; }
  size_t relation_arity(RelId id) const { return relations_[id].arity(); }

  /// The database schema (names + arities).
  DatabaseSchema GetSchema() const;

  /// Mutable dictionary for interning string values.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Sorted distinct values appearing anywhere in the database (the active
  /// domain adom(d), used for first-order evaluation and color coding).
  std::vector<Value> ActiveDomain() const;

  /// Total number of stored tuples, summed over relations.
  size_t TotalTuples() const;

  /// Size measure n = |d|: total number of value slots (tuples × arity),
  /// plus one per relation so empty databases have nonzero size.
  size_t SizeMeasure() const;

  /// Monotone data-version stamp: bumped by AddRelation and by every
  /// content mutation of a stored relation (the relations carry it as
  /// their bound mutation counter, so mutations through retained handles
  /// count too). Query results are a pure function of (query, generation),
  /// which is what lets plan caches key compiled artifacts by it.
  /// Dictionary interning does NOT bump: new string codes never change
  /// existing rows.
  uint64_t generation() const { return *generation_; }

  /// Per-relation version stamp: the generation() value at which relation
  /// `id` last changed (its creation counts). Because every stamp is drawn
  /// from the same monotone clock, (id, stamp) pairs uniquely identify a
  /// relation state — this is what lets the PlanCache invalidate only the
  /// plans that actually read a mutated relation.
  uint64_t relation_generation(RelId id) const { return rel_stamps_[id]; }

 private:
  /// Rebinds every stored relation to this database's clock and its own
  /// stamp slot (after any operation that may have relocated elements).
  void RebindAll();

  Dictionary dict_;
  std::unique_ptr<uint64_t> generation_ = std::make_unique<uint64_t>(1);
  std::vector<Relation> relations_;
  /// Stamp slot per relation; deque for stable element addresses (relations
  /// bind raw pointers to their slot).
  std::deque<uint64_t> rel_stamps_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, RelId> index_;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_DATABASE_H_

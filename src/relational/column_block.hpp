// Column-major storage mirror for vectorized execution.
//
// Values are already dictionary codes (strings intern through Dictionary
// into dense Value codes), so a column of codes IS the dictionary-encoded
// representation: one contiguous `std::vector<Value>` per attribute. A
// ColumnarTable is a read-only transpose of a Relation's row-major RowBlock,
// built once per mutation epoch and cached on the RowBlock itself
// (Relation::ColumnarView) so every storage-sharing view — relabels,
// aliases, snapshot pins — shares one mirror, exactly like the per-block
// distinct-count stat cache. Any mutation of the relation drops the cache
// along with the stats; a copy-on-write clone starts without one.
//
// ColumnBlocks are individually ref-counted so a projection can share a
// column subset of another table without copying (the columnar analogue of
// RowBlock view sharing), and each block settles its capacity bytes against
// the thread-current MemoryAccountant, mirroring RowBlock's budget
// accounting: the mirror is charged to the query that builds it and
// released when the owning relation mutates or dies.
#ifndef PARAQUERY_RELATIONAL_COLUMN_BLOCK_H_
#define PARAQUERY_RELATIONAL_COLUMN_BLOCK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/query_context.hpp"
#include "relational/relation.hpp"
#include "relational/value.hpp"

namespace paraquery {

/// One immutable column of Values. Byte-accounted like RowBlock: charges
/// the thread-current accountant at construction, releases on destruction.
struct ColumnBlock {
  std::vector<Value> values;

  std::shared_ptr<MemoryAccountant> accountant;
  size_t charged_bytes = 0;

  ColumnBlock() : accountant(MemoryAccountant::Current()) {}
  explicit ColumnBlock(std::vector<Value> v)
      : values(std::move(v)), accountant(MemoryAccountant::Current()) {
    Account();
  }
  ColumnBlock(const ColumnBlock&) = delete;
  ColumnBlock& operator=(const ColumnBlock&) = delete;
  ~ColumnBlock() {
    if (accountant) accountant->Charge(-static_cast<int64_t>(charged_bytes));
  }

  /// Brings the charged byte count up to date with the buffer's capacity.
  void Account() {
    if (!accountant) return;
    size_t cap = values.capacity() * sizeof(Value);
    if (cap == charged_bytes) return;
    accountant->Charge(static_cast<int64_t>(cap) -
                       static_cast<int64_t>(charged_bytes));
    charged_bytes = cap;
  }
};

/// An immutable column-major table: one ref-counted ColumnBlock per
/// attribute, all of the same length. Tables may share ColumnBlocks
/// (FromColumns), so column-subset projections are zero-copy.
class ColumnarTable {
 public:
  /// Transposes `rel` (arity > 0). The transpose morsels over row chunks
  /// through `pfor` when bound (byte-identical to the sequential order —
  /// every chunk writes disjoint ranges of the pre-sized columns).
  static std::shared_ptr<const ColumnarTable> FromRelation(
      const Relation& rel, const ParallelForFn& pfor = {});

  /// Wraps existing column blocks (each of length `rows`) without copying.
  static std::shared_ptr<const ColumnarTable> FromColumns(
      std::vector<std::shared_ptr<const ColumnBlock>> cols, size_t rows);

  size_t rows() const { return rows_; }
  size_t arity() const { return cols_.size(); }

  /// Raw contiguous column data, length rows().
  const Value* col(size_t c) const { return cols_[c]->values.data(); }

  /// The ref-counted block behind column `c`, for zero-copy sharing.
  const std::shared_ptr<const ColumnBlock>& col_block(size_t c) const {
    return cols_[c];
  }

  /// True iff column `c` of this table and column `o` of `other` are views
  /// of the same ColumnBlock.
  bool SharesColumnWith(size_t c, const ColumnarTable& other, size_t o) const {
    return cols_[c] == other.cols_[o];
  }

 private:
  ColumnarTable() = default;

  std::vector<std::shared_ptr<const ColumnBlock>> cols_;
  size_t rows_ = 0;
};

}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_COLUMN_BLOCK_H_

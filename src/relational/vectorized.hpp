// Vectorized selection-vector kernels over column stripes.
//
// The columnar execution path (plan/vec_pipeline.hpp) moves batches between
// stages as a set of raw column pointers plus a *selection vector*: the row
// ids (ascending) that survive the filters so far. Nothing is materialized
// between a Select and the stage that consumes it — a filter only narrows the
// selection, and a gather densifies survivors just once, at a pipeline's
// materialization boundary.
//
// Every kernel here is branch-light: the Constraint::Kind switch runs once
// per constraint (not once per row), and the inner loops touch one or two
// column stripes sequentially. Outputs are exact — positions are kept in
// ascending order, so downstream results are byte-identical to the row-at-a-
// time operators they replace.
#ifndef PARAQUERY_RELATIONAL_VECTORIZED_H_
#define PARAQUERY_RELATIONAL_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "relational/predicate.hpp"
#include "relational/value.hpp"

namespace paraquery {
namespace vec {

/// Row position within a columnar batch.
using SelIdx = uint32_t;

/// Applies one constraint to the dense row range [begin, end) of the column
/// stripes `cols` (indexed by the constraint's column ids), appending the
/// passing positions to `out` in ascending order.
void FilterDense(const Constraint& c, const Value* const* cols, size_t begin,
                 size_t end, std::vector<SelIdx>& out);

/// Refines an existing selection in place: keeps `sel[i]` iff the constraint
/// holds at that position. Returns the surviving count; survivors are
/// compacted to the front of `sel`, order preserved.
size_t FilterSel(const Constraint& c, const Value* const* cols, SelIdx* sel,
                 size_t n);

/// Applies a whole conjunction to [begin, end): the first constraint emits
/// into `out` (cleared first), each further constraint refines it in place.
/// An empty predicate selects every position.
void FilterRange(const std::vector<Constraint>& cs, const Value* const* cols,
                 size_t begin, size_t end, std::vector<SelIdx>& out);

/// Densifies one column through a selection: out[i] = col[sel[i]].
void Gather(const Value* col, const SelIdx* sel, size_t n, Value* out);

}  // namespace vec
}  // namespace paraquery

#endif  // PARAQUERY_RELATIONAL_VECTORIZED_H_

// Naive evaluation of conjunctive queries (with arbitrary comparison atoms).
// This is the textbook combined-complexity algorithm the paper's analysis
// targets: worst case n^{O(q)}. It serves as ground truth for every other
// engine and as the baseline exhibiting "parameter in the exponent" in the
// benchmarks.
//
// Since the physical-plan refactor, NaiveEvaluateCq lowers the query through
// the cyclic planner (greedy smallest-relation-first order with
// bound-variable propagation) and runs the shared plan executor. Memory
// profile: the executor MATERIALIZES each intermediate join (memory tracks
// the largest satisfying-prefix set), where the old DFS enumerated bindings
// in O(q·n) memory at the same time complexity — set ResourceLimits, or use
// BacktrackEvaluateCq, when intermediates may dwarf the output. The decision
// entry points keep the indexed backtracking search: they stop at the first
// witness, which a materializing executor cannot, and the search consumes
// the same GreedyAtomOrder the planner uses. The backtracking FULL evaluator
// remains available (BacktrackEvaluateCq) as the constant-memory path and
// the plan-independent oracle for differential tests.
#ifndef PARAQUERY_EVAL_NAIVE_H_
#define PARAQUERY_EVAL_NAIVE_H_

#include <cstdint>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the naive evaluator.
struct NaiveOptions {
  /// Unified resource guard (preferred; see ResourceLimits). For the
  /// backtracking entry points max_steps counts search steps; for the
  /// plan-based evaluator it counts rows produced by operators.
  ResourceLimits limits;
  /// Parallel runtime binding for the plan-based evaluator (ignored by the
  /// backtracking entry points, which are inherently sequential searches).
  RuntimeOptions runtime;
  /// Cross-query plan cache (optional, engine-owned), used by the
  /// plan-based evaluator only: repeated cyclic queries reuse their greedy
  /// left-deep plan under the CanonicalCqSignature + database generation.
  PlanCache* plan_cache = nullptr;
  /// Plan-based evaluator: let the planner place Materialize boundaries so
  /// eligible chains run vectorized over columnar storage (results are
  /// byte-identical either way; see PlannerOptions::vectorize).
  bool vectorize = true;
  /// Plan-based evaluator: route comparison-free cyclic queries through the
  /// hypertree decomposition + worst-case-optimal multiway join (results are
  /// byte-identical either way; see PlannerOptions::wcoj).
  bool wcoj = true;
  /// DEPRECATED alias for limits.max_steps: abort with ResourceExhausted
  /// after this many steps (0 = off). Used only when limits.max_steps == 0.
  uint64_t max_steps = 0;

  ResourceLimits EffectiveLimits() const {
    return limits.MergedWith(/*legacy_max_rows=*/0, max_steps);
  }
};

/// Computes the full answer Q(d) via the cyclic planner + shared executor.
/// `plan_stats`, when given, receives the executor's counters.
Result<Relation> NaiveEvaluateCq(const Database& db, const ConjunctiveQuery& q,
                                 const NaiveOptions& options = {},
                                 PlanStats* plan_stats = nullptr);

/// Computes Q(d) with the indexed backtracking search (no plan, no
/// materialized intermediates). Reference oracle for differential tests.
Result<Relation> BacktrackEvaluateCq(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const NaiveOptions& options = {});

/// Decides Q(d) != {} (backtracking; stops at the first witness).
Result<bool> NaiveCqNonempty(const Database& db, const ConjunctiveQuery& q,
                             const NaiveOptions& options = {});

/// Decides t ∈ Q(d) by binding the head and testing nonemptiness.
Result<bool> NaiveCqContains(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<Value>& tuple,
                             const NaiveOptions& options = {});

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_NAIVE_H_

// Naive backtracking evaluation of conjunctive queries (with arbitrary
// comparison atoms). This is the textbook combined-complexity algorithm the
// paper's analysis targets: worst case n^{O(q)}. It serves as ground truth
// for every other engine and as the baseline exhibiting "parameter in the
// exponent" in the benchmarks.
#ifndef PARAQUERY_EVAL_NAIVE_H_
#define PARAQUERY_EVAL_NAIVE_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Options for the naive evaluator.
struct NaiveOptions {
  /// Abort with ResourceExhausted after this many search steps (0 = off).
  uint64_t max_steps = 0;
};

/// Computes the full answer Q(d) as a relation of head-arity tuples.
Result<Relation> NaiveEvaluateCq(const Database& db, const ConjunctiveQuery& q,
                                 const NaiveOptions& options = {});

/// Decides Q(d) != {} (stops at the first witness).
Result<bool> NaiveCqNonempty(const Database& db, const ConjunctiveQuery& q,
                             const NaiveOptions& options = {});

/// Decides t ∈ Q(d) by binding the head and testing nonemptiness.
Result<bool> NaiveCqContains(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<Value>& tuple,
                             const NaiveOptions& options = {});

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_NAIVE_H_

// Positive-query evaluation via expansion into a union of conjunctive
// queries (the paper's Theorem 1 upper-bound route for parameter q: the
// expansion is exponential in q but each disjunct is a plain CQ).
#ifndef PARAQUERY_EVAL_UCQ_H_
#define PARAQUERY_EVAL_UCQ_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/positive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Options for the UCQ evaluator.
struct UcqOptions {
  /// Cap on the number of disjuncts produced by the expansion.
  uint64_t max_disjuncts = 100'000;
  /// Route acyclic disjuncts through the Yannakakis evaluator instead of
  /// naive backtracking.
  bool use_acyclic_evaluator = true;
  /// Step limit handed to the naive evaluator for cyclic disjuncts (0=off).
  uint64_t naive_max_steps = 0;
};

/// Computes Q(d) for a positive query.
Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options = {});

/// Decides Q(d) != {} (short-circuits across disjuncts).
Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options = {});

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_UCQ_H_

// Positive-query evaluation via expansion into a union of conjunctive
// queries (the paper's Theorem 1 upper-bound route for parameter q: the
// expansion is exponential in q but each disjunct is a plain CQ).
// Syntactically identical disjuncts (equal up to variable renaming) are
// evaluated once; every disjunct runs through the shared plan executor with
// the caller's resource limits, and per-disjunct PlanStats aggregate into
// UcqStats.
#ifndef PARAQUERY_EVAL_UCQ_H_
#define PARAQUERY_EVAL_UCQ_H_

#include <cstdint>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/positive_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the UCQ evaluator.
struct UcqOptions {
  /// Cap on the number of disjuncts produced by the expansion.
  uint64_t max_disjuncts = 100'000;
  /// Route acyclic disjuncts through the Yannakakis evaluator instead of
  /// naive backtracking.
  bool use_acyclic_evaluator = true;
  /// Parallel runtime binding: with a scheduler, disjuncts evaluate as
  /// concurrent tasks (results are merged in disjunct order, so the answer
  /// is identical to the sequential evaluation) and each disjunct's plan
  /// may itself execute morsel-parallel.
  RuntimeOptions runtime;
  /// Unified resource guard, forwarded to every disjunct evaluation.
  ResourceLimits limits;
  /// Cross-query plan cache (optional, engine-owned), forwarded to every
  /// disjunct evaluation: re-expanded disjuncts of repeated positive queries
  /// reuse their compiled plans. Safe under parallel disjunct evaluation
  /// because disjuncts are signature-deduplicated first.
  PlanCache* plan_cache = nullptr;
  /// Forwarded to every cyclic disjunct's plan-based evaluation (see
  /// NaiveOptions::vectorize). Acyclic disjuncts use Semijoin schedules,
  /// which are never vectorized.
  bool vectorize = true;
  /// DEPRECATED alias for limits.max_steps (historically only applied to
  /// cyclic disjuncts). Used only when limits.max_steps == 0.
  uint64_t naive_max_steps = 0;

  ResourceLimits EffectiveLimits() const {
    return limits.MergedWith(/*legacy_max_rows=*/0, naive_max_steps);
  }
};

/// Instrumentation for one EvaluatePositive/PositiveNonempty call.
struct UcqStats {
  /// Disjuncts produced by the expansion / dropped as syntactic duplicates /
  /// actually evaluated (nonempty-mode short-circuits may stop early).
  size_t disjuncts_expanded = 0;
  size_t disjuncts_deduped = 0;
  size_t disjuncts_evaluated = 0;
  size_t acyclic_disjuncts = 0;  // routed to the Yannakakis plan
  size_t naive_disjuncts = 0;    // routed to the cyclic plan
  /// Counting route (EvaluatePositiveCount): inclusion–exclusion subset
  /// intersections actually computed, and subsets skipped because a
  /// sub-subset's intersection was already known empty.
  size_t ie_subsets = 0;
  size_t ie_pruned = 0;
  /// Plan-executor counters aggregated over all evaluated disjuncts.
  PlanStats plan;
};

/// Computes Q(d) for a positive query.
Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options = {},
                                  UcqStats* stats = nullptr);

/// Decides Q(d) != {} (short-circuits across disjuncts).
Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options = {},
                              UcqStats* stats = nullptr);

/// Counting evaluation of a positive query whose AnswerSpec is counting
/// (`q.fo().answer`): counts the distinct free-variable assignments
/// satisfying the formula, grouped by the head's group keys (COUNT(*) for
/// an empty head). Each signature-deduplicated disjunct is evaluated ONCE,
/// in tuples mode over the full free-variable head; the per-group sizes of
/// the union then come from inclusion–exclusion over disjunct subsets
/// (increasing popcount, pruning supersets of empty intersections) — the
/// union itself is never materialized on that path. Degenerate shapes (one
/// disjunct, no free variables) and expansions beyond the subset budget
/// fall back to counting the materialized union directly; both paths give
/// identical answers. Result shape matches CountingEvaluate: [count] for
/// COUNT(*) (a [0] row when empty), else group keys + count sorted by group.
Result<Relation> EvaluatePositiveCount(const Database& db,
                                       const PositiveQuery& q,
                                       const UcqOptions& options = {},
                                       UcqStats* stats = nullptr);

// CanonicalCqSignature moved to plan/plan_cache.hpp (included above): the
// disjunct dedup and the plan cache share one notion of query identity.

/// Expands `q` into at most `max_disjuncts` CQs and drops syntactic
/// duplicates (CanonicalCqSignature). The single expansion path shared by
/// the evaluator and EXPLAIN's plan rendering; fills the expansion counters
/// of `stats` when given.
Result<std::vector<ConjunctiveQuery>> ExpandDedupedDisjuncts(
    const PositiveQuery& q, uint64_t max_disjuncts, UcqStats* stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_UCQ_H_

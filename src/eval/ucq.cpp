#include "eval/ucq.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "eval/acyclic.hpp"
#include "eval/counting.hpp"
#include "obs/trace.hpp"
#include "eval/naive.hpp"
#include "relational/ops.hpp"

namespace paraquery {

// CanonicalCqSignature lives in plan/plan_cache.{hpp,cpp} now: the UCQ
// dedup and the program-wide plan cache share one notion of query identity.

Result<std::vector<ConjunctiveQuery>> ExpandDedupedDisjuncts(
    const PositiveQuery& q, uint64_t max_disjuncts, UcqStats* stats) {
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(max_disjuncts));
  if (stats != nullptr) stats->disjuncts_expanded = cqs.size();
  std::unordered_set<std::string> seen;
  std::vector<ConjunctiveQuery> unique;
  unique.reserve(cqs.size());
  for (ConjunctiveQuery& cq : cqs) {
    if (seen.insert(CanonicalCqSignature(cq)).second) {
      unique.push_back(std::move(cq));
    } else if (stats != nullptr) {
      ++stats->disjuncts_deduped;
    }
  }
  return unique;
}

namespace {

bool RouteAcyclic(const ConjunctiveQuery& cq, const UcqOptions& options) {
  return options.use_acyclic_evaluator && !cq.body.empty() &&
         !cq.HasComparisons() && cq.IsAcyclic();
}

Result<Relation> EvaluateDisjunct(const Database& db,
                                  const ConjunctiveQuery& cq,
                                  const UcqOptions& options, UcqStats* stats) {
  PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
  PQ_FAULT_POINT("ucq.disjunct");
  TraceSpan span(options.runtime.tracer, "disjunct");
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    acyclic.runtime = options.runtime;
    acyclic.plan_cache = options.plan_cache;
    return AcyclicEvaluate(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  naive.runtime = options.runtime;
  naive.plan_cache = options.plan_cache;
  naive.vectorize = options.vectorize;
  return NaiveEvaluateCq(db, cq, naive, plan);
}

Result<bool> DisjunctNonempty(const Database& db, const ConjunctiveQuery& cq,
                              const UcqOptions& options, UcqStats* stats) {
  PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
  PQ_FAULT_POINT("ucq.disjunct");
  TraceSpan span(options.runtime.tracer, "disjunct");
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    acyclic.runtime = options.runtime;
    acyclic.plan_cache = options.plan_cache;
    return AcyclicNonempty(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  // The backtracking decision search is inherently sequential; the runtime
  // binding is threaded for its abort polling (query_ctx), not for
  // parallelism — the runtime only parallelizes across disjuncts here.
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  naive.runtime = options.runtime;
  return NaiveCqNonempty(db, cq, naive);
}

// Folds per-task disjunct stats (in disjunct order) into `stats` after a
// parallel fan-out of `tasks` disjuncts.
void MergeDisjunctStats(UcqStats* stats, const std::vector<UcqStats>& parts,
                        size_t tasks) {
  if (stats == nullptr) return;
  stats->plan.parallel_tasks += tasks;
  for (const UcqStats& ps : parts) {
    stats->disjuncts_evaluated += ps.disjuncts_evaluated;
    stats->acyclic_disjuncts += ps.acyclic_disjuncts;
    stats->naive_disjuncts += ps.naive_disjuncts;
    stats->plan.Merge(ps.plan);
  }
}

// Evaluates every disjunct and returns the per-disjunct answer relations in
// disjunct order — one task per disjunct when a scheduler is bound (per-task
// stats merge and parts land in disjunct order after the barrier, so both
// the results and the counters match the sequential evaluation; the first
// error in disjunct order wins and cancels the remaining tasks).
Result<std::vector<Relation>> EvaluateAllDisjuncts(
    const Database& db, const std::vector<ConjunctiveQuery>& cqs,
    const UcqOptions& options, UcqStats* stats) {
  std::vector<Relation> out;
  out.reserve(cqs.size());
  if (options.runtime.parallel() && cqs.size() > 1) {
    std::vector<std::optional<Result<Relation>>> parts(cqs.size());
    std::vector<UcqStats> part_stats(cqs.size());
    TaskGroup group(options.runtime.scheduler);
    for (size_t i = 0; i < cqs.size(); ++i) {
      group.Spawn([&, i] {
        parts[i].emplace(EvaluateDisjunct(
            db, cqs[i], options, stats != nullptr ? &part_stats[i] : nullptr));
        if (!parts[i]->ok()) group.Cancel();
      });
    }
    group.Wait();
    MergeDisjunctStats(stats, part_stats, cqs.size());
    for (const std::optional<Result<Relation>>& part : parts) {
      if (part.has_value()) PQ_RETURN_NOT_OK(part->status());
    }
    for (std::optional<Result<Relation>>& part : parts) {
      out.push_back(std::move(*part).value());
    }
    return out;
  }
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(Relation part, EvaluateDisjunct(db, cq, options, stats));
    out.push_back(std::move(part));
  }
  return out;
}

}  // namespace

Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options, UcqStats* stats) {
  TraceSpan route_span(options.runtime.tracer, "route.ucq");
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  PQ_ASSIGN_OR_RETURN(std::vector<Relation> parts,
                      EvaluateAllDisjuncts(db, cqs, options, stats));
  Relation answers(q.fo().head.size());
  for (const Relation& part : parts) {
    for (size_t r = 0; r < part.size(); ++r) answers.Add(part.Row(r));
  }
  answers.SortAndDedup();
  return answers;
}

Result<Relation> EvaluatePositiveCount(const Database& db,
                                       const PositiveQuery& q,
                                       const UcqOptions& options,
                                       UcqStats* stats) {
  TraceSpan route_span(options.runtime.tracer, "route.ucq_count");
  PQ_FAULT_POINT("ucq.count");
  const FirstOrderQuery& fo = q.fo();
  if (!fo.answer.counting()) {
    return Status::InvalidArgument(
        "EvaluatePositiveCount requires a counting query (AnswerSpec)");
  }
  // Enumeration form: the same formula answering the full free-variable
  // tuples, so every disjunct is evaluated exactly once, in tuples mode;
  // counting and grouping happen over the materialized answer sets.
  const std::vector<VarId> free_vars = fo.FreeVariables();
  FirstOrderQuery enum_fo = fo;
  enum_fo.answer = AnswerSpec::Tuples();
  enum_fo.head.clear();
  for (VarId v : free_vars) enum_fo.head.push_back(Term::Var(v));
  PQ_ASSIGN_OR_RETURN(PositiveQuery enum_q,
                      PositiveQuery::FromFirstOrder(std::move(enum_fo)));
  PQ_ASSIGN_OR_RETURN(
      auto cqs, ExpandDedupedDisjuncts(enum_q, options.max_disjuncts, stats));
  // Group-key positions within the free-variable tuple (Validate guarantees
  // every group key is free).
  std::vector<int> gcols;
  for (const Term& t : fo.head) {
    auto it = std::find(free_vars.begin(), free_vars.end(), t.var());
    if (it == free_vars.end()) {
      return Status::Internal("counting group key is not a free variable");
    }
    gcols.push_back(static_cast<int>(it - free_vars.begin()));
  }
  PQ_ASSIGN_OR_RETURN(std::vector<Relation> parts,
                      EvaluateAllDisjuncts(db, cqs, options, stats));
  const size_t n = parts.size();
  // Inclusion–exclusion over disjunct subsets: per group g,
  //   |∪ A_i restricted to g| = Σ_{∅≠S} (−1)^{|S|+1} |∩_{i∈S} A_i at g|.
  // Each A_i is a SET (per-disjunct answers are sorted + deduplicated), so
  // relational Intersect computes the subset terms exactly. Subsets run in
  // increasing popcount order and any superset of an empty intersection is
  // pruned unvisited. Past the subset budget (or with nothing to include-
  // exclude over) the materialized union is counted directly instead —
  // identical answers, linear in the parts.
  constexpr size_t kMaxIeDisjuncts = 10;
  if (n >= 2 && n <= kMaxIeDisjuncts && !free_vars.empty()) {
    std::vector<AttrId> attrs(free_vars.size());
    for (size_t i = 0; i < attrs.size(); ++i) attrs[i] = static_cast<AttrId>(i);
    std::vector<NamedRelation> sets;
    sets.reserve(n);
    for (Relation& p : parts) sets.emplace_back(attrs, std::move(p));
    std::vector<uint32_t> masks;
    masks.reserve((1u << n) - 1);
    for (uint32_t m = 1; m < (1u << n); ++m) masks.push_back(m);
    std::stable_sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
      return std::popcount(a) < std::popcount(b);
    });
    std::vector<uint32_t> empty_masks;
    std::map<std::vector<Value>, Value> acc;
    std::vector<Value> key(gcols.size());
    for (uint32_t m : masks) {
      PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
      bool pruned = false;
      for (uint32_t e : empty_masks) {
        if ((m & e) == e) {
          pruned = true;
          break;
        }
      }
      if (pruned) {
        if (stats != nullptr) ++stats->ie_pruned;
        continue;
      }
      NamedRelation inter;
      bool first = true;
      for (size_t i = 0; i < n; ++i) {
        if ((m >> i & 1u) == 0) continue;
        inter = first ? sets[i] : Intersect(inter, sets[i]);
        first = false;
        if (inter.empty()) break;
      }
      if (stats != nullptr) ++stats->ie_subsets;
      if (inter.empty()) {
        empty_masks.push_back(m);
        continue;
      }
      const Value sign = (std::popcount(m) % 2 == 1) ? 1 : -1;
      for (size_t r = 0; r < inter.size(); ++r) {
        for (size_t i = 0; i < gcols.size(); ++i) {
          key[i] = inter.rel().At(r, gcols[i]);
        }
        acc[key] += sign;
      }
    }
    if (gcols.empty()) {
      Relation out(1);
      out.Add(std::vector<Value>{acc.empty() ? 0 : acc.begin()->second});
      return out;
    }
    Relation out(gcols.size() + 1);
    std::vector<Value> row;
    for (const auto& [g, count] : acc) {
      if (count <= 0) continue;  // exact I-E never leaves a zero, but guard
      row.assign(g.begin(), g.end());
      row.push_back(count);
      out.Add(row);
    }
    return out;
  }
  Relation all(free_vars.size());
  for (const Relation& part : parts) {
    for (size_t r = 0; r < part.size(); ++r) all.Add(part.Row(r));
  }
  all.SortAndDedup();
  return GroupCountRows(all, gcols);
}

Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options, UcqStats* stats) {
  TraceSpan route_span(options.runtime.tracer, "route.ucq");
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  if (options.runtime.parallel() && cqs.size() > 1) {
    // Concurrent disjunct decisions, cancelling on the first witness (a
    // true answer decides the union regardless of the other disjuncts, so
    // dropping unstarted tasks is the parallel analogue of the sequential
    // short-circuit). Errors do NOT cancel: every started disjunct reports,
    // and the resolution scan below picks the earliest decisive disjunct in
    // index order — the outcome a sequential evaluation would reach, except
    // that a disjunct skipped by a witness's cancellation is treated as
    // false (sequentially it might have errored first).
    std::vector<std::optional<Result<bool>>> parts(cqs.size());
    std::vector<UcqStats> part_stats(cqs.size());
    TaskGroup group(options.runtime.scheduler);
    for (size_t i = 0; i < cqs.size(); ++i) {
      group.Spawn([&, i] {
        parts[i].emplace(DisjunctNonempty(
            db, cqs[i], options, stats != nullptr ? &part_stats[i] : nullptr));
        if (parts[i]->ok() && parts[i]->value()) group.Cancel();
      });
    }
    group.Wait();
    MergeDisjunctStats(stats, part_stats, cqs.size());
    for (const std::optional<Result<bool>>& part : parts) {
      if (!part.has_value()) continue;  // cancelled before it ran
      PQ_RETURN_NOT_OK(part->status());
      if (part->value()) return true;
    }
    return false;
  }
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(bool nonempty,
                        DisjunctNonempty(db, cq, options, stats));
    if (nonempty) return true;
  }
  return false;
}

}  // namespace paraquery

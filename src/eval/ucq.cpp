#include "eval/ucq.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/fault_injection.hpp"
#include "eval/acyclic.hpp"
#include "obs/trace.hpp"
#include "eval/naive.hpp"

namespace paraquery {

// CanonicalCqSignature lives in plan/plan_cache.{hpp,cpp} now: the UCQ
// dedup and the program-wide plan cache share one notion of query identity.

Result<std::vector<ConjunctiveQuery>> ExpandDedupedDisjuncts(
    const PositiveQuery& q, uint64_t max_disjuncts, UcqStats* stats) {
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(max_disjuncts));
  if (stats != nullptr) stats->disjuncts_expanded = cqs.size();
  std::unordered_set<std::string> seen;
  std::vector<ConjunctiveQuery> unique;
  unique.reserve(cqs.size());
  for (ConjunctiveQuery& cq : cqs) {
    if (seen.insert(CanonicalCqSignature(cq)).second) {
      unique.push_back(std::move(cq));
    } else if (stats != nullptr) {
      ++stats->disjuncts_deduped;
    }
  }
  return unique;
}

namespace {

bool RouteAcyclic(const ConjunctiveQuery& cq, const UcqOptions& options) {
  return options.use_acyclic_evaluator && !cq.body.empty() &&
         !cq.HasComparisons() && cq.IsAcyclic();
}

Result<Relation> EvaluateDisjunct(const Database& db,
                                  const ConjunctiveQuery& cq,
                                  const UcqOptions& options, UcqStats* stats) {
  PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
  PQ_FAULT_POINT("ucq.disjunct");
  TraceSpan span(options.runtime.tracer, "disjunct");
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    acyclic.runtime = options.runtime;
    acyclic.plan_cache = options.plan_cache;
    return AcyclicEvaluate(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  naive.runtime = options.runtime;
  naive.plan_cache = options.plan_cache;
  naive.vectorize = options.vectorize;
  return NaiveEvaluateCq(db, cq, naive, plan);
}

Result<bool> DisjunctNonempty(const Database& db, const ConjunctiveQuery& cq,
                              const UcqOptions& options, UcqStats* stats) {
  PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
  PQ_FAULT_POINT("ucq.disjunct");
  TraceSpan span(options.runtime.tracer, "disjunct");
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    acyclic.runtime = options.runtime;
    acyclic.plan_cache = options.plan_cache;
    return AcyclicNonempty(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  // The backtracking decision search is inherently sequential; the runtime
  // binding is threaded for its abort polling (query_ctx), not for
  // parallelism — the runtime only parallelizes across disjuncts here.
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  naive.runtime = options.runtime;
  return NaiveCqNonempty(db, cq, naive);
}

// Folds per-task disjunct stats (in disjunct order) into `stats` after a
// parallel fan-out of `tasks` disjuncts.
void MergeDisjunctStats(UcqStats* stats, const std::vector<UcqStats>& parts,
                        size_t tasks) {
  if (stats == nullptr) return;
  stats->plan.parallel_tasks += tasks;
  for (const UcqStats& ps : parts) {
    stats->disjuncts_evaluated += ps.disjuncts_evaluated;
    stats->acyclic_disjuncts += ps.acyclic_disjuncts;
    stats->naive_disjuncts += ps.naive_disjuncts;
    stats->plan.Merge(ps.plan);
  }
}

}  // namespace

Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options, UcqStats* stats) {
  TraceSpan route_span(options.runtime.tracer, "route.ucq");
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  Relation answers(q.fo().head.size());
  if (options.runtime.parallel() && cqs.size() > 1) {
    // Structural parallelism: one task per disjunct. Per-task stats merge
    // and answers accumulate in disjunct order after the barrier, so both
    // the result (sorted + deduplicated below anyway) and the counters
    // match the sequential evaluation; the first error in disjunct order
    // wins and cancels the remaining tasks.
    std::vector<std::optional<Result<Relation>>> parts(cqs.size());
    std::vector<UcqStats> part_stats(cqs.size());
    TaskGroup group(options.runtime.scheduler);
    for (size_t i = 0; i < cqs.size(); ++i) {
      group.Spawn([&, i] {
        parts[i].emplace(EvaluateDisjunct(
            db, cqs[i], options, stats != nullptr ? &part_stats[i] : nullptr));
        if (!parts[i]->ok()) group.Cancel();
      });
    }
    group.Wait();
    MergeDisjunctStats(stats, part_stats, cqs.size());
    for (const std::optional<Result<Relation>>& part : parts) {
      if (part.has_value()) PQ_RETURN_NOT_OK(part->status());
    }
    for (const std::optional<Result<Relation>>& part : parts) {
      const Relation& rel = part->value();
      for (size_t r = 0; r < rel.size(); ++r) answers.Add(rel.Row(r));
    }
  } else {
    for (const ConjunctiveQuery& cq : cqs) {
      PQ_ASSIGN_OR_RETURN(Relation part,
                          EvaluateDisjunct(db, cq, options, stats));
      for (size_t r = 0; r < part.size(); ++r) answers.Add(part.Row(r));
    }
  }
  answers.SortAndDedup();
  return answers;
}

Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options, UcqStats* stats) {
  TraceSpan route_span(options.runtime.tracer, "route.ucq");
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  if (options.runtime.parallel() && cqs.size() > 1) {
    // Concurrent disjunct decisions, cancelling on the first witness (a
    // true answer decides the union regardless of the other disjuncts, so
    // dropping unstarted tasks is the parallel analogue of the sequential
    // short-circuit). Errors do NOT cancel: every started disjunct reports,
    // and the resolution scan below picks the earliest decisive disjunct in
    // index order — the outcome a sequential evaluation would reach, except
    // that a disjunct skipped by a witness's cancellation is treated as
    // false (sequentially it might have errored first).
    std::vector<std::optional<Result<bool>>> parts(cqs.size());
    std::vector<UcqStats> part_stats(cqs.size());
    TaskGroup group(options.runtime.scheduler);
    for (size_t i = 0; i < cqs.size(); ++i) {
      group.Spawn([&, i] {
        parts[i].emplace(DisjunctNonempty(
            db, cqs[i], options, stats != nullptr ? &part_stats[i] : nullptr));
        if (parts[i]->ok() && parts[i]->value()) group.Cancel();
      });
    }
    group.Wait();
    MergeDisjunctStats(stats, part_stats, cqs.size());
    for (const std::optional<Result<bool>>& part : parts) {
      if (!part.has_value()) continue;  // cancelled before it ran
      PQ_RETURN_NOT_OK(part->status());
      if (part->value()) return true;
    }
    return false;
  }
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(bool nonempty,
                        DisjunctNonempty(db, cq, options, stats));
    if (nonempty) return true;
  }
  return false;
}

}  // namespace paraquery

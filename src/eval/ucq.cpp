#include "eval/ucq.hpp"

#include "eval/acyclic.hpp"
#include "eval/naive.hpp"

namespace paraquery {

namespace {

Result<Relation> EvaluateDisjunct(const Database& db,
                                  const ConjunctiveQuery& cq,
                                  const UcqOptions& options) {
  if (options.use_acyclic_evaluator && !cq.body.empty() && cq.IsAcyclic()) {
    return AcyclicEvaluate(db, cq);
  }
  NaiveOptions naive;
  naive.max_steps = options.naive_max_steps;
  return NaiveEvaluateCq(db, cq, naive);
}

Result<bool> DisjunctNonempty(const Database& db, const ConjunctiveQuery& cq,
                              const UcqOptions& options) {
  if (options.use_acyclic_evaluator && !cq.body.empty() && cq.IsAcyclic()) {
    return AcyclicNonempty(db, cq);
  }
  NaiveOptions naive;
  naive.max_steps = options.naive_max_steps;
  return NaiveCqNonempty(db, cq, naive);
}

}  // namespace

Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options) {
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(options.max_disjuncts));
  Relation answers(q.fo().head.size());
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(Relation part, EvaluateDisjunct(db, cq, options));
    for (size_t r = 0; r < part.size(); ++r) answers.Add(part.Row(r));
  }
  answers.SortAndDedup();
  return answers;
}

Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options) {
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(options.max_disjuncts));
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(bool nonempty, DisjunctNonempty(db, cq, options));
    if (nonempty) return true;
  }
  return false;
}

}  // namespace paraquery

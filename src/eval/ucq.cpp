#include "eval/ucq.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "eval/acyclic.hpp"
#include "eval/naive.hpp"

namespace paraquery {

// ToUnionOfCqs standardizes variables apart, so duplicate disjuncts produced
// by the ∧/∨ distribution differ only in variable ids — exactly what this
// signature ignores.
std::string CanonicalCqSignature(const ConjunctiveQuery& cq) {
  std::vector<VarId> seen;
  auto canon = [&seen](const Term& t) -> std::string {
    if (t.is_const()) return internal::StrCat("c", t.value());
    auto it = std::find(seen.begin(), seen.end(), t.var());
    size_t idx = static_cast<size_t>(it - seen.begin());
    if (it == seen.end()) seen.push_back(t.var());
    return internal::StrCat("v", idx);
  };
  std::string sig = "h:";
  for (const Term& t : cq.head) sig += canon(t) + ",";
  sig += "|b:";
  for (const Atom& a : cq.body) {
    sig += a.relation + "(";
    for (const Term& t : a.terms) sig += canon(t) + ",";
    sig += ")";
  }
  sig += "|c:";
  for (const CompareAtom& c : cq.comparisons) {
    sig += internal::StrCat(static_cast<int>(c.op), ":", canon(c.lhs), ":",
                            canon(c.rhs), ",");
  }
  return sig;
}

Result<std::vector<ConjunctiveQuery>> ExpandDedupedDisjuncts(
    const PositiveQuery& q, uint64_t max_disjuncts, UcqStats* stats) {
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(max_disjuncts));
  if (stats != nullptr) stats->disjuncts_expanded = cqs.size();
  std::unordered_set<std::string> seen;
  std::vector<ConjunctiveQuery> unique;
  unique.reserve(cqs.size());
  for (ConjunctiveQuery& cq : cqs) {
    if (seen.insert(CanonicalCqSignature(cq)).second) {
      unique.push_back(std::move(cq));
    } else if (stats != nullptr) {
      ++stats->disjuncts_deduped;
    }
  }
  return unique;
}

namespace {

bool RouteAcyclic(const ConjunctiveQuery& cq, const UcqOptions& options) {
  return options.use_acyclic_evaluator && !cq.body.empty() &&
         !cq.HasComparisons() && cq.IsAcyclic();
}

Result<Relation> EvaluateDisjunct(const Database& db,
                                  const ConjunctiveQuery& cq,
                                  const UcqOptions& options, UcqStats* stats) {
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    return AcyclicEvaluate(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  return NaiveEvaluateCq(db, cq, naive, plan);
}

Result<bool> DisjunctNonempty(const Database& db, const ConjunctiveQuery& cq,
                              const UcqOptions& options, UcqStats* stats) {
  PlanStats* plan = stats != nullptr ? &stats->plan : nullptr;
  if (stats != nullptr) ++stats->disjuncts_evaluated;
  if (RouteAcyclic(cq, options)) {
    if (stats != nullptr) ++stats->acyclic_disjuncts;
    AcyclicOptions acyclic;
    acyclic.limits = options.EffectiveLimits();
    return AcyclicNonempty(db, cq, acyclic, /*stats=*/nullptr, plan);
  }
  if (stats != nullptr) ++stats->naive_disjuncts;
  NaiveOptions naive;
  naive.limits = options.EffectiveLimits();
  return NaiveCqNonempty(db, cq, naive);
}

}  // namespace

Result<Relation> EvaluatePositive(const Database& db, const PositiveQuery& q,
                                  const UcqOptions& options, UcqStats* stats) {
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  Relation answers(q.fo().head.size());
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(Relation part,
                        EvaluateDisjunct(db, cq, options, stats));
    for (size_t r = 0; r < part.size(); ++r) answers.Add(part.Row(r));
  }
  answers.SortAndDedup();
  return answers;
}

Result<bool> PositiveNonempty(const Database& db, const PositiveQuery& q,
                              const UcqOptions& options, UcqStats* stats) {
  PQ_ASSIGN_OR_RETURN(auto cqs,
                      ExpandDedupedDisjuncts(q, options.max_disjuncts, stats));
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(bool nonempty,
                        DisjunctNonempty(db, cq, options, stats));
    if (nonempty) return true;
  }
  return false;
}

}  // namespace paraquery

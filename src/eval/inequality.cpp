#include "eval/inequality.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "common/fault_injection.hpp"
#include "eval/common.hpp"
#include "hashing/coloring.hpp"
#include "obs/trace.hpp"
#include "hypergraph/join_tree.hpp"
#include "plan/executor.hpp"
#include "query/ineq_formula.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

// Primed attribute id for variable x (hash column): ids above the variable
// range are free.
AttrId Prime(const ConjunctiveQuery& q, VarId x) { return q.NumVariables() + x; }

struct Plan {
  const ConjunctiveQuery* q = nullptr;
  bool always_false = false;            // refuted during normalization
  std::vector<CompareAtom> i1;          // var != var, no co-occurrence
  std::vector<VarId> v1;                // sorted distinct vars of I1
  int k = 0;                            // |V1|
  int hash_range = 0;                   // colors: k, or #vars+#consts of φ
  std::vector<NamedRelation> base;      // S_j (I2 pushed into selections)
  JoinTree tree;
  std::vector<std::vector<AttrId>> y;   // Y_j per node (sorted)
  // partners[x] = I1 partners of x (VarIds).
  std::vector<std::vector<VarId>> partners;
  size_t i2_count = 0;
  // Formula mode (the Section 5 parameter-q extension): the ∧/∨ formula
  // over ≠ atoms, applied as a selection at the root; every φ-variable's
  // primed attribute is propagated all the way up.
  const IneqFormula* formula = nullptr;
  std::vector<Value> formula_constants;
};

bool IsV1(const Plan& p, VarId x) {
  return std::binary_search(p.v1.begin(), p.v1.end(), x);
}

void BuildYSets(Plan& p, const Hypergraph& h);

Result<Plan> BuildPlan(const Database& db, const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  Plan p;
  p.q = &q;

  // Normalize comparisons; reject anything but ≠.
  std::vector<CompareAtom> var_var;     // both sides variables, distinct
  std::vector<CompareAtom> var_const;   // x != c
  for (const CompareAtom& c : q.comparisons) {
    if (c.op != CompareOp::kNeq) {
      return Status::InvalidArgument(
          "inequality evaluator accepts only != atoms; run the comparison "
          "closure / use another engine for <, <=, =");
    }
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (c.lhs.value() == c.rhs.value()) p.always_false = true;
      continue;  // trivially true otherwise
    }
    if (c.lhs.is_var() && c.rhs.is_var()) {
      if (c.lhs.var() == c.rhs.var()) {
        p.always_false = true;
        continue;
      }
      var_var.push_back(c);
    } else if (c.lhs.is_var()) {
      var_const.push_back(c);
    } else {
      var_const.push_back({CompareOp::kNeq, c.rhs, c.lhs});
    }
  }
  if (p.always_false) return p;

  // Split var/var inequalities by co-occurrence.
  Hypergraph h = q.BuildHypergraph();
  std::vector<CompareAtom> i2_var_var;
  for (const CompareAtom& c : var_var) {
    if (h.CoOccur(c.lhs.var(), c.rhs.var())) {
      i2_var_var.push_back(c);
    } else {
      p.i1.push_back(c);
    }
  }
  p.i2_count = i2_var_var.size() + var_const.size();
  for (const CompareAtom& c : p.i1) {
    p.v1.push_back(c.lhs.var());
    p.v1.push_back(c.rhs.var());
  }
  std::sort(p.v1.begin(), p.v1.end());
  p.v1.erase(std::unique(p.v1.begin(), p.v1.end()), p.v1.end());
  p.k = static_cast<int>(p.v1.size());
  p.hash_range = p.k;
  p.partners.assign(q.NumVariables(), {});
  for (const CompareAtom& c : p.i1) {
    p.partners[c.lhs.var()].push_back(c.rhs.var());
    p.partners[c.rhs.var()].push_back(c.lhs.var());
  }

  // Join tree.
  auto tree = BuildJoinTree(h);
  if (!tree.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", tree.status().message()));
  }
  p.tree = std::move(tree).value();

  // S_j with I2 pushed into the selections F_j.
  for (const Atom& a : q.body) {
    std::vector<VarId> uj = a.Variables();
    std::vector<CompareAtom> filters;
    for (const CompareAtom& c : var_const) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    for (const CompareAtom& c : i2_var_var) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation s, AtomToRelation(db, a, filters));
    p.base.push_back(std::move(s));
  }

  BuildYSets(p, h);
  return p;
}

// Computes the present[][] matrix and the Y_j attribute sets for a plan
// whose v1 / partners / tree / base are already in place.
void BuildYSets(Plan& p, const Hypergraph& h) {
  const ConjunctiveQuery& q = *p.q;
  // present[j] = set of V1 vars occurring in subtree T[j] (as index into v1).
  size_t m = p.tree.size();
  std::vector<std::vector<bool>> present(m,
                                         std::vector<bool>(p.v1.size(), false));
  for (int j : p.tree.bottom_up) {
    for (size_t vi = 0; vi < p.v1.size(); ++vi) {
      const auto& edge = h.edge(j);
      if (std::binary_search(edge.begin(), edge.end(), p.v1[vi])) {
        present[j][vi] = true;
      }
    }
    for (int c : p.tree.children[j]) {
      for (size_t vi = 0; vi < p.v1.size(); ++vi) {
        if (present[c][vi]) present[j][vi] = true;
      }
    }
  }

  // Y_j = U_j ∪ U'_j ∪ W'_j.
  p.y.resize(m);
  for (size_t j = 0; j < m; ++j) {
    const auto& uj = h.edge(static_cast<int>(j));
    std::vector<AttrId> y(uj.begin(), uj.end());
    for (VarId x : uj) {
      if (IsV1(p, x)) y.push_back(Prime(q, x));
    }
    for (size_t vi = 0; vi < p.v1.size(); ++vi) {
      VarId x = p.v1[vi];
      if (std::binary_search(uj.begin(), uj.end(), x)) continue;  // x ∈ U_j
      if (!present[j][vi]) continue;  // x not in T[j]
      // x lives under exactly one child of j.
      int child = -1;
      for (int c : p.tree.children[j]) {
        if (present[c][vi]) {
          child = c;
          break;
        }
      }
      PQ_CHECK(child >= 0, "V1 variable present in subtree but not in a child");
      // x ∈ W_j iff some partner does not occur in that same child subtree.
      // In formula mode every φ-variable is propagated to the root (the
      // selection cannot be pushed below an ∨), so x is always separated.
      bool separated = (p.formula != nullptr);
      for (VarId l : p.partners[x]) {
        if (separated) break;
        auto li = std::lower_bound(p.v1.begin(), p.v1.end(), l) - p.v1.begin();
        if (!present[child][li]) separated = true;
      }
      if (separated) y.push_back(Prime(q, x));
    }
    std::sort(y.begin(), y.end());
    y.erase(std::unique(y.begin(), y.end()), y.end());
    p.y[j] = std::move(y);
  }
}

// Plan for the Section 5 parameter-q extension: a comparison-free acyclic
// body plus an arbitrary ∧/∨ formula over ≠ atoms, evaluated at the root.
Result<Plan> BuildFormulaPlan(const Database& db, const ConjunctiveQuery& q,
                              const IneqFormula& phi) {
  PQ_RETURN_NOT_OK(q.Validate());
  PQ_RETURN_NOT_OK(phi.Validate());
  // The paper's parameter-v refinement: conjunctive x != c atoms in the
  // body are allowed — they are pushed into the per-atom selections and do
  // not enter the hash range. Everything else must live in the formula.
  std::vector<CompareAtom> var_const;
  bool always_false = false;
  for (const CompareAtom& c : q.comparisons) {
    if (c.op != CompareOp::kNeq) {
      return Status::InvalidArgument(
          "formula mode accepts only != comparisons in the body");
    }
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (c.lhs.value() == c.rhs.value()) always_false = true;
      continue;
    }
    if (c.lhs.is_var() && c.rhs.is_var()) {
      return Status::InvalidArgument(
          "formula mode: move variable/variable != atoms into the formula");
    }
    var_const.push_back(c.lhs.is_var() ? c
                                       : CompareAtom{CompareOp::kNeq, c.rhs,
                                                     c.lhs});
  }
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  Plan p;
  p.q = &q;
  p.formula = &phi;
  p.always_false = always_false;
  p.i2_count = var_const.size();
  p.v1 = phi.Variables();
  std::vector<VarId> body_vars = q.BodyVariables();
  for (VarId x : p.v1) {
    if (x < 0 || x >= q.NumVariables() ||
        std::find(body_vars.begin(), body_vars.end(), x) == body_vars.end()) {
      std::string name = (x >= 0 && x < q.NumVariables())
                             ? q.vars.name(x)
                             : internal::StrCat("#", x);
      return Status::InvalidArgument(internal::StrCat(
          "formula variable '", name,
          "' does not occur in any relational atom"));
    }
  }
  p.formula_constants = phi.Constants();
  p.k = static_cast<int>(p.v1.size());
  p.hash_range = p.k + static_cast<int>(p.formula_constants.size());
  p.partners.assign(q.NumVariables(), {});

  Hypergraph h = q.BuildHypergraph();
  auto tree = BuildJoinTree(h);
  if (!tree.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", tree.status().message()));
  }
  p.tree = std::move(tree).value();
  for (const Atom& a : q.body) {
    std::vector<VarId> uj = a.Variables();
    std::vector<CompareAtom> filters;
    for (const CompareAtom& c : var_const) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation s, AtomToRelation(db, a, filters));
    p.base.push_back(std::move(s));
  }
  BuildYSets(p, h);
  return p;
}

// Values the V1 variables can take (union over nodes of the S_j columns of
// V1 variables), plus the formula constants in formula mode. This is the
// ground set the certified family must cover.
std::vector<Value> GroundSet(const Plan& p) {
  std::set<Value> ground(p.formula_constants.begin(),
                         p.formula_constants.end());
  for (const NamedRelation& s : p.base) {
    for (size_t i = 0; i < s.attrs().size(); ++i) {
      if (!IsV1(p, s.attrs()[i])) continue;
      for (size_t r = 0; r < s.size(); ++r) {
        ground.insert(s.rel().At(r, i));
      }
    }
  }
  return std::vector<Value>(ground.begin(), ground.end());
}

Result<ColoringFamily> MakeFamily(const Plan& p, const IneqOptions& options,
                                  IneqStats* stats) {
  ColoringFamily family = ColoringFamily::MonteCarlo(
      p.hash_range, options.mc_error_exponent, options.seed);
  if (p.hash_range > 1 && options.driver != IneqOptions::Driver::kMonteCarlo) {
    auto certified = ColoringFamily::Certified(
        GroundSet(p), p.hash_range, options.seed,
        options.certified_max_subsets, options.certified_max_members);
    if (certified.ok()) {
      family = std::move(certified).value();
    } else if (options.driver == IneqOptions::Driver::kCertified) {
      return certified.status();
    }
  }
  if (stats != nullptr) {
    stats->k = p.hash_range;
    stats->i1_atoms = p.i1.size();
    stats->i2_atoms = p.i2_count;
    stats->family_size = family.size();
    stats->certified = family.certified();
  }
  return family;
}

// S'_j: extends S_j with primed columns x' = h(x) for x ∈ U_j ∩ V1.
NamedRelation ExtendHashed(const Plan& p, const NamedRelation& s,
                           const ColoringFamily& family, size_t member) {
  std::vector<int> v1_cols;
  std::vector<AttrId> attrs = s.attrs();
  for (size_t i = 0; i < s.attrs().size(); ++i) {
    if (IsV1(p, s.attrs()[i])) {
      v1_cols.push_back(static_cast<int>(i));
      attrs.push_back(Prime(*p.q, s.attrs()[i]));
    }
  }
  // No V1 column: S'_j = S_j for every coloring — share the rows instead of
  // copying them per coloring.
  if (v1_cols.empty()) return s;
  NamedRelation out{attrs};
  out.rel().Reserve(s.size());
  ValueVec row(attrs.size());
  for (size_t r = 0; r < s.size(); ++r) {
    for (size_t i = 0; i < s.arity(); ++i) row[i] = s.rel().At(r, i);
    for (size_t i = 0; i < v1_cols.size(); ++i) {
      row[s.arity() + i] = family.Color(member, s.rel().At(r, v1_cols[i]));
    }
    out.rel().Add(row);
  }
  return out;
}

// Whether (a, b) or (b, a) is an I1 pair.
bool IsI1Pair(const Plan& p, VarId a, VarId b) {
  for (VarId l : p.partners[a]) {
    if (l == b) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Plan lowering: the default path. The analysis (Plan) is computed once per
// query, Algorithms 1+2 compile into PlanNode DAGs over slot-bound hashed
// inputs S'_j, and every coloring re-executes those DAGs through the shared
// executor. The whole compilation is cacheable across queries (IneqCompiled
// owns its canonical query/formula copies, so the analysis pointers stay
// valid for the cache entry's lifetime).
// ---------------------------------------------------------------------------

struct IneqCompiled {
  ConjunctiveQuery query;   // owned copy the analysis points into
  IneqFormula formula;      // owned copy (formula mode only)
  bool formula_mode = false;
  Plan analysis;            // q/formula point at the members above
  // Lowered DAGs over scan slots 0..m-1 = S'_j (ExtendHashed order):
  // Algorithm 1 (upward joins + I1 selects) and the full evaluation
  // (+ downward semijoins + upward join-and-project + head projection).
  PlanNodePtr decision_root;
  PlanNodePtr eval_root;
  // Formula evaluation mode only: the φ-filtered root binds to this extra
  // input slot of eval_root (the upward pass cannot see φ, so the driver
  // filters between the passes).
  int phi_slot = -1;
  // Query variables plus primed names (x') for rendering the DAGs.
  VarTable render_vars;
};

// S'_j scan attrs: the base S_j attrs followed by the primed columns, in
// ExtendHashed's order.
std::vector<AttrId> HashedSlotAttrs(const Plan& p, size_t j) {
  const NamedRelation& s = p.base[j];
  std::vector<AttrId> attrs = s.attrs();
  for (size_t i = 0; i < s.attrs().size(); ++i) {
    if (IsV1(p, s.attrs()[i])) attrs.push_back(Prime(*p.q, s.attrs()[i]));
  }
  return attrs;
}

std::string ScanLabel(const Plan& p, size_t j) {
  const ConjunctiveQuery& q = *p.q;
  const Atom& a = q.body[j];
  std::string out = "S'(" + a.relation + "(";
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (i > 0) out += ", ";
    const Term& t = a.terms[i];
    if (t.is_const()) {
      out += internal::StrCat(t.value());
    } else if (t.var() >= 0 && t.var() < q.vars.size()) {
      out += q.vars.name(t.var());
    } else {
      out += internal::StrCat("$", t.var());
    }
  }
  return out + "))";
}

// Lowers Algorithm 1 (decision) and Algorithms 1+2 (evaluation) to plan
// DAGs, reproducing the hand-rolled operator schedule: the I1 checks that
// were join post-filters become Select nodes right above the joins (same
// rows downstream).
Status LowerPlans(IneqCompiled* c) {
  const Plan& p = c->analysis;
  const ConjunctiveQuery& q = *p.q;
  const int nv = q.NumVariables();
  const size_t m = p.tree.size();

  std::vector<PlanNodePtr> cur(m);
  for (size_t j = 0; j < m; ++j) {
    cur[j] = MakeScan(static_cast<int>(j), HashedSlotAttrs(p, j),
                      ScanLabel(p, j),
                      static_cast<double>(p.base[j].size()));
  }

  // Algorithm 1: P_u := σ_F(P_u ⋈ π_{Y_j ∩ Y_u}(P_j)), bottom-up.
  for (int j : p.tree.bottom_up) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> shared;
    std::set_intersection(p.y[j].begin(), p.y[j].end(), p.y[u].begin(),
                          p.y[u].end(), std::back_inserter(shared));
    const std::vector<AttrId> pu_attrs = cur[u]->attrs;  // before this child
    // The join's output attrs (left, then right-only), needed to index the
    // pushed filter before the node exists.
    std::vector<AttrId> out_attrs = pu_attrs;
    for (AttrId a : shared) {
      if (std::find(out_attrs.begin(), out_attrs.end(), a) ==
          out_attrs.end()) {
        out_attrs.push_back(a);
      }
    }
    Predicate pred;
    if (p.formula == nullptr) {
      // Primed pairs x'_i != x'_l with (x_i, x_l) ∈ I1, x'_i arriving from
      // j (∉ U'_u) and x'_l already in P_u but not in Y_j — the least
      // common ancestor of the endpoints' subtrees (Lemma 1). Pushed into
      // the join kernel (σ_F(P_u ⋈ ...) in one pass, like the oracle).
      auto col_of = [&out_attrs](AttrId a) {
        for (size_t i = 0; i < out_attrs.size(); ++i) {
          if (out_attrs[i] == a) return static_cast<int>(i);
        }
        return -1;
      };
      const std::vector<VarId> u_vars = q.body[u].Variables();
      for (AttrId aj : shared) {
        if (aj < nv) continue;  // only primed attrs carry I1 checks
        VarId xi = aj - nv;
        if (std::find(u_vars.begin(), u_vars.end(), xi) != u_vars.end()) {
          continue;  // x'_i ∈ U'_u: checked elsewhere
        }
        for (AttrId al : pu_attrs) {
          if (al < nv) continue;
          if (std::binary_search(p.y[j].begin(), p.y[j].end(), al)) continue;
          VarId xl = al - nv;
          if (!IsI1Pair(p, xi, xl)) continue;
          pred.Add(Constraint::NeqCols(col_of(al), col_of(aj)));
        }
      }
    }
    cur[u] = MakeHashJoin(cur[u], MakeProject(cur[j], shared, /*dedup=*/true),
                          std::move(pred));
  }
#ifndef NDEBUG
  for (size_t j = 0; j < m; ++j) {
    std::vector<AttrId> sorted = cur[j]->attrs;
    std::sort(sorted.begin(), sorted.end());
    PQ_DCHECK(sorted == p.y[j],
              "lowered P_j attributes must equal Y_j (Lemma 1)");
  }
#endif
  c->decision_root = cur[p.tree.root];

  // Algorithm 2, step 1: downward semijoins from the (possibly φ-filtered)
  // root. In formula mode the filtered root arrives through an extra slot.
  std::vector<PlanNodePtr> red(m);
  if (c->formula_mode) {
    c->phi_slot = static_cast<int>(m);
    red[p.tree.root] = MakeScan(c->phi_slot, c->decision_root->attrs,
                                "sigma_phi(root)", /*est_rows=*/-1.0);
  } else {
    red[p.tree.root] = cur[p.tree.root];
  }
  for (int j : p.tree.top_down) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    red[j] = MakeSemijoin(cur[j], red[u]);
  }

  // Step 2: upward join-and-project with Z_j = (Y_j ∩ Y_u) ∪ (Z ∩ at(T[j])).
  std::vector<VarId> head_vars = q.HeadVariables();
  Hypergraph h = q.BuildHypergraph();
  std::vector<std::vector<AttrId>> subtree_head(m);
  for (int j : p.tree.bottom_up) {
    std::vector<AttrId> acc;
    for (VarId x : h.edge(j)) {
      if (std::find(head_vars.begin(), head_vars.end(), x) !=
          head_vars.end()) {
        acc.push_back(x);
      }
    }
    for (int ch : p.tree.children[j]) {
      acc.insert(acc.end(), subtree_head[ch].begin(), subtree_head[ch].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }
  for (int j : p.tree.bottom_up) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : red[j]->attrs) {
      if (std::find(red[u]->attrs.begin(), red[u]->attrs.end(), a) !=
          red[u]->attrs.end()) {
        zj.push_back(a);
      }
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    red[u] = MakeHashJoin(red[u], MakeProject(red[j], zj, /*dedup=*/true));
  }
  // Step 3: project the root onto the head variables (the driver maps the
  // bindings through the head terms).
  c->eval_root = MakeProject(red[p.tree.root], head_vars, /*dedup=*/true);
  return Status::OK();
}

void BuildRenderVars(IneqCompiled* c) {
  const ConjunctiveQuery& q = c->query;
  for (VarId v = 0; v < q.NumVariables(); ++v) {
    c->render_vars.Intern(q.vars.name(v));
  }
  for (VarId v = 0; v < q.NumVariables(); ++v) {
    std::string primed = q.vars.name(v) + "'";
    while (c->render_vars.Find(primed) >= 0) primed += "'";
    c->render_vars.Intern(primed);
  }
}

// Compiles a query (and optional formula) without consulting any cache.
Result<std::shared_ptr<IneqCompiled>> BuildCompiled(const Database& db,
                                                    const ConjunctiveQuery& q,
                                                    const IneqFormula* phi) {
  auto c = std::make_shared<IneqCompiled>();
  c->query = q;
  if (phi != nullptr) {
    c->formula = *phi;
    c->formula_mode = true;
  }
  PQ_ASSIGN_OR_RETURN(c->analysis,
                      c->formula_mode
                          ? BuildFormulaPlan(db, c->query, c->formula)
                          : BuildPlan(db, c->query));
  if (!c->analysis.always_false) PQ_RETURN_NOT_OK(LowerPlans(c.get()));
  BuildRenderVars(c.get());
  return c;
}

// `phi` renamed onto canonical variable ids (out-of-range ids map to -1 and
// are rejected by the downstream validation, exactly like the original).
IneqFormula RemapFormula(const IneqFormula& phi,
                         const std::vector<AttrId>& inverse) {
  IneqFormula out = phi;
  auto remap = [&inverse](Term& t) {
    if (!t.is_var()) return;
    VarId v = t.var();
    t = Term::Var((v >= 0 && static_cast<size_t>(v) < inverse.size())
                      ? inverse[v]
                      : -1);
  };
  for (IneqFormula::Node& n : out.nodes) {
    if (n.kind == IneqFormula::NodeKind::kAtom) {
      remap(n.atom.lhs);
      remap(n.atom.rhs);
    }
  }
  return out;
}

// Structural signature of a canonical-renamed formula (cache key suffix).
std::string FormulaSignature(const IneqFormula& phi) {
  std::string s;
  auto term = [](const Term& t) {
    return t.is_var() ? internal::StrCat("v", t.var())
                      : internal::StrCat("c", t.value());
  };
  for (const IneqFormula::Node& n : phi.nodes) {
    switch (n.kind) {
      case IneqFormula::NodeKind::kAtom:
        s += "a" + term(n.atom.lhs) + ":" + term(n.atom.rhs) + ";";
        break;
      case IneqFormula::NodeKind::kAnd:
      case IneqFormula::NodeKind::kOr:
        s += n.kind == IneqFormula::NodeKind::kAnd ? "&" : "|";
        for (int ch : n.children) s += internal::StrCat(ch, ",");
        s += ";";
        break;
    }
  }
  return s + internal::StrCat("r", phi.root);
}

// Fetches (or compiles and caches) the compiled form. With a cache, the
// query is canonicalized first so renaming-equivalent queries share one
// compilation; without one, the query compiles as-is.
Result<std::shared_ptr<IneqCompiled>> GetCompiled(const Database& db,
                                                  const ConjunctiveQuery& q,
                                                  const IneqFormula* phi,
                                                  const IneqOptions& options) {
  PQ_FAULT_POINT("ineq.compile");
  if (options.plan_cache == nullptr) return BuildCompiled(db, q, phi);
  CanonicalCq canonical = CanonicalizeCq(q);
  std::string key = internal::StrCat("ineq:", canonical.signature);
  IneqFormula renamed;
  if (phi != nullptr) {
    std::vector<AttrId> inverse(std::max(1, q.NumVariables()), -1);
    for (size_t i = 0; i < canonical.order.size(); ++i) {
      if (canonical.order[i] >= 0 &&
          static_cast<size_t>(canonical.order[i]) < inverse.size()) {
        inverse[canonical.order[i]] = static_cast<AttrId>(i);
      }
    }
    renamed = RemapFormula(*phi, inverse);
    key += "|phi:" + FormulaSignature(renamed);
  }
  auto cached = options.plan_cache->Lookup<IneqCompiled>(key, db);
  if (cached != nullptr) return cached;
  PQ_ASSIGN_OR_RETURN(
      auto compiled,
      BuildCompiled(db, canonical.query, phi != nullptr ? &renamed : nullptr));
  options.plan_cache->Insert(key, db, canonical.query, compiled);
  return compiled;
}

// Hash-extended inputs S'_j for one coloring (slot order = body order).
std::vector<NamedRelation> HashedInputs(const Plan& p,
                                        const ColoringFamily& family,
                                        size_t member) {
  std::vector<NamedRelation> inputs;
  inputs.reserve(p.base.size());
  for (const NamedRelation& s : p.base) {
    inputs.push_back(ExtendHashed(p, s, family, member));
  }
  return inputs;
}

// φ applied at the root, on the primed (color) columns; constants take
// their color under the same member.
NamedRelation FilterByFormula(const Plan& p, const NamedRelation& root,
                              const ColoringFamily& family, size_t member) {
  std::vector<int> col_of_var(p.q->NumVariables(), -1);
  for (VarId x : p.v1) {
    col_of_var[x] = root.ColumnOf(Prime(*p.q, x));
    PQ_CHECK(col_of_var[x] >= 0,
             "formula variable's primed attribute missing at the root");
  }
  NamedRelation filtered{root.attrs()};
  for (size_t r = 0; r < root.size(); ++r) {
    auto row = root.rel().Row(r);
    auto value_of = [&](const Term& t) -> Value {
      return t.is_var() ? row[col_of_var[t.var()]]
                        : family.Color(member, t.value());
    };
    if (p.formula->Evaluate(value_of)) filtered.rel().Add(row);
  }
  return filtered;
}

// Plan-routed decision driver.
Result<bool> PlanDriveNonempty(const Database& db, IneqCompiled& c,
                               const IneqOptions& options, IneqStats* stats,
                               PlanStats* plan_stats) {
  const Plan& p = c.analysis;
  if (p.always_false) return false;
  TraceSpan route_span(options.runtime.tracer, "route.theorem2");
  PQ_ASSIGN_OR_RETURN(ColoringFamily family, MakeFamily(p, options, stats));
  const ResourceLimits limits = options.EffectiveLimits();
  PlanStats local;
  size_t executed = 0;
  bool found = false;
  for (size_t m = 0; m < family.size() && !found; ++m) {
    // Per-coloring poll: Theorem 2's k^k loop is the longest-running site
    // in the engine, so deadline aborts must land between colorings.
    PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
    PQ_FAULT_POINT("ineq.coloring");
    TraceSpan coloring_span(
        options.runtime.tracer, "coloring",
        options.runtime.tracer != nullptr ? internal::StrCat("m=", m)
                                          : std::string());
    if (stats != nullptr) stats->trials = m + 1;
    std::vector<NamedRelation> inputs = HashedInputs(p, family, m);
    std::vector<const NamedRelation*> ptrs;
    ptrs.reserve(inputs.size());
    for (const NamedRelation& in : inputs) ptrs.push_back(&in);
    ExecContext ctx{ptrs, limits, &local, options.runtime};
    PQ_ASSIGN_OR_RETURN(NamedRelation root, ExecutePlan(*c.decision_root, ctx));
    ++executed;
    if (c.formula_mode && !root.empty()) {
      root = FilterByFormula(p, root, family, m);
      if (stats != nullptr) {
        stats->peak_rows = std::max(stats->peak_rows, root.size());
      }
    }
    found = !root.empty();
  }
  if (options.plan_cache != nullptr && executed > 1) {
    options.plan_cache->NoteReuse(executed - 1);
  }
  if (stats != nullptr) {
    stats->peak_rows = std::max(stats->peak_rows, local.peak_intermediate_rows);
  }
  if (plan_stats != nullptr) plan_stats->Merge(local);
  (void)db;
  return found;
}

// Plan-routed evaluation driver.
Result<Relation> PlanDriveEvaluate(const Database& db, IneqCompiled& c,
                                   const IneqOptions& options,
                                   IneqStats* stats, PlanStats* plan_stats) {
  const Plan& p = c.analysis;
  Relation answers(c.query.head.size());
  if (p.always_false) return answers;
  TraceSpan route_span(options.runtime.tracer, "route.theorem2");
  PQ_ASSIGN_OR_RETURN(ColoringFamily family, MakeFamily(p, options, stats));
  const ResourceLimits limits = options.EffectiveLimits();
  PlanStats local;
  size_t colorings_run = 0;
  for (size_t m = 0; m < family.size(); ++m) {
    PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
    PQ_FAULT_POINT("ineq.coloring");
    TraceSpan coloring_span(
        options.runtime.tracer, "coloring",
        options.runtime.tracer != nullptr ? internal::StrCat("m=", m)
                                          : std::string());
    if (stats != nullptr) stats->trials = m + 1;
    std::vector<NamedRelation> inputs = HashedInputs(p, family, m);
    if (c.formula_mode) {
      // Pass 1, then φ at the root, then the evaluation DAG reading the
      // filtered root through its extra slot. One ExecSession per coloring:
      // the evaluation pass reuses every P_j the upward pass computed.
      inputs.emplace_back();  // φ-slot placeholder, bound after the filter
      std::vector<const NamedRelation*> ptrs;
      ptrs.reserve(inputs.size());
      for (const NamedRelation& in : inputs) ptrs.push_back(&in);
      ExecContext ctx{ptrs, limits, &local, options.runtime};
      ExecSession session(ctx);
      PQ_ASSIGN_OR_RETURN(NamedRelation root, session.Run(*c.decision_root));
      ++colorings_run;
      if (root.empty()) continue;
      NamedRelation filtered = FilterByFormula(p, root, family, m);
      if (stats != nullptr) {
        stats->peak_rows = std::max(stats->peak_rows, filtered.size());
      }
      if (filtered.empty()) continue;
      inputs.back() = std::move(filtered);
      PQ_ASSIGN_OR_RETURN(NamedRelation bindings, session.Run(*c.eval_root));
      Relation qh = BindingsToAnswers(bindings, c.query.head);
      for (size_t r = 0; r < qh.size(); ++r) answers.Add(qh.Row(r));
    } else {
      std::vector<const NamedRelation*> ptrs;
      ptrs.reserve(inputs.size());
      for (const NamedRelation& in : inputs) ptrs.push_back(&in);
      ExecContext ctx{ptrs, limits, &local, options.runtime};
      PQ_ASSIGN_OR_RETURN(NamedRelation bindings,
                          ExecutePlan(*c.eval_root, ctx));
      ++colorings_run;
      Relation qh = BindingsToAnswers(bindings, c.query.head);
      for (size_t r = 0; r < qh.size(); ++r) answers.Add(qh.Row(r));
    }
  }
  // One compile, `colorings_run` executions: every re-binding past the
  // first is the cache's per-coloring reuse (counted per coloring, not per
  // plan pass).
  if (options.plan_cache != nullptr && colorings_run > 1) {
    options.plan_cache->NoteReuse(colorings_run - 1);
  }
  if (stats != nullptr) {
    stats->peak_rows = std::max(stats->peak_rows, local.peak_intermediate_rows);
  }
  if (plan_stats != nullptr) plan_stats->Merge(local);
  (void)db;
  answers.SortAndDedup();
  return answers;
}

}  // namespace

Result<bool> IneqNonempty(const Database& db, const ConjunctiveQuery& q,
                          const IneqOptions& options, IneqStats* stats,
                          PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(auto compiled, GetCompiled(db, q, nullptr, options));
  return PlanDriveNonempty(db, *compiled, options, stats, plan_stats);
}

Result<Relation> IneqEvaluate(const Database& db, const ConjunctiveQuery& q,
                              const IneqOptions& options, IneqStats* stats,
                              PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(auto compiled, GetCompiled(db, q, nullptr, options));
  return PlanDriveEvaluate(db, *compiled, options, stats, plan_stats);
}

Result<bool> IneqFormulaNonempty(const Database& db, const ConjunctiveQuery& q,
                                 const IneqFormula& phi,
                                 const IneqOptions& options, IneqStats* stats,
                                 PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(auto compiled, GetCompiled(db, q, &phi, options));
  return PlanDriveNonempty(db, *compiled, options, stats, plan_stats);
}

Result<Relation> IneqFormulaEvaluate(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const IneqFormula& phi,
                                     const IneqOptions& options,
                                     IneqStats* stats,
                                     PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(auto compiled, GetCompiled(db, q, &phi, options));
  return PlanDriveEvaluate(db, *compiled, options, stats, plan_stats);
}

Result<bool> IneqContains(const Database& db, const ConjunctiveQuery& q,
                          const std::vector<Value>& tuple,
                          const IneqOptions& options, IneqStats* stats) {
  if (tuple.size() != q.head.size()) {
    return Status::InvalidArgument("tuple arity does not match query head");
  }
  return IneqNonempty(db, q.BindHead(tuple), options, stats);
}

Result<std::string> IneqPlanText(const Database& db,
                                 const ConjunctiveQuery& q) {
  PQ_ASSIGN_OR_RETURN(auto compiled, BuildCompiled(db, q, nullptr));
  if (compiled->analysis.always_false) {
    return std::string(
        "(empty plan: a comparison atom is refuted on every database)\n");
  }
  std::ostringstream oss;
  oss << "-- Theorem 2 color coding: k=" << compiled->analysis.k
      << " (|V1|), I1=" << compiled->analysis.i1.size()
      << " hash-checked atom(s), I2=" << compiled->analysis.i2_count
      << " pushed into scans;\n"
      << "-- one residual plan compiled, re-executed per coloring on "
         "re-bound S' inputs (primed columns = colors)\n";
  oss << RenderPlan(*compiled->eval_root, &compiled->render_vars);
  return oss.str();
}

}  // namespace paraquery

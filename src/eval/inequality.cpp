#include "eval/inequality.hpp"

#include <algorithm>
#include <set>

#include "eval/common.hpp"
#include "hashing/coloring.hpp"
#include "hypergraph/join_tree.hpp"
#include "query/ineq_formula.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

// Primed attribute id for variable x (hash column): ids above the variable
// range are free.
AttrId Prime(const ConjunctiveQuery& q, VarId x) { return q.NumVariables() + x; }

struct Plan {
  const ConjunctiveQuery* q = nullptr;
  bool always_false = false;            // refuted during normalization
  std::vector<CompareAtom> i1;          // var != var, no co-occurrence
  std::vector<VarId> v1;                // sorted distinct vars of I1
  int k = 0;                            // |V1|
  int hash_range = 0;                   // colors: k, or #vars+#consts of φ
  std::vector<NamedRelation> base;      // S_j (I2 pushed into selections)
  JoinTree tree;
  std::vector<std::vector<AttrId>> y;   // Y_j per node (sorted)
  // partners[x] = I1 partners of x (VarIds).
  std::vector<std::vector<VarId>> partners;
  size_t i2_count = 0;
  // Formula mode (the Section 5 parameter-q extension): the ∧/∨ formula
  // over ≠ atoms, applied as a selection at the root; every φ-variable's
  // primed attribute is propagated all the way up.
  const IneqFormula* formula = nullptr;
  std::vector<Value> formula_constants;
};

bool IsV1(const Plan& p, VarId x) {
  return std::binary_search(p.v1.begin(), p.v1.end(), x);
}

void BuildYSets(Plan& p, const Hypergraph& h);

Result<Plan> BuildPlan(const Database& db, const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  Plan p;
  p.q = &q;

  // Normalize comparisons; reject anything but ≠.
  std::vector<CompareAtom> var_var;     // both sides variables, distinct
  std::vector<CompareAtom> var_const;   // x != c
  for (const CompareAtom& c : q.comparisons) {
    if (c.op != CompareOp::kNeq) {
      return Status::InvalidArgument(
          "inequality evaluator accepts only != atoms; run the comparison "
          "closure / use another engine for <, <=, =");
    }
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (c.lhs.value() == c.rhs.value()) p.always_false = true;
      continue;  // trivially true otherwise
    }
    if (c.lhs.is_var() && c.rhs.is_var()) {
      if (c.lhs.var() == c.rhs.var()) {
        p.always_false = true;
        continue;
      }
      var_var.push_back(c);
    } else if (c.lhs.is_var()) {
      var_const.push_back(c);
    } else {
      var_const.push_back({CompareOp::kNeq, c.rhs, c.lhs});
    }
  }
  if (p.always_false) return p;

  // Split var/var inequalities by co-occurrence.
  Hypergraph h = q.BuildHypergraph();
  std::vector<CompareAtom> i2_var_var;
  for (const CompareAtom& c : var_var) {
    if (h.CoOccur(c.lhs.var(), c.rhs.var())) {
      i2_var_var.push_back(c);
    } else {
      p.i1.push_back(c);
    }
  }
  p.i2_count = i2_var_var.size() + var_const.size();
  for (const CompareAtom& c : p.i1) {
    p.v1.push_back(c.lhs.var());
    p.v1.push_back(c.rhs.var());
  }
  std::sort(p.v1.begin(), p.v1.end());
  p.v1.erase(std::unique(p.v1.begin(), p.v1.end()), p.v1.end());
  p.k = static_cast<int>(p.v1.size());
  p.hash_range = p.k;
  p.partners.assign(q.NumVariables(), {});
  for (const CompareAtom& c : p.i1) {
    p.partners[c.lhs.var()].push_back(c.rhs.var());
    p.partners[c.rhs.var()].push_back(c.lhs.var());
  }

  // Join tree.
  auto tree = BuildJoinTree(h);
  if (!tree.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", tree.status().message()));
  }
  p.tree = std::move(tree).value();

  // S_j with I2 pushed into the selections F_j.
  for (const Atom& a : q.body) {
    std::vector<VarId> uj = a.Variables();
    std::vector<CompareAtom> filters;
    for (const CompareAtom& c : var_const) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    for (const CompareAtom& c : i2_var_var) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation s, AtomToRelation(db, a, filters));
    p.base.push_back(std::move(s));
  }

  BuildYSets(p, h);
  return p;
}

// Computes the present[][] matrix and the Y_j attribute sets for a plan
// whose v1 / partners / tree / base are already in place.
void BuildYSets(Plan& p, const Hypergraph& h) {
  const ConjunctiveQuery& q = *p.q;
  // present[j] = set of V1 vars occurring in subtree T[j] (as index into v1).
  size_t m = p.tree.size();
  std::vector<std::vector<bool>> present(m,
                                         std::vector<bool>(p.v1.size(), false));
  for (int j : p.tree.bottom_up) {
    for (size_t vi = 0; vi < p.v1.size(); ++vi) {
      const auto& edge = h.edge(j);
      if (std::binary_search(edge.begin(), edge.end(), p.v1[vi])) {
        present[j][vi] = true;
      }
    }
    for (int c : p.tree.children[j]) {
      for (size_t vi = 0; vi < p.v1.size(); ++vi) {
        if (present[c][vi]) present[j][vi] = true;
      }
    }
  }

  // Y_j = U_j ∪ U'_j ∪ W'_j.
  p.y.resize(m);
  for (size_t j = 0; j < m; ++j) {
    const auto& uj = h.edge(static_cast<int>(j));
    std::vector<AttrId> y(uj.begin(), uj.end());
    for (VarId x : uj) {
      if (IsV1(p, x)) y.push_back(Prime(q, x));
    }
    for (size_t vi = 0; vi < p.v1.size(); ++vi) {
      VarId x = p.v1[vi];
      if (std::binary_search(uj.begin(), uj.end(), x)) continue;  // x ∈ U_j
      if (!present[j][vi]) continue;  // x not in T[j]
      // x lives under exactly one child of j.
      int child = -1;
      for (int c : p.tree.children[j]) {
        if (present[c][vi]) {
          child = c;
          break;
        }
      }
      PQ_CHECK(child >= 0, "V1 variable present in subtree but not in a child");
      // x ∈ W_j iff some partner does not occur in that same child subtree.
      // In formula mode every φ-variable is propagated to the root (the
      // selection cannot be pushed below an ∨), so x is always separated.
      bool separated = (p.formula != nullptr);
      for (VarId l : p.partners[x]) {
        if (separated) break;
        auto li = std::lower_bound(p.v1.begin(), p.v1.end(), l) - p.v1.begin();
        if (!present[child][li]) separated = true;
      }
      if (separated) y.push_back(Prime(q, x));
    }
    std::sort(y.begin(), y.end());
    y.erase(std::unique(y.begin(), y.end()), y.end());
    p.y[j] = std::move(y);
  }
}

// Plan for the Section 5 parameter-q extension: a comparison-free acyclic
// body plus an arbitrary ∧/∨ formula over ≠ atoms, evaluated at the root.
Result<Plan> BuildFormulaPlan(const Database& db, const ConjunctiveQuery& q,
                              const IneqFormula& phi) {
  PQ_RETURN_NOT_OK(q.Validate());
  PQ_RETURN_NOT_OK(phi.Validate());
  // The paper's parameter-v refinement: conjunctive x != c atoms in the
  // body are allowed — they are pushed into the per-atom selections and do
  // not enter the hash range. Everything else must live in the formula.
  std::vector<CompareAtom> var_const;
  bool always_false = false;
  for (const CompareAtom& c : q.comparisons) {
    if (c.op != CompareOp::kNeq) {
      return Status::InvalidArgument(
          "formula mode accepts only != comparisons in the body");
    }
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (c.lhs.value() == c.rhs.value()) always_false = true;
      continue;
    }
    if (c.lhs.is_var() && c.rhs.is_var()) {
      return Status::InvalidArgument(
          "formula mode: move variable/variable != atoms into the formula");
    }
    var_const.push_back(c.lhs.is_var() ? c
                                       : CompareAtom{CompareOp::kNeq, c.rhs,
                                                     c.lhs});
  }
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  Plan p;
  p.q = &q;
  p.formula = &phi;
  p.always_false = always_false;
  p.i2_count = var_const.size();
  p.v1 = phi.Variables();
  std::vector<VarId> body_vars = q.BodyVariables();
  for (VarId x : p.v1) {
    if (x < 0 || x >= q.NumVariables() ||
        std::find(body_vars.begin(), body_vars.end(), x) == body_vars.end()) {
      std::string name = (x >= 0 && x < q.NumVariables())
                             ? q.vars.name(x)
                             : internal::StrCat("#", x);
      return Status::InvalidArgument(internal::StrCat(
          "formula variable '", name,
          "' does not occur in any relational atom"));
    }
  }
  p.formula_constants = phi.Constants();
  p.k = static_cast<int>(p.v1.size());
  p.hash_range = p.k + static_cast<int>(p.formula_constants.size());
  p.partners.assign(q.NumVariables(), {});

  Hypergraph h = q.BuildHypergraph();
  auto tree = BuildJoinTree(h);
  if (!tree.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", tree.status().message()));
  }
  p.tree = std::move(tree).value();
  for (const Atom& a : q.body) {
    std::vector<VarId> uj = a.Variables();
    std::vector<CompareAtom> filters;
    for (const CompareAtom& c : var_const) {
      if (ComparisonWithin(c, uj)) filters.push_back(c);
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation s, AtomToRelation(db, a, filters));
    p.base.push_back(std::move(s));
  }
  BuildYSets(p, h);
  return p;
}

// Values the V1 variables can take (union over nodes of the S_j columns of
// V1 variables), plus the formula constants in formula mode. This is the
// ground set the certified family must cover.
std::vector<Value> GroundSet(const Plan& p) {
  std::set<Value> ground(p.formula_constants.begin(),
                         p.formula_constants.end());
  for (const NamedRelation& s : p.base) {
    for (size_t i = 0; i < s.attrs().size(); ++i) {
      if (!IsV1(p, s.attrs()[i])) continue;
      for (size_t r = 0; r < s.size(); ++r) {
        ground.insert(s.rel().At(r, i));
      }
    }
  }
  return std::vector<Value>(ground.begin(), ground.end());
}

Result<ColoringFamily> MakeFamily(const Plan& p, const IneqOptions& options,
                                  IneqStats* stats) {
  ColoringFamily family = ColoringFamily::MonteCarlo(
      p.hash_range, options.mc_error_exponent, options.seed);
  if (p.hash_range > 1 && options.driver != IneqOptions::Driver::kMonteCarlo) {
    auto certified = ColoringFamily::Certified(
        GroundSet(p), p.hash_range, options.seed,
        options.certified_max_subsets, options.certified_max_members);
    if (certified.ok()) {
      family = std::move(certified).value();
    } else if (options.driver == IneqOptions::Driver::kCertified) {
      return certified.status();
    }
  }
  if (stats != nullptr) {
    stats->k = p.hash_range;
    stats->i1_atoms = p.i1.size();
    stats->i2_atoms = p.i2_count;
    stats->family_size = family.size();
    stats->certified = family.certified();
  }
  return family;
}

// S'_j: extends S_j with primed columns x' = h(x) for x ∈ U_j ∩ V1.
NamedRelation ExtendHashed(const Plan& p, const NamedRelation& s,
                           const ColoringFamily& family, size_t member) {
  std::vector<int> v1_cols;
  std::vector<AttrId> attrs = s.attrs();
  for (size_t i = 0; i < s.attrs().size(); ++i) {
    if (IsV1(p, s.attrs()[i])) {
      v1_cols.push_back(static_cast<int>(i));
      attrs.push_back(Prime(*p.q, s.attrs()[i]));
    }
  }
  NamedRelation out{attrs};
  out.rel().Reserve(s.size());
  ValueVec row(attrs.size());
  for (size_t r = 0; r < s.size(); ++r) {
    for (size_t i = 0; i < s.arity(); ++i) row[i] = s.rel().At(r, i);
    for (size_t i = 0; i < v1_cols.size(); ++i) {
      row[s.arity() + i] = family.Color(member, s.rel().At(r, v1_cols[i]));
    }
    out.rel().Add(row);
  }
  return out;
}

// Whether (a, b) or (b, a) is an I1 pair.
bool IsI1Pair(const Plan& p, VarId a, VarId b) {
  for (VarId l : p.partners[a]) {
    if (l == b) return true;
  }
  return false;
}

// Algorithm 1 for one coloring. On success, `rels` holds the final P_u's.
// Returns false if some P_u became empty (Q_h(d) = {}).
Result<bool> Algorithm1(const Plan& p, const ColoringFamily& family,
                        size_t member, const IneqOptions& options,
                        IneqStats* stats, std::vector<NamedRelation>* rels) {
  int nv = p.q->NumVariables();
  rels->clear();
  for (const NamedRelation& s : p.base) {
    rels->push_back(ExtendHashed(p, s, family, member));
    if (rels->back().empty()) return false;
  }
  for (int j : p.tree.bottom_up) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    NamedRelation& pj = (*rels)[j];
    NamedRelation& pu = (*rels)[u];
#ifndef NDEBUG
    {
      std::vector<AttrId> cur = pj.attrs();
      std::sort(cur.begin(), cur.end());
      PQ_DCHECK(cur == p.y[j], "P_j attributes must equal Y_j after children");
    }
#endif
    // π_{Y_j ∩ Y_u}(P_j).
    std::vector<AttrId> shared;
    std::set_intersection(p.y[j].begin(), p.y[j].end(), p.y[u].begin(),
                          p.y[u].end(), std::back_inserter(shared));
    NamedRelation projected = Project(pj, shared);

    // Selection F: primed pairs x'_i != x'_l with (x_i, x_l) ∈ I1,
    // x'_i ∈ Y_j − U'_u (arriving from j) and x'_l in P_u's current
    // attributes but not in Y_j.
    std::vector<AttrId> out_attrs = pu.attrs();
    for (AttrId a : projected.attrs()) {
      if (!pu.HasAttr(a)) out_attrs.push_back(a);
    }
    auto col_of = [&out_attrs](AttrId a) {
      for (size_t i = 0; i < out_attrs.size(); ++i) {
        if (out_attrs[i] == a) return static_cast<int>(i);
      }
      return -1;
    };
    JoinOptions join_options;
    join_options.max_output_rows = options.max_rows;
    if (p.formula == nullptr) {
      const std::vector<VarId> u_vars = p.q->body[u].Variables();
      auto in_uprime_u = [&](AttrId primed) {
        // x' ∈ U'_u iff its base variable lies in U_u.
        VarId base = primed - nv;
        return std::find(u_vars.begin(), u_vars.end(), base) != u_vars.end();
      };
      for (AttrId aj : shared) {
        if (aj < nv) continue;  // only primed attrs carry I1 checks
        if (in_uprime_u(aj)) continue;  // x'_i ∈ U'_u: checked elsewhere
        VarId xi = aj - nv;
        for (AttrId al : pu.attrs()) {
          if (al < nv) continue;
          if (std::binary_search(p.y[j].begin(), p.y[j].end(), al)) continue;
          VarId xl = al - nv;
          if (!IsI1Pair(p, xi, xl)) continue;
          join_options.post_filter.Add(
              Constraint::NeqCols(col_of(al), col_of(aj)));
        }
      }
    }
    PQ_ASSIGN_OR_RETURN(pu, NaturalJoin(pu, projected, join_options));
    if (stats != nullptr) {
      stats->peak_rows = std::max(stats->peak_rows, pu.size());
    }
    if (pu.empty()) return false;
  }
  if (p.formula != nullptr) {
    // Formula mode: apply φ at the root, on the primed (color) columns.
    NamedRelation& root = (*rels)[p.tree.root];
    std::vector<int> col_of_var(p.q->NumVariables(), -1);
    for (VarId x : p.v1) {
      col_of_var[x] = root.ColumnOf(Prime(*p.q, x));
      PQ_CHECK(col_of_var[x] >= 0,
               "formula variable's primed attribute missing at the root");
    }
    NamedRelation filtered{root.attrs()};
    for (size_t r = 0; r < root.size(); ++r) {
      auto row = root.rel().Row(r);
      auto value_of = [&](const Term& t) -> Value {
        return t.is_var() ? row[col_of_var[t.var()]]
                          : family.Color(member, t.value());
      };
      if (p.formula->Evaluate(value_of)) filtered.rel().Add(row);
    }
    root = std::move(filtered);
    return !root.empty();
  }
  return true;
}

// Algorithm 2 for one coloring: assumes Algorithm 1 succeeded on `rels`.
Result<Relation> Algorithm2(const Plan& p, const IneqOptions& options,
                            std::vector<NamedRelation>* rels) {
  const ConjunctiveQuery& q = *p.q;
  // Step 1: downward semijoins.
  for (int j : p.tree.top_down) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    (*rels)[j] = Semijoin((*rels)[j], (*rels)[u]);
  }
  // Head variables per subtree (unprimed).
  std::vector<VarId> head_vars = q.HeadVariables();
  size_t m = p.tree.size();
  std::vector<std::vector<AttrId>> subtree_head(m);
  Hypergraph h = q.BuildHypergraph();
  for (int j : p.tree.bottom_up) {
    std::vector<AttrId> acc;
    for (VarId x : h.edge(j)) {
      if (std::find(head_vars.begin(), head_vars.end(), x) != head_vars.end()) {
        acc.push_back(x);
      }
    }
    for (int c : p.tree.children[j]) {
      acc.insert(acc.end(), subtree_head[c].begin(), subtree_head[c].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }
  // Step 2: upward join-and-project with Z_j = (Y_j ∩ Y_u) ∪ (Z ∩ at(T[j])).
  JoinOptions join_options;
  join_options.max_output_rows = options.max_rows;
  for (int j : p.tree.bottom_up) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : (*rels)[j].attrs()) {
      if ((*rels)[u].HasAttr(a)) zj.push_back(a);
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    NamedRelation projected = Project((*rels)[j], zj);
    PQ_ASSIGN_OR_RETURN((*rels)[u],
                        NaturalJoin((*rels)[u], projected, join_options));
  }
  // Step 3: project the root onto Z and map through the head.
  NamedRelation bindings = Project((*rels)[p.tree.root], head_vars);
  return BindingsToAnswers(bindings, q.head);
}

// Shared decision driver: try colorings until one succeeds.
Result<bool> DriveNonempty(const Plan& p, const IneqOptions& options,
                           IneqStats* stats) {
  if (p.always_false) return false;
  PQ_ASSIGN_OR_RETURN(ColoringFamily family, MakeFamily(p, options, stats));
  std::vector<NamedRelation> rels;
  for (size_t m = 0; m < family.size(); ++m) {
    if (stats != nullptr) stats->trials = m + 1;
    PQ_ASSIGN_OR_RETURN(bool nonempty,
                        Algorithm1(p, family, m, options, stats, &rels));
    if (nonempty) return true;
  }
  return false;
}

// Shared evaluation driver: union Q_h(d) over the whole family.
Result<Relation> DriveEvaluate(const Plan& p, const IneqOptions& options,
                               IneqStats* stats) {
  Relation answers(p.q->head.size());
  if (p.always_false) return answers;
  PQ_ASSIGN_OR_RETURN(ColoringFamily family, MakeFamily(p, options, stats));
  std::vector<NamedRelation> rels;
  for (size_t m = 0; m < family.size(); ++m) {
    if (stats != nullptr) stats->trials = m + 1;
    PQ_ASSIGN_OR_RETURN(bool nonempty,
                        Algorithm1(p, family, m, options, stats, &rels));
    if (!nonempty) continue;
    PQ_ASSIGN_OR_RETURN(Relation qh, Algorithm2(p, options, &rels));
    for (size_t r = 0; r < qh.size(); ++r) answers.Add(qh.Row(r));
  }
  answers.SortAndDedup();
  return answers;
}

}  // namespace

Result<bool> IneqNonempty(const Database& db, const ConjunctiveQuery& q,
                          const IneqOptions& options, IneqStats* stats) {
  PQ_ASSIGN_OR_RETURN(Plan p, BuildPlan(db, q));
  return DriveNonempty(p, options, stats);
}

Result<Relation> IneqEvaluate(const Database& db, const ConjunctiveQuery& q,
                              const IneqOptions& options, IneqStats* stats) {
  PQ_ASSIGN_OR_RETURN(Plan p, BuildPlan(db, q));
  return DriveEvaluate(p, options, stats);
}

Result<bool> IneqFormulaNonempty(const Database& db, const ConjunctiveQuery& q,
                                 const IneqFormula& phi,
                                 const IneqOptions& options,
                                 IneqStats* stats) {
  PQ_ASSIGN_OR_RETURN(Plan p, BuildFormulaPlan(db, q, phi));
  return DriveNonempty(p, options, stats);
}

Result<Relation> IneqFormulaEvaluate(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const IneqFormula& phi,
                                     const IneqOptions& options,
                                     IneqStats* stats) {
  PQ_ASSIGN_OR_RETURN(Plan p, BuildFormulaPlan(db, q, phi));
  return DriveEvaluate(p, options, stats);
}

Result<bool> IneqContains(const Database& db, const ConjunctiveQuery& q,
                          const std::vector<Value>& tuple,
                          const IneqOptions& options, IneqStats* stats) {
  if (tuple.size() != q.head.size()) {
    return Status::InvalidArgument("tuple arity does not match query head");
  }
  return IneqNonempty(db, q.BindHead(tuple), options, stats);
}

}  // namespace paraquery

#include "eval/naive.hpp"

#include <algorithm>

#include "common/fault_injection.hpp"
#include "eval/common.hpp"
#include "obs/trace.hpp"
#include "plan/planner.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

// One depth of the backtracking search: an atom relation plus a hash index
// keyed on the columns whose variables are already bound when the search
// reaches this depth. With the static atom order, the bound-variable set at
// each depth is known up front, so each level probes its index instead of
// scanning the relation.
struct Level {
  std::vector<int> key_cols;    // columns probed via the index
  std::vector<VarId> key_vars;  // variable supplying each key column
  std::vector<int> free_cols;   // columns bound by this level
  std::vector<VarId> free_vars;
  RowIndex index;               // over atom_rels[depth], keyed on key_cols
  ValueVec key_scratch;         // probe key buffer (size = key_cols.size())
};

// Backtracking search state over atom relations.
struct Search {
  const ConjunctiveQuery& q;
  std::vector<NamedRelation> atom_rels;  // S_j per body atom
  std::vector<Level> levels;             // parallel to atom_rels
  std::vector<Value> binding;            // VarId -> value
  std::vector<bool> bound;
  uint64_t steps = 0;
  uint64_t max_steps = 0;
  bool stop_at_first = false;
  Status status = Status::OK();

  // Bindings accumulated for the full-evaluation mode.
  NamedRelation* out_bindings = nullptr;
  std::vector<VarId> out_vars;

  // Abort state of the running query (null = unhardened). Polled every
  // 1024 search steps, so deadline/cancel aborts interrupt even a search
  // whose step budget is off.
  const QueryContext* qc = nullptr;

  bool CompareOk(const CompareAtom& c) const {
    auto value_of = [this](const Term& t, Value* v) {
      if (t.is_const()) {
        *v = t.value();
        return true;
      }
      if (bound[t.var()]) {
        *v = binding[t.var()];
        return true;
      }
      return false;
    };
    Value a, b;
    if (!value_of(c.lhs, &a) || !value_of(c.rhs, &b)) return true;  // deferred
    return CompareAtom::Apply(c.op, a, b);
  }

  bool AllComparesOk() const {
    for (const CompareAtom& c : q.comparisons) {
      if (!CompareOk(c)) return false;
    }
    return true;
  }

  // Returns true when the search should stop (witness found in decision
  // mode, or abort).
  bool Dfs(size_t atom_idx) {
    ++steps;
    if (max_steps != 0 && steps > max_steps) {
      status = Status::ResourceExhausted("naive evaluation step limit");
      return true;
    }
    if ((steps & 1023) == 0 && qc != nullptr && qc->Aborted()) {
      status = qc->Check();
      return true;
    }
    if (atom_idx == atom_rels.size()) {
      if (out_bindings != nullptr) {
        ValueVec row(out_vars.size());
        for (size_t i = 0; i < out_vars.size(); ++i) {
          row[i] = binding[out_vars[i]];
        }
        out_bindings->rel().Add(row);
      }
      return stop_at_first;
    }
    Level& lvl = levels[atom_idx];
    const Relation& rel = atom_rels[atom_idx].rel();
    for (size_t i = 0; i < lvl.key_vars.size(); ++i) {
      lvl.key_scratch[i] = binding[lvl.key_vars[i]];
    }
    // The index chain enumerates exactly the rows agreeing with the current
    // binding on every already-bound variable of this atom; the remaining
    // columns carry fresh variables (distinct within the atom), so every
    // chained row extends the binding consistently.
    for (uint32_t r = lvl.index.Find(lvl.key_scratch); r != RowIndex::kNone;
         r = lvl.index.Next(r)) {
      for (size_t i = 0; i < lvl.free_cols.size(); ++i) {
        VarId var = lvl.free_vars[i];
        bound[var] = true;
        binding[var] = rel.At(r, lvl.free_cols[i]);
      }
      if (AllComparesOk() && Dfs(atom_idx + 1)) return true;
      for (VarId var : lvl.free_vars) bound[var] = false;
    }
    return false;
  }
};

Result<Search> Prepare(const Database& db, const ConjunctiveQuery& q,
                       const NaiveOptions& options, bool stop_at_first,
                       NamedRelation* out_bindings) {
  PQ_RETURN_NOT_OK(q.Validate());
  Search s{q, {}, {}, {}, {}, 0, options.EffectiveLimits().max_steps,
           stop_at_first, Status::OK(), out_bindings, {}};
  s.qc = options.runtime.query_ctx;
  // S_j per atom. Constant-free, repetition-free atoms come back as zero-copy
  // views over the stored relations (shared row blocks), so a query touching
  // the same relation k times holds one copy of its rows, not k. The
  // per-depth RowIndexes below borrow that shared storage; copy-on-write
  // keeps it stable for the lifetime of the search.
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(db, a));
    s.atom_rels.push_back(std::move(rel));
  }
  // Static join order: the planner's greedy smallest-relation-first order
  // with bound-variable propagation (shared with PlanCyclicCq, so the
  // backtracking search and the plan executor explore atoms identically).
  {
    std::vector<NamedRelation>& rels = s.atom_rels;
    std::vector<size_t> order = GreedyAtomOrder(rels, q.NumVariables());
    std::vector<NamedRelation> ordered;
    ordered.reserve(rels.size());
    for (size_t i : order) ordered.push_back(std::move(rels[i]));
    rels = std::move(ordered);
  }
  // Per-depth indexes: with the order fixed, the variables bound before
  // depth d are exactly those of atoms 0..d-1, so each atom's columns split
  // statically into probe-key columns and freshly-bound columns.
  {
    std::vector<bool> bound_var(std::max(1, q.NumVariables()), false);
    s.levels.reserve(s.atom_rels.size());
    for (const NamedRelation& rel : s.atom_rels) {
      std::vector<int> key_cols, free_cols;
      std::vector<VarId> key_vars, free_vars;
      for (size_t c = 0; c < rel.attrs().size(); ++c) {
        VarId var = rel.attrs()[c];
        if (bound_var[var]) {
          key_cols.push_back(static_cast<int>(c));
          key_vars.push_back(var);
        } else {
          free_cols.push_back(static_cast<int>(c));
          free_vars.push_back(var);
          bound_var[var] = true;
        }
      }
      RowIndex index(rel.rel(), key_cols);
      ValueVec scratch(key_cols.size());
      s.levels.push_back(Level{std::move(key_cols), std::move(key_vars),
                               std::move(free_cols), std::move(free_vars),
                               std::move(index), std::move(scratch)});
    }
  }
  s.binding.assign(std::max(1, q.NumVariables()), 0);
  s.bound.assign(std::max(1, q.NumVariables()), false);
  return s;
}

}  // namespace

Result<Relation> NaiveEvaluateCq(const Database& db, const ConjunctiveQuery& q,
                                 const NaiveOptions& options,
                                 PlanStats* plan_stats) {
  PQ_FAULT_POINT("naive.plan");
  TraceSpan route_span(options.runtime.tracer, "route.cyclic");
  PlannerOptions planner;
  planner.vectorize = options.vectorize;
  planner.wcoj = options.wcoj;
  if (options.plan_cache != nullptr) {
    // Cached route: plan the canonical query once per database generation;
    // renaming-equivalent repeats (and UCQ disjuncts) reuse it. Binding
    // attributes are canonical ids, so answers map through the canonical
    // head. The key carries the vectorize and wcoj flags — a plan built for
    // one physical configuration must not satisfy a request for another.
    CanonicalCq canonical = CanonicalizeCq(q);
    std::string key = internal::StrCat(
        options.vectorize ? "cq-cyc:" : "cq-cyc-row:",
        options.wcoj ? "" : "nowcoj:", canonical.signature);
    std::shared_ptr<PhysicalPlan> plan =
        options.plan_cache->Lookup<PhysicalPlan>(key, db);
    if (plan == nullptr) {
      PQ_ASSIGN_OR_RETURN(PhysicalPlan built,
                          PlanCyclicCq(db, canonical.query, planner));
      plan = std::make_shared<PhysicalPlan>(std::move(built));
      options.plan_cache->Insert(key, db, canonical.query, plan);
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation bindings,
                        ExecutePhysicalPlan(*plan, options.EffectiveLimits(),
                                            plan_stats, options.runtime));
    return BindingsToAnswers(bindings, canonical.query.head);
  }
  PQ_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanCyclicCq(db, q, planner));
  PQ_ASSIGN_OR_RETURN(NamedRelation bindings,
                      ExecutePhysicalPlan(plan, options.EffectiveLimits(),
                                          plan_stats, options.runtime));
  return BindingsToAnswers(bindings, q.head);
}

Result<Relation> BacktrackEvaluateCq(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const NaiveOptions& options) {
  TraceSpan route_span(options.runtime.tracer, "route.backtrack");
  NamedRelation bindings{q.HeadVariables()};
  PQ_ASSIGN_OR_RETURN(
      Search s, Prepare(db, q, options, /*stop_at_first=*/false, &bindings));
  s.out_vars = q.HeadVariables();
  // Constant/constant comparisons may already refute the query.
  if (!s.AllComparesOk()) return Relation(q.head.size());
  s.Dfs(0);
  PQ_RETURN_NOT_OK(s.status);
  bindings.rel().HashDedup();
  return BindingsToAnswers(bindings, q.head);
}

Result<bool> NaiveCqNonempty(const Database& db, const ConjunctiveQuery& q,
                             const NaiveOptions& options) {
  TraceSpan route_span(options.runtime.tracer, "route.backtrack");
  PQ_ASSIGN_OR_RETURN(
      Search s, Prepare(db, q, options, /*stop_at_first=*/true, nullptr));
  if (!s.AllComparesOk()) return false;
  bool found = s.Dfs(0);
  PQ_RETURN_NOT_OK(s.status);
  return found;
}

Result<bool> NaiveCqContains(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<Value>& tuple,
                             const NaiveOptions& options) {
  if (tuple.size() != q.head.size()) {
    return Status::InvalidArgument("tuple arity does not match query head");
  }
  return NaiveCqNonempty(db, q.BindHead(tuple), options);
}

}  // namespace paraquery

#include "eval/naive.hpp"

#include <algorithm>

#include "eval/common.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

// Backtracking search state over atom relations.
struct Search {
  const ConjunctiveQuery& q;
  std::vector<NamedRelation> atom_rels;  // S_j per body atom
  std::vector<Value> binding;            // VarId -> value
  std::vector<bool> bound;
  uint64_t steps = 0;
  uint64_t max_steps;
  bool stop_at_first;
  Status status = Status::OK();

  // Bindings accumulated for the full-evaluation mode.
  NamedRelation* out_bindings;
  std::vector<VarId> out_vars;

  bool CompareOk(const CompareAtom& c) const {
    auto value_of = [this](const Term& t, Value* v) {
      if (t.is_const()) {
        *v = t.value();
        return true;
      }
      if (bound[t.var()]) {
        *v = binding[t.var()];
        return true;
      }
      return false;
    };
    Value a, b;
    if (!value_of(c.lhs, &a) || !value_of(c.rhs, &b)) return true;  // deferred
    return CompareAtom::Apply(c.op, a, b);
  }

  bool AllComparesOk() const {
    for (const CompareAtom& c : q.comparisons) {
      if (!CompareOk(c)) return false;
    }
    return true;
  }

  // Returns true when the search should stop (witness found in decision
  // mode, or abort).
  bool Dfs(size_t atom_idx) {
    if (max_steps != 0 && ++steps > max_steps) {
      status = Status::ResourceExhausted("naive evaluation step limit");
      return true;
    }
    if (atom_idx == atom_rels.size()) {
      if (out_bindings != nullptr) {
        ValueVec row(out_vars.size());
        for (size_t i = 0; i < out_vars.size(); ++i) {
          row[i] = binding[out_vars[i]];
        }
        out_bindings->rel().Add(row);
      }
      return stop_at_first;
    }
    const NamedRelation& rel = atom_rels[atom_idx];
    const auto& attrs = rel.attrs();
    // Restrict the scan to the rows matching the bound prefix (relations are
    // kept lexicographically sorted): the classical index-assisted
    // backtracking — still n^{O(q)} worst case, but without a full-relation
    // scan at every search node.
    size_t prefix = 0;
    while (prefix < attrs.size() && bound[attrs[prefix]]) ++prefix;
    size_t lo = 0, hi = rel.size();
    if (prefix > 0) {
      auto cmp_prefix = [&](size_t row) {
        // <0 if row-prefix < binding, 0 if equal, >0 if greater.
        for (size_t i = 0; i < prefix; ++i) {
          Value v = rel.rel().At(row, i);
          Value b = binding[attrs[i]];
          if (v < b) return -1;
          if (v > b) return 1;
        }
        return 0;
      };
      size_t a = 0, b = rel.size();
      while (a < b) {  // first row with prefix >= binding
        size_t mid = a + (b - a) / 2;
        if (cmp_prefix(mid) < 0) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      lo = a;
      b = rel.size();
      while (a < b) {  // first row with prefix > binding
        size_t mid = a + (b - a) / 2;
        if (cmp_prefix(mid) <= 0) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      hi = a;
    }
    for (size_t r = lo; r < hi; ++r) {
      // Check consistency with current binding; bind new variables.
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (size_t i = prefix; i < attrs.size(); ++i) {
        Value v = rel.rel().At(r, i);
        VarId var = attrs[i];
        if (bound[var]) {
          if (binding[var] != v) {
            ok = false;
            break;
          }
        } else {
          bound[var] = true;
          binding[var] = v;
          newly_bound.push_back(var);
        }
      }
      if (ok) ok = AllComparesOk();
      if (ok && Dfs(atom_idx + 1)) return true;
      for (VarId var : newly_bound) bound[var] = false;
    }
    return false;
  }
};

Result<Search> Prepare(const Database& db, const ConjunctiveQuery& q,
                       const NaiveOptions& options, bool stop_at_first,
                       NamedRelation* out_bindings) {
  PQ_RETURN_NOT_OK(q.Validate());
  Search s{q,
           {},
           {},
           {},
           0,
           options.max_steps,
           stop_at_first,
           Status::OK(),
           out_bindings,
           {}};
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(db, a));
    s.atom_rels.push_back(std::move(rel));
  }
  // Static join order: start from the smallest relation, then repeatedly
  // take the atom sharing a variable with the atoms chosen so far (smallest
  // first), falling back to the smallest remaining atom when the query is
  // disconnected. Avoids accidental cross products in the backtracking.
  {
    std::vector<NamedRelation>& rels = s.atom_rels;
    std::vector<bool> used(rels.size(), false);
    std::vector<bool> bound_var(std::max(1, q.NumVariables()), false);
    std::vector<NamedRelation> ordered;
    ordered.reserve(rels.size());
    for (size_t step = 0; step < rels.size(); ++step) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < rels.size(); ++i) {
        if (used[i]) continue;
        bool connected = false;
        for (AttrId a : rels[i].attrs()) {
          if (bound_var[a]) {
            connected = true;
            break;
          }
        }
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             rels[i].size() < rels[best].size())) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      used[best] = true;
      for (AttrId a : rels[best].attrs()) bound_var[a] = true;
      ordered.push_back(std::move(rels[best]));
    }
    rels = std::move(ordered);
  }
  s.binding.assign(std::max(1, q.NumVariables()), 0);
  s.bound.assign(std::max(1, q.NumVariables()), false);
  return s;
}

}  // namespace

Result<Relation> NaiveEvaluateCq(const Database& db, const ConjunctiveQuery& q,
                                 const NaiveOptions& options) {
  NamedRelation bindings{q.HeadVariables()};
  PQ_ASSIGN_OR_RETURN(
      Search s, Prepare(db, q, options, /*stop_at_first=*/false, &bindings));
  s.out_vars = q.HeadVariables();
  // Constant/constant comparisons may already refute the query.
  if (!s.AllComparesOk()) return Relation(q.head.size());
  s.Dfs(0);
  PQ_RETURN_NOT_OK(s.status);
  bindings.rel().SortAndDedup();
  return BindingsToAnswers(bindings, q.head);
}

Result<bool> NaiveCqNonempty(const Database& db, const ConjunctiveQuery& q,
                             const NaiveOptions& options) {
  PQ_ASSIGN_OR_RETURN(
      Search s, Prepare(db, q, options, /*stop_at_first=*/true, nullptr));
  if (!s.AllComparesOk()) return false;
  bool found = s.Dfs(0);
  PQ_RETURN_NOT_OK(s.status);
  return found;
}

Result<bool> NaiveCqContains(const Database& db, const ConjunctiveQuery& q,
                             const std::vector<Value>& tuple,
                             const NaiveOptions& options) {
  if (tuple.size() != q.head.size()) {
    return Status::InvalidArgument("tuple arity does not match query head");
  }
  return NaiveCqNonempty(db, q.BindHead(tuple), options);
}

}  // namespace paraquery

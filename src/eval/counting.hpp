// Counting evaluation for conjunctive queries: answers COUNT(*) and
// per-group counting queries (AnswerSpec) without materializing the join
// output. Acyclic comparison-free queries run the counting-Yannakakis
// schedule (semijoin reducer passes, then an upward multiplicity-folding
// pass of Aggregate + SemijoinCount nodes); comparison-free cyclic queries
// run the same pass over the hypertree-decomposition bag tree; everything
// else enumerates the distinct body-variable assignments through the
// general planner and aggregates at the root — all under the caller's
// ResourceLimits, all through the shared plan executor.
#ifndef PARAQUERY_EVAL_COUNTING_H_
#define PARAQUERY_EVAL_COUNTING_H_

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the counting evaluator.
struct CountingOptions {
  /// Unified resource guard (row caps, step budget, deadline, memory).
  ResourceLimits limits;
  /// Parallel runtime binding (default: sequential plan execution).
  RuntimeOptions runtime;
  /// Cross-query plan cache (optional, engine-owned): counting plans are
  /// cached under "cq-cnt:" + CanonicalCqSignature — the signature carries
  /// the answer shape, so a counting plan is never served for a tuple query
  /// over the same text (or vice versa).
  PlanCache* plan_cache = nullptr;
  /// Acyclic plans: include the downward semijoin pass (ablation knob).
  bool full_reducer = true;
  /// Forwarded to the enumeration fallback's planner.
  bool vectorize = true;
  /// Comparison-free cyclic queries: count over the hypertree-decomposition
  /// bag tree (leapfrog bags) instead of enumerate-then-aggregate.
  bool wcoj = true;
};

/// Evaluates a counting CQ (`q.answer.counting()` must hold). The result is
/// the counting answer shape: COUNT(*) yields a single-column single-row
/// relation holding the count (a 0 row when the query is empty); a grouped
/// count yields one row per nonempty group — the group keys in head order
/// plus the trailing count — sorted by group. `plan_stats`, when given,
/// receives the shared executor's counters (peak_intermediate_rows stays
/// bounded by the input and semijoin sizes on the counting-Yannakakis route).
Result<Relation> CountingEvaluate(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const CountingOptions& options = {},
                                  PlanStats* plan_stats = nullptr);

/// Groups `distinct_rows` (assumed duplicate-free) by the value tuple at
/// `group_cols` and returns one row per group — the group values followed by
/// the member count — sorted by group. Empty `group_cols` yields the scalar
/// shape: a single [n] row (including [0] for an empty input). Shared by the
/// active-domain and union-of-CQs counting routes, which count materialized
/// enumerations.
Relation GroupCountRows(const Relation& distinct_rows,
                        const std::vector<int>& group_cols);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_COUNTING_H_

// First-order (relational calculus) evaluation under active-domain
// semantics: each subformula is evaluated to a relation over its free
// variables; ¬ complements against adom^arity, ∃ projects, ∀ divides.
// Worst case n^{O(v)} — the paper's point is precisely that this
// exponential dependence on the number of variables is unavoidable
// (Theorem 1: W[P]-hard under parameter v).
#ifndef PARAQUERY_EVAL_FO_H_
#define PARAQUERY_EVAL_FO_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/first_order_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the first-order evaluator.
struct FoOptions {
  /// Cap on any intermediate relation (complements/domain powers can reach
  /// |adom|^arity rows). Exceeding it fails with ResourceExhausted.
  uint64_t max_rows = 10'000'000;
  /// Hardening binding: runtime.query_ctx (deadline, cancellation, memory
  /// budget) is polled at every subformula and inside the division group
  /// scan, so a runaway active-domain evaluation aborts cooperatively. The
  /// evaluator itself stays sequential — the scheduler is unused here.
  RuntimeOptions runtime;
};

/// Computes Q(d) over the active domain of `db`. Fails with InvalidArgument
/// on an empty active domain (quantifier semantics over the empty structure
/// are not supported).
Result<Relation> EvaluateFirstOrder(const Database& db,
                                    const FirstOrderQuery& q,
                                    const FoOptions& options = {});

/// Decides whether Q(d) is nonempty.
Result<bool> FirstOrderNonempty(const Database& db, const FirstOrderQuery& q,
                                const FoOptions& options = {});

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_FO_H_

#include "eval/acyclic.hpp"

#include <algorithm>

#include "eval/common.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"

namespace paraquery {

namespace {

// Legacy-stat mirror: AcyclicStats predates the plan IR and is kept for
// existing callers (benches, tests); PlanStats is the authoritative record.
void MirrorStats(const PlanStats& plan, AcyclicStats* stats) {
  if (stats == nullptr) return;
  stats->semijoins += plan.semijoins;
  stats->joins += plan.joins;
  stats->peak_intermediate_rows =
      std::max(stats->peak_intermediate_rows, plan.peak_intermediate_rows);
  stats->shared_atom_storage += plan.shared_atom_storage;
  stats->zero_copy_projections += plan.zero_copy_projections;
}

Result<NamedRelation> PlanAndExecute(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const AcyclicOptions& options,
                                     bool decision_only, AcyclicStats* stats,
                                     PlanStats* plan_stats) {
  PlannerOptions popt;
  popt.full_reducer = options.full_reducer;
  PQ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                      decision_only ? PlanAcyclicDecision(db, q, popt)
                                    : PlanAcyclicCq(db, q, popt));
  // Execute into a local so only THIS call's counters are mirrored and
  // merged — callers may reuse the same out-params across a workload.
  PlanStats local;
  auto result = ExecutePhysicalPlan(plan, options.EffectiveLimits(), &local,
                                    options.runtime);
  if (plan_stats != nullptr) plan_stats->Merge(local);
  MirrorStats(local, stats);
  return result;
}

}  // namespace

Result<bool> AcyclicNonempty(const Database& db, const ConjunctiveQuery& q,
                             const AcyclicOptions& options,
                             AcyclicStats* stats, PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(NamedRelation root,
                      PlanAndExecute(db, q, options, /*decision_only=*/true,
                                     stats, plan_stats));
  return !root.empty();
}

Result<Relation> AcyclicEvaluate(const Database& db, const ConjunctiveQuery& q,
                                 const AcyclicOptions& options,
                                 AcyclicStats* stats, PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(NamedRelation bindings,
                      PlanAndExecute(db, q, options, /*decision_only=*/false,
                                     stats, plan_stats));
  return BindingsToAnswers(bindings, q.head);
}

}  // namespace paraquery

#include "eval/acyclic.hpp"

#include <algorithm>

#include "common/fault_injection.hpp"
#include "eval/common.hpp"
#include "obs/trace.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"

namespace paraquery {

namespace {

// Legacy-stat mirror: AcyclicStats predates the plan IR and is kept for
// existing callers (benches, tests); PlanStats is the authoritative record.
void MirrorStats(const PlanStats& plan, AcyclicStats* stats) {
  if (stats == nullptr) return;
  stats->semijoins += plan.semijoins;
  stats->joins += plan.joins;
  stats->peak_intermediate_rows =
      std::max(stats->peak_intermediate_rows, plan.peak_intermediate_rows);
  stats->shared_atom_storage += plan.shared_atom_storage;
  stats->zero_copy_projections += plan.zero_copy_projections;
}

// `head_out`, when non-null, receives the head terms the execution's
// binding attributes refer to (the canonical head when a cached plan was
// used — cached plans carry canonical variable ids).
Result<NamedRelation> PlanAndExecute(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const AcyclicOptions& options,
                                     bool decision_only, AcyclicStats* stats,
                                     PlanStats* plan_stats,
                                     std::vector<Term>* head_out) {
  PQ_FAULT_POINT("acyclic.plan");
  TraceSpan route_span(options.runtime.tracer, "route.acyclic");
  PlannerOptions popt;
  popt.full_reducer = options.full_reducer;
  if (head_out != nullptr) *head_out = q.head;
  std::shared_ptr<PhysicalPlan> plan;
  if (options.plan_cache != nullptr) {
    // Cache route: compile (or fetch) the plan of the CANONICAL query, so
    // every renaming-equivalent query — re-expanded UCQ disjuncts included —
    // shares one entry. The binding attributes come back as canonical ids;
    // answers are mapped through the canonical head.
    CanonicalCq canonical = CanonicalizeCq(q);
    std::string key =
        internal::StrCat(decision_only ? "cq-dec:" : "cq-eval:",
                         options.full_reducer ? "" : "nored|",
                         canonical.signature);
    plan = options.plan_cache->Lookup<PhysicalPlan>(key, db);
    if (plan == nullptr) {
      PQ_ASSIGN_OR_RETURN(
          PhysicalPlan built,
          decision_only ? PlanAcyclicDecision(db, canonical.query, popt)
                        : PlanAcyclicCq(db, canonical.query, popt));
      plan = std::make_shared<PhysicalPlan>(std::move(built));
      PQ_FAULT_POINT("acyclic.cache.insert");
      options.plan_cache->Insert(key, db, canonical.query, plan);
    }
    if (head_out != nullptr) *head_out = canonical.query.head;
  } else {
    PQ_ASSIGN_OR_RETURN(PhysicalPlan built,
                        decision_only ? PlanAcyclicDecision(db, q, popt)
                                      : PlanAcyclicCq(db, q, popt));
    plan = std::make_shared<PhysicalPlan>(std::move(built));
  }
  // Execute into a local so only THIS call's counters are mirrored and
  // merged — callers may reuse the same out-params across a workload.
  PlanStats local;
  auto result = ExecutePhysicalPlan(*plan, options.EffectiveLimits(), &local,
                                    options.runtime);
  if (plan_stats != nullptr) plan_stats->Merge(local);
  MirrorStats(local, stats);
  return result;
}

}  // namespace

Result<bool> AcyclicNonempty(const Database& db, const ConjunctiveQuery& q,
                             const AcyclicOptions& options,
                             AcyclicStats* stats, PlanStats* plan_stats) {
  PQ_ASSIGN_OR_RETURN(NamedRelation root,
                      PlanAndExecute(db, q, options, /*decision_only=*/true,
                                     stats, plan_stats, /*head_out=*/nullptr));
  return !root.empty();
}

Result<Relation> AcyclicEvaluate(const Database& db, const ConjunctiveQuery& q,
                                 const AcyclicOptions& options,
                                 AcyclicStats* stats, PlanStats* plan_stats) {
  std::vector<Term> head;
  PQ_ASSIGN_OR_RETURN(NamedRelation bindings,
                      PlanAndExecute(db, q, options, /*decision_only=*/false,
                                     stats, plan_stats, &head));
  return BindingsToAnswers(bindings, head);
}

}  // namespace paraquery

#include "eval/acyclic.hpp"

#include <algorithm>

#include "eval/common.hpp"
#include "hypergraph/join_tree.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

struct Prepared {
  std::vector<NamedRelation> rels;  // S_j per atom (tree node)
  JoinTree tree;
};

Status CheckSupported(const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.HasComparisons()) {
    return Status::InvalidArgument(
        "acyclic evaluator does not accept comparison atoms (use the "
        "inequality evaluator)");
  }
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  return Status::OK();
}

Result<Prepared> Prepare(const Database& db, const ConjunctiveQuery& q,
                         AcyclicStats* stats) {
  Prepared p;
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(a.relation));
    PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(db.relation(id), a));
    // Constant-free, repetition-free atoms come back as views over the
    // stored rows — the cost-free S_j the semijoin pipeline assumes.
    if (stats != nullptr && rel.rel().SharesStorageWith(db.relation(id))) {
      ++stats->shared_atom_storage;
    }
    p.rels.push_back(std::move(rel));
  }
  Hypergraph h = q.BuildHypergraph();
  auto tree = BuildJoinTree(h);
  if (!tree.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", tree.status().message()));
  }
  p.tree = std::move(tree).value();
  return p;
}

void Track(AcyclicStats* stats, const NamedRelation& rel) {
  if (stats != nullptr) {
    stats->peak_intermediate_rows =
        std::max(stats->peak_intermediate_rows, rel.size());
  }
}

// Bottom-up semijoin pass: after it, the root is empty iff the join is
// empty. Returns false if some relation became empty.
bool UpwardSemijoinPass(Prepared* p, AcyclicStats* stats) {
  for (int j : p->tree.bottom_up) {
    int u = p->tree.parent[j];
    if (u < 0) continue;
    p->rels[u] = Semijoin(p->rels[u], p->rels[j]);
    if (stats != nullptr) ++stats->semijoins;
    if (p->rels[u].empty()) return false;
  }
  return true;
}

}  // namespace

Result<bool> AcyclicNonempty(const Database& db, const ConjunctiveQuery& q,
                             const AcyclicOptions& options,
                             AcyclicStats* stats) {
  (void)options;
  PQ_RETURN_NOT_OK(CheckSupported(q));
  PQ_ASSIGN_OR_RETURN(Prepared p, Prepare(db, q, stats));
  for (const NamedRelation& rel : p.rels) {
    if (rel.empty()) return false;
  }
  return UpwardSemijoinPass(&p, stats);
}

Result<Relation> AcyclicEvaluate(const Database& db, const ConjunctiveQuery& q,
                                 const AcyclicOptions& options,
                                 AcyclicStats* stats) {
  PQ_RETURN_NOT_OK(CheckSupported(q));
  PQ_ASSIGN_OR_RETURN(Prepared p, Prepare(db, q, stats));
  Relation empty(q.head.size());
  for (const NamedRelation& rel : p.rels) {
    if (rel.empty()) return empty;
  }

  if (options.full_reducer) {
    // Full reduction: upward semijoins, then downward semijoins. Afterwards
    // the relations are globally consistent (every tuple participates in
    // some result of the join).
    if (!UpwardSemijoinPass(&p, stats)) return empty;
    for (int j : p.tree.top_down) {
      int u = p.tree.parent[j];
      if (u < 0) continue;
      p.rels[j] = Semijoin(p.rels[j], p.rels[u]);
      if (stats != nullptr) ++stats->semijoins;
    }
  }

  // Head variables present in each subtree (for the projection sets Z_j).
  std::vector<VarId> head_vars = q.HeadVariables();
  auto is_head = [&head_vars](AttrId a) {
    return std::find(head_vars.begin(), head_vars.end(), a) != head_vars.end();
  };
  size_t m = p.tree.size();
  std::vector<std::vector<AttrId>> subtree_head(m);
  for (int j : p.tree.bottom_up) {
    std::vector<AttrId> acc;
    for (AttrId a : p.rels[j].attrs()) {
      if (is_head(a)) acc.push_back(a);
    }
    for (int c : p.tree.children[j]) {
      for (AttrId a : subtree_head[c]) acc.push_back(a);
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }

  // Upward join-and-project pass: P_u := P_u ⋈ π_{Z_j}(P_j) with
  // Z_j = (U_j ∩ U_u) ∪ (Z ∩ at(T[j])).
  JoinOptions join_options;
  join_options.max_output_rows = options.max_rows;
  for (int j : p.tree.bottom_up) {
    int u = p.tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : p.rels[j].attrs()) {
      if (p.rels[u].HasAttr(a)) zj.push_back(a);
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    NamedRelation projected = Project(p.rels[j], zj);
    if (stats != nullptr &&
        projected.rel().SharesStorageWith(p.rels[j].rel())) {
      ++stats->zero_copy_projections;
    }
    PQ_ASSIGN_OR_RETURN(p.rels[u],
                        NaturalJoin(p.rels[u], projected, join_options));
    if (stats != nullptr) ++stats->joins;
    Track(stats, p.rels[u]);
    if (p.rels[u].empty()) return empty;
  }

  NamedRelation root_bindings = Project(p.rels[p.tree.root], head_vars);
  if (stats != nullptr &&
      root_bindings.rel().SharesStorageWith(p.rels[p.tree.root].rel())) {
    ++stats->zero_copy_projections;
  }
  return BindingsToAnswers(root_bindings, q.head);
}

}  // namespace paraquery

#include "eval/datalog_eval.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "eval/common.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

// Cached materialization of one EDB body atom: its S_j relation plus lazily
// built join indexes, one per distinct probe-column list. EDB relations never
// change during the fixpoint, so both survive across semi-naive iterations —
// rules stop re-selecting, re-projecting, and re-indexing static data on
// every firing. (The probe columns can differ between firings because the
// left-deep join order ranks the varying delta sizes, hence the small memo
// rather than a single index.)
struct EdbAtomCache {
  NamedRelation rel;
  std::deque<std::pair<std::vector<int>, RowIndex>> indexes;

  const RowIndex& GetOrBuild(const std::vector<int>& rcols) {
    for (const auto& [cols, idx] : indexes) {
      if (cols == rcols) return idx;
    }
    indexes.emplace_back(rcols, RowIndex(rel.rel(), rcols));
    return indexes.back().second;
  }
};

// One body atom's input to a rule firing: the relation to join, plus the
// index cache when the atom is EDB (null for IDB/delta atoms, whose contents
// change between firings).
struct BodyInput {
  const NamedRelation* rel;
  EdbAtomCache* cache;
};

// Evaluates one rule body against the given atom relations via left-deep
// joins, returning the derived head tuples.
Result<Relation> FireRule(const DatalogRule& rule,
                          const std::vector<BodyInput>& body) {
  // Start from TRUE and join every atom relation (constants/repeated vars
  // were handled when the atom relations were built).
  NamedRelation acc = BooleanTrue();
  // Join smaller relations first (static heuristic).
  std::vector<size_t> order(body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&body](size_t a, size_t b) {
    return body[a].rel->size() < body[b].rel->size();
  });
  for (size_t i : order) {
    const NamedRelation& r = *body[i].rel;
    if (body[i].cache != nullptr) {
      const RowIndex& idx = body[i].cache->GetOrBuild(JoinKeyColumns(acc, r));
      PQ_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, r, idx));
    } else {
      PQ_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, r));
    }
    if (acc.empty()) break;
  }
  if (acc.empty()) return Relation(rule.head.terms.size());
  // Keep only head variables before mapping to head tuples.
  std::vector<AttrId> head_vars;
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && std::find(head_vars.begin(), head_vars.end(),
                                t.var()) == head_vars.end()) {
      head_vars.push_back(t.var());
    }
  }
  NamedRelation bindings = Project(acc, head_vars);
  return BindingsToAnswers(bindings, rule.head.terms, /*sort_output=*/false);
}

}  // namespace

Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options,
                                 DatalogStats* stats) {
  PQ_RETURN_NOT_OK(program.Validate());

  // IDB state: incrementally deduplicated full relations (a hash set each,
  // so membership and insertion stay O(1) amortized with no re-sorting
  // between iterations) and the last iteration's deltas.
  std::unordered_map<std::string, RowHashSet> idb;
  std::unordered_map<std::string, Relation> delta;
  for (const std::string& name : program.IdbRelations()) {
    size_t arity = static_cast<size_t>(program.ArityOf(name));
    idb.emplace(name, RowHashSet(arity));
    delta.emplace(name, Relation(arity));
  }

  // EDB body atoms are materialized once on first use and cached for the
  // rest of the fixpoint. Resolution stays lazy (body order, short-circuited
  // by empty earlier atoms) so that rules which can never fire do not turn a
  // dangling EDB reference into an error — matching per-firing resolution.
  std::deque<EdbAtomCache> edb_storage;
  std::vector<std::vector<EdbAtomCache*>> edb_atoms(program.rules.size());
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    edb_atoms[ri].assign(program.rules[ri].body.size(), nullptr);
  }
  auto resolve_edb = [&](size_t ri, size_t pi) -> Result<EdbAtomCache*> {
    if (edb_atoms[ri][pi] != nullptr) return edb_atoms[ri][pi];
    const Atom& a = program.rules[ri].body[pi];
    auto found = db.FindRelation(a.relation);
    if (!found.ok()) {
      return Status::NotFound(internal::StrCat(
          "EDB relation '", a.relation, "' not found in database"));
    }
    if (db.relation(found.value()).arity() != a.terms.size()) {
      return Status::InvalidArgument(internal::StrCat(
          "EDB relation '", a.relation, "' arity mismatch"));
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation rel,
                        AtomToRelation(db.relation(found.value()), a));
    // The cache lives for the whole fixpoint; drop the full-base-relation
    // capacity AtomToRelation reserved in case the selection kept few rows.
    rel.rel().ShrinkToFit();
    edb_storage.push_back(EdbAtomCache{std::move(rel), {}});
    edb_atoms[ri][pi] = &edb_storage.back();
    return edb_atoms[ri][pi];
  };

  // Resolves an IDB atom against the given snapshot.
  auto idb_atom_rel = [&](const Atom& a, const Relation& src) {
    return AtomToRelation(src, a);
  };

  auto add_new = [&](const std::string& rel_name, const Relation& tuples,
                     std::unordered_map<std::string, Relation>* next_delta,
                     bool* changed) {
    RowHashSet& full = idb.at(rel_name);
    Relation& fresh = next_delta->at(rel_name);
    for (size_t r = 0; r < tuples.size(); ++r) {
      if (full.Insert(tuples.Row(r))) {
        fresh.Add(tuples.Row(r));
        *changed = true;
      }
    }
  };

  // Iteration 0: fire every rule on the (empty) IDB state so EDB-only rules
  // seed the deltas.
  bool changed = false;
  std::unordered_map<std::string, Relation> next_delta;
  for (const auto& [name, rel] : delta) {
    next_delta.emplace(name, Relation(rel.arity()));
  }
  // Scratch: IDB atom relations materialized for the current firing (kept
  // alive here because BodyInput borrows them).
  std::deque<NamedRelation> idb_scratch;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const DatalogRule& rule = program.rules[ri];
    idb_scratch.clear();
    std::vector<BodyInput> body;
    bool feasible = true;
    for (size_t pi = 0; pi < rule.body.size(); ++pi) {
      const Atom& a = rule.body[pi];
      if (program.IsIdb(a.relation)) {
        PQ_ASSIGN_OR_RETURN(NamedRelation rel,
                            idb_atom_rel(a, idb.at(a.relation).rel()));
        idb_scratch.push_back(std::move(rel));
        body.push_back(BodyInput{&idb_scratch.back(), nullptr});
      } else {
        PQ_ASSIGN_OR_RETURN(EdbAtomCache * cache, resolve_edb(ri, pi));
        body.push_back(BodyInput{&cache->rel, cache});
      }
      if (body.back().rel->empty()) {
        feasible = false;
        break;
      }
    }
    if (stats != nullptr) ++stats->rule_firings;
    if (!feasible && !rule.body.empty()) continue;
    PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, body));
    add_new(rule.head.relation, derived, &next_delta, &changed);
  }
  delta = std::move(next_delta);
  size_t iterations = 1;

  // Semi-naive loop: a rule with IDB body atoms re-fires once per IDB body
  // position, substituting the delta at that position.
  while (changed) {
    if (options.max_iterations != 0 && iterations >= options.max_iterations) {
      return Status::ResourceExhausted("Datalog iteration limit exceeded");
    }
    changed = false;
    next_delta.clear();
    for (const auto& [name, rel] : delta) {
      next_delta.emplace(name, Relation(rel.arity()));
    }
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const DatalogRule& rule = program.rules[ri];
      // Positions of IDB atoms in the body.
      std::vector<size_t> idb_positions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (program.IsIdb(rule.body[i].relation)) idb_positions.push_back(i);
      }
      if (idb_positions.empty()) continue;  // already saturated at round 0
      for (size_t dpos : idb_positions) {
        if (delta.at(rule.body[dpos].relation).empty()) continue;
        idb_scratch.clear();
        std::vector<BodyInput> body;
        bool feasible = true;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const Atom& a = rule.body[i];
          if (program.IsIdb(a.relation)) {
            const Relation& src = (i == dpos) ? delta.at(a.relation)
                                              : idb.at(a.relation).rel();
            PQ_ASSIGN_OR_RETURN(NamedRelation rel, idb_atom_rel(a, src));
            idb_scratch.push_back(std::move(rel));
            body.push_back(BodyInput{&idb_scratch.back(), nullptr});
          } else {
            PQ_ASSIGN_OR_RETURN(EdbAtomCache * cache, resolve_edb(ri, i));
            body.push_back(BodyInput{&cache->rel, cache});
          }
          if (body.back().rel->empty()) {
            feasible = false;
            break;
          }
        }
        if (stats != nullptr) ++stats->rule_firings;
        if (!feasible) continue;
        PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, body));
        add_new(rule.head.relation, derived, &next_delta, &changed);
      }
    }
    delta = std::move(next_delta);
    ++iterations;
    if (options.max_rows != 0) {
      size_t total = 0;
      for (const auto& [name, set] : idb) total += set.size();
      if (total > options.max_rows) {
        return Status::ResourceExhausted("Datalog derived-tuple limit");
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->derived_tuples = 0;
    for (const auto& [name, set] : idb) stats->derived_tuples += set.size();
  }
  Relation goal = idb.at(program.goal).TakeRelation();
  goal.SortAndDedup();
  return goal;
}

}  // namespace paraquery

#include "eval/datalog_eval.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "eval/common.hpp"
#include "obs/trace.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

// Program-wide cached materialization of one EDB atom shape: its S_j relation
// plus the memoized join indexes (plan/JoinIndexCache), one per distinct
// probe-column list. EDB relations never change during the fixpoint, so both
// survive across semi-naive iterations — rules stop re-selecting,
// re-projecting, and re-indexing static data on every firing. Entries are
// keyed by (RelId, selection/projection signature), so the SAME
// materialization and its indexes are shared by every rule whose atom has
// that shape, regardless of the variable names it uses: each (rule, position)
// slot probes the entry through a zero-copy attribute-relabeled view.
struct EdbAtomEntry {
  NamedRelation rel;  // canonical materialization (first resolver's attrs)
  JoinIndexCache indexes;
};

// One (rule, body position)'s binding to the shared cache: the entry plus the
// atom's own view of it (same rows, this rule's variable names).
struct RuleAtomView {
  EdbAtomEntry* entry = nullptr;
  NamedRelation view;
};

// Cache key: relation id plus the atom's term shape with variables replaced
// by their first-occurrence index. Two atoms map to the same key iff they
// induce the same selection (constants, repeated-variable equalities) and
// projection (distinct-variable columns) over the same stored relation —
// i.e. identical S_j up to attribute names.
std::string AtomSignature(RelId id, const Atom& atom) {
  std::string sig = internal::StrCat("r", id);
  std::vector<VarId> seen;
  for (const Term& t : atom.terms) {
    if (t.is_const()) {
      sig += internal::StrCat("|c", t.value());
      continue;
    }
    auto it = std::find(seen.begin(), seen.end(), t.var());
    size_t idx = static_cast<size_t>(it - seen.begin());
    if (it == seen.end()) seen.push_back(t.var());
    sig += internal::StrCat("|v", idx);
  }
  return sig;
}

// One cached (rule, delta position) body plan plus the delta size it was
// planned at, for the >10x drift re-planning trigger.
struct VariantPlan {
  PlanNodePtr plan;
  size_t planned_delta_rows = 0;
};

// Cross-run cache payload (PlanCache, key "rule:<canonical sig>|d<pos>"):
// the body plan with attribute ids remapped onto the rule's CANONICAL
// variable numbering, so any renaming-equivalent rule in any program can
// claim it, plus the delta size it was planned at (the drift trigger
// carries across runs).
struct CachedRulePlan {
  PlanNodePtr plan;
  size_t planned_delta_rows = 0;
  /// Per-slot input sizes at planning time: a consuming run whose inputs
  /// (IDB state included — another program may shape it very differently)
  /// drift >10x from these re-plans instead of adopting a pessimal join
  /// order keyed only on the rule's syntax.
  std::vector<size_t> planned_sizes;
};

// Canonical form of a rule body viewed as a CQ (head terms + body atoms; a
// DatalogRule has no comparison atoms). One call yields both the cache-key
// signature and the renaming (CanonicalCq::order maps canonical id -> rule
// VarId), so the key and the attribute remap can never desynchronize.
CanonicalCq CanonicalizeRule(const DatalogRule& rule) {
  ConjunctiveQuery cq;
  cq.head = rule.head.terms;
  cq.body = rule.body;
  return CanonicalizeCq(cq);
}

// In-place attribute renaming over a freshly cloned plan DAG (map[old] =
// new id; every attr of a rule plan is a rule body variable, so the map is
// total for them).
void RemapPlanAttrs(PlanNode* n, const std::vector<AttrId>& map,
                    std::unordered_map<const PlanNode*, bool>* visited) {
  if ((*visited)[n]) return;
  (*visited)[n] = true;
  for (AttrId& a : n->attrs) {
    if (a >= 0 && static_cast<size_t>(a) < map.size()) a = map[a];
  }
  for (const PlanNodePtr& c : n->children) {
    RemapPlanAttrs(c.get(), map, visited);
  }
}

// Clones `plan` and renames its attributes through `map` (rebinding scan
// join-index pointers to `slot_caches` when given).
PlanNodePtr CloneRemapped(const PlanNode& plan, const std::vector<AttrId>& map,
                          const std::vector<JoinIndexCache*>* slot_caches) {
  PlanNodePtr out = ClonePlan(plan, slot_caches);
  std::unordered_map<const PlanNode*, bool> visited;
  RemapPlanAttrs(out.get(), map, &visited);
  return out;
}

// Tuples one variant firing derived (fired == false: skipped because a body
// atom was empty). Materialized — holds no views of IDB storage — so the
// round barrier can apply results after concurrent firings completed.
struct FiringResult {
  bool fired = false;
  Relation derived{0};
};

// One semi-naive fixpoint run: IDB state, the EDB atom cache, and the cached
// per-(rule, delta position) body plans the shared executor re-runs every
// iteration. With a scheduler bound (DatalogOptions::runtime), each round's
// variants fire as concurrent tasks: firings read the round-stable IDB/delta
// state and return materialized FiringResults, which the round barrier
// applies in variant order — so the derived tuple sets (and the fixpoint)
// are exactly the sequential ones.
class DatalogRun {
 public:
  DatalogRun(const Database& db, const DatalogProgram& program,
             const DatalogOptions& options, DatalogStats* stats)
      : db_(db), program_(program), options_(options), stats_(stats) {}

  Result<Relation> Run() {
    TraceSpan route_span(options_.runtime.tracer, "route.datalog");
    PQ_RETURN_NOT_OK(program_.Validate());
    for (const std::string& name : program_.IdbRelations()) {
      size_t arity = static_cast<size_t>(program_.ArityOf(name));
      idb_.emplace(name, RowHashSet(arity));
      delta_.emplace(name, Relation(arity));
    }
    edb_views_.resize(program_.rules.size());
    plans_.resize(program_.rules.size());
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      edb_views_[ri].resize(program_.rules[ri].body.size());
    }
    const uint64_t max_total_rows = options_.EffectiveLimits().max_rows;

    // Iteration 0: fire every rule on the (empty) IDB state so EDB-only
    // rules seed the deltas.
    bool changed = false;
    std::unordered_map<std::string, Relation> next_delta;
    for (const auto& [name, rel] : delta_) {
      next_delta.emplace(name, Relation(rel.arity()));
    }
    std::vector<std::pair<size_t, int>> variants;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      variants.emplace_back(ri, /*delta_pos=*/-1);
    }
    PQ_RETURN_NOT_OK(FireRound(variants, &next_delta, &changed));
    delta_ = std::move(next_delta);
    size_t iterations = 1;

    // Semi-naive loop: a rule with IDB body atoms re-fires once per IDB body
    // position, substituting the delta at that position.
    while (changed) {
      // Round-boundary poll: a deadline/cancel/budget abort ends the
      // fixpoint within one semi-naive round.
      PQ_RETURN_NOT_OK(options_.runtime.CheckInterrupt());
      if (options_.max_iterations != 0 &&
          iterations >= options_.max_iterations) {
        return Status::ResourceExhausted("Datalog iteration limit exceeded");
      }
      changed = false;
      next_delta.clear();
      for (const auto& [name, rel] : delta_) {
        next_delta.emplace(name, Relation(rel.arity()));
      }
      variants.clear();
      for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
        const DatalogRule& rule = program_.rules[ri];
        std::vector<size_t> idb_positions;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (program_.IsIdb(rule.body[i].relation)) idb_positions.push_back(i);
        }
        if (idb_positions.empty()) continue;  // saturated at round 0
        for (size_t dpos : idb_positions) {
          if (delta_.at(rule.body[dpos].relation).empty()) continue;
          variants.emplace_back(ri, static_cast<int>(dpos));
        }
      }
      PQ_RETURN_NOT_OK(FireRound(variants, &next_delta, &changed));
      delta_ = std::move(next_delta);
      ++iterations;
      if (max_total_rows != 0) {
        size_t total = 0;
        for (const auto& [name, set] : idb_) total += set.size();
        if (total > max_total_rows) {
          return Status::ResourceExhausted("Datalog derived-tuple limit");
        }
      }
    }

    if (stats_ != nullptr) {
      stats_->iterations = iterations;
      stats_->derived_tuples = 0;
      for (const auto& [name, set] : idb_) {
        stats_->derived_tuples += set.size();
      }
      stats_->edb_index_builds = stats_->plan.index_builds;
      stats_->edb_index_hits = stats_->plan.index_hits;
    }
    Relation goal = idb_.at(program_.goal).TakeRelation();
    goal.SortAndDedup();
    return goal;
  }

 private:
  // Lazily binds (rule, position) to the program-wide EDB cache. Resolution
  // stays lazy (body order, short-circuited by empty earlier atoms) so that
  // rules which can never fire do not turn a dangling EDB reference into an
  // error — matching per-firing resolution. Cache and slot state are
  // guarded by edb_mutex_, but the O(n) materialization itself runs outside
  // the lock so concurrent firings (e.g. the whole first round) build
  // DISTINCT atoms in parallel; a same-signature race costs one discarded
  // duplicate materialization, decided by a re-check under the lock.
  Result<RuleAtomView*> ResolveEdb(size_t ri, size_t pi) {
    PQ_FAULT_POINT("datalog.edb");
    {
      std::lock_guard<std::mutex> lock(edb_mutex_);
      RuleAtomView& slot = edb_views_[ri][pi];
      if (slot.entry != nullptr) return &slot;
    }
    const Atom& a = program_.rules[ri].body[pi];
    auto found = db_.FindRelation(a.relation);
    if (!found.ok()) {
      return Status::NotFound(internal::StrCat(
          "EDB relation '", a.relation, "' not found in database"));
    }
    if (db_.relation(found.value()).arity() != a.terms.size()) {
      return Status::InvalidArgument(internal::StrCat(
          "EDB relation '", a.relation, "' arity mismatch"));
    }
    std::string sig = AtomSignature(found.value(), a);
    EdbAtomEntry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(edb_mutex_);
      auto it = edb_by_signature_.find(sig);
      if (it != edb_by_signature_.end()) {
        entry = it->second;
        if (stats_ != nullptr) ++stats_->edb_cache_hits;
      }
    }
    if (entry == nullptr) {
      PQ_ASSIGN_OR_RETURN(NamedRelation rel,
                          AtomToRelation(db_.relation(found.value()), a));
      // The cache lives for the whole fixpoint; drop the full-base-relation
      // capacity AtomToRelation reserved in case the selection kept few rows
      // (a no-op when the materialization is a view of the stored relation).
      rel.rel().ShrinkToFit();
      std::lock_guard<std::mutex> lock(edb_mutex_);
      auto it = edb_by_signature_.find(sig);
      if (it != edb_by_signature_.end()) {
        entry = it->second;  // lost the race: another firing built it
        if (stats_ != nullptr) ++stats_->edb_cache_hits;
      } else {
        edb_storage_.emplace_back();  // in place: the index cache is immovable
        edb_storage_.back().rel = std::move(rel);
        entry = &edb_storage_.back();
        edb_by_signature_.emplace(std::move(sig), entry);
        if (stats_ != nullptr) ++stats_->edb_materializations;
      }
    }
    // This atom's view: same shared rows, this rule's variable names. The
    // canonical entry and the atom have the same variable pattern, so the
    // distinct variables map positionally.
    std::vector<AttrId> vars;
    for (const Term& t : a.terms) {
      if (t.is_var() &&
          std::find(vars.begin(), vars.end(), t.var()) == vars.end()) {
        vars.push_back(t.var());
      }
    }
    std::lock_guard<std::mutex> lock(edb_mutex_);
    RuleAtomView& slot = edb_views_[ri][pi];
    if (slot.entry == nullptr) {  // delta variants of one rule share a slot
      slot.view = entry->rel.WithAttrs(std::move(vars));
      slot.entry = entry;
    }
    return &slot;
  }

  void AddNew(const std::string& rel_name, const Relation& tuples,
              std::unordered_map<std::string, Relation>* next_delta,
              bool* changed) {
    RowHashSet& full = idb_.at(rel_name);
    Relation& fresh = next_delta->at(rel_name);
    for (size_t r = 0; r < tuples.size(); ++r) {
      if (full.Insert(tuples.Row(r))) {
        fresh.Add(tuples.Row(r));
        *changed = true;
      }
    }
  }

  // Bumps a DatalogStats counter (concurrent firings share the struct).
  void Count(size_t DatalogStats::* counter) {
    if (stats_ == nullptr) return;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(stats_->*counter);
  }

  // Fires rule `ri`, reading the delta at body position `delta_pos` (or the
  // full IDB state everywhere when -1), WITHOUT touching IDB state: the
  // result is materialized and applied by the caller. The (rule, delta
  // position) body plan is built on the variant's first feasible firing,
  // re-executed on the re-bound input slots afterwards, and rebuilt when
  // the observed delta size drifts >10x from the size it was planned at.
  // `plan_stats` (nullable) receives this firing's executor counters.
  Result<FiringResult> ComputeVariant(size_t ri, int delta_pos,
                                      PlanStats* plan_stats) {
    PQ_FAULT_POINT("datalog.firing");
    const DatalogRule& rule = program_.rules[ri];
    TraceSpan firing_span(
        options_.runtime.tracer, "firing",
        options_.runtime.tracer != nullptr
            ? internal::StrCat(rule.head.relation, " delta=", delta_pos)
            : std::string());
    FiringResult out;
    if (rule.body.empty()) {
      // Constant-only head (safety): derive it directly.
      Count(&DatalogStats::rule_firings);
      NamedRelation truth = BooleanTrue();
      out.fired = true;
      out.derived =
          BindingsToAnswers(truth, rule.head.terms, /*sort_output=*/false);
      return out;
    }
    // Resolve the body inputs in order; an empty atom skips the firing (and
    // leaves later atoms unresolved). The views live in a local scratch —
    // they may share storage with the round-stable IDB state, which no
    // firing mutates.
    std::deque<NamedRelation> scratch;
    std::vector<const NamedRelation*> inputs(rule.body.size(), nullptr);
    std::vector<JoinIndexCache*> caches(rule.body.size(), nullptr);
    bool feasible = true;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Atom& a = rule.body[i];
      if (program_.IsIdb(a.relation)) {
        const Relation& src = (static_cast<int>(i) == delta_pos)
                                  ? delta_.at(a.relation)
                                  : idb_.at(a.relation).rel();
        PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(src, a));
        scratch.push_back(std::move(rel));
        inputs[i] = &scratch.back();
      } else {
        PQ_ASSIGN_OR_RETURN(RuleAtomView * slot, ResolveEdb(ri, i));
        inputs[i] = &slot->view;
        caches[i] = &slot->entry->indexes;
      }
      if (inputs[i]->empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      Count(&DatalogStats::skipped_firings);
      return out;
    }
    // Concurrent firings touch distinct variants; the map node was created
    // before the round fan-out (FireRound), so this lookup is read-only.
    VariantPlan& variant = plans_[ri].at(delta_pos);
    size_t observed =
        delta_pos >= 0 ? inputs[delta_pos]->size() : 0;
    bool drifted =
        variant.plan != nullptr && delta_pos >= 0 &&
        (observed > 10 * variant.planned_delta_rows ||
         10 * observed < variant.planned_delta_rows);
    if (variant.plan == nullptr || drifted) {
      bool first_build = variant.plan == nullptr;
      // Cross-run reuse: a previous program (or a previous run of this one)
      // may have compiled a renaming-equivalent variant. The hit is cloned
      // into this run with canonical ids mapped onto this rule's variables
      // and join-index pointers rebound; a hit whose recorded delta size
      // already drifts >10x from what we observe is ignored (we re-plan).
      std::string cache_key;
      CanonicalCq canonical;
      bool from_cache = false;
      if (options_.plan_cache != nullptr) {
        canonical = CanonicalizeRule(rule);
        cache_key =
            internal::StrCat("rule:", canonical.signature, "|d", delta_pos,
                             options_.vectorize ? "|vec" : "");
        if (first_build) {
          auto cached = options_.plan_cache->Lookup<CachedRulePlan>(
              cache_key, db_);
          if (cached != nullptr) {
            // Reject the hit if ANY input slot — not just the delta — has
            // drifted >10x from the sizes the plan was costed at.
            bool cache_drift =
                cached->planned_sizes.size() != inputs.size();
            for (size_t i = 0; !cache_drift && i < inputs.size(); ++i) {
              size_t planned = cached->planned_sizes[i];
              size_t now = inputs[i]->size();
              cache_drift = now > 10 * planned || 10 * now < planned;
            }
            if (!cache_drift) {
              variant.plan =
                  CloneRemapped(*cached->plan, canonical.order, &caches);
              variant.planned_delta_rows = cached->planned_delta_rows;
              from_cache = true;
            }
          }
        }
      }
      if (!from_cache) {
        std::vector<std::vector<AttrId>> attrs;
        std::vector<size_t> sizes;
        std::vector<std::vector<double>> distinct;
        for (const NamedRelation* in : inputs) {
          attrs.push_back(in->attrs());
          sizes.push_back(in->size());
          std::vector<double> d;
          d.reserve(in->arity());
          for (size_t c = 0; c < in->arity(); ++c) {
            d.push_back(static_cast<double>(in->rel().DistinctCount(c)));
          }
          distinct.push_back(std::move(d));
        }
        PQ_ASSIGN_OR_RETURN(
            variant.plan,
            PlanRuleBody(rule, attrs, sizes, caches, delta_pos, distinct,
                         options_.vectorize));
        variant.planned_delta_rows = observed;
        if (options_.plan_cache != nullptr) {
          // Publish the canonical form: rule var -> canonical id is the
          // inverse of the canonical order.
          std::vector<AttrId> inverse(rule.vars.size(), -1);
          for (size_t i = 0; i < canonical.order.size(); ++i) {
            inverse[canonical.order[i]] = static_cast<AttrId>(i);
          }
          auto entry = std::make_shared<CachedRulePlan>();
          // Strip the run-local join-index pointers from the published copy
          // (an empty slot table rebinds every scan to nullptr); the hit
          // path binds the consuming run's own caches.
          static const std::vector<JoinIndexCache*> kNoCaches;
          entry->plan = CloneRemapped(*variant.plan, inverse, &kNoCaches);
          entry->planned_delta_rows = observed;
          entry->planned_sizes = sizes;
          PQ_FAULT_POINT("datalog.cache.insert");
          // Dependency stamps come from the rule's EDB body atoms (IDB
          // names do not resolve and carry no stamp — their content is
          // run-local, not the database's).
          options_.plan_cache->Insert(cache_key, db_, canonical.query,
                                      std::move(entry));
        }
      }
      // A cross-run cache hit built nothing (it cloned) — that is a reuse;
      // plans_built keeps meaning "PlanRuleBody invocations". The firing
      // identity rule_firings = plans_built + plan_reuses + replans holds
      // either way.
      Count(from_cache ? &DatalogStats::plan_reuses
                       : (first_build ? &DatalogStats::plans_built
                                      : &DatalogStats::replans));
    } else {
      Count(&DatalogStats::plan_reuses);
    }
    Count(&DatalogStats::rule_firings);
    // Both guard members apply inside a firing (per-operator rows and the
    // step meter); max_rows additionally bounds the total derived tuples,
    // checked per iteration in Run().
    ExecContext ctx{inputs, options_.EffectiveLimits(), plan_stats,
                    options_.runtime};
    PQ_ASSIGN_OR_RETURN(NamedRelation bindings, ExecutePlan(*variant.plan, ctx));
    out.fired = true;
    out.derived =
        BindingsToAnswers(bindings, rule.head.terms, /*sort_output=*/false);
    return out;
  }

  // Fires the round's variants — sequentially without a scheduler
  // (derivations apply after each firing, exactly the historical
  // behavior), as concurrent tasks otherwise (derivations apply in variant
  // order after the barrier). The first error in variant order wins and
  // cancels outstanding tasks.
  Status FireRound(const std::vector<std::pair<size_t, int>>& variants,
                   std::unordered_map<std::string, Relation>* next_delta,
                   bool* changed) {
    PQ_FAULT_POINT("datalog.round");
    TraceSpan round_span(
        options_.runtime.tracer, "round",
        options_.runtime.tracer != nullptr
            ? internal::StrCat("round=", rounds_fired_++,
                               " variants=", variants.size())
            : std::string());
    // Materialize the variant plan slots up front so concurrent firings
    // never mutate a rule's variant map structurally.
    for (const auto& [ri, dpos] : variants) plans_[ri].try_emplace(dpos);
    if (!options_.runtime.parallel() || variants.size() <= 1) {
      for (const auto& [ri, dpos] : variants) {
        PQ_ASSIGN_OR_RETURN(
            FiringResult fr,
            ComputeVariant(ri, dpos,
                           stats_ != nullptr ? &stats_->plan : nullptr));
        if (fr.fired) {
          AddNew(program_.rules[ri].head.relation, fr.derived, next_delta,
                 changed);
        }
      }
      return Status::OK();
    }
    std::vector<std::optional<Result<FiringResult>>> results(variants.size());
    std::vector<PlanStats> local(variants.size());
    {
      TaskGroup group(options_.runtime.scheduler);
      for (size_t i = 0; i < variants.size(); ++i) {
        group.Spawn([&, i] {
          auto [ri, dpos] = variants[i];
          results[i].emplace(ComputeVariant(
              ri, dpos, stats_ != nullptr ? &local[i] : nullptr));
          if (!results[i]->ok()) group.Cancel();
        });
      }
      group.Wait();
    }
    if (stats_ != nullptr) {
      stats_->plan.parallel_tasks += variants.size();
      for (const PlanStats& ps : local) stats_->plan.Merge(ps);
    }
    for (const std::optional<Result<FiringResult>>& r : results) {
      if (r.has_value()) PQ_RETURN_NOT_OK(r->status());
    }
    for (size_t i = 0; i < variants.size(); ++i) {
      if (!results[i].has_value()) continue;
      const FiringResult& fr = results[i]->value();
      if (fr.fired) {
        AddNew(program_.rules[variants[i].first].head.relation, fr.derived,
               next_delta, changed);
      }
    }
    return Status::OK();
  }

  const Database& db_;
  const DatalogProgram& program_;
  const DatalogOptions& options_;
  DatalogStats* stats_;

  std::unordered_map<std::string, RowHashSet> idb_;
  std::unordered_map<std::string, Relation> delta_;

  /// Serializes lazy EDB resolution across concurrent firings.
  std::mutex edb_mutex_;
  /// Serializes DatalogStats counter bumps across concurrent firings.
  std::mutex stats_mutex_;
  std::deque<EdbAtomEntry> edb_storage_;
  std::unordered_map<std::string, EdbAtomEntry*> edb_by_signature_;
  std::vector<std::vector<RuleAtomView>> edb_views_;
  /// plans_[rule][delta_pos] (-1 = the round-0 full-state variant).
  std::vector<std::map<int, VariantPlan>> plans_;
  /// Round ordinal for the tracer's per-round span details.
  size_t rounds_fired_ = 0;
};

}  // namespace

Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options,
                                 DatalogStats* stats) {
  DatalogRun run(db, program, options, stats);
  return run.Run();
}

}  // namespace paraquery

#include "eval/datalog_eval.hpp"

#include <algorithm>
#include <unordered_map>

#include "eval/common.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

// Evaluates one rule body against the given atom relations via left-deep
// joins, returning the derived head tuples.
Result<Relation> FireRule(const DatalogRule& rule,
                          const std::vector<NamedRelation>& atom_rels) {
  // Start from TRUE and join every atom relation (constants/repeated vars
  // were handled when the atom relations were built).
  NamedRelation acc = BooleanTrue();
  // Join smaller relations first (static heuristic).
  std::vector<size_t> order(atom_rels.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&atom_rels](size_t a, size_t b) {
    return atom_rels[a].size() < atom_rels[b].size();
  });
  for (size_t i : order) {
    PQ_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, atom_rels[i]));
    if (acc.empty()) break;
  }
  if (acc.empty()) return Relation(rule.head.terms.size());
  // Keep only head variables before mapping to head tuples.
  std::vector<AttrId> head_vars;
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && std::find(head_vars.begin(), head_vars.end(),
                                t.var()) == head_vars.end()) {
      head_vars.push_back(t.var());
    }
  }
  NamedRelation bindings = Project(acc, head_vars);
  return BindingsToAnswers(bindings, rule.head.terms);
}

}  // namespace

Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options,
                                 DatalogStats* stats) {
  PQ_RETURN_NOT_OK(program.Validate());

  // IDB state: full relations and the last iteration's deltas.
  std::unordered_map<std::string, Relation> idb;
  std::unordered_map<std::string, Relation> delta;
  for (const std::string& name : program.IdbRelations()) {
    size_t arity = static_cast<size_t>(program.ArityOf(name));
    idb.emplace(name, Relation(arity));
    delta.emplace(name, Relation(arity));
  }

  // Resolves an atom against EDB (db) or the given IDB snapshot.
  auto atom_rel =
      [&](const Atom& a,
          const std::unordered_map<std::string, Relation>& idb_src)
      -> Result<NamedRelation> {
    if (program.IsIdb(a.relation)) {
      return AtomToRelation(idb_src.at(a.relation), a);
    }
    auto found = db.FindRelation(a.relation);
    if (!found.ok()) {
      return Status::NotFound(internal::StrCat(
          "EDB relation '", a.relation, "' not found in database"));
    }
    if (db.relation(found.value()).arity() != a.terms.size()) {
      return Status::InvalidArgument(internal::StrCat(
          "EDB relation '", a.relation, "' arity mismatch"));
    }
    return AtomToRelation(db.relation(found.value()), a);
  };

  // Iteration 0: fire every rule on the (empty) IDB state so EDB-only rules
  // seed the deltas. `idb` relations are kept sorted between calls so the
  // membership checks stay logarithmic.
  auto add_new = [&](const std::string& rel_name, const Relation& tuples,
                     std::unordered_map<std::string, Relation>* next_delta,
                     bool* changed) {
    Relation& full = idb.at(rel_name);
    Relation fresh(tuples.arity());
    for (size_t r = 0; r < tuples.size(); ++r) {
      if (!full.Contains(tuples.Row(r))) fresh.Add(tuples.Row(r));
    }
    fresh.SortAndDedup();
    if (fresh.empty()) return;
    *changed = true;
    for (size_t r = 0; r < fresh.size(); ++r) {
      full.Add(fresh.Row(r));
      next_delta->at(rel_name).Add(fresh.Row(r));
    }
    full.SortAndDedup();
  };

  bool changed = false;
  std::unordered_map<std::string, Relation> next_delta;
  for (const auto& [name, rel] : delta) {
    next_delta.emplace(name, Relation(rel.arity()));
  }
  for (const DatalogRule& rule : program.rules) {
    std::vector<NamedRelation> atom_rels;
    bool feasible = true;
    for (const Atom& a : rule.body) {
      PQ_ASSIGN_OR_RETURN(NamedRelation rel, atom_rel(a, idb));
      if (rel.empty()) {
        feasible = false;
        break;
      }
      atom_rels.push_back(std::move(rel));
    }
    if (stats != nullptr) ++stats->rule_firings;
    if (!feasible && !rule.body.empty()) continue;
    PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, atom_rels));
    add_new(rule.head.relation, derived, &next_delta, &changed);
  }
  delta = std::move(next_delta);
  size_t iterations = 1;

  // Semi-naive loop: a rule with IDB body atoms re-fires once per IDB body
  // position, substituting the delta at that position.
  while (changed) {
    if (options.max_iterations != 0 && iterations >= options.max_iterations) {
      return Status::ResourceExhausted("Datalog iteration limit exceeded");
    }
    changed = false;
    next_delta.clear();
    for (const auto& [name, rel] : delta) {
      next_delta.emplace(name, Relation(rel.arity()));
    }
    for (const DatalogRule& rule : program.rules) {
      // Positions of IDB atoms in the body.
      std::vector<size_t> idb_positions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (program.IsIdb(rule.body[i].relation)) idb_positions.push_back(i);
      }
      if (idb_positions.empty()) continue;  // already saturated at round 0
      for (size_t dpos : idb_positions) {
        if (delta.at(rule.body[dpos].relation).empty()) continue;
        std::vector<NamedRelation> atom_rels;
        bool feasible = true;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const Atom& a = rule.body[i];
          Result<NamedRelation> rel =
              (i == dpos) ? AtomToRelation(delta.at(a.relation), a)
                          : atom_rel(a, idb);
          PQ_RETURN_NOT_OK(rel.status());
          if (rel.value().empty()) {
            feasible = false;
            break;
          }
          atom_rels.push_back(std::move(rel).value());
        }
        if (stats != nullptr) ++stats->rule_firings;
        if (!feasible) continue;
        PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, atom_rels));
        add_new(rule.head.relation, derived, &next_delta, &changed);
      }
    }
    delta = std::move(next_delta);
    ++iterations;
    if (options.max_rows != 0) {
      size_t total = 0;
      for (const auto& [name, rel] : idb) total += rel.size();
      if (total > options.max_rows) {
        return Status::ResourceExhausted("Datalog derived-tuple limit");
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->derived_tuples = 0;
    for (const auto& [name, rel] : idb) stats->derived_tuples += rel.size();
  }
  Relation goal = idb.at(program.goal);
  goal.SortAndDedup();
  return goal;
}

}  // namespace paraquery

#include "eval/datalog_eval.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_map>

#include "eval/common.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

// Program-wide cached materialization of one EDB atom shape: its S_j relation
// plus lazily built join indexes, one per distinct probe-column list. EDB
// relations never change during the fixpoint, so both survive across
// semi-naive iterations — rules stop re-selecting, re-projecting, and
// re-indexing static data on every firing. Entries are keyed by
// (RelId, selection/projection signature), so the SAME materialization and
// its indexes are shared by every rule whose atom has that shape, regardless
// of the variable names it uses: each (rule, position) slot probes the entry
// through a zero-copy attribute-relabeled view. (The probe columns can differ
// between firings because the left-deep join order ranks the varying delta
// sizes, hence the small memo rather than a single index.)
struct EdbAtomEntry {
  NamedRelation rel;  // canonical materialization (first resolver's attrs)
  std::deque<std::pair<std::vector<int>, RowIndex>> indexes;

  const RowIndex& GetOrBuild(const std::vector<int>& rcols,
                             DatalogStats* stats) {
    for (const auto& [cols, idx] : indexes) {
      if (cols == rcols) {
        if (stats != nullptr) ++stats->edb_index_hits;
        return idx;
      }
    }
    if (stats != nullptr) ++stats->edb_index_builds;
    indexes.emplace_back(rcols, RowIndex(rel.rel(), rcols));
    return indexes.back().second;
  }
};

// One (rule, body position)'s binding to the shared cache: the entry plus the
// atom's own view of it (same rows, this rule's variable names).
struct RuleAtomView {
  EdbAtomEntry* entry = nullptr;
  NamedRelation view;
};

// Cache key: relation id plus the atom's term shape with variables replaced
// by their first-occurrence index. Two atoms map to the same key iff they
// induce the same selection (constants, repeated-variable equalities) and
// projection (distinct-variable columns) over the same stored relation —
// i.e. identical S_j up to attribute names.
std::string AtomSignature(RelId id, const Atom& atom) {
  std::string sig = internal::StrCat("r", id);
  std::vector<VarId> seen;
  for (const Term& t : atom.terms) {
    if (t.is_const()) {
      sig += internal::StrCat("|c", t.value());
      continue;
    }
    auto it = std::find(seen.begin(), seen.end(), t.var());
    size_t idx = static_cast<size_t>(it - seen.begin());
    if (it == seen.end()) seen.push_back(t.var());
    sig += internal::StrCat("|v", idx);
  }
  return sig;
}

// One body atom's input to a rule firing: the relation to join, plus the
// shared index cache when the atom is EDB (null for IDB/delta atoms, whose
// contents change between firings).
struct BodyInput {
  const NamedRelation* rel;
  EdbAtomEntry* cache;
};

// Evaluates one rule body against the given atom relations via left-deep
// joins, returning the derived head tuples.
Result<Relation> FireRule(const DatalogRule& rule,
                          const std::vector<BodyInput>& body,
                          DatalogStats* stats) {
  // Start from TRUE and join every atom relation (constants/repeated vars
  // were handled when the atom relations were built).
  NamedRelation acc = BooleanTrue();
  // Join smaller relations first (static heuristic).
  std::vector<size_t> order(body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&body](size_t a, size_t b) {
    return body[a].rel->size() < body[b].rel->size();
  });
  for (size_t i : order) {
    const NamedRelation& r = *body[i].rel;
    if (body[i].cache != nullptr) {
      const RowIndex& idx =
          body[i].cache->GetOrBuild(JoinKeyColumns(acc, r), stats);
      PQ_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, r, idx));
    } else {
      PQ_ASSIGN_OR_RETURN(acc, NaturalJoin(acc, r));
    }
    if (acc.empty()) break;
  }
  if (acc.empty()) return Relation(rule.head.terms.size());
  // Keep only head variables before mapping to head tuples.
  std::vector<AttrId> head_vars;
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && std::find(head_vars.begin(), head_vars.end(),
                                t.var()) == head_vars.end()) {
      head_vars.push_back(t.var());
    }
  }
  NamedRelation bindings = Project(acc, head_vars);
  return BindingsToAnswers(bindings, rule.head.terms, /*sort_output=*/false);
}

}  // namespace

Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options,
                                 DatalogStats* stats) {
  PQ_RETURN_NOT_OK(program.Validate());

  // IDB state: incrementally deduplicated full relations (a hash set each,
  // so membership and insertion stay O(1) amortized with no re-sorting
  // between iterations) and the last iteration's deltas.
  std::unordered_map<std::string, RowHashSet> idb;
  std::unordered_map<std::string, Relation> delta;
  for (const std::string& name : program.IdbRelations()) {
    size_t arity = static_cast<size_t>(program.ArityOf(name));
    idb.emplace(name, RowHashSet(arity));
    delta.emplace(name, Relation(arity));
  }

  // EDB body atoms are materialized once on first use and cached program-wide
  // for the rest of the fixpoint, keyed by (RelId, atom signature): identical
  // EDB atoms in different rules share one materialization and its memoized
  // join indexes, with per-rule variable names applied through zero-copy
  // relabeled views. Resolution stays lazy (body order, short-circuited by
  // empty earlier atoms) so that rules which can never fire do not turn a
  // dangling EDB reference into an error — matching per-firing resolution.
  std::deque<EdbAtomEntry> edb_storage;
  std::unordered_map<std::string, EdbAtomEntry*> edb_by_signature;
  std::vector<std::vector<RuleAtomView>> edb_views(program.rules.size());
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    edb_views[ri].resize(program.rules[ri].body.size());
  }
  auto resolve_edb = [&](size_t ri, size_t pi) -> Result<RuleAtomView*> {
    RuleAtomView& slot = edb_views[ri][pi];
    if (slot.entry != nullptr) return &slot;
    const Atom& a = program.rules[ri].body[pi];
    auto found = db.FindRelation(a.relation);
    if (!found.ok()) {
      return Status::NotFound(internal::StrCat(
          "EDB relation '", a.relation, "' not found in database"));
    }
    if (db.relation(found.value()).arity() != a.terms.size()) {
      return Status::InvalidArgument(internal::StrCat(
          "EDB relation '", a.relation, "' arity mismatch"));
    }
    std::string sig = AtomSignature(found.value(), a);
    EdbAtomEntry* entry;
    auto it = edb_by_signature.find(sig);
    if (it != edb_by_signature.end()) {
      entry = it->second;
      if (stats != nullptr) ++stats->edb_cache_hits;
    } else {
      PQ_ASSIGN_OR_RETURN(NamedRelation rel,
                          AtomToRelation(db.relation(found.value()), a));
      // The cache lives for the whole fixpoint; drop the full-base-relation
      // capacity AtomToRelation reserved in case the selection kept few rows
      // (a no-op when the materialization is a view of the stored relation).
      rel.rel().ShrinkToFit();
      edb_storage.push_back(EdbAtomEntry{std::move(rel), {}});
      entry = &edb_storage.back();
      edb_by_signature.emplace(std::move(sig), entry);
      if (stats != nullptr) ++stats->edb_materializations;
    }
    // This atom's view: same shared rows, this rule's variable names. The
    // canonical entry and the atom have the same variable pattern, so the
    // distinct variables map positionally.
    std::vector<AttrId> vars;
    for (const Term& t : a.terms) {
      if (t.is_var() &&
          std::find(vars.begin(), vars.end(), t.var()) == vars.end()) {
        vars.push_back(t.var());
      }
    }
    slot.view = entry->rel.WithAttrs(std::move(vars));
    slot.entry = entry;
    return &slot;
  };

  // Resolves an IDB atom against the given snapshot.
  auto idb_atom_rel = [&](const Atom& a, const Relation& src) {
    return AtomToRelation(src, a);
  };

  auto add_new = [&](const std::string& rel_name, const Relation& tuples,
                     std::unordered_map<std::string, Relation>* next_delta,
                     bool* changed) {
    RowHashSet& full = idb.at(rel_name);
    Relation& fresh = next_delta->at(rel_name);
    for (size_t r = 0; r < tuples.size(); ++r) {
      if (full.Insert(tuples.Row(r))) {
        fresh.Add(tuples.Row(r));
        *changed = true;
      }
    }
  };

  // Iteration 0: fire every rule on the (empty) IDB state so EDB-only rules
  // seed the deltas.
  bool changed = false;
  std::unordered_map<std::string, Relation> next_delta;
  for (const auto& [name, rel] : delta) {
    next_delta.emplace(name, Relation(rel.arity()));
  }
  // Scratch: IDB atom relations materialized for the current firing (kept
  // alive here because BodyInput borrows them).
  std::deque<NamedRelation> idb_scratch;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const DatalogRule& rule = program.rules[ri];
    idb_scratch.clear();
    std::vector<BodyInput> body;
    bool feasible = true;
    for (size_t pi = 0; pi < rule.body.size(); ++pi) {
      const Atom& a = rule.body[pi];
      if (program.IsIdb(a.relation)) {
        PQ_ASSIGN_OR_RETURN(NamedRelation rel,
                            idb_atom_rel(a, idb.at(a.relation).rel()));
        idb_scratch.push_back(std::move(rel));
        body.push_back(BodyInput{&idb_scratch.back(), nullptr});
      } else {
        PQ_ASSIGN_OR_RETURN(RuleAtomView * slot, resolve_edb(ri, pi));
        body.push_back(BodyInput{&slot->view, slot->entry});
      }
      if (body.back().rel->empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible && !rule.body.empty()) {
      if (stats != nullptr) ++stats->skipped_firings;
      continue;
    }
    if (stats != nullptr) ++stats->rule_firings;
    PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, body, stats));
    // Release the IDB views (which may share storage with the IDB state)
    // before inserting, so add_new never triggers a copy-on-write clone.
    body.clear();
    idb_scratch.clear();
    add_new(rule.head.relation, derived, &next_delta, &changed);
  }
  delta = std::move(next_delta);
  size_t iterations = 1;

  // Semi-naive loop: a rule with IDB body atoms re-fires once per IDB body
  // position, substituting the delta at that position.
  while (changed) {
    if (options.max_iterations != 0 && iterations >= options.max_iterations) {
      return Status::ResourceExhausted("Datalog iteration limit exceeded");
    }
    changed = false;
    next_delta.clear();
    for (const auto& [name, rel] : delta) {
      next_delta.emplace(name, Relation(rel.arity()));
    }
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const DatalogRule& rule = program.rules[ri];
      // Positions of IDB atoms in the body.
      std::vector<size_t> idb_positions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (program.IsIdb(rule.body[i].relation)) idb_positions.push_back(i);
      }
      if (idb_positions.empty()) continue;  // already saturated at round 0
      for (size_t dpos : idb_positions) {
        if (delta.at(rule.body[dpos].relation).empty()) continue;
        idb_scratch.clear();
        std::vector<BodyInput> body;
        bool feasible = true;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          const Atom& a = rule.body[i];
          if (program.IsIdb(a.relation)) {
            const Relation& src = (i == dpos) ? delta.at(a.relation)
                                              : idb.at(a.relation).rel();
            PQ_ASSIGN_OR_RETURN(NamedRelation rel, idb_atom_rel(a, src));
            idb_scratch.push_back(std::move(rel));
            body.push_back(BodyInput{&idb_scratch.back(), nullptr});
          } else {
            PQ_ASSIGN_OR_RETURN(RuleAtomView * slot, resolve_edb(ri, i));
            body.push_back(BodyInput{&slot->view, slot->entry});
          }
          if (body.back().rel->empty()) {
            feasible = false;
            break;
          }
        }
        if (!feasible) {
          if (stats != nullptr) ++stats->skipped_firings;
          continue;
        }
        if (stats != nullptr) ++stats->rule_firings;
        PQ_ASSIGN_OR_RETURN(Relation derived, FireRule(rule, body, stats));
        // As in round 0: drop IDB views before mutating the IDB state.
        body.clear();
        idb_scratch.clear();
        add_new(rule.head.relation, derived, &next_delta, &changed);
      }
    }
    delta = std::move(next_delta);
    ++iterations;
    if (options.max_rows != 0) {
      size_t total = 0;
      for (const auto& [name, set] : idb) total += set.size();
      if (total > options.max_rows) {
        return Status::ResourceExhausted("Datalog derived-tuple limit");
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->derived_tuples = 0;
    for (const auto& [name, set] : idb) stats->derived_tuples += set.size();
  }
  Relation goal = idb.at(program.goal).TakeRelation();
  goal.SortAndDedup();
  return goal;
}

}  // namespace paraquery

// Shared helpers for the evaluators: turning a relational atom into an
// attribute-labelled relation over its variables (the S_j = π_{U_j}
// σ_{F_j}(R_{i_j}) step that every algorithm in the paper starts with), and
// mapping variable bindings through head terms into answer tuples.
#ifndef PARAQUERY_EVAL_COMMON_H_
#define PARAQUERY_EVAL_COMMON_H_

#include <vector>

#include "common/status.hpp"
#include "query/term.hpp"
#include "relational/database.hpp"
#include "relational/named_relation.hpp"

namespace paraquery {

/// Builds the relation S over the distinct variables U of `atom` from the
/// stored relation `rel`: selects rows matching the atom's constants and
/// repeated-variable equalities, then projects one column per variable (in
/// order of first occurrence). `filters` are comparison atoms whose variables
/// all occur in the atom (plus var/constant comparisons); they are folded
/// into the selection, implementing the paper's "push the I2 inequalities
/// into F_j". Returns InvalidArgument if the atom arity mismatches or a
/// filter references a variable outside the atom.
Result<NamedRelation> AtomToRelation(const Relation& rel, const Atom& atom,
                                     const std::vector<CompareAtom>& filters = {});

/// Resolves `atom.relation` in `db` and delegates to AtomToRelation.
Result<NamedRelation> AtomToRelation(const Database& db, const Atom& atom,
                                     const std::vector<CompareAtom>& filters = {});

/// Converts variable bindings (a relation whose attributes are VarIds
/// covering every head variable) into answer tuples through `head`:
/// variables are looked up, constants copied. With `sort_output` true (the
/// default, used for user-facing answers) the result is sorted and
/// deduplicated; with false it may contain duplicates — fixpoint-internal
/// callers deduplicate downstream and sort once at the end.
Relation BindingsToAnswers(const NamedRelation& bindings,
                           const std::vector<Term>& head,
                           bool sort_output = true);

/// True if every variable of `cmp` occurs in `atom_vars`.
bool ComparisonWithin(const CompareAtom& cmp, const std::vector<VarId>& atom_vars);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_COMMON_H_

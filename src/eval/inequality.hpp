// Theorem 2: fixed-parameter tractable evaluation of acyclic conjunctive
// queries with inequality (≠) atoms.
//
// Pipeline (exactly the paper's construction, Section 5):
//   1. Split the inequality atoms into I2 (x ≠ c, and x ≠ y whose endpoints
//      co-occur in some relational atom) and I1 (the rest). I2 is folded into
//      the per-atom selections F_j; I1 — the inequalities that would destroy
//      acyclicity — is handled by color coding.
//   2. Let V1 = vars(I1), k = |V1|. For a coloring h : D -> {1..k}, extend
//      each S_j with primed attributes x' = h(x) for x ∈ U_j ∩ V1.
//   3. Compute the attribute sets Y_j = U_j ∪ U'_j ∪ W'_j, where W_j pulls
//      x' up the join tree until the inequality partners meet (Lemma 1: the
//      Y_j form an acyclic hypergraph with the same join tree).
//   4. Algorithm 1 (emptiness): bottom-up pass
//      P_u := σ_F(P_u ⋈ π_{Y_j ∩ Y_u}(P_j)); each I1 atom is checked by F at
//      the least common ancestor of its endpoints' subtrees.
//   5. Algorithm 2 (evaluation): downward semijoin pass, then upward
//      join-and-project computing π_Z without materializing the full join.
//   6. Drive over a family of colorings: Monte Carlo (c·e^k trials, the
//      paper's randomized analysis) or a family certified k-perfect on the
//      values V1 can take (deterministic, exact).
//
// Complexity: O(g(k) · q · n log n) per coloring for the decision problem,
// and output-sensitive for evaluation — the parameter never multiplies into
// the exponent of n.
#ifndef PARAQUERY_EVAL_INEQUALITY_H_
#define PARAQUERY_EVAL_INEQUALITY_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Options for the Theorem 2 engine.
struct IneqOptions {
  enum class Driver {
    /// Certified family when feasible on the ground set, else Monte Carlo.
    kAuto,
    /// The paper's randomized algorithm: c·e^k random colorings.
    kMonteCarlo,
    /// Deterministic family certified k-perfect on the active values of V1;
    /// fails with ResourceExhausted when certification is infeasible.
    kCertified,
  };

  Driver driver = Driver::kAuto;
  /// Error exponent c for Monte Carlo: failure probability <= e^-c per
  /// witness.
  double mc_error_exponent = 4.0;
  uint64_t seed = 0xC0FFEE;
  /// Join-size guard (0 = off).
  uint64_t max_rows = 0;
  /// Certification budget: max number of k-subsets of the ground set.
  uint64_t certified_max_subsets = 2'000'000;
  size_t certified_max_members = 100'000;
};

/// Instrumentation reported by the engine.
struct IneqStats {
  int k = 0;                  // |V1|
  size_t i1_atoms = 0;        // inequalities handled by color coding
  size_t i2_atoms = 0;        // inequalities pushed into selections
  size_t family_size = 0;     // colorings available
  size_t trials = 0;          // colorings actually run
  bool certified = false;     // family certified k-perfect (exact result)
  size_t peak_rows = 0;       // largest intermediate P_u
};

/// Decides Q(d) != {} for an acyclic conjunctive query with ≠ atoms.
/// With a certified family the answer is exact; with Monte Carlo a `false`
/// is wrong with probability <= e^-c (a `true` is always sound).
Result<bool> IneqNonempty(const Database& db, const ConjunctiveQuery& q,
                          const IneqOptions& options = {},
                          IneqStats* stats = nullptr);

/// Computes Q(d). With a certified family the result is exact; with Monte
/// Carlo each answer tuple is missed with probability <= e^-c.
Result<Relation> IneqEvaluate(const Database& db, const ConjunctiveQuery& q,
                              const IneqOptions& options = {},
                              IneqStats* stats = nullptr);

/// Decides t ∈ Q(d).
Result<bool> IneqContains(const Database& db, const ConjunctiveQuery& q,
                          const std::vector<Value>& tuple,
                          const IneqOptions& options = {},
                          IneqStats* stats = nullptr);

class IneqFormula;

/// The Section 5 parameter-q extension: an acyclic comparison-free body
/// plus an arbitrary ∧/∨ formula over ≠ atoms. The hash range grows to
/// k = #variables + #constants of the formula, every formula variable's
/// primed attribute is carried to the root, and φ is applied there as a
/// selection over colors (it cannot be pushed below an ∨). Soundness is
/// unconditional; completeness follows from a coloring injective on the
/// witness values and formula constants, exactly as in Theorem 2.
Result<bool> IneqFormulaNonempty(const Database& db, const ConjunctiveQuery& q,
                                 const IneqFormula& phi,
                                 const IneqOptions& options = {},
                                 IneqStats* stats = nullptr);

/// Full evaluation under the formula extension.
Result<Relation> IneqFormulaEvaluate(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const IneqFormula& phi,
                                     const IneqOptions& options = {},
                                     IneqStats* stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_INEQUALITY_H_

// Theorem 2: fixed-parameter tractable evaluation of acyclic conjunctive
// queries with inequality (≠) atoms.
//
// Pipeline (exactly the paper's construction, Section 5):
//   1. Split the inequality atoms into I2 (x ≠ c, and x ≠ y whose endpoints
//      co-occur in some relational atom) and I1 (the rest). I2 is folded into
//      the per-atom selections F_j; I1 — the inequalities that would destroy
//      acyclicity — is handled by color coding.
//   2. Let V1 = vars(I1), k = |V1|. For a coloring h : D -> {1..k}, extend
//      each S_j with primed attributes x' = h(x) for x ∈ U_j ∩ V1.
//   3. Compute the attribute sets Y_j = U_j ∪ U'_j ∪ W'_j, where W_j pulls
//      x' up the join tree until the inequality partners meet (Lemma 1: the
//      Y_j form an acyclic hypergraph with the same join tree).
//   4. Algorithm 1 (emptiness): bottom-up pass
//      P_u := σ_F(P_u ⋈ π_{Y_j ∩ Y_u}(P_j)); each I1 atom is checked by F at
//      the least common ancestor of its endpoints' subtrees.
//   5. Algorithm 2 (evaluation): downward semijoin pass, then upward
//      join-and-project computing π_Z without materializing the full join.
//   6. Drive over a family of colorings: Monte Carlo (c·e^k trials, the
//      paper's randomized analysis) or a family certified k-perfect on the
//      values V1 can take (deterministic, exact).
//
// Complexity: O(g(k) · q · n log n) per coloring for the decision problem,
// and output-sensitive for evaluation — the parameter never multiplies into
// the exponent of n.
//
// Since the plan-cache PR, steps 4–5 are LOWERED onto the physical plan IR:
// the residual query of a coloring compiles once into a PlanNode DAG
// (upward joins with the I1 checks as Select nodes, downward semijoins,
// upward join-and-project), and every coloring re-executes that one plan
// through the shared executor on re-bound hash-extended inputs S'_j — so
// the Theorem 2 engine inherits morsel parallelism, ResourceLimits,
// PlanStats, and .plan rendering, and the per-coloring re-execution is the
// plan cache's headline win (one plan compiled, k^k colorings executed).
// The historical hand-rolled evaluation is gone; its recorded answers live
// on as the differential fixture tests/theorem2_recorded.inc.
#ifndef PARAQUERY_EVAL_INEQUALITY_H_
#define PARAQUERY_EVAL_INEQUALITY_H_

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the Theorem 2 engine.
struct IneqOptions {
  enum class Driver {
    /// Certified family when feasible on the ground set, else Monte Carlo.
    kAuto,
    /// The paper's randomized algorithm: c·e^k random colorings.
    kMonteCarlo,
    /// Deterministic family certified k-perfect on the active values of V1;
    /// fails with ResourceExhausted when certification is infeasible.
    kCertified,
  };

  Driver driver = Driver::kAuto;
  /// Error exponent c for Monte Carlo: failure probability <= e^-c per
  /// witness.
  double mc_error_exponent = 4.0;
  uint64_t seed = 0xC0FFEE;
  /// Unified resource guard, enforced by the shared executor on EVERY
  /// per-coloring plan execution (each coloring gets a fresh max_steps
  /// budget: the bound is per residual query, not per family).
  ResourceLimits limits;
  /// Parallel runtime binding: each coloring's plan execution may go
  /// morsel/structurally parallel; the coloring loop itself is sequential
  /// (decision mode short-circuits at the first witness coloring).
  RuntimeOptions runtime;
  /// Cross-query plan cache (optional, engine-owned): the compiled residual
  /// plan — S_j inputs, join tree, Y sets, lowered DAGs — is keyed by the
  /// canonical query signature (+ formula) and database generation. Each
  /// additional coloring executed against the compiled plan is credited as
  /// a cache hit (PlanCache::NoteReuse).
  PlanCache* plan_cache = nullptr;
  /// DEPRECATED alias for limits.max_rows (the historical per-join guard).
  /// Used only when limits.max_rows == 0.
  uint64_t max_rows = 0;
  /// Certification budget: max number of k-subsets of the ground set.
  uint64_t certified_max_subsets = 2'000'000;
  size_t certified_max_members = 100'000;

  ResourceLimits EffectiveLimits() const {
    return limits.MergedWith(max_rows, /*legacy_max_steps=*/0);
  }
};

/// Instrumentation reported by the engine.
struct IneqStats {
  int k = 0;                  // |V1|
  size_t i1_atoms = 0;        // inequalities handled by color coding
  size_t i2_atoms = 0;        // inequalities pushed into selections
  size_t family_size = 0;     // colorings available
  size_t trials = 0;          // colorings actually run
  bool certified = false;     // family certified k-perfect (exact result)
  size_t peak_rows = 0;       // largest intermediate P_u
};

/// Decides Q(d) != {} for an acyclic conjunctive query with ≠ atoms.
/// With a certified family the answer is exact; with Monte Carlo a `false`
/// is wrong with probability <= e^-c (a `true` is always sound).
/// `plan_stats`, when given, receives the shared executor's counters
/// aggregated over every coloring executed.
Result<bool> IneqNonempty(const Database& db, const ConjunctiveQuery& q,
                          const IneqOptions& options = {},
                          IneqStats* stats = nullptr,
                          PlanStats* plan_stats = nullptr);

/// Computes Q(d). With a certified family the result is exact; with Monte
/// Carlo each answer tuple is missed with probability <= e^-c.
Result<Relation> IneqEvaluate(const Database& db, const ConjunctiveQuery& q,
                              const IneqOptions& options = {},
                              IneqStats* stats = nullptr,
                              PlanStats* plan_stats = nullptr);

/// Decides t ∈ Q(d).
Result<bool> IneqContains(const Database& db, const ConjunctiveQuery& q,
                          const std::vector<Value>& tuple,
                          const IneqOptions& options = {},
                          IneqStats* stats = nullptr);

/// Renders the lowered Theorem 2 evaluation plan (the coloring-independent
/// residual DAG: upward joins + I1 selects, downward semijoins, upward
/// join-and-project) without executing it. Primed hash columns render as
/// name' next to their base variable. Fails where the engine would (cyclic
/// body, non-≠ comparisons).
Result<std::string> IneqPlanText(const Database& db,
                                 const ConjunctiveQuery& q);

class IneqFormula;

/// The Section 5 parameter-q extension: an acyclic comparison-free body
/// plus an arbitrary ∧/∨ formula over ≠ atoms. The hash range grows to
/// k = #variables + #constants of the formula, every formula variable's
/// primed attribute is carried to the root, and φ is applied there as a
/// selection over colors (it cannot be pushed below an ∨). Soundness is
/// unconditional; completeness follows from a coloring injective on the
/// witness values and formula constants, exactly as in Theorem 2.
Result<bool> IneqFormulaNonempty(const Database& db, const ConjunctiveQuery& q,
                                 const IneqFormula& phi,
                                 const IneqOptions& options = {},
                                 IneqStats* stats = nullptr,
                                 PlanStats* plan_stats = nullptr);

/// Full evaluation under the formula extension. The relational passes run
/// through the shared executor; φ itself is applied at the root as a
/// per-coloring row filter (an ∧/∨ formula is not a conjunctive Predicate,
/// and its constants take per-coloring colors, so it cannot live inside the
/// cached coloring-independent plan).
Result<Relation> IneqFormulaEvaluate(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const IneqFormula& phi,
                                     const IneqOptions& options = {},
                                     IneqStats* stats = nullptr,
                                     PlanStats* plan_stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_INEQUALITY_H_

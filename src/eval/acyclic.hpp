// Yannakakis' algorithm for acyclic conjunctive queries (no comparisons):
// the classical tractability result the paper's Theorem 2 generalizes.
// Decision in O(q · n log n); full evaluation in time polynomial in input
// plus output via a semijoin full-reducer followed by an upward
// join-and-project pass.
#ifndef PARAQUERY_EVAL_ACYCLIC_H_
#define PARAQUERY_EVAL_ACYCLIC_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Options for the acyclic evaluator.
struct AcyclicOptions {
  /// Abort joins whose output exceeds this many rows (0 = off). The
  /// output-sensitive bound makes this a guard against misuse, not a
  /// correctness knob.
  uint64_t max_rows = 0;
  /// Run the downward semijoin pass before the upward join pass. Disabling
  /// it (ablation E7b) keeps correctness but loses the output-sensitivity
  /// guarantee: dangling tuples inflate intermediate joins.
  bool full_reducer = true;
};

/// Statistics reported by the evaluator.
struct AcyclicStats {
  size_t semijoins = 0;
  size_t joins = 0;
  size_t peak_intermediate_rows = 0;
  /// S_j materializations that came out as zero-copy views over the stored
  /// relation's row block (atom had no constants/repeated variables).
  size_t shared_atom_storage = 0;
  /// Project calls answered by a storage-sharing view instead of a row copy
  /// (no-op projections in the upward join-and-project pass).
  size_t zero_copy_projections = 0;
};

/// Decides Q(d) != {} for an acyclic comparison-free conjunctive query.
Result<bool> AcyclicNonempty(const Database& db, const ConjunctiveQuery& q,
                             const AcyclicOptions& options = {},
                             AcyclicStats* stats = nullptr);

/// Computes Q(d) for an acyclic comparison-free conjunctive query.
Result<Relation> AcyclicEvaluate(const Database& db, const ConjunctiveQuery& q,
                                 const AcyclicOptions& options = {},
                                 AcyclicStats* stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_ACYCLIC_H_

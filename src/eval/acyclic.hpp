// Yannakakis' algorithm for acyclic conjunctive queries (no comparisons):
// the classical tractability result the paper's Theorem 2 generalizes.
// Decision in O(q · n log n); full evaluation in time polynomial in input
// plus output via a semijoin full-reducer followed by an upward
// join-and-project pass.
//
// Since the physical-plan refactor, this evaluator lowers the query through
// plan/planner.hpp (which reproduces the exact semijoin-then-join schedule
// as a PlanNode DAG) and runs the shared plan executor; AcyclicStats is kept
// as a backward-compatible mirror of the PlanStats counters.
#ifndef PARAQUERY_EVAL_ACYCLIC_H_
#define PARAQUERY_EVAL_ACYCLIC_H_

#include <cstdint>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the acyclic evaluator.
struct AcyclicOptions {
  /// Unified resource guard (preferred; see ResourceLimits).
  ResourceLimits limits;
  /// Parallel runtime binding (default: sequential plan execution).
  RuntimeOptions runtime;
  /// Cross-query plan cache (optional, engine-owned): when set, the query
  /// is canonicalized and its Yannakakis plan — inputs, join tree, and all —
  /// is fetched/stored under its CanonicalCqSignature and the database
  /// generation, skipping S_j materialization and planning on a hit.
  PlanCache* plan_cache = nullptr;
  /// DEPRECATED alias for limits.max_rows: abort operators whose output
  /// exceeds this many rows (0 = off). Used only when limits.max_rows == 0.
  uint64_t max_rows = 0;
  /// Run the downward semijoin pass before the upward join pass. Disabling
  /// it (ablation E7b) keeps correctness but loses the output-sensitivity
  /// guarantee: dangling tuples inflate intermediate joins.
  bool full_reducer = true;

  ResourceLimits EffectiveLimits() const {
    return limits.MergedWith(max_rows, /*legacy_max_steps=*/0);
  }
};

/// Statistics reported by the evaluator. Mirrors the plan executor's
/// PlanStats (the authoritative counters surfaced via EngineStats::plan).
struct AcyclicStats {
  size_t semijoins = 0;
  size_t joins = 0;
  size_t peak_intermediate_rows = 0;
  /// S_j materializations that came out as zero-copy views over the stored
  /// relation's row block (atom had no constants/repeated variables).
  size_t shared_atom_storage = 0;
  /// Project calls answered by a storage-sharing view instead of a row copy
  /// (no-op projections in the upward join-and-project pass).
  size_t zero_copy_projections = 0;
};

/// Decides Q(d) != {} for an acyclic comparison-free conjunctive query.
/// `plan_stats`, when given, receives the shared executor's counters.
Result<bool> AcyclicNonempty(const Database& db, const ConjunctiveQuery& q,
                             const AcyclicOptions& options = {},
                             AcyclicStats* stats = nullptr,
                             PlanStats* plan_stats = nullptr);

/// Computes Q(d) for an acyclic comparison-free conjunctive query.
Result<Relation> AcyclicEvaluate(const Database& db, const ConjunctiveQuery& q,
                                 const AcyclicOptions& options = {},
                                 AcyclicStats* stats = nullptr,
                                 PlanStats* plan_stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_ACYCLIC_H_

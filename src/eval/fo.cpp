#include "eval/fo.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "eval/common.hpp"
#include "relational/ops.hpp"

namespace paraquery {

namespace {

struct FoEval {
  const Database& db;
  const FirstOrderQuery& q;
  const FoOptions& options;
  std::vector<Value> adom;
  std::map<int, NamedRelation> memo;  // node id -> result

  // Relation over `attrs` containing all adom tuples satisfying cmp.
  Result<NamedRelation> CompareRelation(const CompareAtom& cmp) {
    std::vector<AttrId> attrs;
    if (cmp.lhs.is_var()) attrs.push_back(cmp.lhs.var());
    if (cmp.rhs.is_var() && (!cmp.lhs.is_var() ||
                             cmp.rhs.var() != cmp.lhs.var())) {
      attrs.push_back(cmp.rhs.var());
    }
    if (attrs.empty()) {
      // Constant comparison: TRUE or FALSE.
      return CompareAtom::Apply(cmp.op, cmp.lhs.value(), cmp.rhs.value())
                 ? BooleanTrue()
                 : BooleanFalse();
    }
    PQ_ASSIGN_OR_RETURN(NamedRelation all,
                        DomainPower(attrs, adom, options.max_rows));
    Predicate pred;
    auto col = [&all](const Term& t) { return all.ColumnOf(t.var()); };
    if (cmp.lhs.is_var() && cmp.rhs.is_var()) {
      if (cmp.lhs.var() == cmp.rhs.var()) {
        // x op x.
        switch (cmp.op) {
          case CompareOp::kEq:
          case CompareOp::kLe:
            return all;  // always true
          case CompareOp::kNeq:
          case CompareOp::kLt:
            return NamedRelation{attrs};  // always false
        }
      }
      switch (cmp.op) {
        case CompareOp::kEq:
          pred.Add(Constraint::EqCols(col(cmp.lhs), col(cmp.rhs)));
          break;
        case CompareOp::kNeq:
          pred.Add(Constraint::NeqCols(col(cmp.lhs), col(cmp.rhs)));
          break;
        case CompareOp::kLt:
          pred.Add(Constraint::LtCols(col(cmp.lhs), col(cmp.rhs)));
          break;
        case CompareOp::kLe:
          pred.Add(Constraint::LeCols(col(cmp.lhs), col(cmp.rhs)));
          break;
      }
    } else {
      bool lhs_var = cmp.lhs.is_var();
      int c = col(lhs_var ? cmp.lhs : cmp.rhs);
      Value v = lhs_var ? cmp.rhs.value() : cmp.lhs.value();
      switch (cmp.op) {
        case CompareOp::kEq:
          pred.Add(Constraint::EqConst(c, v));
          break;
        case CompareOp::kNeq:
          pred.Add(Constraint::NeqConst(c, v));
          break;
        case CompareOp::kLt:
          pred.Add(lhs_var ? Constraint::LtConst(c, v)
                           : Constraint::GtConst(c, v));
          break;
        case CompareOp::kLe:
          pred.Add(lhs_var ? Constraint::LeConst(c, v)
                           : Constraint::GeConst(c, v));
          break;
      }
    }
    return Select(all, pred);
  }

  // Division: tuples t over attrs−{x} such that for EVERY value v in adom,
  // t extended with x=v belongs to `rel`. Requires x ∈ attrs(rel).
  Result<NamedRelation> Divide(const NamedRelation& rel, AttrId x) {
    int xcol = rel.ColumnOf(x);
    PQ_CHECK(xcol >= 0, "Divide: attribute missing");
    std::vector<AttrId> rest;
    for (AttrId a : rel.attrs()) {
      if (a != x) rest.push_back(a);
    }
    // Sort rows of `rel` reordered as (rest..., x) and count, per `rest`
    // group, how many distinct x values appear: keep the groups covering
    // the whole active domain.
    std::vector<AttrId> order = rest;
    order.push_back(x);
    // The group scan below needs lexicographic order, which Project's
    // hash-dedup does not provide — sort-dedup the raw projection instead.
    NamedRelation sorted = Project(rel, order, /*dedup=*/false);
    sorted.rel().SortAndDedup();
    NamedRelation out{rest};
    size_t n = sorted.size();
    size_t need = adom.size();
    size_t i = 0;
    size_t groups = 0;
    while (i < n) {
      // The group scan is the evaluator's longest uninterruptible stretch
      // (up to |adom|^arity rows): poll the abort state every ~1k groups.
      if ((++groups & 1023) == 0) {
        PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
      }
      size_t j = i;
      auto same_group = [&](size_t a, size_t b) {
        for (size_t c = 0; c + 1 < order.size(); ++c) {
          if (sorted.rel().At(a, c) != sorted.rel().At(b, c)) return false;
        }
        return true;
      };
      while (j < n && same_group(i, j)) ++j;
      if (j - i == need) {
        ValueVec row(rest.size());
        for (size_t c = 0; c < rest.size(); ++c) {
          row[c] = sorted.rel().At(i, c);
        }
        out.rel().Add(row);
      }
      i = j;
    }
    return out;
  }

  Result<NamedRelation> Eval(int id) {
    // One poll per subformula: a deadline/cancel/memory abort stops the
    // recursion within one algebra operation.
    PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    using Kind = FirstOrderQuery::NodeKind;
    const auto& node = q.nodes[id];
    NamedRelation result;
    switch (node.kind) {
      case Kind::kAtom: {
        PQ_ASSIGN_OR_RETURN(result, AtomToRelation(db, q.atoms[node.atom]));
        break;
      }
      case Kind::kCompare: {
        PQ_ASSIGN_OR_RETURN(result, CompareRelation(node.compare));
        break;
      }
      case Kind::kAnd: {
        PQ_ASSIGN_OR_RETURN(result, Eval(node.children[0]));
        JoinOptions jo;
        jo.max_output_rows = options.max_rows;
        for (size_t i = 1; i < node.children.size(); ++i) {
          PQ_ASSIGN_OR_RETURN(NamedRelation next, Eval(node.children[i]));
          PQ_ASSIGN_OR_RETURN(result, NaturalJoin(result, next, jo));
        }
        break;
      }
      case Kind::kOr: {
        // Align all children to the union of their attribute sets by
        // padding with adom, then union.
        std::vector<NamedRelation> parts;
        std::vector<AttrId> all_attrs;
        for (int c : node.children) {
          PQ_ASSIGN_OR_RETURN(NamedRelation part, Eval(c));
          for (AttrId a : part.attrs()) {
            if (std::find(all_attrs.begin(), all_attrs.end(), a) ==
                all_attrs.end()) {
              all_attrs.push_back(a);
            }
          }
          parts.push_back(std::move(part));
        }
        bool first = true;
        for (NamedRelation& part : parts) {
          std::vector<AttrId> missing;
          for (AttrId a : all_attrs) {
            if (!part.HasAttr(a)) missing.push_back(a);
          }
          NamedRelation padded = std::move(part);
          if (!missing.empty()) {
            PQ_ASSIGN_OR_RETURN(NamedRelation pad,
                                DomainPower(missing, adom, options.max_rows));
            PQ_ASSIGN_OR_RETURN(padded,
                                CrossProduct(padded, pad, options.max_rows));
          }
          if (first) {
            result = std::move(padded);
            first = false;
          } else {
            result = UnionSet(result, padded);
          }
        }
        break;
      }
      case Kind::kNot: {
        PQ_ASSIGN_OR_RETURN(NamedRelation inner, Eval(node.children[0]));
        PQ_ASSIGN_OR_RETURN(result,
                            Complement(inner, adom, options.max_rows));
        break;
      }
      case Kind::kExists: {
        PQ_ASSIGN_OR_RETURN(NamedRelation inner, Eval(node.children[0]));
        std::vector<AttrId> keep;
        for (AttrId a : inner.attrs()) {
          if (std::find(node.bound.begin(), node.bound.end(), a) ==
              node.bound.end()) {
            keep.push_back(a);
          }
        }
        if (keep.size() == inner.attrs().size()) {
          // Bound variables do not occur: ∃x φ ≡ φ over a nonempty domain.
          result = std::move(inner);
        } else if (keep.empty() && inner.arity() > 0) {
          result = inner.empty() ? BooleanFalse() : BooleanTrue();
        } else {
          result = Project(inner, keep);
        }
        break;
      }
      case Kind::kForall: {
        PQ_ASSIGN_OR_RETURN(NamedRelation inner, Eval(node.children[0]));
        result = std::move(inner);
        for (VarId x : node.bound) {
          if (result.HasAttr(x)) {
            PQ_ASSIGN_OR_RETURN(result, Divide(result, x));
          }
          // ∀x φ with x not free in φ ≡ φ over a nonempty domain.
        }
        if (result.arity() == 0 && !result.empty()) result = BooleanTrue();
        break;
      }
    }
    // Exit poll: an abort raised DURING this node's own algebra work
    // (domain-power padding, complement, division sort) must surface here —
    // entry polls only observe aborts raised before the node started.
    PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
    memo.emplace(id, result);
    return result;
  }
};

}  // namespace

Result<Relation> EvaluateFirstOrder(const Database& db,
                                    const FirstOrderQuery& q,
                                    const FoOptions& options) {
  PQ_RETURN_NOT_OK(q.Validate());
  std::vector<Value> adom = db.ActiveDomain();
  if (adom.empty()) {
    return Status::InvalidArgument(
        "first-order evaluation requires a nonempty active domain");
  }
  FoEval ev{db, q, options, std::move(adom), {}};
  PQ_ASSIGN_OR_RETURN(NamedRelation root, ev.Eval(q.root));
  // Extend to head variables that are not free in the formula (they range
  // over the active domain).
  std::vector<AttrId> missing;
  for (const Term& t : q.head) {
    if (t.is_var() && !root.HasAttr(t.var())) {
      bool seen = std::find(missing.begin(), missing.end(), t.var()) !=
                  missing.end();
      if (!seen) missing.push_back(t.var());
    }
  }
  if (!missing.empty()) {
    PQ_ASSIGN_OR_RETURN(NamedRelation pad,
                        DomainPower(missing, ev.adom, options.max_rows));
    PQ_ASSIGN_OR_RETURN(root, CrossProduct(root, pad, options.max_rows));
  }
  // Final poll covers the head padding above (the last uninterruptible
  // stretch before answers are handed back).
  PQ_RETURN_NOT_OK(options.runtime.CheckInterrupt());
  return BindingsToAnswers(root, q.head);
}

Result<bool> FirstOrderNonempty(const Database& db, const FirstOrderQuery& q,
                                const FoOptions& options) {
  PQ_ASSIGN_OR_RETURN(Relation result, EvaluateFirstOrder(db, q, options));
  return !result.empty();
}

}  // namespace paraquery

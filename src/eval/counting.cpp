#include "eval/counting.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "obs/trace.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"

namespace paraquery {

Relation GroupCountRows(const Relation& distinct_rows,
                        const std::vector<int>& group_cols) {
  if (group_cols.empty()) {
    Relation out(1);
    out.Add(std::vector<Value>{static_cast<Value>(distinct_rows.size())});
    return out;
  }
  std::map<std::vector<Value>, Value> groups;
  std::vector<Value> key(group_cols.size());
  for (size_t r = 0; r < distinct_rows.size(); ++r) {
    for (size_t i = 0; i < group_cols.size(); ++i) {
      key[i] = distinct_rows.At(r, group_cols[i]);
    }
    ++groups[key];
  }
  Relation out(group_cols.size() + 1);
  std::vector<Value> row;
  for (const auto& [g, count] : groups) {
    row.assign(g.begin(), g.end());
    row.push_back(count);
    out.Add(row);
  }
  return out;
}

Result<Relation> CountingEvaluate(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const CountingOptions& options,
                                  PlanStats* plan_stats) {
  PQ_FAULT_POINT("counting.plan");
  TraceSpan route_span(options.runtime.tracer, "route.counting");
  PQ_RETURN_NOT_OK(q.Validate());
  if (!q.answer.counting()) {
    return Status::InvalidArgument(
        "CountingEvaluate requires a counting query (AnswerSpec)");
  }
  const size_t ngroup = q.head.size();
  if (q.body.empty()) {
    // No relational atoms: exactly one (empty) assignment to the zero body
    // variables. Grouped counts cannot get here (their keys would be unsafe).
    Relation out(1);
    out.Add(std::vector<Value>{1});
    return out;
  }
  PlannerOptions popt;
  popt.full_reducer = options.full_reducer;
  popt.vectorize = options.vectorize;
  popt.wcoj = options.wcoj;
  std::shared_ptr<PhysicalPlan> plan;
  if (options.plan_cache != nullptr) {
    // Cache route, exactly like the tuple evaluators: compile (or fetch) the
    // canonical query's plan. The signature carries the answer shape, so the
    // same text in tuple mode maps to a different entry; the output columns
    // are the canonical group keys, which occupy the same head positions as
    // the original's, so no answer re-mapping is needed.
    CanonicalCq canonical = CanonicalizeCq(q);
    std::string key =
        internal::StrCat("cq-cnt:", options.full_reducer ? "" : "nored|",
                         canonical.signature);
    plan = options.plan_cache->Lookup<PhysicalPlan>(key, db);
    if (plan == nullptr) {
      PQ_ASSIGN_OR_RETURN(PhysicalPlan built,
                          PlanCountingCq(db, canonical.query, popt));
      plan = std::make_shared<PhysicalPlan>(std::move(built));
      PQ_FAULT_POINT("counting.cache.insert");
      options.plan_cache->Insert(key, db, canonical.query, plan);
    }
  } else {
    PQ_ASSIGN_OR_RETURN(PhysicalPlan built, PlanCountingCq(db, q, popt));
    plan = std::make_shared<PhysicalPlan>(std::move(built));
  }
  PlanStats local;
  PQ_ASSIGN_OR_RETURN(
      NamedRelation root,
      ExecutePhysicalPlan(*plan, options.limits, &local, options.runtime));
  if (plan_stats != nullptr) plan_stats->Merge(local);
  if (ngroup == 0) {
    // Scalar COUNT(*): the root aggregate emits one [total] row, or none at
    // all on an empty query — the 0 row is supplied HERE, never inside the
    // plan, where it would poison an upstream SemijoinCount.
    if (root.arity() != 1 || root.size() > 1) {
      return Status::Internal("scalar counting plan produced a malformed root");
    }
    Relation out(1);
    out.Add(std::vector<Value>{root.empty() ? 0 : root.rel().At(0, 0)});
    return out;
  }
  // Grouped: the root's columns are already the group keys in head order
  // plus the trailing count (MakeAggregate preserves the planner's group
  // order). Sort by group for a canonical, thread-count-independent answer;
  // rows are distinct groups, so whole-row sorting cannot merge anything.
  if (root.arity() != ngroup + 1) {
    return Status::Internal("grouped counting plan produced a malformed root");
  }
  Relation out = root.rel();
  out.SortAndDedup();
  return out;
}

}  // namespace paraquery

// Bottom-up (semi-naive) Datalog evaluation. With EDB/IDB arities bounded by
// r, the fixpoint is reached within n^r stages and each stage evaluates
// conjunctive queries — the structure behind the paper's remark that
// bounded-arity Datalog is W[1]-complete, while unbounded IDB arity provably
// forces the query size into the exponent (Vardi).
//
// Since the physical-plan refactor, each (rule, delta position) variant is
// lowered once by plan/planner.hpp to a left-deep join plan over slot-bound
// scans (delta pinned first, then greedy smallest-first) and re-executed by
// the shared plan executor every iteration; static EDB atoms keep their
// program-wide cached materializations and memoized join indexes.
#ifndef PARAQUERY_EVAL_DATALOG_EVAL_H_
#define PARAQUERY_EVAL_DATALOG_EVAL_H_

#include <cstdint>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "query/datalog.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Options for the Datalog engine.
struct DatalogOptions {
  /// Abort after this many fixpoint iterations (0 = off).
  uint64_t max_iterations = 0;
  /// Parallel runtime binding. With a scheduler, the independent (rule,
  /// delta position) firings of one semi-naive round run as concurrent
  /// tasks — newly derived tuples are applied to the IDB state in variant
  /// order after the round's barrier — and each firing's plan may execute
  /// morsel-parallel. The fixpoint (and the goal relation) is identical to
  /// the single-threaded run; iteration/firing counts may differ, because
  /// the sequential engine lets a firing observe tuples derived earlier in
  /// the same round while the parallel round is a pure Jacobi step.
  RuntimeOptions runtime;
  /// Unified resource guard: limits.max_rows bounds the total derived IDB
  /// tuples, and both members are forwarded to every rule-plan execution.
  ResourceLimits limits;
  /// Cross-query plan cache (optional, engine-owned): a variant's first
  /// firing fetches the rule-body plan compiled by a previous program run
  /// (keyed by the rule's canonical signature + delta position + database
  /// generation) instead of re-running PlanRuleBody. Hits are CLONED into
  /// the run — concurrent firings never share mutable plan nodes — with
  /// their Scan join-index pointers rebound to this run's EDB caches; the
  /// >10x delta-drift re-planning still applies on top and refreshes the
  /// cached entry.
  PlanCache* plan_cache = nullptr;
  /// Let PlanRuleBody place Materialize boundaries so eligible rule bodies
  /// run vectorized over columnar storage (byte-identical fixpoint either
  /// way). The rule-plan cache key carries the flag, so cached plans never
  /// leak across toggle states.
  bool vectorize = true;
  /// DEPRECATED alias for limits.max_rows. Used when limits.max_rows == 0.
  uint64_t max_rows = 0;

  ResourceLimits EffectiveLimits() const {
    return limits.MergedWith(max_rows, /*legacy_max_steps=*/0);
  }
};

/// Instrumentation.
struct DatalogStats {
  size_t iterations = 0;
  size_t derived_tuples = 0;  // total IDB tuples at fixpoint
  /// Rules that actually fired (all body atoms nonempty). Firings skipped
  /// because some body atom was empty are counted separately.
  size_t rule_firings = 0;
  size_t skipped_firings = 0;
  /// Program-wide EDB atom cache (keyed by relation id + the atom's
  /// selection/projection signature): distinct materializations built vs
  /// body-atom slots served by an existing one through a relabeled view.
  size_t edb_materializations = 0;
  size_t edb_cache_hits = 0;
  /// Memoized join indexes over cached EDB materializations: builds vs
  /// probe-column lookups answered by an already-built index (mirror of
  /// plan.index_builds / plan.index_hits).
  size_t edb_index_builds = 0;
  size_t edb_index_hits = 0;
  /// Rule-body plans built (PlanRuleBody invocations) vs firings answered
  /// by a reused plan (re-execution across iterations, or a variant served
  /// by the cross-run plan cache) vs plans rebuilt because the observed
  /// delta size drifted >10x from the size the variant was planned at
  /// (rule_firings = plans_built + plan_reuses + replans).
  size_t plans_built = 0;
  size_t plan_reuses = 0;
  size_t replans = 0;
  /// Shared plan-executor counters aggregated over every rule firing.
  PlanStats plan;
};

/// Computes the goal relation of `program` over `db` (semi-naive fixpoint).
Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options = {},
                                 DatalogStats* stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_DATALOG_EVAL_H_

// Bottom-up (semi-naive) Datalog evaluation. With EDB/IDB arities bounded by
// r, the fixpoint is reached within n^r stages and each stage evaluates
// conjunctive queries — the structure behind the paper's remark that
// bounded-arity Datalog is W[1]-complete, while unbounded IDB arity provably
// forces the query size into the exponent (Vardi).
#ifndef PARAQUERY_EVAL_DATALOG_EVAL_H_
#define PARAQUERY_EVAL_DATALOG_EVAL_H_

#include <cstdint>

#include "common/status.hpp"
#include "query/datalog.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Options for the Datalog engine.
struct DatalogOptions {
  /// Abort after this many fixpoint iterations (0 = off).
  uint64_t max_iterations = 0;
  /// Abort when total derived tuples exceed this (0 = off).
  uint64_t max_rows = 0;
};

/// Instrumentation.
struct DatalogStats {
  size_t iterations = 0;
  size_t derived_tuples = 0;  // total IDB tuples at fixpoint
  /// Rules that actually fired (all body atoms nonempty). Firings skipped
  /// because some body atom was empty are counted separately.
  size_t rule_firings = 0;
  size_t skipped_firings = 0;
  /// Program-wide EDB atom cache (keyed by relation id + the atom's
  /// selection/projection signature): distinct materializations built vs
  /// body-atom slots served by an existing one through a relabeled view.
  size_t edb_materializations = 0;
  size_t edb_cache_hits = 0;
  /// Memoized join indexes over cached EDB materializations: builds vs
  /// probe-column lookups answered by an already-built index.
  size_t edb_index_builds = 0;
  size_t edb_index_hits = 0;
};

/// Computes the goal relation of `program` over `db` (semi-naive fixpoint).
Result<Relation> EvaluateDatalog(const Database& db,
                                 const DatalogProgram& program,
                                 const DatalogOptions& options = {},
                                 DatalogStats* stats = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_EVAL_DATALOG_EVAL_H_

#include "eval/common.hpp"

#include <algorithm>

#include "relational/ops.hpp"

namespace paraquery {

namespace {

// Builds a constraint over the *projected* relation (columns = distinct
// variables) for a comparison atom. Variables must be present.
Result<Constraint> FilterToConstraint(const NamedRelation& projected,
                                      const CompareAtom& cmp) {
  auto col_of = [&projected](const Term& t) -> int {
    return t.is_var() ? projected.ColumnOf(t.var()) : -1;
  };
  bool lv = cmp.lhs.is_var(), rv = cmp.rhs.is_var();
  if (lv && rv) {
    int a = col_of(cmp.lhs), b = col_of(cmp.rhs);
    if (a < 0 || b < 0) {
      return Status::InvalidArgument(
          "filter variable does not occur in the atom");
    }
    switch (cmp.op) {
      case CompareOp::kNeq:
        return Constraint::NeqCols(a, b);
      case CompareOp::kLt:
        return Constraint::LtCols(a, b);
      case CompareOp::kLe:
        return Constraint::LeCols(a, b);
      case CompareOp::kEq:
        return Constraint::EqCols(a, b);
    }
  }
  if (lv != rv) {
    // Normalize to var OP const.
    Term var = lv ? cmp.lhs : cmp.rhs;
    Value c = lv ? cmp.rhs.value() : cmp.lhs.value();
    int col = col_of(var);
    if (col < 0) {
      return Status::InvalidArgument(
          "filter variable does not occur in the atom");
    }
    CompareOp op = cmp.op;
    if (!lv) {
      // c OP x  ->  x OP' c with the mirrored operator.
      if (op == CompareOp::kLt) {
        return Constraint::GtConst(col, c);
      }
      if (op == CompareOp::kLe) {
        return Constraint::GeConst(col, c);
      }
    }
    switch (op) {
      case CompareOp::kNeq:
        return Constraint::NeqConst(col, c);
      case CompareOp::kLt:
        return Constraint::LtConst(col, c);
      case CompareOp::kLe:
        return Constraint::LeConst(col, c);
      case CompareOp::kEq:
        return Constraint::EqConst(col, c);
    }
  }
  return Status::InvalidArgument(
      "constant/constant comparison cannot be pushed into an atom");
}

}  // namespace

bool ComparisonWithin(const CompareAtom& cmp,
                      const std::vector<VarId>& atom_vars) {
  auto in = [&atom_vars](const Term& t) {
    return t.is_const() || std::find(atom_vars.begin(), atom_vars.end(),
                                     t.var()) != atom_vars.end();
  };
  // At least one side must be a variable of the atom for pushing to make
  // sense; constant/constant pairs are resolved by the caller.
  if (cmp.lhs.is_const() && cmp.rhs.is_const()) return false;
  return in(cmp.lhs) && in(cmp.rhs);
}

Result<NamedRelation> AtomToRelation(const Relation& rel, const Atom& atom,
                                     const std::vector<CompareAtom>& filters) {
  if (rel.arity() != atom.terms.size()) {
    return Status::InvalidArgument(internal::StrCat(
        "atom ", atom.relation, "/", atom.terms.size(),
        " does not match stored arity ", rel.arity()));
  }
  // Selection on raw positions: constants and repeated variables.
  Predicate raw;
  std::vector<VarId> vars;       // distinct, first-occurrence order
  std::vector<int> first_col;    // column of first occurrence
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_const()) {
      raw.Add(Constraint::EqConst(static_cast<int>(i), t.value()));
      continue;
    }
    auto it = std::find(vars.begin(), vars.end(), t.var());
    if (it == vars.end()) {
      vars.push_back(t.var());
      first_col.push_back(static_cast<int>(i));
    } else {
      raw.Add(Constraint::EqCols(first_col[it - vars.begin()],
                                 static_cast<int>(i)));
    }
  }
  // Fast path: no constants, no repeated variables, no filters — S_j is the
  // base relation itself under variable labels. Return a zero-copy view over
  // the stored rows; the HashDedup below copies only if duplicates exist.
  if (raw.empty() && vars.size() == atom.terms.size() && filters.empty()) {
    NamedRelation view{vars, rel};
    view.rel().HashDedup();
    return view;
  }
  // Select and project in one scan.
  NamedRelation out{vars};
  out.rel().Reserve(rel.size());
  ValueVec row(vars.size());
  for (size_t r = 0; r < rel.size(); ++r) {
    auto raw_row = rel.Row(r);
    if (!raw.Eval(raw_row)) continue;
    for (size_t i = 0; i < vars.size(); ++i) row[i] = raw_row[first_col[i]];
    out.rel().Add(row);
  }
  if (!filters.empty()) {
    Predicate post;
    for (const CompareAtom& cmp : filters) {
      PQ_ASSIGN_OR_RETURN(Constraint c, FilterToConstraint(out, cmp));
      post.Add(c);
    }
    out = Select(out, post);
  }
  // Set semantics only: evaluators probe S_j through hash indexes, so the
  // sorted order a SortAndDedup would impose is never exploited.
  out.rel().HashDedup();
  return out;
}

Result<NamedRelation> AtomToRelation(const Database& db, const Atom& atom,
                                     const std::vector<CompareAtom>& filters) {
  PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(atom.relation));
  return AtomToRelation(db.relation(id), atom, filters);
}

Relation BindingsToAnswers(const NamedRelation& bindings,
                           const std::vector<Term>& head, bool sort_output) {
  Relation out(head.size());
  std::vector<int> cols(head.size(), -1);
  for (size_t i = 0; i < head.size(); ++i) {
    if (head[i].is_var()) {
      cols[i] = bindings.ColumnOf(head[i].var());
      PQ_CHECK(cols[i] >= 0, "BindingsToAnswers: head variable not bound");
    }
  }
  ValueVec row(head.size());
  for (size_t r = 0; r < bindings.size(); ++r) {
    for (size_t i = 0; i < head.size(); ++i) {
      row[i] = head[i].is_var() ? bindings.rel().At(r, cols[i])
                                : head[i].value();
    }
    out.Add(row);
  }
  if (sort_output) out.SortAndDedup();
  return out;
}

}  // namespace paraquery

// CNF formulas and the weighted-2CNF instance type produced by the paper's
// Theorem 1 upper-bound reduction (conjunctive query decision -> weighted
// satisfiability of an all-negative 2-CNF with one variable group per atom).
#ifndef PARAQUERY_CIRCUIT_CNF_H_
#define PARAQUERY_CIRCUIT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace paraquery {

/// Literal: variable index v (0-based) encoded as +(v+1), negation as -(v+1).
using Lit = int;

inline Lit PosLit(int var) { return var + 1; }
inline Lit NegLit(int var) { return -(var + 1); }
inline int LitVar(Lit l) { return (l > 0 ? l : -l) - 1; }
inline bool LitNegated(Lit l) { return l < 0; }

/// A CNF formula: conjunction of clauses, each a disjunction of literals.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// True iff every clause has at most `width` literals.
  bool HasWidth(int width) const;

  /// Evaluates under a full assignment.
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Equivalent circuit (AND of ORs of possibly-negated inputs); depth 2.
  Circuit ToCircuit() const;

  std::string ToString() const;
};

/// Weighted all-negative 2-CNF with group structure, as produced by the
/// CQ -> weighted-2CNF reduction: variables are (atom, tuple) pairs; groups
/// partition variables by atom; clauses are all of the form (¬a ∨ ¬b).
/// A solution is an assignment with exactly k = groups.size() true
/// variables; by construction it must pick exactly one variable per group.
struct GroupedW2Cnf {
  int num_vars = 0;
  /// Pairs (a, b) meaning clause (¬a ∨ ¬b), a != b.
  std::vector<std::pair<int, int>> clauses;
  /// Disjoint variable groups covering 0..num_vars-1.
  std::vector<std::vector<int>> groups;

  /// Plain CNF view (clauses only; the cardinality constraint is external).
  Cnf ToCnf() const;
};

}  // namespace paraquery

#endif  // PARAQUERY_CIRCUIT_CNF_H_

#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

namespace paraquery {

Circuit::Circuit(int num_inputs) : num_inputs_(num_inputs) {
  PQ_CHECK(num_inputs >= 0, "Circuit: negative input count");
  gates_.resize(num_inputs);
  for (int i = 0; i < num_inputs; ++i) gates_[i] = {GateKind::kInput, {}};
}

int Circuit::AddGate(GateKind kind, std::vector<int> inputs) {
  PQ_CHECK(kind != GateKind::kInput, "AddGate: cannot add input gates");
  if (kind == GateKind::kNot) {
    PQ_CHECK(inputs.size() == 1, "NOT gate requires fan-in 1");
  } else {
    PQ_CHECK(!inputs.empty(), "AND/OR gate requires fan-in >= 1");
  }
  int id = num_gates();
  for (int in : inputs) {
    PQ_CHECK(in >= 0 && in < id, "AddGate: input id out of range");
  }
  gates_.push_back({kind, std::move(inputs)});
  return id;
}

void Circuit::SetOutput(int gate_id) {
  PQ_CHECK(gate_id >= 0 && gate_id < num_gates(), "SetOutput: bad gate id");
  output_ = gate_id;
}

bool Circuit::Evaluate(const std::vector<bool>& input_values) const {
  PQ_CHECK(static_cast<int>(input_values.size()) == num_inputs_,
           "Evaluate: wrong number of inputs");
  PQ_CHECK(output_ >= 0, "Evaluate: output not set");
  std::vector<bool> value(gates_.size(), false);
  for (size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    switch (g.kind) {
      case GateKind::kInput:
        value[id] = input_values[id];
        break;
      case GateKind::kNot:
        value[id] = !value[g.inputs[0]];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (int in : g.inputs) v = v && value[in];
        value[id] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (int in : g.inputs) v = v || value[in];
        value[id] = v;
        break;
      }
    }
  }
  return value[output_];
}

bool Circuit::IsMonotone() const {
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kNot) return false;
  }
  return true;
}

int Circuit::Depth() const {
  PQ_CHECK(output_ >= 0, "Depth: output not set");
  std::vector<int> depth(gates_.size(), 0);
  for (size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    int d = 0;
    for (int in : g.inputs) d = std::max(d, depth[in]);
    if (g.kind == GateKind::kAnd || g.kind == GateKind::kOr) d += 1;
    depth[id] = d;
  }
  return depth[output_];
}

std::string Circuit::ToString() const {
  std::ostringstream oss;
  for (size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kInput) continue;
    oss << "g" << id << " = ";
    switch (g.kind) {
      case GateKind::kAnd:
        oss << "AND";
        break;
      case GateKind::kOr:
        oss << "OR";
        break;
      case GateKind::kNot:
        oss << "NOT";
        break;
      case GateKind::kInput:
        break;
    }
    oss << "(";
    for (size_t i = 0; i < g.inputs.size(); ++i) {
      if (i > 0) oss << ",";
      oss << "g" << g.inputs[i];
    }
    oss << ")";
    if (static_cast<int>(id) == output_) oss << " [output]";
    oss << "\n";
  }
  return oss.str();
}

Circuit AndOfInputs(int num_inputs) {
  Circuit c(num_inputs);
  std::vector<int> all(num_inputs);
  for (int i = 0; i < num_inputs; ++i) all[i] = i;
  c.SetOutput(c.AddGate(GateKind::kAnd, all));
  return c;
}

Circuit OrOfInputs(int num_inputs) {
  Circuit c(num_inputs);
  std::vector<int> all(num_inputs);
  for (int i = 0; i < num_inputs; ++i) all[i] = i;
  c.SetOutput(c.AddGate(GateKind::kOr, all));
  return c;
}

}  // namespace paraquery

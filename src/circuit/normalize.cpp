#include "circuit/normalize.hpp"

#include <algorithm>
#include <map>

namespace paraquery {

namespace {
// Required gate kind at a level: OR on even levels, AND on odd levels.
GateKind KindAt(int level) {
  return (level % 2 == 0) ? GateKind::kOr : GateKind::kAnd;
}
}  // namespace

Result<AlternatingCircuit> NormalizeMonotone(const Circuit& c) {
  if (!c.IsMonotone()) {
    return Status::InvalidArgument("NormalizeMonotone: circuit has NOT gates");
  }
  if (c.output() < 0) {
    return Status::InvalidArgument("NormalizeMonotone: output not set");
  }

  // Pass 1: assign every original gate a level of the correct parity.
  // Inputs sit at level 0; an AND goes to the smallest odd level above all
  // its children, an OR to the smallest even level above all its children
  // (but at least 1, so no gate shares level 0 with the inputs).
  std::vector<int> orig_level(c.num_gates(), 0);
  for (int id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == GateKind::kInput) continue;
    int lmin = 1;
    for (int in : g.inputs) lmin = std::max(lmin, orig_level[in] + 1);
    bool want_odd = (g.kind == GateKind::kAnd);
    if ((lmin % 2 == 1) != want_odd) ++lmin;
    orig_level[id] = lmin;
  }
  int out_level = orig_level[c.output()];
  // The output must be an OR at an even level >= 2.
  int top = out_level;
  if (c.gate(c.output()).kind == GateKind::kAnd || out_level % 2 == 1) {
    top = out_level + 1;
  }
  if (top % 2 == 1) ++top;
  if (top < 2) top = 2;

  // Pass 2: rebuild, inserting pass-through chains so every wire connects
  // adjacent levels. pass_through[(gate, level)] = id of the copy of `gate`
  // lifted to `level` in the new circuit.
  AlternatingCircuit out;
  out.circuit = Circuit(c.num_inputs());
  out.level.assign(c.num_inputs(), 0);

  std::map<std::pair<int, int>, int> lifted;  // (orig gate, level) -> new id
  std::vector<int> new_id(c.num_gates(), -1);
  for (int i = 0; i < c.num_inputs(); ++i) {
    new_id[i] = i;
    lifted[{i, 0}] = i;
  }

  // Lifts `orig` (already materialized at orig_level[orig]) to `level` via
  // single-input pass-through gates of alternating kinds.
  auto Lift = [&](int orig, int level) -> int {
    int base_level = orig_level[orig];
    PQ_DCHECK(level >= base_level, "Lift below base level");
    auto it = lifted.find({orig, level});
    if (it != lifted.end()) return it->second;
    PQ_CHECK(lifted.count({orig, base_level}) == 1,
             "Lift: base gate not materialized");
    int cur = lifted[{orig, base_level}];
    for (int l = base_level + 1; l <= level; ++l) {
      auto step = lifted.find({orig, l});
      if (step != lifted.end()) {
        cur = step->second;
        continue;
      }
      cur = out.circuit.AddGate(KindAt(l), {cur});
      out.level.push_back(l);
      lifted[{orig, l}] = cur;
    }
    return cur;
  };

  for (int id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == GateKind::kInput) continue;
    int level = orig_level[id];
    std::vector<int> ins;
    ins.reserve(g.inputs.size());
    for (int in : g.inputs) ins.push_back(Lift(in, level - 1));
    new_id[id] = out.circuit.AddGate(g.kind, std::move(ins));
    out.level.push_back(level);
    lifted[{id, level}] = new_id[id];
  }

  int output_new = Lift(c.output(), top);
  out.circuit.SetOutput(output_new);
  out.top_level = top;
  return out;
}

}  // namespace paraquery

#include "circuit/weighted_sat.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/combinatorics.hpp"
#include "common/status.hpp"

namespace paraquery {

std::optional<std::vector<int>> WeightedCircuitSat(const Circuit& c, int k) {
  int n = c.num_inputs();
  if (k < 0 || k > n) return std::nullopt;
  std::optional<std::vector<int>> found;
  std::vector<bool> assignment(n, false);
  ForEachKSubset(n, k, [&](const std::vector<int>& subset) {
    std::fill(assignment.begin(), assignment.end(), false);
    for (int v : subset) assignment[v] = true;
    if (c.Evaluate(assignment)) {
      found = subset;
      return false;  // stop
    }
    return true;
  });
  return found;
}

std::optional<std::vector<int>> WeightedCnfSat(const Cnf& f, int k) {
  int n = f.num_vars;
  if (k < 0 || k > n) return std::nullopt;
  std::optional<std::vector<int>> found;
  std::vector<bool> assignment(n, false);
  ForEachKSubset(n, k, [&](const std::vector<int>& subset) {
    std::fill(assignment.begin(), assignment.end(), false);
    for (int v : subset) assignment[v] = true;
    if (f.Evaluate(assignment)) {
      found = subset;
      return false;
    }
    return true;
  });
  return found;
}

std::optional<std::vector<int>> WeightedMonotoneCircuitSat(const Circuit& c,
                                                           int k) {
  PQ_DCHECK(c.IsMonotone(), "WeightedMonotoneCircuitSat: circuit not monotone");
  return WeightedCircuitSat(c, k);
}

namespace {

struct GroupedSearch {
  const GroupedW2Cnf& inst;
  // conflicts[v] = sorted vector of variables conflicting with v.
  std::vector<std::vector<int>> conflicts;
  std::vector<int> group_order;  // groups sorted by size, smallest first
  std::vector<int> chosen;       // chosen[v-position] by group_order index
  std::vector<int> blocked;      // blocked[v] = #chosen vars conflicting with v

  explicit GroupedSearch(const GroupedW2Cnf& instance) : inst(instance) {
    conflicts.resize(inst.num_vars);
    for (auto [a, b] : inst.clauses) {
      conflicts[a].push_back(b);
      conflicts[b].push_back(a);
    }
    for (auto& cs : conflicts) {
      std::sort(cs.begin(), cs.end());
      cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
    }
    group_order.resize(inst.groups.size());
    for (size_t i = 0; i < inst.groups.size(); ++i) {
      group_order[i] = static_cast<int>(i);
    }
    std::sort(group_order.begin(), group_order.end(), [this](int a, int b) {
      return inst.groups[a].size() < inst.groups[b].size();
    });
    blocked.assign(inst.num_vars, 0);
  }

  bool Dfs(size_t pos) {
    if (pos == group_order.size()) return true;
    const auto& group = inst.groups[group_order[pos]];
    for (int v : group) {
      if (blocked[v] > 0) continue;
      chosen.push_back(v);
      for (int w : conflicts[v]) ++blocked[w];
      if (blocked[v] == 0 && Dfs(pos + 1)) return true;
      for (int w : conflicts[v]) --blocked[w];
      chosen.pop_back();
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<int>> SolveGroupedW2Cnf(const GroupedW2Cnf& instance) {
  for (const auto& g : instance.groups) {
    if (g.empty()) return std::nullopt;  // a group with no candidates
  }
  GroupedSearch search(instance);
  if (!search.Dfs(0)) return std::nullopt;
  // Report in original group order.
  std::vector<int> result(instance.groups.size(), -1);
  for (size_t i = 0; i < search.group_order.size(); ++i) {
    result[search.group_order[i]] = search.chosen[i];
  }
  return result;
}

}  // namespace paraquery

// Weighted satisfiability solvers: the right-hand side of every W-hierarchy
// membership reduction in the paper. "Weight k" means exactly k inputs set
// to 1. The exhaustive solvers are the canonical n^k algorithms (used as
// ground truth and to exhibit that scaling in benches); the grouped 2-CNF
// solver exploits the structure produced by the CQ -> 2CNF reduction.
#ifndef PARAQUERY_CIRCUIT_WEIGHTED_SAT_H_
#define PARAQUERY_CIRCUIT_WEIGHTED_SAT_H_

#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/cnf.hpp"

namespace paraquery {

/// Finds an assignment with exactly `k` true inputs satisfying `c`
/// (exhaustive over C(n, k) subsets). Returns the sorted true-variable set.
std::optional<std::vector<int>> WeightedCircuitSat(const Circuit& c, int k);

/// Weighted satisfiability of a CNF formula (exhaustive).
std::optional<std::vector<int>> WeightedCnfSat(const Cnf& f, int k);

/// Weighted satisfiability of a *monotone* circuit: satisfiable with weight
/// exactly k iff satisfiable with weight <= k (monotonicity) — solved by the
/// same exhaustive search but with subset-pruning on failures disabled;
/// provided separately for clarity at call sites.
std::optional<std::vector<int>> WeightedMonotoneCircuitSat(const Circuit& c,
                                                           int k);

/// Solves a grouped all-negative weighted 2-CNF: choose exactly one variable
/// per group such that no clause (¬a ∨ ¬b) has both endpoints chosen.
/// Equivalent to multicolored independent set / clique in the conflict
/// complement; solved by DFS over groups with conflict propagation.
/// Returns the chosen variables (one per group, in group order).
std::optional<std::vector<int>> SolveGroupedW2Cnf(const GroupedW2Cnf& instance);

}  // namespace paraquery

#endif  // PARAQUERY_CIRCUIT_WEIGHTED_SAT_H_

// Normalization of monotone circuits into strictly leveled, alternating form:
// level 0 holds the inputs, odd levels hold AND gates, even levels hold OR
// gates, every wire connects adjacent levels, and the output is the unique
// OR gate on the top (even) level 2t. This is the preprocessing the paper
// assumes for the Theorem 1 first-order reduction ("We can assume that the
// given circuit alternates between OR and AND gates and that the output is
// an OR gate at level 2t").
#ifndef PARAQUERY_CIRCUIT_NORMALIZE_H_
#define PARAQUERY_CIRCUIT_NORMALIZE_H_

#include <vector>

#include "circuit/circuit.hpp"
#include "common/status.hpp"

namespace paraquery {

/// A leveled alternating monotone circuit.
struct AlternatingCircuit {
  /// Underlying circuit (all wires connect adjacent levels).
  Circuit circuit = Circuit(0);
  /// level[g] for every gate id; inputs are level 0.
  std::vector<int> level;
  /// Number of the top level; always even and >= 2. The output gate is the
  /// only gate at this level and is an OR.
  int top_level = 0;

  int num_inputs() const { return circuit.num_inputs(); }

  bool Evaluate(const std::vector<bool>& inputs) const {
    return circuit.Evaluate(inputs);
  }
};

/// Converts a monotone circuit into alternating leveled form computing the
/// same function. Fails with InvalidArgument if `c` is not monotone or has
/// no output. Pass-through gates (fan-in 1) are inserted as needed.
Result<AlternatingCircuit> NormalizeMonotone(const Circuit& c);

}  // namespace paraquery

#endif  // PARAQUERY_CIRCUIT_NORMALIZE_H_

#include "circuit/cnf.hpp"

#include <sstream>

#include "common/status.hpp"

namespace paraquery {

bool Cnf::HasWidth(int width) const {
  for (const auto& cl : clauses) {
    if (static_cast<int>(cl.size()) > width) return false;
  }
  return true;
}

bool Cnf::Evaluate(const std::vector<bool>& assignment) const {
  PQ_CHECK(static_cast<int>(assignment.size()) == num_vars,
           "Cnf::Evaluate: wrong assignment size");
  for (const auto& cl : clauses) {
    bool sat = false;
    for (Lit l : cl) {
      bool v = assignment[LitVar(l)];
      if (LitNegated(l) ? !v : v) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Circuit Cnf::ToCircuit() const {
  Circuit c(num_vars);
  // Shared NOT gates per variable, created lazily.
  std::vector<int> not_gate(num_vars, -1);
  std::vector<int> clause_gates;
  for (const auto& cl : clauses) {
    std::vector<int> lits;
    for (Lit l : cl) {
      int var = LitVar(l);
      if (LitNegated(l)) {
        if (not_gate[var] < 0) {
          not_gate[var] = c.AddGate(GateKind::kNot, {var});
        }
        lits.push_back(not_gate[var]);
      } else {
        lits.push_back(var);
      }
    }
    clause_gates.push_back(c.AddGate(GateKind::kOr, lits));
  }
  if (clause_gates.empty()) {
    // Empty CNF is TRUE: OR of (x, NOT x) ANDed — simplest: single input
    // tautology gate over input 0 if present, else a 1-input circuit.
    if (num_vars == 0) {
      Circuit trivial(1);
      int n = trivial.AddGate(GateKind::kNot, {0});
      trivial.SetOutput(trivial.AddGate(GateKind::kOr, {0, n}));
      return trivial;
    }
    int n = c.AddGate(GateKind::kNot, {0});
    c.SetOutput(c.AddGate(GateKind::kOr, {0, n}));
    return c;
  }
  c.SetOutput(c.AddGate(GateKind::kAnd, clause_gates));
  return c;
}

std::string Cnf::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) oss << " & ";
    oss << "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) oss << "|";
      Lit l = clauses[i][j];
      if (LitNegated(l)) oss << "~";
      oss << "x" << LitVar(l);
    }
    oss << ")";
  }
  if (clauses.empty()) oss << "TRUE";
  return oss.str();
}

Cnf GroupedW2Cnf::ToCnf() const {
  Cnf f;
  f.num_vars = num_vars;
  for (auto [a, b] : clauses) {
    f.clauses.push_back({NegLit(a), NegLit(b)});
  }
  return f;
}

}  // namespace paraquery

// Boolean circuits with unbounded fan-in AND/OR and NOT gates — the
// computational model underlying the W hierarchy (Section 2 of the paper):
// W[t] is defined by weighted satisfiability of depth-t circuits, W[SAT] by
// weighted formula satisfiability (fan-out 1), W[P] by unrestricted weighted
// circuit satisfiability.
#ifndef PARAQUERY_CIRCUIT_CIRCUIT_H_
#define PARAQUERY_CIRCUIT_CIRCUIT_H_

#include <string>
#include <vector>

#include "common/status.hpp"

namespace paraquery {

/// Gate kinds. Inputs are gates 0..num_inputs-1 of kind kInput.
enum class GateKind { kInput, kAnd, kOr, kNot };

/// One gate: kind plus fan-in list (ids of strictly smaller gates).
struct Gate {
  GateKind kind = GateKind::kInput;
  std::vector<int> inputs;
};

/// A combinational circuit in topological order (gate inputs have smaller
/// ids), with a single designated output gate.
class Circuit {
 public:
  /// Creates a circuit with `num_inputs` input gates (ids 0..num_inputs-1).
  explicit Circuit(int num_inputs);

  int num_inputs() const { return num_inputs_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(int id) const { return gates_[id]; }

  /// Adds a gate; all ids in `inputs` must already exist. AND/OR require
  /// fan-in >= 1; NOT requires fan-in == 1. Returns the new gate id.
  int AddGate(GateKind kind, std::vector<int> inputs);

  int output() const { return output_; }
  void SetOutput(int gate_id);

  /// Evaluates the circuit on the given input assignment.
  bool Evaluate(const std::vector<bool>& input_values) const;

  /// True if the circuit contains no NOT gate.
  bool IsMonotone() const;

  /// Depth as defined in the paper: the maximum number of AND/OR gates on a
  /// path from an input to the output; NOT gates do not count.
  int Depth() const;

  std::string ToString() const;

 private:
  int num_inputs_;
  std::vector<Gate> gates_;
  int output_ = -1;
};

/// Builders for common shapes (used heavily in tests).
Circuit AndOfInputs(int num_inputs);
Circuit OrOfInputs(int num_inputs);

}  // namespace paraquery

#endif  // PARAQUERY_CIRCUIT_CIRCUIT_H_

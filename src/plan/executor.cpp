#include "plan/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.hpp"
#include "common/timer.hpp"
#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/vec_pipeline.hpp"
#include "relational/leapfrog.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"
#include "relational/trie_index.hpp"
#include "runtime/parallel_ops.hpp"
#include "runtime/vectorized_exec.hpp"

namespace paraquery {

namespace {

class Executor {
 public:
  explicit Executor(const ExecContext& ctx)
      : ctx_(ctx), pfor_(MakeParallelFor(ctx.runtime.scheduler)) {}

  Result<NamedRelation> Run(PlanNode& root) { return Exec(root, nullptr); }

 private:
  struct NodeState {
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    std::optional<Result<NamedRelation>> result;
  };

  // Where an operator's produced rows are charged against the max_steps
  // budget. A null Charge is the committed execution; a speculatively
  // executed subtree (the right child of a join/semijoin started before its
  // sibling's emptiness is known) charges a tentative accumulator instead,
  // which its spawner COMMITS into the parent charge only when the result is
  // actually consumed — the short-circuit that skips the subtree drops the
  // charge, so a query that passes its limits at threads=1 never fails them
  // at threads=N. Speculative executions still CHECK the budget (committed +
  // the tentative chain) so a runaway subtree aborts instead of exhausting
  // memory; such an error can only fire where the sequential total would
  // also exceed the budget. (Caveat: a node SHARED between a rolled-back
  // speculative subtree and a committed path keeps the first arrival's
  // charge and result — its rows may be attributed tentatively and dropped,
  // an under-count in the safe direction.)
  struct Charge {
    Charge* parent = nullptr;
    std::atomic<uint64_t> tentative{0};
  };

  void AddRows(Charge* charge, uint64_t n) {
    if (charge == nullptr) {
      rows_produced_.fetch_add(n);
    } else {
      charge->tentative.fetch_add(n);
    }
  }

  uint64_t TotalRows(const Charge* charge) const {
    uint64_t total = rows_produced_.load();
    for (; charge != nullptr; charge = charge->parent) {
      total += charge->tentative.load();
    }
    return total;
  }

  // Evaluates `n` at most once per execution, even when independent
  // parallel subtrees reach a shared node concurrently: the first arrival
  // computes, later arrivals block on the node's condition variable. The
  // wait graph follows plan edges, and the plan is a DAG, so these waits
  // cannot cycle.
  //
  // One exception to compute-once: a ResourceExhausted produced under a
  // TENTATIVE charge is not published — its budget check included sibling
  // rows the sequential executor might have skipped, so replaying it to a
  // committed consumer could fail a query that passes at threads=1. The
  // node is reset instead and the next arrival recomputes under its own
  // charge (a genuine overrun simply errors again there).
  Result<NamedRelation> Exec(PlanNode& n, Charge* charge) {
    NodeState* state;
    {
      std::lock_guard<std::mutex> lock(states_mutex_);
      std::unique_ptr<NodeState>& slot = states_[&n];
      if (slot == nullptr) slot = std::make_unique<NodeState>();
      state = slot.get();
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    while (state->started && !state->result.has_value()) {
      state->cv.wait(lock, [state] {
        return state->result.has_value() || !state->started;
      });
    }
    if (state->result.has_value()) return *state->result;
    state->started = true;
    lock.unlock();
    Result<NamedRelation> result = ComputeTimed(n, charge);
    if (result.ok()) n.actual_rows = result.value().size();
    lock.lock();
    if (charge != nullptr && !result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted) {
      state->started = false;  // speculative budget error: allow recompute
    } else {
      state->result = result;
    }
    lock.unlock();
    state->cv.notify_all();
    return result;
  }

  bool Parallel() const { return ctx_.runtime.parallel(); }

  // Compute wrapped with per-node wall timing (EXPLAIN ANALYZE) and an
  // operator span when the run is traced; clock-free otherwise, so the
  // default path is exactly the pre-observability executor. The compute
  // recursion runs through the children, so actual_ns is cumulative. Scans
  // are slot reads — timed (they bound a node's self time) but not worth a
  // span each.
  Result<NamedRelation> ComputeTimed(PlanNode& n, Charge* charge) {
    if (ctx_.runtime.tracer == nullptr && ctx_.runtime.analyze == nullptr) {
      return Compute(n, charge);
    }
    const uint64_t t0 = NowNanos();
    Result<NamedRelation> result = Compute(n, charge);
    const uint64_t t1 = NowNanos();
    n.actual_ns += t1 - t0;
    if (ctx_.runtime.tracer != nullptr && n.op != PlanOp::kScan) {
      ctx_.runtime.tracer->Record(PlanOpName(n.op), t0, t1);
    }
    return result;
  }

  // Tallies an executed operator's output against limits and stats. Stats
  // record all performed work (speculative included); the max_steps budget
  // is charged through `charge` so speculative rows stay tentative. The
  // row-count overload serves the vectorized pipeline stages, which tally
  // without a materialized NamedRelation.
  Status AccountRows(PlanNode& n, size_t PlanStats::* counter, uint64_t rows,
                     Charge* charge, size_t op_morsels = 0) {
    // Re-check the abort state AFTER the operator ran: morsel lambdas skip
    // their work when the query aborts mid-operator, so a result assembled
    // from skipped morsels must be discarded here, never returned truncated.
    PQ_RETURN_NOT_OK(ctx_.runtime.CheckInterrupt());
    n.actual_morsels = op_morsels;
    if (ctx_.stats != nullptr) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++(ctx_.stats->*counter);
      ctx_.stats->peak_intermediate_rows = std::max(
          ctx_.stats->peak_intermediate_rows, static_cast<size_t>(rows));
      ctx_.stats->rows_produced += rows;
      ctx_.stats->morsels += op_morsels;
    }
    if (ctx_.runtime.metrics != nullptr &&
        ctx_.runtime.metrics->operator_rows != nullptr) {
      ctx_.runtime.metrics->operator_rows->Observe(rows);
    }
    AddRows(charge, rows);
    if (ctx_.limits.max_steps != 0 && TotalRows(charge) > ctx_.limits.max_steps) {
      return Status::ResourceExhausted(
          "plan execution step limit (rows produced) exceeded");
    }
    if (ctx_.limits.max_rows != 0 && rows > ctx_.limits.max_rows) {
      return Status::ResourceExhausted(internal::StrCat(
          "operator output exceeds limit of ", ctx_.limits.max_rows, " rows"));
    }
    return Status::OK();
  }

  Status Account(PlanNode& n, size_t PlanStats::* counter,
                 const NamedRelation& out, Charge* charge,
                 size_t op_morsels = 0) {
    return AccountRows(n, counter, out.size(), charge, op_morsels);
  }

  // Evaluates a binary node's children, concurrently when a scheduler is
  // bound and the right side is not a plain scan (scans are slot reads —
  // not worth a task). Sequentially the right child is skipped when the
  // left comes out empty; in parallel it runs speculatively under a
  // tentative charge that is committed only when the left side is nonempty
  // (i.e. exactly when sequential execution would have run it).
  Status ExecChildren(PlanNode& n, Result<NamedRelation>* left,
                      Result<NamedRelation>* right, Charge* charge) {
    if (Parallel() && n.children[1]->op != PlanOp::kScan) {
      std::optional<Result<NamedRelation>> right_result;
      Charge speculative;
      speculative.parent = charge;
      {
        TaskGroup group(ctx_.runtime.scheduler);
        PlanNode* rchild = n.children[1].get();
        Charge* spec = &speculative;
        group.Spawn([this, rchild, spec, &right_result] {
          right_result.emplace(Exec(*rchild, spec));
        });
        if (ctx_.stats != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->parallel_tasks;
        }
        *left = Exec(*n.children[0], charge);
      }  // group destructor waits
      // The group is never cancelled, so the spawned task always ran.
      PQ_DCHECK(right_result.has_value(), "right-child task did not run");
      *right = std::move(*right_result);
      if (left->ok() && !left->value().empty()) {
        // The sequential executor would have run the right subtree: commit
        // its speculative rows to the parent charge and re-check the budget.
        AddRows(charge, speculative.tentative.load());
        if (ctx_.limits.max_steps != 0 &&
            TotalRows(charge) > ctx_.limits.max_steps) {
          return Status::ResourceExhausted(
              "plan execution step limit (rows produced) exceeded");
        }
      }
      // Left empty (or failed): the tentative charge is dropped, matching
      // the sequential short-circuit; the consuming operator also discards
      // any speculative error below.
      return Status::OK();
    }
    *left = Exec(*n.children[0], charge);
    if (left->ok() && !left->value().empty()) {
      *right = Exec(*n.children[1], charge);
    }
    return Status::OK();
  }

  Result<NamedRelation> Compute(PlanNode& n, Charge* charge) {
    // One poll per operator: a deadline/cancel/budget abort stops the plan
    // within one operator (and, via the morsel-lambda early-outs, within
    // one morsel of an operator already running).
    PQ_RETURN_NOT_OK(ctx_.runtime.CheckInterrupt());
    switch (n.op) {
      case PlanOp::kScan: {
        PQ_FAULT_POINT("executor.scan");
        if (n.input_slot < 0 ||
            static_cast<size_t>(n.input_slot) >= ctx_.inputs.size()) {
          return Status::Internal("plan scan references an unbound slot");
        }
        if (ctx_.stats != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->scans;
        }
        return *ctx_.inputs[n.input_slot];
      }
      case PlanOp::kSelect: {
        PQ_FAULT_POINT("executor.select");
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0], charge));
        size_t morsels = 0;
        NamedRelation out =
            (!n.predicate.empty() && in.arity() > 0 &&
             ctx_.runtime.ShouldMorsel(in.size()))
                ? ParallelSelect(in, n.predicate, ctx_.runtime, &morsels)
                : Select(in, n.predicate);
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::selects, out, charge, morsels));
        return out;
      }
      case PlanOp::kProject: {
        PQ_FAULT_POINT("executor.project");
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0], charge));
        size_t morsels = 0;
        NamedRelation out =
            (!n.attrs.empty() && n.attrs != in.attrs() &&
             ctx_.runtime.ShouldMorsel(in.size()))
                ? ParallelProject(in, n.attrs, n.dedup, ctx_.runtime, &morsels)
                : Project(in, n.attrs, n.dedup);
        if (ctx_.stats != nullptr && out.rel().SharesStorageWith(in.rel())) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->zero_copy_projections;
        }
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::projections, out, charge, morsels));
        return out;
      }
      case PlanOp::kHashJoin: {
        PQ_FAULT_POINT("executor.hashjoin");
        Result<NamedRelation> lres = NamedRelation{n.attrs};
        Result<NamedRelation> rres = NamedRelation{n.attrs};
        PQ_RETURN_NOT_OK(ExecChildren(n, &lres, &rres, charge));
        PQ_ASSIGN_OR_RETURN(NamedRelation left, std::move(lres));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, std::move(rres));
        if (right.empty()) return NamedRelation{n.attrs};
        JoinOptions jo;
        jo.max_output_rows = ctx_.limits.max_rows;
        jo.post_filter = n.predicate;  // pushed σ_F (empty = plain join)
        JoinIndexCache* cache = n.children[1]->index_cache;
        bool cached_scan = n.children[1]->op == PlanOp::kScan && cache != nullptr;
        size_t morsels = 0;
        Result<NamedRelation> joined = [&]() -> Result<NamedRelation> {
          PQ_FAULT_POINT("executor.hashjoin.build");
          // Morsel-parallel probe: the fast path only (no row cap, no
          // pushed filter, nonzero output arity); the sequential kernel
          // keeps the filtered/limited cases.
          if (jo.max_output_rows == 0 && jo.post_filter.empty() &&
              !n.attrs.empty() && ctx_.runtime.ShouldMorsel(left.size())) {
            if (cached_scan) {
              const Relation& stable =
                  ctx_.inputs[n.children[1]->input_slot]->rel();
              const RowIndex& idx = cache->GetOrBuild(
                  stable, JoinKeyColumns(left, right), ctx_.stats, pfor_);
              return ParallelJoin(left, right, idx, ctx_.runtime, &morsels);
            }
            RowIndex idx(right.rel(), JoinKeyColumns(left, right), pfor_);
            return ParallelJoin(left, right, idx, ctx_.runtime, &morsels);
          }
          if (cached_scan) {
            // Build over the caller-owned slot relation, NOT the local
            // `right` copy: the cache (and the RowIndex's Relation pointer)
            // outlives this call, and the slot input is the one relation
            // guaranteed to outlive the cache.
            const Relation& stable =
                ctx_.inputs[n.children[1]->input_slot]->rel();
            const RowIndex& idx = cache->GetOrBuild(
                stable, JoinKeyColumns(left, right), ctx_.stats, pfor_);
            return NaturalJoin(left, right, idx, jo);
          }
          return NaturalJoin(left, right, jo);
        }();
        PQ_RETURN_NOT_OK(joined.status());
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::joins, joined.value(), charge, morsels));
        return std::move(joined).value();
      }
      case PlanOp::kSemijoin: {
        PQ_FAULT_POINT("executor.semijoin");
        Result<NamedRelation> lres = NamedRelation{n.attrs};
        Result<NamedRelation> rres = NamedRelation{n.attrs};
        PQ_RETURN_NOT_OK(ExecChildren(n, &lres, &rres, charge));
        PQ_ASSIGN_OR_RETURN(NamedRelation left, std::move(lres));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, std::move(rres));
        if (right.empty()) return NamedRelation{n.attrs};
        size_t morsels = 0;
        NamedRelation out =
            ctx_.runtime.ShouldMorsel(left.size())
                ? ParallelSemijoin(left, right, ctx_.runtime, &morsels)
                : Semijoin(left, right);
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::semijoins, out, charge, morsels));
        return out;
      }
      case PlanOp::kUnion: {
        PQ_FAULT_POINT("executor.union");
        if (n.children.empty()) {
          return Status::Internal("union plan node has no children");
        }
        std::vector<Result<NamedRelation>> parts;
        if (Parallel() && n.children.size() > 1) {
          // Structural parallelism: every branch is an independent task;
          // the merge below runs in branch order, so the result matches
          // the sequential left-to-right union exactly. Branches are not
          // speculative w.r.t. limits — the sequential executor runs every
          // branch regardless of sibling emptiness — so they charge the
          // current context directly.
          parts.assign(n.children.size(), NamedRelation{});
          {
            TaskGroup group(ctx_.runtime.scheduler);
            for (size_t i = 1; i < n.children.size(); ++i) {
              PlanNode* child = n.children[i].get();
              Result<NamedRelation>* slot = &parts[i];
              group.Spawn(
                  [this, child, slot, charge] { *slot = Exec(*child, charge); });
            }
            if (ctx_.stats != nullptr) {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ctx_.stats->parallel_tasks += n.children.size() - 1;
            }
            parts[0] = Exec(*n.children[0], charge);
          }  // group destructor waits
        } else {
          for (const PlanNodePtr& c : n.children) {
            parts.push_back(Exec(*c, charge));
            if (!parts.back().ok()) break;  // sequential: stop at first error
          }
        }
        for (const Result<NamedRelation>& p : parts) {
          PQ_RETURN_NOT_OK(p.status());
        }
        NamedRelation acc = parts[0].value();
        for (size_t i = 1; i < parts.size(); ++i) {
          acc = UnionSet(acc, parts[i].value());
        }
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::unions, acc, charge));
        return acc;
      }
      case PlanOp::kDedup: {
        PQ_FAULT_POINT("executor.dedup");
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0], charge));
        NamedRelation out = in;
        out.rel().HashDedup(pfor_);
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::dedups, out, charge));
        return out;
      }
      case PlanOp::kFixpoint:
        return Status::InvalidArgument(
            "fixpoint plan nodes are driven by the Datalog engine, not the "
            "plan executor");
      case PlanOp::kMaterialize: {
        PQ_FAULT_POINT("executor.vec.materialize");
        if (n.children.size() != 1) {
          return Status::Internal("materialize plan node requires one child");
        }
        VecPipeline pipe;
        if (CompileVecPipeline(n, &pipe) && pipe.source->input_slot >= 0 &&
            static_cast<size_t>(pipe.source->input_slot) < ctx_.inputs.size() &&
            ctx_.inputs[pipe.source->input_slot]->size() >=
                ctx_.runtime.vec_min_source_rows) {
          Result<NamedRelation> out = ExecVectorized(n, pipe, charge);
          if (out.ok() && ctx_.stats != nullptr) {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ctx_.stats->vec_batches += n.actual_batches;
          }
          return out;
        }
        // Ineligible chain or tiny source: the chain nodes are ordinary row
        // operators, so just execute the child row-at-a-time.
        return Exec(*n.children[0], charge);
      }
      case PlanOp::kAggregate: {
        PQ_FAULT_POINT("executor.aggregate");
        if (n.children.size() != 1 || n.attrs.empty() ||
            n.attrs.back() != kCountAttr) {
          return Status::Internal(
              "aggregate plan node requires one child and a trailing count "
              "attribute");
        }
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0], charge));
        size_t morsels = 0;
        PQ_ASSIGN_OR_RETURN(NamedRelation out, AggregateCounts(n, in, &morsels));
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::aggregates, out, charge, morsels));
        return out;
      }
      case PlanOp::kSemijoinCount: {
        PQ_FAULT_POINT("executor.semijoin_count");
        if (n.attrs.empty() || n.attrs.back() != kCountAttr) {
          return Status::Internal(
              "semijoin-count plan node requires a trailing count attribute");
        }
        Result<NamedRelation> lres = NamedRelation{n.attrs};
        Result<NamedRelation> rres = NamedRelation{n.attrs};
        PQ_RETURN_NOT_OK(ExecChildren(n, &lres, &rres, charge));
        PQ_ASSIGN_OR_RETURN(NamedRelation left, std::move(lres));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, std::move(rres));
        if (right.empty()) return NamedRelation{n.attrs};
        size_t morsels = 0;
        PQ_ASSIGN_OR_RETURN(NamedRelation out,
                            SemijoinCounts(n, left, right, &morsels));
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::semijoin_counts, out, charge, morsels));
        return out;
      }
      case PlanOp::kMultiwayJoin: {
        PQ_FAULT_POINT("executor.multiway");
        if (n.children.empty() || n.attrs.empty()) {
          return Status::Internal(
              "multiway join requires children and attributes");
        }
        // Children run sequentially left to right: any empty input empties
        // the whole intersection, matching the sequential short-circuit.
        std::vector<NamedRelation> ins;
        ins.reserve(n.children.size());
        for (const PlanNodePtr& c : n.children) {
          PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*c, charge));
          if (in.empty()) {
            NamedRelation out{n.attrs};
            PQ_RETURN_NOT_OK(
                Account(n, &PlanStats::multiway_joins, out, charge));
            return out;
          }
          ins.push_back(std::move(in));
        }
        auto rank_of = [&n](AttrId a) -> int {
          auto it = std::find(n.attrs.begin(), n.attrs.end(), a);
          return it == n.attrs.end()
                     ? -1
                     : static_cast<int>(it - n.attrs.begin());
        };
        // Per-input sorted trie over its columns in ascending global rank.
        // TrieView caches on the shared RowBlock, so scans over stored
        // relations (and their zero-copy views) build each trie once and
        // reuse it across queries.
        std::vector<LeapfrogInput> inputs;
        inputs.reserve(ins.size());
        for (const NamedRelation& in : ins) {
          std::vector<std::pair<int, int>> by_rank;  // (global rank, column)
          for (size_t c = 0; c < in.attrs().size(); ++c) {
            int r = rank_of(in.attrs()[c]);
            if (r < 0) {
              return Status::Internal(
                  "multiway child attribute missing from the global order");
            }
            by_rank.emplace_back(r, static_cast<int>(c));
          }
          std::sort(by_rank.begin(), by_rank.end());
          LeapfrogInput li;
          std::vector<int> cols;
          for (const auto& [r, c] : by_rank) {
            cols.push_back(c);
            li.attr_of_level.push_back(r);
          }
          li.trie = in.rel().TrieView(cols, pfor_);
          inputs.push_back(std::move(li));
        }
        size_t morsels = 0;
        PQ_ASSIGN_OR_RETURN(
            Relation joined,
            LeapfrogJoin(inputs, n.attrs.size(), ctx_.runtime,
                         ctx_.limits.max_rows, &morsels));
        NamedRelation out{n.attrs, std::move(joined)};
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::multiway_joins, out, charge, morsels));
        return out;
      }
    }
    return Status::Internal("unknown plan operator");
  }

  // Concatenates per-morsel value buffers in morsel order into one relation —
  // the same rows in the same order the sequential walk produces.
  static NamedRelation MergeCountMorsels(const std::vector<AttrId>& attrs,
                                         std::vector<std::vector<Value>> bufs) {
    size_t total = 0;
    for (const std::vector<Value>& b : bufs) total += b.size();
    std::vector<Value> out;
    out.reserve(total);
    for (const std::vector<Value>& b : bufs) {
      out.insert(out.end(), b.begin(), b.end());
    }
    return NamedRelation{attrs, Relation(attrs.size(), std::move(out))};
  }

  // Runs `emit(buf, r)` for every row of [0, nrows), morsel-parallel when the
  // input is large enough, merging per-morsel buffers in morsel order; the
  // output is byte-identical at any thread count because emit() decides
  // per-row (via the shared RowIndex, whose layout is width-independent)
  // whether row r contributes.
  template <typename EmitFn>
  NamedRelation RowWalk(const std::vector<AttrId>& attrs, size_t nrows,
                        size_t* morsels, const EmitFn& emit) {
    if (ctx_.runtime.ShouldMorsel(nrows)) {
      std::vector<std::vector<Value>> bufs(
          ChunkCount(nrows, ctx_.runtime.morsel_rows));
      size_t chunks = ParallelChunks(
          ctx_.runtime.scheduler, nrows, ctx_.runtime.morsel_rows,
          [&](size_t c, size_t begin, size_t end) {
            // Aborted query: skip the morsel; the executor re-checks the
            // abort in AccountRows, so a partial result never escapes.
            if (ctx_.runtime.Interrupted()) return;
            for (size_t r = begin; r < end; ++r) emit(bufs[c], r);
          });
      if (morsels != nullptr) *morsels += chunks;
      return MergeCountMorsels(attrs, std::move(bufs));
    }
    std::vector<Value> buf;
    for (size_t r = 0; r < nrows; ++r) emit(buf, r);
    return NamedRelation{attrs, Relation(attrs.size(), std::move(buf))};
  }

  // Multiplicity-aware hash aggregation: groups the child's rows on the
  // node's group attributes (attrs minus the trailing #count), summing the
  // child's #count column per group — or counting rows when the child has
  // none (every row carries multiplicity 1). Output rows appear in
  // first-occurrence group order: row r contributes iff the RowIndex chain
  // head for its key IS r, and chains enumerate a key's rows in increasing
  // row order at any build width. A scalar aggregate (no group attributes)
  // emits one [total] row — or NO row on empty input, so a downstream
  // SemijoinCount sees emptiness rather than a spurious 0-count group (the
  // eval layer supplies the 0 row for a genuinely empty scalar query).
  Result<NamedRelation> AggregateCounts(PlanNode& n, const NamedRelation& in,
                                        size_t* morsels) {
    const int mult_col = in.ColumnOf(kCountAttr);
    const size_t ngroup = n.attrs.size() - 1;
    if (ngroup == 0) {
      if (in.empty()) return NamedRelation{n.attrs};
      Value total = 0;
      if (mult_col < 0) {
        total = static_cast<Value>(in.size());
      } else {
        for (size_t r = 0; r < in.size(); ++r) {
          total += in.rel().At(r, mult_col);
        }
      }
      return NamedRelation{n.attrs, Relation(1, {total})};
    }
    std::vector<int> gcols(ngroup);
    for (size_t i = 0; i < ngroup; ++i) {
      gcols[i] = in.ColumnOf(n.attrs[i]);
      if (gcols[i] < 0) {
        return Status::Internal(
            "aggregate group attribute missing from its input");
      }
    }
    RowIndex idx(in.rel(), gcols, pfor_);
    std::span<const int> gspan(gcols);
    return RowWalk(
        n.attrs, in.size(), morsels,
        [&](std::vector<Value>& buf, size_t r) {
          uint32_t head = idx.Find(in.rel(), r, gspan);
          if (head != static_cast<uint32_t>(r)) return;  // not first occurrence
          Value total = 0;
          if (mult_col < 0) {
            total = static_cast<Value>(idx.MatchCount(head));
          } else {
            for (uint32_t row = head; row != RowIndex::kNone;
                 row = idx.Next(row)) {
              total += in.rel().At(row, mult_col);
            }
          }
          for (int c : gcols) buf.push_back(in.rel().At(r, c));
          buf.push_back(total);
        });
  }

  // Counting semijoin: per left row matching the right side on their shared
  // regular attributes, emits the left row's regular values extended by each
  // matching distinct right extension, with multiplicity left × right; a
  // non-matching left row is dropped (the semijoin filter). With no
  // right-only attributes the matches collapse to one output row whose
  // multiplicity sums the right side's. Left rows probe in row order
  // (morsel-parallel like ParallelJoin), so output order is deterministic.
  Result<NamedRelation> SemijoinCounts(PlanNode& n, const NamedRelation& left,
                                       const NamedRelation& right,
                                       size_t* morsels) {
    const int lmult = left.ColumnOf(kCountAttr);
    const int rmult = right.ColumnOf(kCountAttr);
    std::vector<int> lregular;  // left regular columns, in left attr order
    std::vector<int> lkey, rkey;  // shared regular columns (probe/build keys)
    for (size_t i = 0; i < left.attrs().size(); ++i) {
      AttrId a = left.attrs()[i];
      if (a == kCountAttr) continue;
      lregular.push_back(static_cast<int>(i));
      int rc = right.ColumnOf(a);
      if (rc >= 0) {
        lkey.push_back(static_cast<int>(i));
        rkey.push_back(rc);
      }
    }
    std::vector<int> rextra;  // right-only regular columns, in right order
    for (size_t i = 0; i < right.attrs().size(); ++i) {
      AttrId a = right.attrs()[i];
      if (a == kCountAttr || left.ColumnOf(a) >= 0) continue;
      rextra.push_back(static_cast<int>(i));
    }
    if (n.attrs.size() != lregular.size() + rextra.size() + 1) {
      return Status::Internal(
          "semijoin-count output attributes do not match its inputs");
    }
    RowIndex idx(right.rel(), rkey, pfor_);
    std::span<const int> lkey_span(lkey);
    return RowWalk(
        n.attrs, left.size(), morsels,
        [&](std::vector<Value>& buf, size_t r) {
          uint32_t head = idx.Find(left.rel(), r, lkey_span);
          if (head == RowIndex::kNone) return;  // filtered out
          const Value lm = lmult < 0 ? 1 : left.rel().At(r, lmult);
          if (rextra.empty()) {
            Value rsum = 0;
            if (rmult < 0) {
              rsum = static_cast<Value>(idx.MatchCount(head));
            } else {
              for (uint32_t row = head; row != RowIndex::kNone;
                   row = idx.Next(row)) {
                rsum += right.rel().At(row, rmult);
              }
            }
            for (int c : lregular) buf.push_back(left.rel().At(r, c));
            buf.push_back(lm * rsum);
            return;
          }
          for (uint32_t row = head; row != RowIndex::kNone;
               row = idx.Next(row)) {
            const Value rm = rmult < 0 ? 1 : right.rel().At(row, rmult);
            for (int c : lregular) buf.push_back(left.rel().At(r, c));
            for (int c : rextra) buf.push_back(right.rel().At(row, c));
            buf.push_back(lm * rm);
          }
        });
  }

  // Runs a compiled columnar pipeline under this execution's budget: build
  // sides execute as row subtrees under the SAME charge (non-speculative,
  // and only when the probe side is nonempty — the sequential operation
  // order), and every stage tallies through AccountRows in chain order, so
  // limit decisions match the row path decision for decision.
  Result<NamedRelation> ExecVectorized(PlanNode& /*n*/, const VecPipeline& pipe,
                                       Charge* charge) {
    VecExecEnv env;
    env.inputs = ctx_.inputs;
    env.runtime = ctx_.runtime;
    env.pfor = pfor_;
    env.exec_rows = [this, charge](PlanNode& rc) { return Exec(rc, charge); };
    env.account = [this, charge](PlanNode& sn, size_t PlanStats::* counter,
                                 uint64_t rows, size_t morsels) {
      sn.actual_rows = rows;
      return AccountRows(sn, counter, rows, charge, morsels);
    };
    env.on_scan = [this](PlanNode& scan, uint64_t rows) {
      scan.actual_rows = rows;
      if (ctx_.stats != nullptr) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++ctx_.stats->scans;
      }
    };
    env.on_zero_copy_projection = [this] {
      if (ctx_.stats != nullptr) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++ctx_.stats->zero_copy_projections;
      }
    };
    env.get_index = [this](PlanNode& rnode, const NamedRelation& right,
                           const std::vector<int>& rcols,
                           std::optional<RowIndex>& local) -> const RowIndex& {
      JoinIndexCache* cache = rnode.index_cache;
      if (rnode.op == PlanOp::kScan && cache != nullptr &&
          rnode.input_slot >= 0 &&
          static_cast<size_t>(rnode.input_slot) < ctx_.inputs.size()) {
        // Build over the caller-owned slot relation (it outlives the cache),
        // exactly like the row path's cached-scan branch.
        const Relation& stable = ctx_.inputs[rnode.input_slot]->rel();
        return cache->GetOrBuild(stable, rcols, ctx_.stats, pfor_);
      }
      local.emplace(right.rel(), rcols, pfor_);
      return *local;
    };
    return ExecuteVecPipeline(pipe, env);
  }

  const ExecContext& ctx_;
  /// Bound over the runtime's scheduler (empty when sequential); threaded
  /// into RowIndex builds, HashDedup, and the vectorized pipeline stages.
  ParallelForFn pfor_;
  std::mutex states_mutex_;
  std::unordered_map<const PlanNode*, std::unique_ptr<NodeState>> states_;
  std::mutex stats_mutex_;
  /// Committed max_steps meter (speculative rows live in Charge chains
  /// until their consumer commits them).
  std::atomic<uint64_t> rows_produced_{0};
};

}  // namespace

Result<NamedRelation> ExecutePlan(PlanNode& root, const ExecContext& ctx) {
  root.ResetActuals();
  Timer timer;
  Executor ex(ctx);
  auto result = ex.Run(root);
  if (ctx.stats != nullptr) ctx.stats->wall_seconds += timer.Seconds();
  // Snapshot the analyzed render before the next execution resets the
  // actuals — on failure too (an aborted plan shows the work it did).
  if (ctx.runtime.analyze != nullptr) ctx.runtime.analyze->Note(root, ctx.vars);
  return result;
}

struct ExecSession::Impl {
  explicit Impl(const ExecContext& ctx) : executor(ctx), ctx(ctx) {}
  Executor executor;
  const ExecContext& ctx;
};

ExecSession::ExecSession(const ExecContext& ctx)
    : impl_(std::make_unique<Impl>(ctx)) {}

ExecSession::~ExecSession() = default;

Result<NamedRelation> ExecSession::Run(PlanNode& root) {
  root.ResetActuals();
  Timer timer;
  auto result = impl_->executor.Run(root);
  if (impl_->ctx.stats != nullptr) {
    impl_->ctx.stats->wall_seconds += timer.Seconds();
  }
  if (impl_->ctx.runtime.analyze != nullptr) {
    impl_->ctx.runtime.analyze->Note(root, impl_->ctx.vars);
  }
  return result;
}

}  // namespace paraquery

#include "plan/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/timer.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"
#include "runtime/parallel_ops.hpp"

namespace paraquery {

namespace {

class Executor {
 public:
  explicit Executor(const ExecContext& ctx) : ctx_(ctx) {}

  // Evaluates `n` exactly once per execution, even when independent
  // parallel subtrees reach a shared node concurrently: the first arrival
  // computes, later arrivals block on the node's condition variable. The
  // wait graph follows plan edges, and the plan is a DAG, so these waits
  // cannot cycle.
  Result<NamedRelation> Exec(PlanNode& n) {
    NodeState* state;
    {
      std::lock_guard<std::mutex> lock(states_mutex_);
      std::unique_ptr<NodeState>& slot = states_[&n];
      if (slot == nullptr) slot = std::make_unique<NodeState>();
      state = slot.get();
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    if (state->started) {
      state->cv.wait(lock, [state] { return state->result.has_value(); });
      return *state->result;
    }
    state->started = true;
    lock.unlock();
    Result<NamedRelation> result = Compute(n);
    if (result.ok()) n.actual_rows = result.value().size();
    lock.lock();
    state->result = result;
    lock.unlock();
    state->cv.notify_all();
    return result;
  }

 private:
  struct NodeState {
    std::mutex mutex;
    std::condition_variable cv;
    bool started = false;
    std::optional<Result<NamedRelation>> result;
  };

  bool Parallel() const { return ctx_.runtime.parallel(); }

  // Tallies an executed operator's output against limits and stats. The row
  // budget is one atomic shared by every task of this execution, so limits
  // hold across concurrent operators.
  Status Account(PlanNode& n, size_t PlanStats::* counter,
                 const NamedRelation& out, size_t op_morsels = 0) {
    n.actual_morsels = op_morsels;
    if (ctx_.stats != nullptr) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++(ctx_.stats->*counter);
      ctx_.stats->peak_intermediate_rows =
          std::max(ctx_.stats->peak_intermediate_rows, out.size());
      ctx_.stats->rows_produced += out.size();
      ctx_.stats->morsels += op_morsels;
    }
    uint64_t produced = rows_produced_.fetch_add(out.size()) + out.size();
    if (ctx_.limits.max_steps != 0 && produced > ctx_.limits.max_steps) {
      return Status::ResourceExhausted(
          "plan execution step limit (rows produced) exceeded");
    }
    if (ctx_.limits.max_rows != 0 && out.size() > ctx_.limits.max_rows) {
      return Status::ResourceExhausted(internal::StrCat(
          "operator output exceeds limit of ", ctx_.limits.max_rows, " rows"));
    }
    return Status::OK();
  }

  // Evaluates a binary node's children, concurrently when a scheduler is
  // bound and the right side is not a plain scan (scans are slot reads —
  // not worth a task). Sequentially the right child is skipped when the
  // left comes out empty; in parallel it is speculative.
  Status ExecChildren(PlanNode& n, Result<NamedRelation>* left,
                      Result<NamedRelation>* right) {
    if (Parallel() && n.children[1]->op != PlanOp::kScan) {
      std::optional<Result<NamedRelation>> right_result;
      {
        TaskGroup group(ctx_.runtime.scheduler);
        PlanNode* rchild = n.children[1].get();
        group.Spawn([this, rchild, &right_result] {
          right_result.emplace(Exec(*rchild));
        });
        if (ctx_.stats != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->parallel_tasks;
        }
        *left = Exec(*n.children[0]);
      }  // group destructor waits
      // The group is never cancelled, so the spawned task always ran.
      PQ_DCHECK(right_result.has_value(), "right-child task did not run");
      *right = std::move(*right_result);
      return Status::OK();
    }
    *left = Exec(*n.children[0]);
    if (left->ok() && !left->value().empty()) *right = Exec(*n.children[1]);
    return Status::OK();
  }

  Result<NamedRelation> Compute(PlanNode& n) {
    switch (n.op) {
      case PlanOp::kScan: {
        if (n.input_slot < 0 ||
            static_cast<size_t>(n.input_slot) >= ctx_.inputs.size()) {
          return Status::Internal("plan scan references an unbound slot");
        }
        if (ctx_.stats != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->scans;
        }
        return *ctx_.inputs[n.input_slot];
      }
      case PlanOp::kSelect: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        size_t morsels = 0;
        NamedRelation out =
            (!n.predicate.empty() && in.arity() > 0 &&
             ctx_.runtime.ShouldMorsel(in.size()))
                ? ParallelSelect(in, n.predicate, ctx_.runtime, &morsels)
                : Select(in, n.predicate);
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::selects, out, morsels));
        return out;
      }
      case PlanOp::kProject: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        size_t morsels = 0;
        NamedRelation out =
            (!n.attrs.empty() && n.attrs != in.attrs() &&
             ctx_.runtime.ShouldMorsel(in.size()))
                ? ParallelProject(in, n.attrs, n.dedup, ctx_.runtime, &morsels)
                : Project(in, n.attrs, n.dedup);
        if (ctx_.stats != nullptr && out.rel().SharesStorageWith(in.rel())) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++ctx_.stats->zero_copy_projections;
        }
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::projections, out, morsels));
        return out;
      }
      case PlanOp::kHashJoin: {
        Result<NamedRelation> lres = NamedRelation{n.attrs};
        Result<NamedRelation> rres = NamedRelation{n.attrs};
        PQ_RETURN_NOT_OK(ExecChildren(n, &lres, &rres));
        PQ_ASSIGN_OR_RETURN(NamedRelation left, std::move(lres));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, std::move(rres));
        if (right.empty()) return NamedRelation{n.attrs};
        JoinOptions jo;
        jo.max_output_rows = ctx_.limits.max_rows;
        JoinIndexCache* cache = n.children[1]->index_cache;
        bool cached_scan = n.children[1]->op == PlanOp::kScan && cache != nullptr;
        size_t morsels = 0;
        Result<NamedRelation> joined = [&]() -> Result<NamedRelation> {
          // Morsel-parallel probe: the fast path only (no row cap, nonzero
          // output arity); the sequential kernel keeps the filtered/limited
          // cases.
          if (jo.max_output_rows == 0 && !n.attrs.empty() &&
              ctx_.runtime.ShouldMorsel(left.size())) {
            if (cached_scan) {
              const Relation& stable =
                  ctx_.inputs[n.children[1]->input_slot]->rel();
              const RowIndex& idx = cache->GetOrBuild(
                  stable, JoinKeyColumns(left, right), ctx_.stats);
              return ParallelJoin(left, right, idx, ctx_.runtime, &morsels);
            }
            RowIndex idx(right.rel(), JoinKeyColumns(left, right));
            return ParallelJoin(left, right, idx, ctx_.runtime, &morsels);
          }
          if (cached_scan) {
            // Build over the caller-owned slot relation, NOT the local
            // `right` copy: the cache (and the RowIndex's Relation pointer)
            // outlives this call, and the slot input is the one relation
            // guaranteed to outlive the cache.
            const Relation& stable =
                ctx_.inputs[n.children[1]->input_slot]->rel();
            const RowIndex& idx = cache->GetOrBuild(
                stable, JoinKeyColumns(left, right), ctx_.stats);
            return NaturalJoin(left, right, idx, jo);
          }
          return NaturalJoin(left, right, jo);
        }();
        PQ_RETURN_NOT_OK(joined.status());
        PQ_RETURN_NOT_OK(
            Account(n, &PlanStats::joins, joined.value(), morsels));
        return std::move(joined).value();
      }
      case PlanOp::kSemijoin: {
        Result<NamedRelation> lres = NamedRelation{n.attrs};
        Result<NamedRelation> rres = NamedRelation{n.attrs};
        PQ_RETURN_NOT_OK(ExecChildren(n, &lres, &rres));
        PQ_ASSIGN_OR_RETURN(NamedRelation left, std::move(lres));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, std::move(rres));
        if (right.empty()) return NamedRelation{n.attrs};
        size_t morsels = 0;
        NamedRelation out =
            ctx_.runtime.ShouldMorsel(left.size())
                ? ParallelSemijoin(left, right, ctx_.runtime, &morsels)
                : Semijoin(left, right);
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::semijoins, out, morsels));
        return out;
      }
      case PlanOp::kUnion: {
        if (n.children.empty()) {
          return Status::Internal("union plan node has no children");
        }
        std::vector<Result<NamedRelation>> parts;
        if (Parallel() && n.children.size() > 1) {
          // Structural parallelism: every branch is an independent task;
          // the merge below runs in branch order, so the result matches
          // the sequential left-to-right union exactly.
          parts.assign(n.children.size(), NamedRelation{});
          {
            TaskGroup group(ctx_.runtime.scheduler);
            for (size_t i = 1; i < n.children.size(); ++i) {
              PlanNode* child = n.children[i].get();
              Result<NamedRelation>* slot = &parts[i];
              group.Spawn([this, child, slot] { *slot = Exec(*child); });
            }
            if (ctx_.stats != nullptr) {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ctx_.stats->parallel_tasks += n.children.size() - 1;
            }
            parts[0] = Exec(*n.children[0]);
          }  // group destructor waits
        } else {
          for (const PlanNodePtr& c : n.children) {
            parts.push_back(Exec(*c));
            if (!parts.back().ok()) break;  // sequential: stop at first error
          }
        }
        for (const Result<NamedRelation>& p : parts) {
          PQ_RETURN_NOT_OK(p.status());
        }
        NamedRelation acc = parts[0].value();
        for (size_t i = 1; i < parts.size(); ++i) {
          acc = UnionSet(acc, parts[i].value());
        }
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::unions, acc));
        return acc;
      }
      case PlanOp::kDedup: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        NamedRelation out = in;
        out.rel().HashDedup();
        PQ_RETURN_NOT_OK(Account(n, &PlanStats::dedups, out));
        return out;
      }
      case PlanOp::kFixpoint:
        return Status::InvalidArgument(
            "fixpoint plan nodes are driven by the Datalog engine, not the "
            "plan executor");
    }
    return Status::Internal("unknown plan operator");
  }

  const ExecContext& ctx_;
  std::mutex states_mutex_;
  std::unordered_map<const PlanNode*, std::unique_ptr<NodeState>> states_;
  std::mutex stats_mutex_;
  std::atomic<uint64_t> rows_produced_{0};
};

}  // namespace

Result<NamedRelation> ExecutePlan(PlanNode& root, const ExecContext& ctx) {
  root.ResetActuals();
  Timer timer;
  Executor ex(ctx);
  auto result = ex.Exec(root);
  if (ctx.stats != nullptr) ctx.stats->wall_seconds += timer.Seconds();
  return result;
}

}  // namespace paraquery

#include "plan/executor.hpp"

#include <algorithm>
#include <unordered_map>

#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

class Executor {
 public:
  explicit Executor(const ExecContext& ctx) : ctx_(ctx) {}

  Result<NamedRelation> Exec(PlanNode& n) {
    auto it = memo_.find(&n);
    if (it != memo_.end()) return it->second;
    PQ_ASSIGN_OR_RETURN(NamedRelation out, Compute(n));
    n.actual_rows = out.size();
    memo_.emplace(&n, out);
    return out;
  }

 private:
  // Tallies an executed operator's output against limits and stats.
  Status Account(size_t* counter, const NamedRelation& out) {
    if (ctx_.stats != nullptr) {
      ++*counter;
      ctx_.stats->peak_intermediate_rows =
          std::max(ctx_.stats->peak_intermediate_rows, out.size());
      ctx_.stats->rows_produced += out.size();
    }
    rows_produced_ += out.size();
    if (ctx_.limits.max_steps != 0 && rows_produced_ > ctx_.limits.max_steps) {
      return Status::ResourceExhausted(
          "plan execution step limit (rows produced) exceeded");
    }
    if (ctx_.limits.max_rows != 0 && out.size() > ctx_.limits.max_rows) {
      return Status::ResourceExhausted(internal::StrCat(
          "operator output exceeds limit of ", ctx_.limits.max_rows, " rows"));
    }
    return Status::OK();
  }

  // No-op counter target for ops that only need the row/step accounting.
  size_t scratch_ = 0;

  Result<NamedRelation> Compute(PlanNode& n) {
    PlanStats* stats = ctx_.stats;
    switch (n.op) {
      case PlanOp::kScan: {
        if (n.input_slot < 0 ||
            static_cast<size_t>(n.input_slot) >= ctx_.inputs.size()) {
          return Status::Internal("plan scan references an unbound slot");
        }
        if (stats != nullptr) ++stats->scans;
        return *ctx_.inputs[n.input_slot];
      }
      case PlanOp::kSelect: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        NamedRelation out = Select(in, n.predicate);
        PQ_RETURN_NOT_OK(
            Account(stats != nullptr ? &stats->selects : &scratch_, out));
        return out;
      }
      case PlanOp::kProject: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        NamedRelation out = Project(in, n.attrs, n.dedup);
        if (stats != nullptr && out.rel().SharesStorageWith(in.rel())) {
          ++stats->zero_copy_projections;
        }
        PQ_RETURN_NOT_OK(
            Account(stats != nullptr ? &stats->projections : &scratch_, out));
        return out;
      }
      case PlanOp::kHashJoin: {
        PQ_ASSIGN_OR_RETURN(NamedRelation left, Exec(*n.children[0]));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, Exec(*n.children[1]));
        if (right.empty()) return NamedRelation{n.attrs};
        JoinOptions jo;
        jo.max_output_rows = ctx_.limits.max_rows;
        Result<NamedRelation> joined = [&]() -> Result<NamedRelation> {
          JoinIndexCache* cache = n.children[1]->index_cache;
          if (n.children[1]->op == PlanOp::kScan && cache != nullptr) {
            // Build over the caller-owned slot relation, NOT the local
            // `right` copy: the cache (and the RowIndex's Relation pointer)
            // outlives this call, and the slot input is the one relation
            // guaranteed to outlive the cache.
            const Relation& stable =
                ctx_.inputs[n.children[1]->input_slot]->rel();
            const RowIndex& idx =
                cache->GetOrBuild(stable, JoinKeyColumns(left, right), stats);
            return NaturalJoin(left, right, idx, jo);
          }
          return NaturalJoin(left, right, jo);
        }();
        PQ_RETURN_NOT_OK(joined.status());
        PQ_RETURN_NOT_OK(Account(stats != nullptr ? &stats->joins : &scratch_,
                                 joined.value()));
        return std::move(joined).value();
      }
      case PlanOp::kSemijoin: {
        PQ_ASSIGN_OR_RETURN(NamedRelation left, Exec(*n.children[0]));
        if (left.empty()) return NamedRelation{n.attrs};
        PQ_ASSIGN_OR_RETURN(NamedRelation right, Exec(*n.children[1]));
        if (right.empty()) return NamedRelation{n.attrs};
        NamedRelation out = Semijoin(left, right);
        PQ_RETURN_NOT_OK(
            Account(stats != nullptr ? &stats->semijoins : &scratch_, out));
        return out;
      }
      case PlanOp::kUnion: {
        if (n.children.empty()) {
          return Status::Internal("union plan node has no children");
        }
        PQ_ASSIGN_OR_RETURN(NamedRelation acc, Exec(*n.children[0]));
        for (size_t i = 1; i < n.children.size(); ++i) {
          PQ_ASSIGN_OR_RETURN(NamedRelation next, Exec(*n.children[i]));
          acc = UnionSet(acc, next);
        }
        PQ_RETURN_NOT_OK(
            Account(stats != nullptr ? &stats->unions : &scratch_, acc));
        return acc;
      }
      case PlanOp::kDedup: {
        PQ_ASSIGN_OR_RETURN(NamedRelation in, Exec(*n.children[0]));
        NamedRelation out = in;
        out.rel().HashDedup();
        PQ_RETURN_NOT_OK(
            Account(stats != nullptr ? &stats->dedups : &scratch_, out));
        return out;
      }
      case PlanOp::kFixpoint:
        return Status::InvalidArgument(
            "fixpoint plan nodes are driven by the Datalog engine, not the "
            "plan executor");
    }
    return Status::Internal("unknown plan operator");
  }

  const ExecContext& ctx_;
  std::unordered_map<const PlanNode*, NamedRelation> memo_;
  uint64_t rows_produced_ = 0;
};

}  // namespace

Result<NamedRelation> ExecutePlan(PlanNode& root, const ExecContext& ctx) {
  root.ResetActuals();
  Executor ex(ctx);
  return ex.Exec(root);
}

}  // namespace paraquery

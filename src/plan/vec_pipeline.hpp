// Columnar pipeline compiler: decides whether the chain under a kMaterialize
// boundary can execute as vectorized stages, and flattens it for the
// stage-at-a-time runner (runtime/vectorized_exec.hpp).
//
// An eligible chain is a left spine of
//
//   Materialize -> [Project(dedup) as the final stage]? -> (Select | Project
//   | HashJoin)* -> Scan
//
// where every HashJoin carries no pushed post-filter (its right child is an
// arbitrary subtree, executed row-at-a-time as the build side), a
// deduplicating Project appears only directly under the boundary, and every
// schema along the spine is non-empty. Anything else is rejected and the
// executor falls back to running the child chain row-at-a-time — the chain
// nodes are ordinary row operators, so the fallback needs no plan rewrite.
#ifndef PARAQUERY_PLAN_VEC_PIPELINE_H_
#define PARAQUERY_PLAN_VEC_PIPELINE_H_

#include <vector>

#include "plan/plan.hpp"

namespace paraquery {

/// A compiled columnar chain: the leaf scan plus the stages above it in
/// source-to-sink order. Nodes are borrowed from the plan.
struct VecPipeline {
  PlanNode* materialize = nullptr;
  PlanNode* source = nullptr;        // the kScan leaf
  std::vector<PlanNode*> stages;     // source-to-sink, excluding the scan
};

/// Compiles the chain under `materialize` (a kMaterialize node). Returns
/// true and fills `out` iff every node is vectorizable; on false the caller
/// must execute the child row-at-a-time.
bool CompileVecPipeline(PlanNode& materialize, VecPipeline* out);

/// Planner-side eligibility probe over the would-be chain root (the node a
/// Materialize would be placed above). Equivalent to CompileVecPipeline
/// succeeding, without building the stage list.
bool VecPipelineEligible(const PlanNode& chain_root);

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_VEC_PIPELINE_H_

#include "plan/vec_pipeline.hpp"

#include <algorithm>

namespace paraquery {

namespace {

// Walks the left spine from `node` down to its scan, appending vectorizable
// stages in sink-to-source order when `out` is non-null. `is_sink` is true
// only for the node directly under the Materialize boundary — the one place
// a deduplicating Project may appear (dedup runs on the materialized rows).
bool WalkChain(const PlanNode& node, bool is_sink,
               std::vector<const PlanNode*>* out) {
  switch (node.op) {
    case PlanOp::kScan:
      // Arity-0 (boolean) scans have no columns to stripe.
      return !node.attrs.empty();
    case PlanOp::kSelect:
      if (node.children.size() != 1) return false;
      if (out != nullptr) out->push_back(&node);
      return WalkChain(*node.children[0], /*is_sink=*/false, out);
    case PlanOp::kProject:
      if (node.children.size() != 1) return false;
      if (node.attrs.empty()) return false;
      if (node.dedup && !is_sink) return false;
      if (out != nullptr) out->push_back(&node);
      return WalkChain(*node.children[0], /*is_sink=*/false, out);
    case PlanOp::kHashJoin:
      if (node.children.size() != 2) return false;
      // A pushed post-filter would have to run row-at-a-time inside the
      // probe; keep those joins on the scalar kernel.
      if (!node.predicate.empty()) return false;
      if (node.attrs.empty() || node.children[0]->attrs.empty() ||
          node.children[1]->attrs.empty()) {
        return false;
      }
      if (out != nullptr) out->push_back(&node);
      return WalkChain(*node.children[0], /*is_sink=*/false, out);
    default:
      return false;
  }
}

}  // namespace

bool CompileVecPipeline(PlanNode& materialize, VecPipeline* out) {
  if (materialize.op != PlanOp::kMaterialize ||
      materialize.children.size() != 1) {
    return false;
  }
  std::vector<const PlanNode*> stages;
  if (!WalkChain(*materialize.children[0], /*is_sink=*/true, &stages)) {
    return false;
  }
  out->materialize = &materialize;
  out->stages.clear();
  out->stages.reserve(stages.size());
  // Collected sink-to-source; the runner wants source-to-sink.
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    out->stages.push_back(const_cast<PlanNode*>(*it));
  }
  // The leaf is the left spine's end.
  const PlanNode* leaf = materialize.children[0].get();
  while (leaf->op != PlanOp::kScan) leaf = leaf->children[0].get();
  out->source = const_cast<PlanNode*>(leaf);
  return true;
}

bool VecPipelineEligible(const PlanNode& chain_root) {
  return WalkChain(chain_root, /*is_sink=*/true, nullptr);
}

}  // namespace paraquery

// The one plan executor shared by every evaluator: runs a PlanNode DAG on
// the RowBlock/RowIndex kernels (relational/ops.hpp), enforcing
// ResourceLimits and filling PlanStats plus per-node actual row counts.
//
// With a TaskScheduler bound through ExecContext::runtime the executor goes
// parallel on two axes, with results bit-identical to sequential runs:
//   * structural — the two inputs of a HashJoin/Semijoin and the branches
//     of a Union (independent subtrees of the DAG, e.g. Yannakakis sibling
//     semijoin subtrees) execute as concurrent tasks, with shared nodes
//     still computed exactly once;
//   * morsel — Select, Project, the hash-join probe, and the semijoin probe
//     split their input rows into morsels processed by scheduler tasks into
//     per-worker buffers merged in deterministic morsel order
//     (runtime/parallel_ops.hpp).
// ResourceLimits stay enforced through one atomic row budget shared by all
// tasks of the execution. Parallel execution is speculative about the
// sequential empty-input short-circuit — a subtree the sequential executor
// would skip (because its sibling came out empty) may still run — but its
// rows are charged to a TENTATIVE budget that is committed only when the
// subtree's result is actually consumed, so a query that passes its limits
// at threads=1 never fails them at threads=N; speculative work that is
// dropped by the short-circuit is never charged (its errors are discarded
// with it). PlanStats::rows_produced still records all performed work,
// speculative included.
#ifndef PARAQUERY_PLAN_EXECUTOR_H_
#define PARAQUERY_PLAN_EXECUTOR_H_

#include <memory>
#include <span>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "relational/named_relation.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Per-execution environment: the scan slot table, limits, stats sink, and
/// the (optional) parallel runtime.
struct ExecContext {
  /// Scan nodes read `*inputs[input_slot]`; relations must outlive the call.
  std::span<const NamedRelation* const> inputs;
  ResourceLimits limits;
  PlanStats* stats = nullptr;  // optional
  RuntimeOptions runtime;      // default: sequential execution
  /// Variable names for the EXPLAIN ANALYZE capture's renders (optional;
  /// ids render as $k without it). Only read when runtime.analyze is bound.
  const VarTable* vars = nullptr;
};

/// Executes `root` once (shared nodes are evaluated a single time) and
/// returns its result relation. Empty operator inputs short-circuit: the
/// dependent operator returns its (statically known) empty output without
/// running — and without counting — downstream kernels, reproducing the
/// early-exit behavior of the hand-rolled evaluators this replaced (under a
/// scheduler, concurrently started sibling subtrees may already have run;
/// see above). Fixpoint nodes are rejected (their iteration belongs to the
/// Datalog engine, which executes the per-rule child plans itself).
Result<NamedRelation> ExecutePlan(PlanNode& root, const ExecContext& ctx);

/// Multi-root execution over ONE node memoization: subplans shared between
/// roots run once across the whole session (ExecutePlan shares only within
/// a single call). Used by the Theorem 2 formula mode, whose φ filter runs
/// between the upward-pass root and the evaluation DAG — the second Run
/// reuses every P_j the first already computed instead of recomputing the
/// upward pass. `ctx` (and the relations behind its input slots) must
/// outlive the session; slots may be bound lazily as long as each is set
/// before the first Run whose plan scans it. Limits span the session: one
/// max_steps budget, actuals reset per session (not per Run).
class ExecSession {
 public:
  explicit ExecSession(const ExecContext& ctx);
  ~ExecSession();

  Result<NamedRelation> Run(PlanNode& root);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_EXECUTOR_H_

// The one plan executor shared by every evaluator: runs a PlanNode DAG on
// the RowBlock/RowIndex kernels (relational/ops.hpp), enforcing
// ResourceLimits and filling PlanStats plus per-node actual row counts.
#ifndef PARAQUERY_PLAN_EXECUTOR_H_
#define PARAQUERY_PLAN_EXECUTOR_H_

#include <span>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "relational/named_relation.hpp"

namespace paraquery {

/// Per-execution environment: the scan slot table, limits, and stats sink.
struct ExecContext {
  /// Scan nodes read `*inputs[input_slot]`; relations must outlive the call.
  std::span<const NamedRelation* const> inputs;
  ResourceLimits limits;
  PlanStats* stats = nullptr;  // optional
};

/// Executes `root` once (shared nodes are evaluated a single time) and
/// returns its result relation. Empty operator inputs short-circuit: the
/// dependent operator returns its (statically known) empty output without
/// running — and without counting — downstream kernels, reproducing the
/// early-exit behavior of the hand-rolled evaluators this replaced.
/// Fixpoint nodes are rejected (their iteration belongs to the Datalog
/// engine, which executes the per-rule child plans itself).
Result<NamedRelation> ExecutePlan(PlanNode& root, const ExecContext& ctx);

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_EXECUTOR_H_

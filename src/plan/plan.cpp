#include "plan/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/status.hpp"

namespace paraquery {

namespace {

// Distinct-value estimate of attribute `a` at node `n` (< 0 = unknown).
double DistinctOf(const PlanNode& n, AttrId a) {
  if (n.attr_distinct.size() != n.attrs.size()) return -1.0;
  for (size_t i = 0; i < n.attrs.size(); ++i) {
    if (n.attrs[i] == a) return n.attr_distinct[i];
  }
  return -1.0;
}

// Caps a distinct-value count at the node's row estimate (a column cannot
// have more distinct values than the relation has rows).
double CapDistinct(double v, double est) {
  if (v < 0) return v;
  return est >= 0 ? std::min(v, est) : v;
}

// Upper bound on a deduplicated output: the product of the kept columns'
// distinct counts. Falls back to `est` when a count is unknown or the
// product already exceeds it.
double DedupCardinalityCap(const std::vector<double>& attr_distinct,
                           double est) {
  if (est < 0) return est;
  double cap = 1.0;
  for (double v : attr_distinct) {
    if (v < 0 || cap > est) return est;
    cap *= std::max(1.0, v);
  }
  return std::min(est, cap);
}

double EstimateSelect(double in, const Predicate& pred) {
  if (in < 0) return -1.0;
  double est = in;
  for (const Constraint& c : pred.constraints()) {
    switch (c.kind) {
      case Constraint::Kind::kEqConst:
      case Constraint::Kind::kEqCols:
        est *= 0.1;
        break;
      case Constraint::Kind::kNeqConst:
      case Constraint::Kind::kNeqCols:
        est *= 0.9;
        break;
      default:
        est *= 0.5;
        break;
    }
  }
  return est;
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kSelect:
      return "Select";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kSemijoin:
      return "Semijoin";
    case PlanOp::kUnion:
      return "Union";
    case PlanOp::kDedup:
      return "Dedup";
    case PlanOp::kFixpoint:
      return "Fixpoint";
    case PlanOp::kMaterialize:
      return "Materialize";
    case PlanOp::kMultiwayJoin:
      return "MultiwayJoin";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kSemijoinCount:
      return "SemijoinCount";
  }
  return "?";
}

void PlanStats::Merge(const PlanStats& o) {
  scans += o.scans;
  selects += o.selects;
  projections += o.projections;
  semijoins += o.semijoins;
  joins += o.joins;
  unions += o.unions;
  dedups += o.dedups;
  multiway_joins += o.multiway_joins;
  aggregates += o.aggregates;
  semijoin_counts += o.semijoin_counts;
  peak_intermediate_rows =
      std::max(peak_intermediate_rows, o.peak_intermediate_rows);
  rows_produced += o.rows_produced;
  shared_atom_storage += o.shared_atom_storage;
  zero_copy_projections += o.zero_copy_projections;
  index_builds += o.index_builds;
  index_hits += o.index_hits;
  parallel_tasks += o.parallel_tasks;
  morsels += o.morsels;
  wall_seconds += o.wall_seconds;
  vec_batches += o.vec_batches;
}

std::string PlanStats::ToString() const {
  std::ostringstream oss;
  oss << "scans=" << scans << " selects=" << selects
      << " projections=" << projections << " semijoins=" << semijoins
      << " joins=" << joins << " multiway_joins=" << multiway_joins
      << " unions=" << unions << " dedups=" << dedups
      << " aggregates=" << aggregates << " semijoin_counts=" << semijoin_counts
      << "\nrows_produced=" << rows_produced
      << " peak_intermediate_rows=" << peak_intermediate_rows
      << "\nshared_atom_storage=" << shared_atom_storage
      << " zero_copy_projections=" << zero_copy_projections
      << " index_builds=" << index_builds << " index_hits=" << index_hits
      << "\nparallel_tasks=" << parallel_tasks << " morsels=" << morsels
      << " vec_batches=" << vec_batches << " wall_ms=" << wall_seconds * 1e3;
  return oss.str();
}

const RowIndex& JoinIndexCache::GetOrBuild(const Relation& rel,
                                           const std::vector<int>& cols,
                                           PlanStats* stats,
                                           const ParallelForFn& pfor) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, idx] : indexes_) {
    if (key == cols) {
      if (stats != nullptr) ++stats->index_hits;
      return idx;
    }
  }
  if (stats != nullptr) ++stats->index_builds;
  indexes_.emplace_back(cols, RowIndex(rel, cols, pfor));
  return indexes_.back().second;
}

void PlanNode::ResetActuals() {
  actual_rows = kNotExecuted;
  actual_morsels = 0;
  actual_batches = 0;
  actual_ns = 0;
  for (const PlanNodePtr& c : children) c->ResetActuals();
}

PlanNodePtr MakeScan(int slot, std::vector<AttrId> attrs, std::string label,
                     double est_rows, JoinIndexCache* cache,
                     std::vector<double> attr_distinct) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kScan;
  n->attrs = std::move(attrs);
  n->label = std::move(label);
  n->est_rows = est_rows;
  n->input_slot = slot;
  n->index_cache = cache;
  if (attr_distinct.size() == n->attrs.size()) {
    n->attr_distinct = std::move(attr_distinct);
  }
  return n;
}

PlanNodePtr MakeSelect(PlanNodePtr child, Predicate predicate) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kSelect;
  n->attrs = child->attrs;
  n->label = predicate.ToString();
  n->est_rows = EstimateSelect(child->est_rows, predicate);
  if (!child->attr_distinct.empty()) {
    n->attr_distinct = child->attr_distinct;
    for (double& v : n->attr_distinct) v = CapDistinct(v, n->est_rows);
  }
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeProject(PlanNodePtr child, std::vector<AttrId> attrs,
                        bool dedup) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kProject;
  n->attrs = std::move(attrs);
  n->est_rows = child->est_rows;
  if (!child->attr_distinct.empty()) {
    n->attr_distinct.reserve(n->attrs.size());
    for (AttrId a : n->attrs) n->attr_distinct.push_back(DistinctOf(*child, a));
    if (dedup) {
      n->est_rows = DedupCardinalityCap(n->attr_distinct, n->est_rows);
    }
    for (double& v : n->attr_distinct) v = CapDistinct(v, n->est_rows);
  }
  n->dedup = dedup;
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         Predicate post_filter) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kHashJoin;
  n->attrs = left->attrs;
  std::vector<AttrId> common;
  for (AttrId a : right->attrs) {
    if (std::find(n->attrs.begin(), n->attrs.end(), a) != n->attrs.end()) {
      common.push_back(a);
    } else {
      n->attrs.push_back(a);
    }
  }
  double l = left->est_rows, r = right->est_rows;
  if (l < 0 || r < 0) {
    n->est_rows = -1.0;
  } else {
    // System R: |L ⋈ R| ≈ |L|·|R| / Π_a max(V_L(a), V_R(a)) over the shared
    // attributes, using the real per-column distinct counts seeded at the
    // scans. Where a count is unknown, fall back to the historical
    // containment guess (divide by max(|L|, |R|) once, then by 10 per extra
    // shared attribute).
    double est = l * r;
    for (size_t i = 0; i < common.size(); ++i) {
      double vl = DistinctOf(*left, common[i]);
      double vr = DistinctOf(*right, common[i]);
      double divisor = (vl > 0 && vr > 0)
                           ? std::max(vl, vr)
                           : (i == 0 ? std::max({l, r, 1.0}) : 10.0);
      est /= std::max(divisor, 1.0);
    }
    n->est_rows = est;
  }
  if (!post_filter.empty()) {
    n->label = post_filter.ToString();
    n->est_rows = EstimateSelect(n->est_rows, post_filter);
    n->predicate = std::move(post_filter);
  }
  // Propagated distinct counts: shared attributes keep the smaller side's
  // count, exclusive attributes their source's, all capped at the estimate.
  if (!left->attr_distinct.empty() || !right->attr_distinct.empty()) {
    n->attr_distinct.reserve(n->attrs.size());
    for (AttrId a : n->attrs) {
      double vl = DistinctOf(*left, a), vr = DistinctOf(*right, a);
      double v = vl < 0 ? vr : (vr < 0 ? vl : std::min(vl, vr));
      n->attr_distinct.push_back(CapDistinct(v, n->est_rows));
    }
  }
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeSemijoin(PlanNodePtr left, PlanNodePtr right) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kSemijoin;
  n->attrs = left->attrs;
  n->est_rows = left->est_rows < 0 ? -1.0 : left->est_rows * 0.5;
  if (!left->attr_distinct.empty()) {
    n->attr_distinct = left->attr_distinct;
    for (double& v : n->attr_distinct) v = CapDistinct(v, n->est_rows);
  }
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeUnion(std::vector<PlanNodePtr> children,
                      std::vector<AttrId> attrs) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kUnion;
  n->attrs = std::move(attrs);
  double est = 0;
  for (const PlanNodePtr& c : children) {
    if (c->est_rows < 0) {
      est = -1.0;
      break;
    }
    est += c->est_rows;
  }
  n->est_rows = est;
  n->children = std::move(children);
  return n;
}

PlanNodePtr MakeDedup(PlanNodePtr child) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kDedup;
  n->attrs = child->attrs;
  n->est_rows = child->est_rows;
  if (!child->attr_distinct.empty()) {
    n->attr_distinct = child->attr_distinct;
    n->est_rows = DedupCardinalityCap(n->attr_distinct, n->est_rows);
    for (double& v : n->attr_distinct) v = CapDistinct(v, n->est_rows);
  }
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeFixpoint(std::vector<PlanNodePtr> rule_plans,
                         std::string label) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kFixpoint;
  n->label = std::move(label);
  n->children = std::move(rule_plans);
  return n;
}

PlanNodePtr MakeMultiwayJoin(std::vector<PlanNodePtr> children,
                             std::vector<AttrId> attrs) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kMultiwayJoin;
  n->attrs = std::move(attrs);
  // AGM-flavored estimate: (Π|R_i|)^x with x = v/2m clamped to [·, 1]. For
  // the triangle (v=3, m=3) this is (N^3)^{1/2} = N^{3/2}; for the 4-clique
  // (v=4, m=6) it is (N^6)^{1/3} = N^2 — the worst-case output bounds.
  double product = 1.0;
  bool known = !children.empty();
  for (const PlanNodePtr& c : children) {
    if (c->est_rows < 0) {
      known = false;
      break;
    }
    product *= std::max(1.0, c->est_rows);
  }
  if (known) {
    double x = std::min(
        1.0, static_cast<double>(n->attrs.size()) / (2.0 * children.size()));
    n->est_rows = std::pow(product, x);
  }
  // Shared attributes keep the smallest participating distinct count.
  bool any_distinct = false;
  for (const PlanNodePtr& c : children) {
    if (!c->attr_distinct.empty()) any_distinct = true;
  }
  if (any_distinct) {
    n->attr_distinct.reserve(n->attrs.size());
    for (AttrId a : n->attrs) {
      double v = -1.0;
      for (const PlanNodePtr& c : children) {
        double vc = DistinctOf(*c, a);
        if (vc >= 0 && (v < 0 || vc < v)) v = vc;
      }
      n->attr_distinct.push_back(CapDistinct(v, n->est_rows));
    }
  }
  n->children = std::move(children);
  return n;
}

PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<AttrId> group_attrs) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kAggregate;
  n->attrs = std::move(group_attrs);
  // Output cardinality = # distinct group keys (1 for the scalar count).
  if (n->attrs.empty()) {
    n->est_rows = 1.0;
  } else if (!child->attr_distinct.empty()) {
    std::vector<double> dd;
    dd.reserve(n->attrs.size());
    for (AttrId a : n->attrs) dd.push_back(DistinctOf(*child, a));
    n->est_rows = DedupCardinalityCap(dd, child->est_rows);
    n->attr_distinct = std::move(dd);
    for (double& v : n->attr_distinct) v = CapDistinct(v, n->est_rows);
  } else {
    n->est_rows = child->est_rows;
  }
  n->attrs.push_back(kCountAttr);
  if (!n->attr_distinct.empty()) n->attr_distinct.push_back(-1.0);
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeSemijoinCount(PlanNodePtr left, PlanNodePtr right) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kSemijoinCount;
  for (AttrId a : left->attrs) {
    if (a != kCountAttr) n->attrs.push_back(a);
  }
  size_t left_regular = n->attrs.size();
  for (AttrId a : right->attrs) {
    if (a != kCountAttr &&
        std::find(n->attrs.begin(), n->attrs.end(), a) == n->attrs.end()) {
      n->attrs.push_back(a);
    }
  }
  bool extends = n->attrs.size() > left_regular;
  // Like a semijoin when the right adds no attrs; otherwise a (filtered)
  // join on the distinct right extensions.
  if (left->est_rows >= 0) {
    n->est_rows = extends ? left->est_rows : left->est_rows * 0.5;
  }
  if (!left->attr_distinct.empty() || !right->attr_distinct.empty()) {
    n->attr_distinct.reserve(n->attrs.size() + 1);
    for (AttrId a : n->attrs) {
      double vl = DistinctOf(*left, a), vr = DistinctOf(*right, a);
      double v = vl < 0 ? vr : (vr < 0 ? vl : std::min(vl, vr));
      n->attr_distinct.push_back(CapDistinct(v, n->est_rows));
    }
    n->attr_distinct.push_back(-1.0);
  }
  n->attrs.push_back(kCountAttr);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeMaterialize(PlanNodePtr child) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kMaterialize;
  n->attrs = child->attrs;
  n->est_rows = child->est_rows;
  n->attr_distinct = child->attr_distinct;
  n->children.push_back(std::move(child));
  return n;
}

namespace {

PlanNodePtr CloneRec(
    const PlanNode& n, const std::vector<JoinIndexCache*>* slot_caches,
    std::unordered_map<const PlanNode*, PlanNodePtr>* memo) {
  auto it = memo->find(&n);
  if (it != memo->end()) return it->second;
  auto out = std::make_shared<PlanNode>();
  out->op = n.op;
  out->attrs = n.attrs;
  out->label = n.label;
  out->est_rows = n.est_rows;
  out->attr_distinct = n.attr_distinct;
  out->input_slot = n.input_slot;
  out->index_cache = n.index_cache;
  out->predicate = n.predicate;
  out->dedup = n.dedup;
  out->repr = n.repr;
  if (slot_caches != nullptr && n.op == PlanOp::kScan) {
    out->index_cache =
        (n.input_slot >= 0 &&
         static_cast<size_t>(n.input_slot) < slot_caches->size())
            ? (*slot_caches)[n.input_slot]
            : nullptr;
  }
  out->children.reserve(n.children.size());
  for (const PlanNodePtr& c : n.children) {
    out->children.push_back(CloneRec(*c, slot_caches, memo));
  }
  memo->emplace(&n, out);
  return out;
}

void CountRefs(const PlanNode& node,
               std::unordered_map<const PlanNode*, int>* refs) {
  if (++(*refs)[&node] > 1) return;  // children already counted once
  for (const PlanNodePtr& c : node.children) CountRefs(*c, refs);
}

struct Renderer {
  const VarTable* vars;
  const std::unordered_map<const PlanNode*, int>* refs;
  bool analyzed = false;  // append time=/self= from actual_ns
  std::unordered_map<const PlanNode*, int> shown;  // node -> shared id
  int next_id = 1;
  std::ostringstream out;

  std::string AttrName(AttrId a) const {
    if (a == kCountAttr) return "#count";
    if (vars != nullptr && a >= 0 && a < vars->size()) return vars->name(a);
    return internal::StrCat("$", a);
  }

  void Line(const PlanNode& n, int depth, bool reference) {
    for (int i = 0; i < depth; ++i) out << "  ";
    out << PlanOpName(n.op) << "(";
    for (size_t i = 0; i < n.attrs.size(); ++i) {
      if (i > 0) out << ", ";
      out << AttrName(n.attrs[i]);
    }
    out << ")";
    if (n.repr == PlanRepr::kColumnar) out << " [vec]";
    if (!n.label.empty()) out << " " << n.label;
    if (reference) {
      out << " see #" << shown.at(&n) << "\n";
      return;
    }
    if (n.op == PlanOp::kScan) {
      if (n.est_rows >= 0) {
        out << " rows=" << static_cast<uint64_t>(n.est_rows);
      } else {
        out << " rows=?";
      }
    } else if (n.op != PlanOp::kFixpoint) {
      if (n.est_rows >= 0) {
        out << " est=" << static_cast<uint64_t>(std::llround(n.est_rows));
      } else {
        out << " est=?";
      }
      if (n.actual_rows != PlanNode::kNotExecuted) {
        out << " actual=" << n.actual_rows;
        if (n.actual_morsels > 0) out << " morsels=" << n.actual_morsels;
        if (n.actual_batches > 0) out << " vec=" << n.actual_batches;
      }
    }
    if (analyzed && n.actual_ns > 0) {
      uint64_t children_ns = 0;
      for (const PlanNodePtr& c : n.children) children_ns += c->actual_ns;
      uint64_t self_ns =
          children_ns >= n.actual_ns ? 0 : n.actual_ns - children_ns;
      char buf[64];
      std::snprintf(buf, sizeof(buf), " time=%.3fms self=%.3fms",
                    static_cast<double>(n.actual_ns) / 1e6,
                    static_cast<double>(self_ns) / 1e6);
      out << buf;
    }
    auto it = refs->find(&n);
    if (it != refs->end() && it->second > 1) {
      shown[&n] = next_id;
      out << " as #" << next_id++;
    }
    out << "\n";
  }

  void Walk(const PlanNode& n, int depth) {
    bool reference = shown.count(&n) > 0;
    Line(n, depth, reference);
    if (reference) return;
    for (const PlanNodePtr& c : n.children) Walk(*c, depth + 1);
  }
};

}  // namespace

PlanNodePtr ClonePlan(const PlanNode& root,
                      const std::vector<JoinIndexCache*>* slot_caches) {
  std::unordered_map<const PlanNode*, PlanNodePtr> memo;
  return CloneRec(root, slot_caches, &memo);
}

std::string RenderPlan(const PlanNode& root, const VarTable* vars) {
  std::unordered_map<const PlanNode*, int> refs;
  CountRefs(root, &refs);
  Renderer r{vars, &refs, false, {}, 1, {}};
  r.Walk(root, 0);
  return r.out.str();
}

std::string RenderAnalyzedPlan(const PlanNode& root, const VarTable* vars) {
  std::unordered_map<const PlanNode*, int> refs;
  CountRefs(root, &refs);
  Renderer r{vars, &refs, true, {}, 1, {}};
  r.Walk(root, 0);
  return r.out.str();
}

}  // namespace paraquery

#include "plan/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/status.hpp"

namespace paraquery {

namespace {

// Join cardinality: containment-style guess with V(attr) ≈ relation size.
// Deliberately coarse — ordering decisions use real input sizes, estimates
// exist so EXPLAIN can show est vs actual drift.
double EstimateJoin(double l, double r, size_t common_attrs) {
  if (l < 0 || r < 0) return -1.0;
  if (common_attrs == 0) return l * r;
  double est = l * r / std::max(1.0, std::max(l, r));
  // Every extra shared attribute filters further.
  for (size_t i = 1; i < common_attrs; ++i) est *= 0.1;
  return est;
}

double EstimateSelect(double in, const Predicate& pred) {
  if (in < 0) return -1.0;
  double est = in;
  for (const Constraint& c : pred.constraints()) {
    switch (c.kind) {
      case Constraint::Kind::kEqConst:
      case Constraint::Kind::kEqCols:
        est *= 0.1;
        break;
      case Constraint::Kind::kNeqConst:
      case Constraint::Kind::kNeqCols:
        est *= 0.9;
        break;
      default:
        est *= 0.5;
        break;
    }
  }
  return est;
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kSelect:
      return "Select";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kSemijoin:
      return "Semijoin";
    case PlanOp::kUnion:
      return "Union";
    case PlanOp::kDedup:
      return "Dedup";
    case PlanOp::kFixpoint:
      return "Fixpoint";
  }
  return "?";
}

void PlanStats::Merge(const PlanStats& o) {
  scans += o.scans;
  selects += o.selects;
  projections += o.projections;
  semijoins += o.semijoins;
  joins += o.joins;
  unions += o.unions;
  dedups += o.dedups;
  peak_intermediate_rows =
      std::max(peak_intermediate_rows, o.peak_intermediate_rows);
  rows_produced += o.rows_produced;
  shared_atom_storage += o.shared_atom_storage;
  zero_copy_projections += o.zero_copy_projections;
  index_builds += o.index_builds;
  index_hits += o.index_hits;
}

std::string PlanStats::ToString() const {
  std::ostringstream oss;
  oss << "scans=" << scans << " selects=" << selects
      << " projections=" << projections << " semijoins=" << semijoins
      << " joins=" << joins << " unions=" << unions << " dedups=" << dedups
      << "\nrows_produced=" << rows_produced
      << " peak_intermediate_rows=" << peak_intermediate_rows
      << "\nshared_atom_storage=" << shared_atom_storage
      << " zero_copy_projections=" << zero_copy_projections
      << " index_builds=" << index_builds << " index_hits=" << index_hits;
  return oss.str();
}

const RowIndex& JoinIndexCache::GetOrBuild(const Relation& rel,
                                           const std::vector<int>& cols,
                                           PlanStats* stats) {
  for (const auto& [key, idx] : indexes_) {
    if (key == cols) {
      if (stats != nullptr) ++stats->index_hits;
      return idx;
    }
  }
  if (stats != nullptr) ++stats->index_builds;
  indexes_.emplace_back(cols, RowIndex(rel, cols));
  return indexes_.back().second;
}

void PlanNode::ResetActuals() {
  actual_rows = kNotExecuted;
  for (const PlanNodePtr& c : children) c->ResetActuals();
}

PlanNodePtr MakeScan(int slot, std::vector<AttrId> attrs, std::string label,
                     double est_rows, JoinIndexCache* cache) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kScan;
  n->attrs = std::move(attrs);
  n->label = std::move(label);
  n->est_rows = est_rows;
  n->input_slot = slot;
  n->index_cache = cache;
  return n;
}

PlanNodePtr MakeSelect(PlanNodePtr child, Predicate predicate) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kSelect;
  n->attrs = child->attrs;
  n->label = predicate.ToString();
  n->est_rows = EstimateSelect(child->est_rows, predicate);
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeProject(PlanNodePtr child, std::vector<AttrId> attrs,
                        bool dedup) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kProject;
  n->attrs = std::move(attrs);
  n->est_rows = child->est_rows;
  n->dedup = dedup;
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kHashJoin;
  n->attrs = left->attrs;
  size_t common = 0;
  for (AttrId a : right->attrs) {
    if (std::find(n->attrs.begin(), n->attrs.end(), a) != n->attrs.end()) {
      ++common;
    } else {
      n->attrs.push_back(a);
    }
  }
  n->est_rows = EstimateJoin(left->est_rows, right->est_rows, common);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeSemijoin(PlanNodePtr left, PlanNodePtr right) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kSemijoin;
  n->attrs = left->attrs;
  n->est_rows = left->est_rows < 0 ? -1.0 : left->est_rows * 0.5;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeUnion(std::vector<PlanNodePtr> children,
                      std::vector<AttrId> attrs) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kUnion;
  n->attrs = std::move(attrs);
  double est = 0;
  for (const PlanNodePtr& c : children) {
    if (c->est_rows < 0) {
      est = -1.0;
      break;
    }
    est += c->est_rows;
  }
  n->est_rows = est;
  n->children = std::move(children);
  return n;
}

PlanNodePtr MakeDedup(PlanNodePtr child) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kDedup;
  n->attrs = child->attrs;
  n->est_rows = child->est_rows;
  n->children.push_back(std::move(child));
  return n;
}

PlanNodePtr MakeFixpoint(std::vector<PlanNodePtr> rule_plans,
                         std::string label) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kFixpoint;
  n->label = std::move(label);
  n->children = std::move(rule_plans);
  return n;
}

namespace {

void CountRefs(const PlanNode& node,
               std::unordered_map<const PlanNode*, int>* refs) {
  if (++(*refs)[&node] > 1) return;  // children already counted once
  for (const PlanNodePtr& c : node.children) CountRefs(*c, refs);
}

struct Renderer {
  const VarTable* vars;
  const std::unordered_map<const PlanNode*, int>* refs;
  std::unordered_map<const PlanNode*, int> shown;  // node -> shared id
  int next_id = 1;
  std::ostringstream out;

  std::string AttrName(AttrId a) const {
    if (vars != nullptr && a >= 0 && a < vars->size()) return vars->name(a);
    return internal::StrCat("$", a);
  }

  void Line(const PlanNode& n, int depth, bool reference) {
    for (int i = 0; i < depth; ++i) out << "  ";
    out << PlanOpName(n.op) << "(";
    for (size_t i = 0; i < n.attrs.size(); ++i) {
      if (i > 0) out << ", ";
      out << AttrName(n.attrs[i]);
    }
    out << ")";
    if (!n.label.empty()) out << " " << n.label;
    if (reference) {
      out << " see #" << shown.at(&n) << "\n";
      return;
    }
    if (n.op == PlanOp::kScan) {
      if (n.est_rows >= 0) {
        out << " rows=" << static_cast<uint64_t>(n.est_rows);
      } else {
        out << " rows=?";
      }
    } else if (n.op != PlanOp::kFixpoint) {
      if (n.est_rows >= 0) {
        out << " est=" << static_cast<uint64_t>(std::llround(n.est_rows));
      } else {
        out << " est=?";
      }
      if (n.actual_rows != PlanNode::kNotExecuted) {
        out << " actual=" << n.actual_rows;
      }
    }
    auto it = refs->find(&n);
    if (it != refs->end() && it->second > 1) {
      shown[&n] = next_id;
      out << " as #" << next_id++;
    }
    out << "\n";
  }

  void Walk(const PlanNode& n, int depth) {
    bool reference = shown.count(&n) > 0;
    Line(n, depth, reference);
    if (reference) return;
    for (const PlanNodePtr& c : n.children) Walk(*c, depth + 1);
  }
};

}  // namespace

std::string RenderPlan(const PlanNode& root, const VarTable* vars) {
  std::unordered_map<const PlanNode*, int> refs;
  CountRefs(root, &refs);
  Renderer r{vars, &refs, {}, 1, {}};
  r.Walk(root, 0);
  return r.out.str();
}

}  // namespace paraquery

#include "plan/plan_cache.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace paraquery {

// ToUnionOfCqs standardizes variables apart, so duplicate disjuncts produced
// by the ∧/∨ distribution differ only in variable ids — exactly what this
// signature ignores.
std::string CanonicalCqSignature(const ConjunctiveQuery& cq) {
  std::vector<VarId> seen;
  auto canon = [&seen](const Term& t) -> std::string {
    if (t.is_const()) return internal::StrCat("c", t.value());
    auto it = std::find(seen.begin(), seen.end(), t.var());
    size_t idx = static_cast<size_t>(it - seen.begin());
    if (it == seen.end()) seen.push_back(t.var());
    return internal::StrCat("v", idx);
  };
  std::string sig = "h:";
  for (const Term& t : cq.head) sig += canon(t) + ",";
  sig += "|b:";
  for (const Atom& a : cq.body) {
    sig += a.relation + "(";
    for (const Term& t : a.terms) sig += canon(t) + ",";
    sig += ")";
  }
  sig += "|c:";
  for (const CompareAtom& c : cq.comparisons) {
    sig += internal::StrCat(static_cast<int>(c.op), ":", canon(c.lhs), ":",
                            canon(c.rhs), ",");
  }
  return sig;
}

CanonicalCq CanonicalizeCq(const ConjunctiveQuery& q) {
  CanonicalCq out;
  out.signature = CanonicalCqSignature(q);
  // Rebuild the query with variables renumbered in the signature's
  // first-occurrence order, keeping the original names where possible (the
  // canonical plan renders with the first query's names; execution only
  // cares about the ids).
  std::vector<VarId> seen;
  auto canon_id = [&](VarId v) -> VarId {
    auto it = std::find(seen.begin(), seen.end(), v);
    if (it != seen.end()) return static_cast<VarId>(it - seen.begin());
    seen.push_back(v);
    return static_cast<VarId>(seen.size() - 1);
  };
  auto canon_term = [&](const Term& t) {
    return t.is_const() ? t : Term::Var(canon_id(t.var()));
  };
  ConjunctiveQuery& c = out.query;
  for (const Term& t : q.head) c.head.push_back(canon_term(t));
  for (const Atom& a : q.body) {
    Atom atom{a.relation, {}};
    atom.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) atom.terms.push_back(canon_term(t));
    c.body.push_back(std::move(atom));
  }
  for (const CompareAtom& cmp : q.comparisons) {
    c.comparisons.push_back(
        {cmp.op, canon_term(cmp.lhs), canon_term(cmp.rhs)});
  }
  // Variable table in canonical order; duplicate or missing original names
  // fall back to a positional name so ids and names stay 1:1.
  for (size_t i = 0; i < seen.size(); ++i) {
    std::string name = (seen[i] >= 0 && seen[i] < q.vars.size())
                           ? q.vars.name(seen[i])
                           : internal::StrCat("v", i);
    if (c.vars.Find(name) >= 0) name = internal::StrCat("v", i);
    c.vars.Intern(name);
  }
  out.order = std::move(seen);
  return out;
}

std::string PlanCacheStats::ToString() const {
  std::ostringstream oss;
  oss << "plan_cache_hits=" << hits << " plan_cache_misses=" << misses
      << " plan_cache_invalidations=" << invalidations
      << " plan_cache_entries=" << entries;
  return oss.str();
}

void PlanCache::SyncGenerationLocked(uint64_t generation) {
  if (generation == generation_) return;
  if (!entries_.empty()) {
    entries_.clear();
    ++stats_.invalidations;
  }
  generation_ = generation;
}

std::shared_ptr<void> PlanCache::LookupErased(const std::string& key,
                                              uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  SyncGenerationLocked(generation);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void PlanCache::InsertErased(const std::string& key, uint64_t generation,
                             std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  SyncGenerationLocked(generation);
  if (entries_.size() >= kMaxEntries && entries_.count(key) == 0) {
    entries_.clear();  // capacity backstop: flush rather than grow unbounded
    ++stats_.invalidations;
  }
  entries_[key] = std::move(value);
}

void PlanCache::NoteReuse(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.hits += n;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!entries_.empty()) {
    entries_.clear();
    ++stats_.invalidations;  // every whole-cache flush is counted
  }
}

}  // namespace paraquery

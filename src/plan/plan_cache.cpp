#include "plan/plan_cache.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace paraquery {

// ToUnionOfCqs standardizes variables apart, so duplicate disjuncts produced
// by the ∧/∨ distribution differ only in variable ids — exactly what this
// signature ignores.
std::string CanonicalCqSignature(const ConjunctiveQuery& cq) {
  std::vector<VarId> seen;
  auto canon = [&seen](const Term& t) -> std::string {
    if (t.is_const()) return internal::StrCat("c", t.value());
    auto it = std::find(seen.begin(), seen.end(), t.var());
    size_t idx = static_cast<size_t>(it - seen.begin());
    if (it == seen.end()) seen.push_back(t.var());
    return internal::StrCat("v", idx);
  };
  std::string sig = "h:";
  for (const Term& t : cq.head) sig += canon(t) + ",";
  sig += "|b:";
  for (const Atom& a : cq.body) {
    sig += a.relation + "(";
    for (const Term& t : a.terms) sig += canon(t) + ",";
    sig += ")";
  }
  sig += "|c:";
  for (const CompareAtom& c : cq.comparisons) {
    sig += internal::StrCat(static_cast<int>(c.op), ":", canon(c.lhs), ":",
                            canon(c.rhs), ",");
  }
  // The answer shape is part of the query's identity: a counting plan (no
  // materialized join output, trailing #count column) must never be served
  // for a tuple query over the same text, or vice versa.
  if (cq.answer.counting()) {
    sig += cq.answer.kind == AnswerSpec::Kind::kCount ? "|a:cnt" : "|a:grp";
  }
  return sig;
}

CanonicalCq CanonicalizeCq(const ConjunctiveQuery& q) {
  CanonicalCq out;
  out.signature = CanonicalCqSignature(q);
  // Rebuild the query with variables renumbered in the signature's
  // first-occurrence order, keeping the original names where possible (the
  // canonical plan renders with the first query's names; execution only
  // cares about the ids).
  std::vector<VarId> seen;
  auto canon_id = [&](VarId v) -> VarId {
    auto it = std::find(seen.begin(), seen.end(), v);
    if (it != seen.end()) return static_cast<VarId>(it - seen.begin());
    seen.push_back(v);
    return static_cast<VarId>(seen.size() - 1);
  };
  auto canon_term = [&](const Term& t) {
    return t.is_const() ? t : Term::Var(canon_id(t.var()));
  };
  ConjunctiveQuery& c = out.query;
  c.answer = q.answer;
  for (const Term& t : q.head) c.head.push_back(canon_term(t));
  for (const Atom& a : q.body) {
    Atom atom{a.relation, {}};
    atom.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) atom.terms.push_back(canon_term(t));
    c.body.push_back(std::move(atom));
  }
  for (const CompareAtom& cmp : q.comparisons) {
    c.comparisons.push_back(
        {cmp.op, canon_term(cmp.lhs), canon_term(cmp.rhs)});
  }
  // Variable table in canonical order; duplicate or missing original names
  // fall back to a positional name so ids and names stay 1:1.
  for (size_t i = 0; i < seen.size(); ++i) {
    std::string name = (seen[i] >= 0 && seen[i] < q.vars.size())
                           ? q.vars.name(seen[i])
                           : internal::StrCat("v", i);
    if (c.vars.Find(name) >= 0) name = internal::StrCat("v", i);
    c.vars.Intern(name);
  }
  out.order = std::move(seen);
  return out;
}

std::string PlanCacheStats::ToString() const {
  std::ostringstream oss;
  oss << "plan_cache_hits=" << hits << " plan_cache_misses=" << misses
      << " plan_cache_invalidations=" << invalidations
      << " plan_cache_stale_entries=" << stale_entries
      << " plan_cache_evictions=" << evictions
      << " plan_cache_entries=" << entries;
  return oss.str();
}

namespace {

// The (relation id, current stamp) dependency set of a query: one pair per
// distinct stored relation its body reads. Unresolved names (IDB predicates,
// delta views — not stored relations) contribute nothing: their content is
// not the database's concern, and the evaluators key such artifacts by
// content-bearing signatures already.
std::vector<std::pair<RelId, uint64_t>> DepStamps(const Database& db,
                                                  const ConjunctiveQuery& q) {
  std::vector<std::pair<RelId, uint64_t>> deps;
  for (const Atom& atom : q.body) {
    Result<RelId> id = db.FindRelation(atom.relation);
    if (!id.ok()) continue;
    bool seen = false;
    for (const auto& dep : deps) seen = seen || dep.first == id.value();
    if (seen) continue;
    deps.emplace_back(id.value(), db.relation_generation(id.value()));
  }
  return deps;
}

}  // namespace

std::shared_ptr<void> PlanCache::LookupErased(const std::string& key,
                                              const Database& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  for (const auto& [id, stamp] : it->second.deps) {
    bool stale = id < 0 ||
                 static_cast<size_t>(id) >= db.relation_count() ||
                 db.relation_generation(id) != stamp;
    if (stale) {
      lru_.erase(it->second.lru);
      entries_.erase(it);
      ++stats_.stale_entries;
      ++stats_.misses;
      return nullptr;
    }
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.value;
}

void PlanCache::InsertErased(const std::string& key, const Database& db,
                             const ConjunctiveQuery& reads,
                             std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    lru_.push_front(key);
    it = entries_.emplace(key, Entry{}).first;
    it->second.lru = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  it->second.value = std::move(value);
  it->second.deps = DepStamps(db, reads);
  EvictOverCapacityLocked();
}

void PlanCache::EvictOverCapacityLocked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  EvictOverCapacityLocked();
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void PlanCache::NoteReuse(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.hits += n;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!entries_.empty()) {
    entries_.clear();
    lru_.clear();
    ++stats_.invalidations;  // every whole-cache flush is counted
  }
}

}  // namespace paraquery

// Program-wide plan cache: compiled plans keyed by a renaming-invariant
// query signature plus the database's data generation.
//
// The fixed-query regime of the paper makes per-query compilation (S_j
// materialization, GYO/join-tree construction, per-column statistics, plan
// node building) a constant — but on small-data/many-query workloads that
// constant dominates (Durand–Grandjean; Mengel's survey). The cache removes
// it: repeated conjunctive queries, UCQ disjuncts re-expanded across calls,
// Datalog rule variants shared between programs, and — the headline — the
// k^k per-coloring re-executions of one Theorem 2 residual plan all reuse
// one compiled artifact.
//
// Keys are built from CanonicalCqSignature (moved here from eval/ucq.* — it
// identifies queries up to variable renaming), namespaced by a short route
// prefix ("cq-eval:", "cq-dec:", "cq-cyc:", "ineq:", "rule:") because each
// route caches a different artifact type. Because signatures equate queries
// that differ only in variable ids, cached plans are compiled from the
// CANONICAL form of the query (CanonicalizeCq) so their attribute ids are
// renaming-independent.
//
// Invalidation: every entry is stamped with the Database::generation() it
// was compiled against. The first access under a newer generation flushes
// the whole cache (mutations are rare; queries are many) and counts one
// invalidation. The Engine owns one cache per database and threads it to
// the evaluators through their options.
//
// Thread-safety: Lookup/Insert/stats are mutex-guarded (concurrent UCQ
// disjuncts and Datalog rule firings share the cache). The cached ARTIFACTS
// are not: a cached PhysicalPlan carries executor-written actual_rows, so a
// given entry must not be executed by two threads at once. Within one
// engine call that cannot happen (UCQ disjuncts are signature-deduplicated;
// the Datalog engine clones rule plans per variant); across calls the
// engine is sequential.
#ifndef PARAQUERY_PLAN_PLAN_CACHE_H_
#define PARAQUERY_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "plan/plan.hpp"
#include "query/conjunctive_query.hpp"

namespace paraquery {

/// Canonical text of a CQ with variables renamed to first-occurrence
/// indexes: two queries map to the same string iff they are syntactically
/// identical up to variable naming. Used to deduplicate UCQ disjuncts, as
/// the plan-cache key, and by EXPLAIN's plan rendering. (Moved from
/// eval/ucq.hpp when the cache made it a cross-evaluator concern.)
std::string CanonicalCqSignature(const ConjunctiveQuery& cq);

/// A query rewritten onto canonical variable ids (first occurrence over
/// head, then body, then comparisons — the CanonicalCqSignature traversal),
/// plus that signature. Plans compiled from `query` carry attribute ids
/// that any renaming-equivalent original can reuse; `query.vars` keeps the
/// original's variable names for rendering. Answer relations are unchanged
/// by canonicalization (head terms keep their positions and constants).
struct CanonicalCq {
  std::string signature;
  ConjunctiveQuery query;
  /// order[canonical id] = original VarId (the renaming, for callers that
  /// must rename satellite structures — e.g. an IneqFormula — consistently).
  std::vector<VarId> order;
};
CanonicalCq CanonicalizeCq(const ConjunctiveQuery& q);

/// Cumulative cache counters (engine lifetime, not per query).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Whole-cache flushes: a database generation change, or the capacity
  /// backstop (kMaxEntries) tripping on insert.
  uint64_t invalidations = 0;
  size_t entries = 0;

  std::string ToString() const;
};

/// The cache proper: type-erased entries (each key prefix stores exactly one
/// artifact type) stamped with the database generation they were built at.
class PlanCache {
 public:
  /// Capacity backstop: entries hold data-sized artifacts (materialized S_j
  /// inputs), so a long-lived engine over a static database receiving a
  /// stream of DISTINCT queries must not grow without bound. Reaching the
  /// cap flushes the whole cache (counted as an invalidation) — crude, but
  /// bounded; a real LRU is a ROADMAP item.
  static constexpr size_t kMaxEntries = 4096;

  /// Returns the entry for `key` compiled at `generation`, or nullptr (a
  /// counted miss). A generation older than `generation` flushes every
  /// entry first and counts one invalidation.
  template <typename T>
  std::shared_ptr<T> Lookup(const std::string& key, uint64_t generation) {
    return std::static_pointer_cast<T>(LookupErased(key, generation));
  }

  /// Stores `value` under `key` for `generation` (replacing any previous
  /// entry). Insert does not change hit/miss counters.
  template <typename T>
  void Insert(const std::string& key, uint64_t generation,
              std::shared_ptr<T> value) {
    InsertErased(key, generation, std::move(value));
  }

  /// Credits `n` reuses of a compiled artifact that bypass Lookup — the
  /// Theorem 2 driver compiles one residual plan and re-executes it per
  /// coloring, which is the cache's headline win even on a cold cache.
  void NoteReuse(uint64_t n);

  PlanCacheStats stats() const;
  void Clear();

 private:
  std::shared_ptr<void> LookupErased(const std::string& key,
                                     uint64_t generation);
  void InsertErased(const std::string& key, uint64_t generation,
                    std::shared_ptr<void> value);
  /// Flushes when `generation` moved past the cache's stamp. Caller holds
  /// mutex_.
  void SyncGenerationLocked(uint64_t generation);

  mutable std::mutex mutex_;
  uint64_t generation_ = 0;
  std::unordered_map<std::string, std::shared_ptr<void>> entries_;
  PlanCacheStats stats_;
};

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_PLAN_CACHE_H_

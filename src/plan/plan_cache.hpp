// Program-wide plan cache: compiled plans keyed by a renaming-invariant
// query signature plus the database's data generation.
//
// The fixed-query regime of the paper makes per-query compilation (S_j
// materialization, GYO/join-tree construction, per-column statistics, plan
// node building) a constant — but on small-data/many-query workloads that
// constant dominates (Durand–Grandjean; Mengel's survey). The cache removes
// it: repeated conjunctive queries, UCQ disjuncts re-expanded across calls,
// Datalog rule variants shared between programs, and — the headline — the
// k^k per-coloring re-executions of one Theorem 2 residual plan all reuse
// one compiled artifact.
//
// Keys are built from CanonicalCqSignature (moved here from eval/ucq.* — it
// identifies queries up to variable renaming), namespaced by a short route
// prefix ("cq-eval:", "cq-dec:", "cq-cyc:", "ineq:", "rule:") because each
// route caches a different artifact type. Because signatures equate queries
// that differ only in variable ids, cached plans are compiled from the
// CANONICAL form of the query (CanonicalizeCq) so their attribute ids are
// renaming-independent.
//
// Invalidation is per-relation: every entry records, for each stored
// relation its query's body actually reads, the Database::relation_generation
// stamp at compile time. A lookup revalidates those (id, stamp) pairs and
// drops only entries whose dependencies moved — a hot write to one relation
// no longer evicts plans that never touch it. Whole-cache flushes remain
// only for explicit Clear(). Capacity is bounded by a real LRU (see
// set_capacity). The Engine owns one cache per database and threads it to
// the evaluators through their options.
//
// Thread-safety: Lookup/Insert/stats are mutex-guarded (concurrent UCQ
// disjuncts and Datalog rule firings share the cache). The cached ARTIFACTS
// are not: a cached PhysicalPlan carries executor-written actual_rows, so a
// given entry must not be executed by two threads at once. Within one
// engine call that cannot happen (UCQ disjuncts are signature-deduplicated;
// the Datalog engine clones rule plans per variant); across calls the
// engine is sequential.
#ifndef PARAQUERY_PLAN_PLAN_CACHE_H_
#define PARAQUERY_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "plan/plan.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Canonical text of a CQ with variables renamed to first-occurrence
/// indexes: two queries map to the same string iff they are syntactically
/// identical up to variable naming. Used to deduplicate UCQ disjuncts, as
/// the plan-cache key, and by EXPLAIN's plan rendering. (Moved from
/// eval/ucq.hpp when the cache made it a cross-evaluator concern.)
std::string CanonicalCqSignature(const ConjunctiveQuery& cq);

/// A query rewritten onto canonical variable ids (first occurrence over
/// head, then body, then comparisons — the CanonicalCqSignature traversal),
/// plus that signature. Plans compiled from `query` carry attribute ids
/// that any renaming-equivalent original can reuse; `query.vars` keeps the
/// original's variable names for rendering. Answer relations are unchanged
/// by canonicalization (head terms keep their positions and constants).
struct CanonicalCq {
  std::string signature;
  ConjunctiveQuery query;
  /// order[canonical id] = original VarId (the renaming, for callers that
  /// must rename satellite structures — e.g. an IneqFormula — consistently).
  std::vector<VarId> order;
};
CanonicalCq CanonicalizeCq(const ConjunctiveQuery& q);

/// Cumulative cache counters (engine lifetime, not per query).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Whole-cache flushes (explicit Clear() only).
  uint64_t invalidations = 0;
  /// Entries dropped at lookup because a relation they read was mutated
  /// since compilation. Each also counts as a miss.
  uint64_t stale_entries = 0;
  /// Entries dropped by the LRU capacity cap.
  uint64_t evictions = 0;
  size_t entries = 0;

  std::string ToString() const;
};

/// The cache proper: type-erased entries (each key prefix stores exactly one
/// artifact type), each stamped with the per-relation generations of the
/// stored relations its query reads, held in a capacity-bounded LRU.
class PlanCache {
 public:
  /// Default LRU capacity. Entries hold data-sized artifacts (materialized
  /// S_j inputs), so a long-lived engine receiving a stream of distinct
  /// queries must not grow without bound; EngineOptions::plan_cache_capacity
  /// overrides this (0 = unlimited).
  static constexpr size_t kDefaultCapacity = 4096;

  /// Returns the entry for `key`, or nullptr (a counted miss). An entry
  /// whose recorded dependencies are stale against `db` — any relation it
  /// reads was mutated since compilation — is dropped (counted as
  /// stale_entries and a miss). A returned entry becomes most recently used.
  template <typename T>
  std::shared_ptr<T> Lookup(const std::string& key, const Database& db) {
    return std::static_pointer_cast<T>(LookupErased(key, db));
  }

  /// Stores `value` under `key` (replacing any previous entry), recording
  /// the current generation of every stored relation that `reads`'s body
  /// references (unknown relation names — IDB views — carry no stamp; such
  /// entries depend only on the relations that do resolve). Insert does not
  /// change hit/miss counters; it may evict LRU entries over capacity.
  template <typename T>
  void Insert(const std::string& key, const Database& db,
              const ConjunctiveQuery& reads, std::shared_ptr<T> value) {
    InsertErased(key, db, reads, std::move(value));
  }

  /// Credits `n` reuses of a compiled artifact that bypass Lookup — the
  /// Theorem 2 driver compiles one residual plan and re-executes it per
  /// coloring, which is the cache's headline win even on a cold cache.
  void NoteReuse(uint64_t n);

  /// Sets the LRU capacity (0 = unlimited), evicting down if over.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  PlanCacheStats stats() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<void> value;
    /// (relation id, relation_generation at compile time) for every stored
    /// relation the entry's query reads.
    std::vector<std::pair<RelId, uint64_t>> deps;
    std::list<std::string>::iterator lru;
  };

  std::shared_ptr<void> LookupErased(const std::string& key,
                                     const Database& db);
  void InsertErased(const std::string& key, const Database& db,
                    const ConjunctiveQuery& reads, std::shared_ptr<void> value);
  /// Evicts LRU-back entries until size <= capacity. Caller holds mutex_.
  void EvictOverCapacityLocked();

  mutable std::mutex mutex_;
  size_t capacity_ = kDefaultCapacity;
  /// Keys in recency order, most recent first; entries point at their node.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  PlanCacheStats stats_;
};

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_PLAN_CACHE_H_

// Cost-aware lowering from classified queries to physical plans.
//
//   * Acyclic comparison-free CQs lower along a GYO join tree to the exact
//     Yannakakis schedule: upward semijoins, downward semijoins (the full
//     reducer), then the upward join-and-project pass — one Semijoin/HashJoin
//     node per legacy operator call, so PlanStats reproduces the historical
//     AcyclicStats counts.
//   * Cyclic CQs (and any CQ with comparison atoms) lower to a left-deep
//     HashJoin chain in the greedy smallest-relation-first connected order,
//     with comparison atoms applied as Select nodes at the earliest point
//     where all their variables are bound, and a Project+Dedup head.
//   * Datalog rule bodies lower to reusable left-deep plans over slot-bound
//     scans (slot i = body position i) so the semi-naive engine plans each
//     (rule, delta position) variant once and re-executes it every iteration.
#ifndef PARAQUERY_PLAN_PLANNER_H_
#define PARAQUERY_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "plan/plan.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

struct PlannerOptions {
  /// Acyclic plans: include the downward semijoin pass (ablation knob,
  /// mirrors AcyclicOptions::full_reducer).
  bool full_reducer = true;
  /// Cyclic plans: apply the greedy atom ordering. Off = join in the query's
  /// textual atom order (the seed-order baseline bench_planner measures).
  bool reorder = true;
  /// Place a Materialize boundary over eligible Select/Project/HashJoin
  /// chains so the executor runs them as vectorized columnar stages
  /// (plan/vec_pipeline.hpp). Results are byte-identical either way; off
  /// forces row-at-a-time execution everywhere.
  bool vectorize = true;
  /// Route comparison-free cyclic CQs through a generalized hypertree
  /// decomposition: Yannakakis over the bag tree with a worst-case-optimal
  /// leapfrog multiway join inside each cyclic bag (kMultiwayJoin), child
  /// bag outputs fused into parent intersections (sideways information
  /// passing). Results are byte-identical to the binary chain; off keeps
  /// the historical left-deep HashJoin plans everywhere.
  bool wcoj = true;
};

/// A lowered plan plus everything needed to run it: the slot-bound input
/// relations (the S_j materializations; scans reference them by slot), the
/// head terms for mapping bindings to answers, and the query's variable
/// names for rendering.
struct PhysicalPlan {
  PlanNodePtr root;
  std::vector<NamedRelation> inputs;
  std::vector<Term> head;
  VarTable vars;
  /// Inputs bound to zero-copy views of stored relations (plan-time stat,
  /// merged into PlanStats::shared_atom_storage on execution).
  size_t shared_atom_storage = 0;

  std::string Render() const { return RenderPlan(*root, &vars); }
};

/// Routes to PlanAcyclicCq for acyclic comparison-free queries with a
/// nonempty body, PlanCyclicCq otherwise.
Result<PhysicalPlan> PlanConjunctive(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const PlannerOptions& options = {});

/// Full-evaluation Yannakakis plan (rejects comparisons / cyclic queries).
Result<PhysicalPlan> PlanAcyclicCq(const Database& db,
                                   const ConjunctiveQuery& q,
                                   const PlannerOptions& options = {});

/// Decision plan: the upward semijoin pass only; the root's result is
/// nonempty iff Q(d) is nonempty.
Result<PhysicalPlan> PlanAcyclicDecision(const Database& db,
                                         const ConjunctiveQuery& q,
                                         const PlannerOptions& options = {});

/// Left-deep greedy plan for arbitrary (incl. cyclic) CQs with comparisons.
Result<PhysicalPlan> PlanCyclicCq(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const PlannerOptions& options = {});

/// Counting plan for a CQ with `answer.counting()`. Acyclic comparison-free
/// queries get the counting-Yannakakis schedule: the semijoin reducer passes,
/// then an upward pass where each subtree folds into its parent as per-key
/// multiplicities (Aggregate + SemijoinCount) — the full join output is never
/// materialized, so peak intermediate rows stay bounded by the input and
/// semijoin sizes. Comparison-free cyclic queries run the same counting pass
/// over the hypertree-decomposition bag tree (leapfrog multiway joins inside
/// cyclic bags). Everything else falls back to enumerating the distinct
/// assignments to all body variables through the general planner and
/// aggregating at the root, under the same ResourceLimits.
/// The executed root's columns are the group keys in head order plus the
/// trailing count column; a scalar COUNT(*) emits one row — or none when the
/// query is empty (the eval layer supplies the 0 row).
Result<PhysicalPlan> PlanCountingCq(const Database& db,
                                    const ConjunctiveQuery& q,
                                    const PlannerOptions& options = {});

/// Binds `plan`'s input slots and runs the shared executor. Returns the
/// root's binding relation (attributes = head variables for CQ plans);
/// callers map it through the head with BindingsToAnswers. `runtime` binds
/// the parallel task scheduler (default: sequential execution).
Result<NamedRelation> ExecutePhysicalPlan(PhysicalPlan& plan,
                                          const ResourceLimits& limits,
                                          PlanStats* stats = nullptr,
                                          const RuntimeOptions& runtime = {});

/// The greedy atom order shared by the cyclic planner and the naive
/// backtracking search: repeatedly pick the smallest not-yet-chosen atom
/// among those sharing a bound variable (falling back to the smallest
/// remaining when none connects). `pinned_first` (when >= 0) is forced to
/// the front — the semi-naive delta position. Returns a permutation of
/// [0, attrs.size()).
std::vector<size_t> GreedyAtomOrder(
    const std::vector<const std::vector<AttrId>*>& attrs,
    const std::vector<size_t>& sizes, int num_vars, int pinned_first = -1);

/// Convenience overload over materialized atom relations.
std::vector<size_t> GreedyAtomOrder(const std::vector<NamedRelation>& rels,
                                    int num_vars, int pinned_first = -1);

/// Lowers one Datalog rule body to a reusable left-deep plan over slot-bound
/// scans (slot i = body position i; `attrs[i]`/`sizes[i]` describe the input
/// occupying that slot at build time, `caches[i]` is the shared join-index
/// memo for static EDB atoms or null). The root projects to the rule's
/// distinct head variables. `delta_pos` (or -1) is pinned first in the join
/// order. `distinct` (optional, per slot per column) seeds the cardinality
/// model. The body must be nonempty.
/// With `vectorize` the root becomes a Materialize boundary over the
/// (columnar-tagged) chain when it is vectorizable.
Result<PlanNodePtr> PlanRuleBody(
    const DatalogRule& rule, const std::vector<std::vector<AttrId>>& attrs,
    const std::vector<size_t>& sizes,
    const std::vector<JoinIndexCache*>& caches, int delta_pos,
    const std::vector<std::vector<double>>& distinct = {},
    bool vectorize = true);

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_PLANNER_H_

#include "plan/planner.hpp"

#include <algorithm>
#include <limits>

#include "eval/common.hpp"
#include "hypergraph/hypertree.hpp"
#include "hypergraph/join_tree.hpp"
#include "plan/executor.hpp"
#include "plan/vec_pipeline.hpp"

namespace paraquery {

namespace {

// Tags the left spine under a Materialize boundary (chain stages plus the
// source scan) columnar, for the "[vec]" EXPLAIN rendering. Join build
// sides stay row-represented.
void TagColumnarChain(PlanNode* n) {
  for (PlanNode* p = n;; p = p->children[0].get()) {
    p->repr = PlanRepr::kColumnar;
    if (p->op == PlanOp::kScan) break;
  }
}

std::string TermText(const Term& t, const VarTable& vars) {
  if (t.is_const()) return internal::StrCat(t.value());
  if (t.var() >= 0 && t.var() < vars.size()) return vars.name(t.var());
  return internal::StrCat("$", t.var());
}

std::string AtomText(const Atom& a, const VarTable& vars) {
  std::string out = a.relation + "(";
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermText(a.terms[i], vars);
  }
  return out + ")";
}

// Builds a Constraint for `cmp` against a relation whose columns carry the
// attribute ids `attrs` (every variable of `cmp` must be present).
Result<Constraint> CompareToConstraint(const std::vector<AttrId>& attrs,
                                       const CompareAtom& cmp) {
  auto col_of = [&attrs](const Term& t) -> int {
    if (!t.is_var()) return -1;
    auto it = std::find(attrs.begin(), attrs.end(), t.var());
    return it == attrs.end() ? -1 : static_cast<int>(it - attrs.begin());
  };
  bool lv = cmp.lhs.is_var(), rv = cmp.rhs.is_var();
  if (lv && rv) {
    int a = col_of(cmp.lhs), b = col_of(cmp.rhs);
    if (a < 0 || b < 0) {
      return Status::InvalidArgument("comparison variable is not bound");
    }
    switch (cmp.op) {
      case CompareOp::kNeq:
        return Constraint::NeqCols(a, b);
      case CompareOp::kLt:
        return Constraint::LtCols(a, b);
      case CompareOp::kLe:
        return Constraint::LeCols(a, b);
      case CompareOp::kEq:
        return Constraint::EqCols(a, b);
    }
  }
  // var OP const (normalized; const OP var mirrors the operator).
  Term var = lv ? cmp.lhs : cmp.rhs;
  Value c = lv ? cmp.rhs.value() : cmp.lhs.value();
  int col = col_of(var);
  if (col < 0) {
    return Status::InvalidArgument("comparison variable is not bound");
  }
  if (!lv) {
    if (cmp.op == CompareOp::kLt) return Constraint::GtConst(col, c);
    if (cmp.op == CompareOp::kLe) return Constraint::GeConst(col, c);
  }
  switch (cmp.op) {
    case CompareOp::kNeq:
      return Constraint::NeqConst(col, c);
    case CompareOp::kLt:
      return Constraint::LtConst(col, c);
    case CompareOp::kLe:
      return Constraint::LeConst(col, c);
    case CompareOp::kEq:
      return Constraint::EqConst(col, c);
  }
  return Status::Internal("unknown comparison operator");
}

// True when every variable of `cmp` occurs in `attrs`.
bool CompareBound(const std::vector<AttrId>& attrs, const CompareAtom& cmp) {
  auto ok = [&attrs](const Term& t) {
    return t.is_const() || std::find(attrs.begin(), attrs.end(), t.var()) !=
                               attrs.end();
  };
  return ok(cmp.lhs) && ok(cmp.rhs);
}

// Per-column distinct counts of `rel` (real statistics, computed lazily and
// cached on the shared RowBlock — see Relation::DistinctCount), seeding the
// planner's join selectivities. For zero-copy atom views this hits the
// stored relation's cache across queries; a fresh S_j materialization pays
// one O(rows) pass per column at plan time (estimates feed EXPLAIN and the
// est-vs-actual drift surface — join ORDER still comes from input sizes).
std::vector<double> ScanDistinctCounts(const NamedRelation& rel) {
  std::vector<double> distinct;
  distinct.reserve(rel.arity());
  for (size_t c = 0; c < rel.arity(); ++c) {
    distinct.push_back(static_cast<double>(rel.rel().DistinctCount(c)));
  }
  return distinct;
}

// Builds the slot-bound S_j scan for each body atom. Counts zero-copy views.
Status BuildAtomScans(const Database& db, const ConjunctiveQuery& q,
                      PhysicalPlan* plan, std::vector<PlanNodePtr>* scans) {
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(a.relation));
    PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(db.relation(id), a));
    if (rel.rel().SharesStorageWith(db.relation(id))) {
      ++plan->shared_atom_storage;
    }
    int slot = static_cast<int>(plan->inputs.size());
    scans->push_back(MakeScan(slot, rel.attrs(), AtomText(a, q.vars),
                              static_cast<double>(rel.size()),
                              /*cache=*/nullptr, ScanDistinctCounts(rel)));
    plan->inputs.push_back(std::move(rel));
  }
  return Status::OK();
}

Status CheckAcyclicSupported(const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.HasComparisons()) {
    return Status::InvalidArgument(
        "acyclic plan does not accept comparison atoms (use the inequality "
        "evaluator or the cyclic planner)");
  }
  if (q.body.empty()) {
    return Status::InvalidArgument("query has no relational atoms");
  }
  return Status::OK();
}

// Shared skeleton of the two acyclic entry points: scans, the join tree, and
// the semijoin passes. `cur[j]` ends as node j's reduced relation: upward
// semijoins only for the decision plan, upward + downward (the full reducer)
// for evaluation, or the raw scans when the reducer is ablated away.
Status PrepareAcyclic(const Database& db, const ConjunctiveQuery& q,
                      bool full_reducer, bool decision_only,
                      PhysicalPlan* plan, std::vector<PlanNodePtr>* cur,
                      JoinTree* tree) {
  PQ_RETURN_NOT_OK(CheckAcyclicSupported(q));
  PQ_RETURN_NOT_OK(BuildAtomScans(db, q, plan, cur));
  Hypergraph h = q.BuildHypergraph();
  auto built = BuildJoinTree(h);
  if (!built.ok()) {
    return Status::InvalidArgument(internal::StrCat(
        "query is not acyclic: ", built.status().message()));
  }
  *tree = std::move(built).value();
  if (!decision_only && !full_reducer) return Status::OK();  // ablation E7b
  // Upward semijoin pass (Yannakakis Algorithm 1): after it the root is
  // empty iff the join is empty.
  for (int j : tree->bottom_up) {
    int u = tree->parent[j];
    if (u < 0) continue;
    (*cur)[u] = MakeSemijoin((*cur)[u], (*cur)[j]);
  }
  if (!decision_only) {
    // Downward pass: the relations become globally consistent.
    for (int j : tree->top_down) {
      int u = tree->parent[j];
      if (u < 0) continue;
      (*cur)[j] = MakeSemijoin((*cur)[j], (*cur)[u]);
    }
  }
  return Status::OK();
}

// --- Worst-case-optimal route for comparison-free cyclic CQs -------------
//
// The query hypergraph is covered by a generalized hypertree decomposition
// (hypergraph/hypertree.hpp). Each bag joins its covered atoms — homed atoms
// with all their attributes, others projected to the bag — with a leapfrog
// multiway join when the bag's core is cyclic, a binary chain otherwise.
// Because every atom is homed (unprojected) at exactly one bag, the join of
// the bag relations over the tree equals the query, and the tree has the
// running-intersection property, so the acyclic Yannakakis schedule runs
// unchanged on top: upward reduction (fused into the multiway intersections
// as sideways information passing), the downward semijoin pass, and the
// upward join-and-project pass.

// Sorted-vector intersection of the two bags' attribute sets.
std::vector<AttrId> SharedAttrs(const std::vector<int>& a,
                                const std::vector<int>& b) {
  std::vector<AttrId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Shared prefix of the wcoj tuple and counting routes: the decomposition,
// per-bag join nodes (leapfrog inside cyclic cores), the upward reduction,
// and the optional downward pass. `cur[b]` ends as bag b's reduced relation.
struct BagTreePlan {
  HypertreeDecomposition d;
  std::vector<PlanNodePtr> cur;
};

Result<BagTreePlan> BuildBagTreePlan(const ConjunctiveQuery& q,
                                     const std::vector<PlanNodePtr>& scans,
                                     bool full_reducer) {
  Hypergraph h = q.BuildHypergraph();
  PQ_ASSIGN_OR_RETURN(HypertreeDecomposition d,
                      BuildHypertreeDecomposition(h));
  const size_t nb = d.size();
  std::vector<PlanNodePtr> cur(nb);
  for (int b : d.bottom_up) {
    const HypertreeBag& bag = d.bags[b];
    // One contribution per cover edge: the homed atoms keep every attribute
    // (all inside chi by construction), the rest project down to the bag.
    std::vector<PlanNodePtr> contrib;
    Hypergraph core(q.NumVariables());
    for (int e : bag.cover) {
      PlanNodePtr s = scans[e];
      bool homed = std::find(bag.home_edges.begin(), bag.home_edges.end(),
                             e) != bag.home_edges.end();
      if (!homed) {
        std::vector<AttrId> keep;
        for (AttrId a : s->attrs) {
          if (std::binary_search(bag.vertices.begin(), bag.vertices.end(),
                                 a)) {
            keep.push_back(a);
          }
        }
        if (keep.size() != s->attrs.size()) {
          s = MakeProject(std::move(s), keep, /*dedup=*/true);
        }
      }
      core.AddEdge(std::vector<int>(s->attrs.begin(), s->attrs.end()));
      contrib.push_back(std::move(s));
    }
    // Cost model: the leapfrog kernel wins exactly when the bag's core is
    // genuinely cyclic (>= 3 atoms whose cover hypergraph has no join tree);
    // an acyclic core keeps the cheaper binary chain.
    const bool cyclic_core = contrib.size() >= 3 && !BuildJoinTree(core).ok();
    if (cyclic_core) {
      // SIP: each child bag's reduced output joins the intersection directly
      // (projected to the shared attributes), fusing the upward semijoin of
      // the Yannakakis reduction into the multiway operator.
      for (int c : d.children[b]) {
        std::vector<AttrId> shared =
            SharedAttrs(d.bags[c].vertices, bag.vertices);
        if (shared.empty()) continue;  // the upward join pass still links it
        contrib.push_back(MakeProject(cur[c], std::move(shared),
                                      /*dedup=*/true));
      }
      cur[b] = MakeMultiwayJoin(
          std::move(contrib),
          std::vector<AttrId>(bag.vertices.begin(), bag.vertices.end()));
    } else {
      std::vector<const std::vector<AttrId>*> attr_ptrs;
      std::vector<size_t> sizes;
      attr_ptrs.reserve(contrib.size());
      sizes.reserve(contrib.size());
      for (const PlanNodePtr& cn : contrib) {
        attr_ptrs.push_back(&cn->attrs);
        sizes.push_back(cn->est_rows >= 0
                            ? static_cast<size_t>(cn->est_rows)
                            : std::numeric_limits<size_t>::max());
      }
      std::vector<size_t> order =
          GreedyAtomOrder(attr_ptrs, sizes, q.NumVariables());
      PlanNodePtr node = contrib[order[0]];
      for (size_t k = 1; k < order.size(); ++k) {
        node = MakeHashJoin(std::move(node), contrib[order[k]]);
      }
      // Upward Yannakakis reduction by the already-reduced children.
      for (int c : d.children[b]) {
        node = MakeSemijoin(std::move(node), cur[c]);
      }
      cur[b] = std::move(node);
    }
  }
  if (full_reducer) {
    // Downward pass: bag relations become globally consistent.
    for (int b : d.top_down) {
      int u = d.parent[b];
      if (u < 0) continue;
      cur[b] = MakeSemijoin(cur[b], cur[u]);
    }
  }
  return BagTreePlan{std::move(d), std::move(cur)};
}

Result<PlanNodePtr> PlanWcojRoot(const ConjunctiveQuery& q,
                                 const std::vector<PlanNodePtr>& scans,
                                 const std::vector<AttrId>& head_vars,
                                 bool full_reducer) {
  PQ_ASSIGN_OR_RETURN(BagTreePlan bags,
                      BuildBagTreePlan(q, scans, full_reducer));
  HypertreeDecomposition& d = bags.d;
  std::vector<PlanNodePtr>& cur = bags.cur;
  const size_t nb = d.size();
  // Upward join-and-project pass over the bag tree (the PlanAcyclicCq
  // schedule verbatim, with bags in place of atoms).
  auto is_head = [&head_vars](AttrId a) {
    return std::find(head_vars.begin(), head_vars.end(), a) !=
           head_vars.end();
  };
  std::vector<std::vector<AttrId>> subtree_head(nb);
  for (int b : d.bottom_up) {
    std::vector<AttrId> acc;
    for (AttrId a : cur[b]->attrs) {
      if (is_head(a)) acc.push_back(a);
    }
    for (int c : d.children[b]) {
      for (AttrId a : subtree_head[c]) acc.push_back(a);
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[b] = std::move(acc);
  }
  for (int b : d.bottom_up) {
    int u = d.parent[b];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : cur[b]->attrs) {
      if (std::find(cur[u]->attrs.begin(), cur[u]->attrs.end(), a) !=
          cur[u]->attrs.end()) {
        zj.push_back(a);
      }
    }
    for (AttrId a : subtree_head[b]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    cur[u] = MakeHashJoin(cur[u], MakeProject(cur[b], zj, /*dedup=*/true));
  }
  return MakeProject(cur[d.root], head_vars, /*dedup=*/true);
}

// Counting-Yannakakis upward pass over a reduced join tree (GYO atom tree or
// hypertree bag tree). Bottom-up, each node j folds into its parent u as
// per-key multiplicities: j is aggregated to the attributes it shares with u
// plus any group variables it carries (by induction, a node's attribute set
// already contains every group variable of its subtree — SemijoinCount
// unions the right side's extra regular attributes in), and the parent picks
// the counts up with a multiplicity-weighted semijoin. The invariant is that
// after its children are folded in, node j's multiplicity column counts the
// distinct assignments to its subtree's remaining (projected-away)
// variables; running intersection makes the per-child counts independent, so
// the products are exact. The root aggregates to the group keys in head
// order. The full join is never materialized: every intermediate is bounded
// by an input/semijoin size plus the group-key fan-out.
PlanNodePtr CountingUpwardPass(std::vector<PlanNodePtr> cur,
                               const std::vector<int>& bottom_up,
                               const std::vector<int>& parent, int root,
                               const std::vector<AttrId>& group_vars) {
  auto in_group = [&group_vars](AttrId a) {
    return std::find(group_vars.begin(), group_vars.end(), a) !=
           group_vars.end();
  };
  for (int j : bottom_up) {
    int u = parent[j];
    if (u < 0) continue;
    std::vector<AttrId> keys;
    for (AttrId a : cur[j]->attrs) {
      if (a == kCountAttr) continue;
      bool shared = std::find(cur[u]->attrs.begin(), cur[u]->attrs.end(),
                              a) != cur[u]->attrs.end();
      if (shared || in_group(a)) keys.push_back(a);
    }
    cur[u] = MakeSemijoinCount(cur[u], MakeAggregate(cur[j], std::move(keys)));
  }
  return MakeAggregate(cur[root], group_vars);
}

}  // namespace

std::vector<size_t> GreedyAtomOrder(
    const std::vector<const std::vector<AttrId>*>& attrs,
    const std::vector<size_t>& sizes, int num_vars, int pinned_first) {
  size_t n = attrs.size();
  std::vector<bool> used(n, false);
  std::vector<bool> bound(std::max(1, num_vars), false);
  std::vector<size_t> order;
  order.reserve(n);
  if (pinned_first >= 0 && static_cast<size_t>(pinned_first) < n) {
    used[pinned_first] = true;
    for (AttrId a : *attrs[pinned_first]) bound[a] = true;
    order.push_back(static_cast<size_t>(pinned_first));
  }
  while (order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (AttrId a : *attrs[i]) {
        if (bound[a]) {
          connected = true;
          break;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && sizes[i] < sizes[best])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[best] = true;
    for (AttrId a : *attrs[best]) bound[a] = true;
    order.push_back(static_cast<size_t>(best));
  }
  return order;
}

std::vector<size_t> GreedyAtomOrder(const std::vector<NamedRelation>& rels,
                                    int num_vars, int pinned_first) {
  std::vector<const std::vector<AttrId>*> attrs;
  std::vector<size_t> sizes;
  attrs.reserve(rels.size());
  sizes.reserve(rels.size());
  int max_var = num_vars;
  for (const NamedRelation& r : rels) {
    attrs.push_back(&r.attrs());
    sizes.push_back(r.size());
    for (AttrId a : r.attrs()) max_var = std::max(max_var, a + 1);
  }
  return GreedyAtomOrder(attrs, sizes, max_var, pinned_first);
}

Result<PhysicalPlan> PlanAcyclicCq(const Database& db,
                                   const ConjunctiveQuery& q,
                                   const PlannerOptions& options) {
  PhysicalPlan plan;
  plan.head = q.head;
  plan.vars = q.vars;
  std::vector<PlanNodePtr> cur;
  JoinTree tree;
  PQ_RETURN_NOT_OK(PrepareAcyclic(db, q, options.full_reducer,
                                  /*decision_only=*/false, &plan, &cur,
                                  &tree));

  // Head variables contributed by each subtree (the projection sets Z_j).
  std::vector<VarId> head_vars = q.HeadVariables();
  auto is_head = [&head_vars](AttrId a) {
    return std::find(head_vars.begin(), head_vars.end(), a) !=
           head_vars.end();
  };
  size_t m = tree.size();
  std::vector<std::vector<AttrId>> subtree_head(m);
  for (int j : tree.bottom_up) {
    std::vector<AttrId> acc;
    for (AttrId a : cur[j]->attrs) {
      if (is_head(a)) acc.push_back(a);
    }
    for (int c : tree.children[j]) {
      for (AttrId a : subtree_head[c]) acc.push_back(a);
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }

  // Upward join-and-project pass: P_u := P_u ⋈ π_{Z_j}(P_j) with
  // Z_j = (U_j ∩ U_u) ∪ (Z ∩ at(T[j])).
  for (int j : tree.bottom_up) {
    int u = tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : cur[j]->attrs) {
      if (std::find(cur[u]->attrs.begin(), cur[u]->attrs.end(), a) !=
          cur[u]->attrs.end()) {
        zj.push_back(a);
      }
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    cur[u] = MakeHashJoin(cur[u], MakeProject(cur[j], zj, /*dedup=*/true));
  }
  plan.root = MakeProject(cur[tree.root], head_vars, /*dedup=*/true);
  return plan;
}

Result<PhysicalPlan> PlanAcyclicDecision(const Database& db,
                                         const ConjunctiveQuery& q,
                                         const PlannerOptions& options) {
  PhysicalPlan plan;
  plan.head = q.head;
  plan.vars = q.vars;
  std::vector<PlanNodePtr> cur;
  JoinTree tree;
  PQ_RETURN_NOT_OK(PrepareAcyclic(db, q, options.full_reducer,
                                  /*decision_only=*/true, &plan, &cur,
                                  &tree));
  plan.root = cur[tree.root];
  return plan;
}

Result<PhysicalPlan> PlanCyclicCq(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const PlannerOptions& options) {
  PQ_RETURN_NOT_OK(q.Validate());
  PhysicalPlan plan;
  plan.head = q.head;
  plan.vars = q.vars;
  std::vector<VarId> head_vars = q.HeadVariables();

  // Constant/constant comparisons are decided now; one false comparison
  // refutes the query on every database.
  std::vector<const CompareAtom*> pending;
  for (const CompareAtom& c : q.comparisons) {
    if (c.lhs.is_const() && c.rhs.is_const()) {
      if (!CompareAtom::Apply(c.op, c.lhs.value(), c.rhs.value())) {
        plan.inputs.emplace_back(head_vars);
        plan.root = MakeScan(0, head_vars, "inconsistent comparison", 0.0);
        return plan;
      }
      continue;  // tautology
    }
    pending.push_back(&c);
  }

  if (q.body.empty()) {
    // Constant-only head (safety): one empty binding row.
    plan.inputs.push_back(BooleanTrue());
    plan.root = MakeScan(0, {}, "true", 1.0);
    return plan;
  }

  std::vector<PlanNodePtr> scans;
  PQ_RETURN_NOT_OK(BuildAtomScans(db, q, &plan, &scans));

  // Worst-case-optimal route: comparison-free, genuinely cyclic, >= 3 atoms,
  // every atom with at least one variable (constant-only atoms keep the
  // binary chain's boolean-gate treatment). Queries with comparisons stay on
  // the binary chain so pushed Select placement is unchanged.
  if (options.wcoj && pending.empty() && q.body.size() >= 3 &&
      !q.IsAcyclic()) {
    bool all_have_vars = true;
    for (const NamedRelation& r : plan.inputs) {
      if (r.attrs().empty()) all_have_vars = false;
    }
    if (all_have_vars) {
      PQ_ASSIGN_OR_RETURN(
          plan.root,
          PlanWcojRoot(q, scans, head_vars, options.full_reducer));
      return plan;
    }
  }

  std::vector<size_t> order;
  if (options.reorder) {
    order = GreedyAtomOrder(plan.inputs, q.NumVariables());
  } else {
    for (size_t i = 0; i < scans.size(); ++i) order.push_back(i);
  }

  // Left-deep chain; each comparison becomes a Select at the first point
  // where all of its variables are bound.
  std::vector<bool> applied(pending.size(), false);
  PlanNodePtr node;
  auto apply_selects = [&]() -> Status {
    Predicate pred;
    for (size_t c = 0; c < pending.size(); ++c) {
      if (applied[c] || !CompareBound(node->attrs, *pending[c])) continue;
      PQ_ASSIGN_OR_RETURN(Constraint cons,
                          CompareToConstraint(node->attrs, *pending[c]));
      pred.Add(cons);
      applied[c] = true;
    }
    if (!pred.empty()) node = MakeSelect(std::move(node), std::move(pred));
    return Status::OK();
  };
  for (size_t k = 0; k < order.size(); ++k) {
    node = (k == 0) ? scans[order[0]]
                    : MakeHashJoin(std::move(node), scans[order[k]]);
    PQ_RETURN_NOT_OK(apply_selects());
  }
  // Head projection + dedup. When vectorizable, the Select/Project/HashJoin
  // chain runs as columnar stages under a Materialize boundary; the Dedup
  // stays a row operator above it (it reuses the parallel HashDedup).
  PlanNodePtr proj = MakeProject(std::move(node), head_vars, /*dedup=*/false);
  if (options.vectorize && VecPipelineEligible(*proj)) {
    TagColumnarChain(proj.get());
    plan.root = MakeDedup(MakeMaterialize(std::move(proj)));
  } else {
    plan.root = MakeDedup(std::move(proj));
  }
  return plan;
}

Result<PhysicalPlan> PlanCountingCq(const Database& db,
                                    const ConjunctiveQuery& q,
                                    const PlannerOptions& options) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (!q.answer.counting()) {
    return Status::InvalidArgument("PlanCountingCq: query is not a counting "
                                   "query");
  }
  if (q.body.empty()) {
    return Status::InvalidArgument(
        "PlanCountingCq: empty body (the caller answers it directly)");
  }
  std::vector<AttrId> group_vars = q.HeadVariables();

  if (!q.HasComparisons() && q.IsAcyclic()) {
    // Counting Yannakakis over the GYO join tree.
    PhysicalPlan plan;
    plan.head = q.head;
    plan.vars = q.vars;
    std::vector<PlanNodePtr> cur;
    JoinTree tree;
    PQ_RETURN_NOT_OK(PrepareAcyclic(db, q, options.full_reducer,
                                    /*decision_only=*/false, &plan, &cur,
                                    &tree));
    plan.root = CountingUpwardPass(std::move(cur), tree.bottom_up,
                                   tree.parent, tree.root, group_vars);
    return plan;
  }

  // Comparison-free cyclic core: the same counting pass over the hypertree
  // bag tree, with leapfrog multiway joins inside cyclic bags. Eligibility
  // mirrors the tuple route's wcoj gate.
  if (!q.HasComparisons() && options.wcoj && q.body.size() >= 3) {
    PhysicalPlan plan;
    plan.head = q.head;
    plan.vars = q.vars;
    std::vector<PlanNodePtr> scans;
    PQ_RETURN_NOT_OK(BuildAtomScans(db, q, &plan, &scans));
    bool all_have_vars = true;
    for (const NamedRelation& r : plan.inputs) {
      if (r.attrs().empty()) all_have_vars = false;
    }
    if (all_have_vars) {
      PQ_ASSIGN_OR_RETURN(BagTreePlan bags,
                          BuildBagTreePlan(q, scans, options.full_reducer));
      plan.root =
          CountingUpwardPass(std::move(bags.cur), bags.d.bottom_up,
                             bags.d.parent, bags.d.root, group_vars);
      return plan;
    }
  }

  // Fallback: enumerate the distinct assignments to all body variables
  // through the general planner (comparisons become Selects there), then
  // aggregate at the root. Runs under the same ResourceLimits as any plan.
  ConjunctiveQuery enum_q = q;
  enum_q.answer = AnswerSpec::Tuples();
  enum_q.head.clear();
  for (VarId v : q.BodyVariables()) enum_q.head.push_back(Term::Var(v));
  PQ_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanCyclicCq(db, enum_q, options));
  plan.head = q.head;
  plan.vars = q.vars;
  plan.root = MakeAggregate(std::move(plan.root), std::move(group_vars));
  return plan;
}

Result<PhysicalPlan> PlanConjunctive(const Database& db,
                                     const ConjunctiveQuery& q,
                                     const PlannerOptions& options) {
  if (q.answer.counting() && !q.body.empty()) {
    return PlanCountingCq(db, q, options);
  }
  if (!q.HasComparisons() && !q.body.empty() && q.IsAcyclic()) {
    return PlanAcyclicCq(db, q, options);
  }
  return PlanCyclicCq(db, q, options);
}

Result<NamedRelation> ExecutePhysicalPlan(PhysicalPlan& plan,
                                          const ResourceLimits& limits,
                                          PlanStats* stats,
                                          const RuntimeOptions& runtime) {
  if (stats != nullptr) stats->shared_atom_storage += plan.shared_atom_storage;
  std::vector<const NamedRelation*> ptrs;
  ptrs.reserve(plan.inputs.size());
  for (const NamedRelation& r : plan.inputs) ptrs.push_back(&r);
  ExecContext ctx{ptrs, limits, stats, runtime, &plan.vars};
  return ExecutePlan(*plan.root, ctx);
}

Result<PlanNodePtr> PlanRuleBody(
    const DatalogRule& rule, const std::vector<std::vector<AttrId>>& attrs,
    const std::vector<size_t>& sizes,
    const std::vector<JoinIndexCache*>& caches, int delta_pos,
    const std::vector<std::vector<double>>& distinct, bool vectorize) {
  if (rule.body.empty()) {
    return Status::InvalidArgument("cannot plan an empty rule body");
  }
  std::vector<PlanNodePtr> scans;
  int num_vars = rule.vars.size();
  std::vector<const std::vector<AttrId>*> attr_ptrs;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    std::string label = AtomText(rule.body[i], rule.vars);
    if (static_cast<int>(i) == delta_pos) label += " [delta]";
    scans.push_back(MakeScan(
        static_cast<int>(i), attrs[i], std::move(label),
        static_cast<double>(sizes[i]), caches[i],
        i < distinct.size() ? distinct[i] : std::vector<double>{}));
    attr_ptrs.push_back(&attrs[i]);
  }
  std::vector<size_t> order =
      GreedyAtomOrder(attr_ptrs, sizes, num_vars, delta_pos);
  PlanNodePtr node = scans[order[0]];
  for (size_t k = 1; k < order.size(); ++k) {
    node = MakeHashJoin(std::move(node), scans[order[k]]);
  }
  std::vector<AttrId> head_vars;
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && std::find(head_vars.begin(), head_vars.end(),
                                t.var()) == head_vars.end()) {
      head_vars.push_back(t.var());
    }
  }
  // The deduplicating head Project is the pipeline's sink stage: dedup runs
  // on the materialized rows at the boundary.
  PlanNodePtr proj = MakeProject(std::move(node), head_vars, /*dedup=*/true);
  if (vectorize && VecPipelineEligible(*proj)) {
    TagColumnarChain(proj.get());
    return MakeMaterialize(std::move(proj));
  }
  return proj;
}

}  // namespace paraquery

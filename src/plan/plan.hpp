// Physical plan IR: the one executable representation every evaluator lowers
// to. A plan is a DAG of PlanNodes (shared subplans are permitted — the
// Yannakakis schedule reuses reduced relations in several places) over the
// operators the paper's algorithms are stated in: Scan (an S_j input slot),
// Select, Project, HashJoin, Semijoin, Union, Dedup, and Fixpoint (a marker
// node whose iteration is driven by the Datalog engine).
//
// The planner (planner.hpp) lowers classified queries to plans; the executor
// (executor.hpp) runs any plan on the RowBlock/RowIndex kernels and fills in
// per-node actual row counts next to the planner's estimates. RenderPlan
// prints the indented tree EXPLAIN shows.
#ifndef PARAQUERY_PLAN_PLAN_H_
#define PARAQUERY_PLAN_PLAN_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "query/term.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

/// Unified resource guard, forwarded from EngineOptions to every evaluator
/// and plan execution. Replaces the historical AcyclicOptions::max_rows /
/// NaiveOptions::max_steps / UcqOptions::naive_max_steps trio (those fields
/// remain as deprecated aliases).
struct ResourceLimits {
  /// Abort (ResourceExhausted) when a single operator's output exceeds this
  /// many rows (0 = off). Scans are inputs and are exempt.
  uint64_t max_rows = 0;
  /// Abort (ResourceExhausted) when the total rows produced by all operators
  /// of one plan execution exceed this (0 = off).
  uint64_t max_steps = 0;
  /// Abort (DeadlineExceeded) when the query has run for this many wall-clock
  /// milliseconds (0 = off). Armed by the Engine into a QueryContext at the
  /// start of each Run; evaluators called directly honor it only when the
  /// caller threads a QueryContext through RuntimeOptions::query_ctx.
  uint64_t max_wall_ms = 0;
  /// Abort (ResourceExhausted) when RowBlock storage allocated during the
  /// query exceeds this many bytes (0 = off). Same arming path as
  /// max_wall_ms.
  uint64_t max_bytes = 0;

  /// `legacy` wins only where this struct has no value (legacy-alias merge).
  ResourceLimits MergedWith(uint64_t legacy_max_rows,
                            uint64_t legacy_max_steps) const {
    ResourceLimits out = *this;
    if (out.max_rows == 0) out.max_rows = legacy_max_rows;
    if (out.max_steps == 0) out.max_steps = legacy_max_steps;
    return out;
  }
};

/// Physical operators.
enum class PlanOp {
  kScan,      // read input slot `input_slot` (an S_j or an IDB/delta view)
  kSelect,    // filter by `predicate` (columns index the child's attrs)
  kProject,   // keep `attrs`, optionally deduplicating
  kHashJoin,  // natural join, right side probed through a RowIndex
  kSemijoin,  // left ⋉ right
  kUnion,     // set union of same-attribute children. The UCQ evaluator
              // currently iterates disjunct plans itself (their head
              // variables are standardized apart), so this op is executable
              // but not yet planner-emitted.
  kDedup,     // explicit set-semantics enforcement
  kFixpoint,  // Datalog marker: children are per-rule body plans; iteration
              // is driven by the semi-naive engine, not the plan executor
  kMaterialize,  // representation boundary: executes its child chain through
                 // the vectorized columnar pipeline (selection vectors over
                 // column stripes) and materializes the result back to rows
                 // for the row-at-a-time consumer above
  kMultiwayJoin,  // worst-case-optimal n-ary join: intersects all children
                  // attribute-by-attribute with leapfrog triejoin over
                  // per-child sorted tries (relational/leapfrog.hpp). attrs
                  // is the global attribute order; every child's attrs must
                  // be a subset of it
  kAggregate,      // group by `attrs` minus the trailing kCountAttr column
                   // and emit per-group counts: sums the child's kCountAttr
                   // multiplicity column when present, else counts rows.
                   // Output rows appear in first-occurrence group order.
  kSemijoinCount,  // multiplicity-weighted semijoin: left rows that match
                   // the right on the shared REGULAR attributes survive,
                   // with multiplicity = left mult x (sum of matching right
                   // mult). The counting-Yannakakis upward step.
};

const char* PlanOpName(PlanOp op);

/// Reserved attribute id of the implicit multiplicity/count column carried
/// by counting plans (kAggregate output, kSemijoinCount output). Negative so
/// it can never collide with a query variable id; renders as "#count".
inline constexpr AttrId kCountAttr = -2;

/// True iff `attrs` ends with the multiplicity column.
inline bool HasCountAttr(const std::vector<AttrId>& attrs) {
  return !attrs.empty() && attrs.back() == kCountAttr;
}

/// Physical representation a node executes in. Planner-assigned: nodes on a
/// chain under a kMaterialize boundary are tagged kColumnar and run as
/// vectorized stages; everything else stays row-at-a-time. The tag is purely
/// physical — a columnar node computes exactly the rows its row twin would.
enum class PlanRepr {
  kRow,
  kColumnar,
};

/// Counters shared by every plan execution. This is the unified home the
/// per-evaluator AcyclicStats/DatalogStats operator counters folded into;
/// evaluator-specific structs keep their non-operator counters (fixpoint
/// iterations, EDB cache hits) and mirror these for backward compatibility.
struct PlanStats {
  size_t scans = 0;
  size_t selects = 0;
  size_t projections = 0;
  size_t semijoins = 0;
  size_t joins = 0;
  size_t unions = 0;
  size_t dedups = 0;
  /// Worst-case-optimal multiway joins executed (leapfrog triejoin).
  size_t multiway_joins = 0;
  /// Counting operators executed (counting-Yannakakis / COUNT plans).
  size_t aggregates = 0;
  size_t semijoin_counts = 0;
  /// Largest operator output (scans excluded) seen during execution.
  size_t peak_intermediate_rows = 0;
  /// Total rows produced by operators (the ResourceLimits::max_steps meter).
  uint64_t rows_produced = 0;
  /// S_j scans bound to zero-copy views over stored relations (plan time).
  size_t shared_atom_storage = 0;
  /// Project calls answered by a storage-sharing view instead of a row copy.
  size_t zero_copy_projections = 0;
  /// JoinIndexCache activity (memoized join indexes over cached scans).
  size_t index_builds = 0;
  size_t index_hits = 0;
  /// Parallel runtime activity (all zero on single-threaded executions):
  /// structural tasks handed to the scheduler (plan subtrees, UCQ
  /// disjuncts, Datalog rule firings), morsels processed by data-parallel
  /// operators, and wall-clock seconds summed over plan executions.
  size_t parallel_tasks = 0;
  size_t morsels = 0;
  double wall_seconds = 0;
  /// Column batches processed by vectorized pipeline stages (0 when every
  /// operator ran row-at-a-time).
  size_t vec_batches = 0;

  void Merge(const PlanStats& o);
  std::string ToString() const;
};

/// Memo of RowIndexes over one materialized relation, keyed by probe-column
/// list. Scan nodes may carry one; HashJoins whose probe side is such a scan
/// reuse the built index across executions (e.g. semi-naive iterations over
/// a static EDB atom). The indexed relation must stay alive and unmodified
/// for the cache's lifetime; any storage-sharing view may probe it.
class JoinIndexCache {
 public:
  /// Thread-safe: concurrent Datalog rule firings share one cache per EDB
  /// materialization. Returned references stay valid (deque storage) for
  /// the cache's lifetime. A bound `pfor` parallelizes a cache-miss build
  /// (the built index is identical either way; see RowIndex).
  const RowIndex& GetOrBuild(const Relation& rel, const std::vector<int>& cols,
                             PlanStats* stats, const ParallelForFn& pfor = {});

 private:
  std::mutex mutex_;
  std::deque<std::pair<std::vector<int>, RowIndex>> indexes_;
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// One physical operator. Nodes may be shared between parents (DAG); the
/// executor evaluates each node at most once per execution.
struct PlanNode {
  static constexpr uint64_t kNotExecuted = ~uint64_t{0};

  PlanOp op = PlanOp::kScan;
  std::vector<PlanNodePtr> children;
  /// Output attributes (query variable ids).
  std::vector<AttrId> attrs;
  /// Human-readable annotation: relation/atom text for Scan, predicate text
  /// for Select, rule text for Fixpoint children, ...
  std::string label;
  /// Planner's cardinality estimate (< 0: unknown, rendered as "?").
  double est_rows = -1.0;
  /// Per-attribute distinct-value estimates parallel to `attrs` (empty =
  /// unknown, entries < 0 = unknown). Scans seed them from
  /// Relation::DistinctCount; Make* constructors propagate them and use
  /// them for System-R style join selectivities.
  std::vector<double> attr_distinct;

  // --- kScan payload ---
  int input_slot = -1;
  JoinIndexCache* index_cache = nullptr;

  // --- kSelect payload (columns index this node's attrs) ---
  // Also carried by kHashJoin as a pushed post-filter: the kernel drops
  // failing rows during the probe (σ_F(L ⋈ R) without materializing the
  // unfiltered join — the paper's Algorithm 1 step).
  Predicate predicate;

  // --- kProject payload ---
  bool dedup = true;

  /// Physical representation (see PlanRepr). Set by the planner; rendered as
  /// a "[vec]" suffix.
  PlanRepr repr = PlanRepr::kRow;

  /// Filled by the executor (rows of the computed result).
  uint64_t actual_rows = kNotExecuted;
  /// Morsels the executor processed for this operator (0 = it ran
  /// sequentially); rendered next to actual_rows for parallel executions.
  uint64_t actual_morsels = 0;
  /// Column batches a kMaterialize boundary pushed through its vectorized
  /// pipeline (0 = not executed vectorized); rendered as "vec=N".
  uint64_t actual_batches = 0;
  /// Cumulative wall nanoseconds spent computing this node, children
  /// included (the compute recursion runs through the children). Filled only
  /// when the executor runs with timing armed (tracing or EXPLAIN ANALYZE);
  /// 0 otherwise. Summed across executions of a reused plan.
  uint64_t actual_ns = 0;

  /// Clears actual_rows/actual_morsels recursively (before re-executing a
  /// cached plan).
  void ResetActuals();
};

PlanNodePtr MakeScan(int slot, std::vector<AttrId> attrs, std::string label,
                     double est_rows, JoinIndexCache* cache = nullptr,
                     std::vector<double> attr_distinct = {});
PlanNodePtr MakeSelect(PlanNodePtr child, Predicate predicate);
PlanNodePtr MakeProject(PlanNodePtr child, std::vector<AttrId> attrs,
                        bool dedup);
/// `post_filter` (columns index the OUTPUT attrs: left then right-only) is
/// applied inside the join kernel; non-empty filters disable the
/// morsel-parallel probe fast path for this node.
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         Predicate post_filter = {});
PlanNodePtr MakeSemijoin(PlanNodePtr left, PlanNodePtr right);
PlanNodePtr MakeUnion(std::vector<PlanNodePtr> children,
                      std::vector<AttrId> attrs);
PlanNodePtr MakeDedup(PlanNodePtr child);
PlanNodePtr MakeFixpoint(std::vector<PlanNodePtr> rule_plans,
                         std::string label);
/// Representation boundary over `child` (same attrs/estimates). The executor
/// runs the chain below it vectorized when eligible (vec_pipeline.hpp) and
/// falls back to executing the child row-at-a-time otherwise.
PlanNodePtr MakeMaterialize(PlanNodePtr child);
/// Worst-case-optimal multiway join of `children` over the global attribute
/// order `attrs` (every child's attrs must be a subset). The cardinality
/// estimate is an AGM-flavored fractional power of the product of the child
/// estimates — (Π|R_i|)^(v/2m) for v attributes over m children — which
/// lands on the worst-case bounds of the standard cores (N^{3/2} for the
/// triangle, N^2 for the 4-clique) instead of the binary chain's N^2 / N^3.
PlanNodePtr MakeMultiwayJoin(std::vector<PlanNodePtr> children,
                             std::vector<AttrId> attrs);
/// Hash aggregation: group `child` by `group_attrs` (each must be a regular
/// attr of the child) and append the kCountAttr count column. When the child
/// itself carries a kCountAttr column its values are summed per group;
/// otherwise each row counts 1. A scalar COUNT(*) is `group_attrs = {}` —
/// note it emits NO row for an empty input (the eval layer supplies the 0).
PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<AttrId> group_attrs);
/// Counting semijoin `left ⋉# right`: output attrs are left's regular attrs,
/// then right's regular attrs absent from left, then kCountAttr. For each
/// left row matching the right on the shared regular attrs, emits one row
/// per matching DISTINCT right row extension with multiplicity
/// left_mult x right_mult; when the right adds no new regular attrs the
/// matches collapse to one output row with the right multiplicities summed.
/// Non-matching left rows are dropped (the semijoin filter).
PlanNodePtr MakeSemijoinCount(PlanNodePtr left, PlanNodePtr right);

/// Deep-copies a plan DAG (shared subplans stay shared within the clone),
/// with actual_rows/actual_morsels reset. When `slot_caches` is non-null,
/// each cloned Scan's index_cache is rebound to (*slot_caches)[input_slot]
/// (nullptr when the slot is out of range) — cross-run reuse of cached rule
/// plans must not keep join-index pointers into a finished run. The source
/// nodes' structure (op, children, attrs, predicate) is read but never
/// written, so cloning may race only with executor writes to actuals, which
/// the clone does not read.
PlanNodePtr ClonePlan(const PlanNode& root,
                      const std::vector<JoinIndexCache*>* slot_caches = nullptr);

/// Renders the plan as an indented tree, one node per line:
///
///   HashJoin(x, y, z) est=40 actual=31
///     Semijoin(x, y) est=50 actual=44 as #1
///       Scan E(x, y) rows=50
///       Scan E(y, z) rows=50
///     Scan E(y, z) rows=50
///
/// Attributes print as variable names when `vars` is given, ids otherwise.
/// Shared subplans are printed once; later references render as "see #k".
std::string RenderPlan(const PlanNode& root, const VarTable* vars = nullptr);

/// EXPLAIN ANALYZE render: RenderPlan plus per-node wall time when the
/// executor ran with timing armed — "time=" is cumulative (children
/// included), "self=" subtracts the children's cumulative time (clamped at
/// 0; a shared subplan's time is subtracted under each parent that names
/// it). A separate function so EXPLAIN golden renders stay byte-stable.
std::string RenderAnalyzedPlan(const PlanNode& root,
                               const VarTable* vars = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_PLAN_PLAN_H_

#include "hypergraph/gyo.hpp"

#include <algorithm>

namespace paraquery {

GyoResult GyoReduce(const Hypergraph& h) {
  size_t m = h.num_edges();
  GyoResult result;
  result.witness.assign(m, -1);
  // Working copies of edge contents (sorted).
  std::vector<std::vector<int>> contents(m);
  std::vector<bool> alive(m, true);
  for (size_t e = 0; e < m; ++e) contents[e] = h.edge(static_cast<int>(e));

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule (a): drop vertices occurring in exactly one alive edge.
    std::vector<int> occ(h.num_vertices(), 0);
    for (size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (int v : contents[e]) ++occ[v];
    }
    for (size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      auto& c = contents[e];
      size_t before = c.size();
      c.erase(std::remove_if(c.begin(), c.end(),
                             [&occ](int v) { return occ[v] == 1; }),
              c.end());
      if (c.size() != before) changed = true;
    }
    // Rule (b): remove edges contained in another alive edge.
    for (size_t e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      for (size_t f = 0; f < m; ++f) {
        if (e == f || !alive[f]) continue;
        // Tie-break equal contents by id so only one of a duplicate pair dies.
        if (contents[e] == contents[f] && e < f) continue;
        if (std::includes(contents[f].begin(), contents[f].end(),
                          contents[e].begin(), contents[e].end())) {
          alive[e] = false;
          result.witness[e] = static_cast<int>(f);
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t e = 0; e < m; ++e) {
    if (alive[e]) result.alive.push_back(static_cast<int>(e));
  }
  result.acyclic = result.alive.size() <= 1;
  return result;
}

bool IsAcyclic(const Hypergraph& h) { return GyoReduce(h).acyclic; }

}  // namespace paraquery

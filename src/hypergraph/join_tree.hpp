// Join trees (join forests linked into a single rooted tree), built from GYO
// containment witnesses. A join tree has the hyperedges as nodes and, for
// every vertex, the nodes containing that vertex form a connected subtree
// (the running-intersection property). This is the structure T that
// Theorem 2's Algorithms 1 and 2 walk bottom-up / top-down.
#ifndef PARAQUERY_HYPERGRAPH_JOIN_TREE_H_
#define PARAQUERY_HYPERGRAPH_JOIN_TREE_H_

#include <vector>

#include "common/status.hpp"
#include "hypergraph/hypergraph.hpp"

namespace paraquery {

/// Rooted join tree over the hyperedges of an acyclic hypergraph.
///
/// Arcs between nodes whose hyperedges share no vertex are permitted (they
/// arise when the hypergraph is disconnected and components are linked into
/// one tree, as the paper allows: "we can add additional edges to form a
/// tree").
struct JoinTree {
  int root = -1;
  /// parent[e] = parent node id, or -1 for the root.
  std::vector<int> parent;
  std::vector<std::vector<int>> children;
  /// All node ids, children strictly before parents (bottom-up order).
  std::vector<int> bottom_up;
  /// All node ids, parents strictly before children (top-down order).
  std::vector<int> top_down;

  size_t size() const { return parent.size(); }
};

/// Builds a join tree for `h`. Fails with InvalidArgument if `h` is cyclic
/// or has no edges.
Result<JoinTree> BuildJoinTree(const Hypergraph& h);

/// Verifies the running-intersection property of `tree` against `h`
/// (for every vertex, nodes containing it induce a connected subtree).
/// Used by tests and debug checks.
bool VerifyJoinTree(const Hypergraph& h, const JoinTree& tree);

}  // namespace paraquery

#endif  // PARAQUERY_HYPERGRAPH_JOIN_TREE_H_

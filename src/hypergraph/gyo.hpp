// GYO (Graham / Yu-Ozsoyoglu) reduction: the classical acyclicity test for
// hypergraphs. Repeatedly (a) delete vertices occurring in exactly one edge
// and (b) delete edges contained in another edge. The hypergraph is acyclic
// iff the fixpoint retains at most one (empty) edge. Containment witnesses
// recorded along the way yield a join forest (join_tree.hpp).
#ifndef PARAQUERY_HYPERGRAPH_GYO_H_
#define PARAQUERY_HYPERGRAPH_GYO_H_

#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace paraquery {

/// Outcome of a GYO reduction run.
struct GyoResult {
  bool acyclic = false;
  /// witness[e] = edge that absorbed e (e's contents were contained in it
  /// at removal time), or -1 for edges never removed by containment.
  std::vector<int> witness;
  /// Ids of edges still alive at the fixpoint (≤1 iff acyclic).
  std::vector<int> alive;
};

/// Runs GYO to fixpoint.
GyoResult GyoReduce(const Hypergraph& h);

/// Convenience: true iff `h` is an acyclic hypergraph.
bool IsAcyclic(const Hypergraph& h);

}  // namespace paraquery

#endif  // PARAQUERY_HYPERGRAPH_GYO_H_

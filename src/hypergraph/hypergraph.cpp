#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <sstream>

#include "common/status.hpp"

namespace paraquery {

int Hypergraph::AddEdge(std::vector<int> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()), vertices.end());
  for (int v : vertices) {
    PQ_CHECK(v >= 0 && v < num_vertices_, "Hypergraph vertex out of range");
  }
  edges_.push_back(std::move(vertices));
  return static_cast<int>(edges_.size()) - 1;
}

std::vector<std::vector<int>> Hypergraph::VertexToEdges() const {
  std::vector<std::vector<int>> incidence(num_vertices_);
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (int v : edges_[e]) incidence[v].push_back(static_cast<int>(e));
  }
  return incidence;
}

bool Hypergraph::EdgesIntersect(int a, int b) const {
  const auto& ea = edges_[a];
  const auto& eb = edges_[b];
  size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i] == eb[j]) return true;
    if (ea[i] < eb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool Hypergraph::CoOccur(int u, int v) const {
  for (const auto& e : edges_) {
    bool has_u = std::binary_search(e.begin(), e.end(), u);
    bool has_v = std::binary_search(e.begin(), e.end(), v);
    if (has_u && has_v) return true;
  }
  return false;
}

std::string Hypergraph::ToString() const {
  std::ostringstream oss;
  oss << "H(V=" << num_vertices_ << "; ";
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (e > 0) oss << ", ";
    oss << "{";
    for (size_t i = 0; i < edges_[e].size(); ++i) {
      if (i > 0) oss << ",";
      oss << edges_[e][i];
    }
    oss << "}";
  }
  oss << ")";
  return oss.str();
}

}  // namespace paraquery

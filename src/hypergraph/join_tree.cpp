#include "hypergraph/join_tree.hpp"

#include <algorithm>

#include "hypergraph/gyo.hpp"

namespace paraquery {

Result<JoinTree> BuildJoinTree(const Hypergraph& h) {
  if (h.num_edges() == 0) {
    return Status::InvalidArgument("BuildJoinTree: hypergraph has no edges");
  }
  GyoResult gyo = GyoReduce(h);
  if (!gyo.acyclic) {
    return Status::InvalidArgument(
        "BuildJoinTree: hypergraph is cyclic (GYO reduction left " +
        internal::StrCat(gyo.alive.size(), " incomparable edges)"));
  }
  JoinTree tree;
  size_t m = h.num_edges();
  tree.parent.assign(m, -1);
  tree.children.assign(m, {});
  tree.root = gyo.alive.empty() ? 0 : gyo.alive[0];
  for (size_t e = 0; e < m; ++e) {
    if (static_cast<int>(e) == tree.root) continue;
    tree.parent[e] = gyo.witness[e];
    PQ_CHECK(tree.parent[e] >= 0, "GYO witness missing for removed edge");
    tree.children[tree.parent[e]].push_back(static_cast<int>(e));
  }
  // Top-down order by BFS from the root; bottom-up is its reverse. GYO
  // witnesses always point to an edge removed later (or the survivor), so the
  // parent structure is a tree rooted at `root`.
  tree.top_down.reserve(m);
  tree.top_down.push_back(tree.root);
  for (size_t i = 0; i < tree.top_down.size(); ++i) {
    for (int c : tree.children[tree.top_down[i]]) tree.top_down.push_back(c);
  }
  PQ_CHECK(tree.top_down.size() == m, "join tree does not span all edges");
  tree.bottom_up.assign(tree.top_down.rbegin(), tree.top_down.rend());
  return tree;
}

bool VerifyJoinTree(const Hypergraph& h, const JoinTree& tree) {
  if (tree.size() != h.num_edges()) return false;
  // Adjacency of the tree.
  std::vector<std::vector<int>> adj(tree.size());
  for (size_t e = 0; e < tree.size(); ++e) {
    if (tree.parent[e] >= 0) {
      adj[e].push_back(tree.parent[e]);
      adj[tree.parent[e]].push_back(static_cast<int>(e));
    }
  }
  for (int v = 0; v < h.num_vertices(); ++v) {
    // Nodes whose hyperedge contains v.
    std::vector<char> in_set(tree.size(), 0);
    int first = -1, count = 0;
    for (size_t e = 0; e < tree.size(); ++e) {
      const auto& edge = h.edge(static_cast<int>(e));
      if (std::binary_search(edge.begin(), edge.end(), v)) {
        in_set[e] = 1;
        if (first < 0) first = static_cast<int>(e);
        ++count;
      }
    }
    if (count <= 1) continue;
    // BFS within the set.
    std::vector<int> queue = {first};
    std::vector<char> seen(tree.size(), 0);
    seen[first] = 1;
    int reached = 1;
    for (size_t i = 0; i < queue.size(); ++i) {
      for (int w : adj[queue[i]]) {
        if (in_set[w] && !seen[w]) {
          seen[w] = 1;
          ++reached;
          queue.push_back(w);
        }
      }
    }
    if (reached != count) return false;
  }
  return true;
}

}  // namespace paraquery

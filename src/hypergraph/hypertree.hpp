// Generalized hypertree decompositions (GHDs) for cyclic queries.
//
// A GHD covers the query hypergraph with a tree of *bags*. Each bag b has a
// vertex set chi(b) and an edge cover lambda(b) with chi(b) contained in the
// union of the covered hyperedges; the bags containing any given vertex form
// a connected subtree (running intersection); and every hyperedge e is
// assigned a *home* bag with e contained in chi(home(e)). The home
// assignment makes the decomposition evaluation-complete: joining, inside
// each bag, the covered relations projected to chi(b) — with homed atoms
// participating with all their attributes — yields bag relations whose join
// over the tree equals the query, so the Yannakakis semijoin program of the
// acyclic case runs unchanged over the bag tree, with a worst-case-optimal
// multiway join inside each cyclic bag. Width max_b |lambda(b)| interpolates
// between acyclicity (width 1, every bag a single atom) and full cyclicity.
//
// Construction is the classic heuristic: a min-fill elimination order on the
// primal graph yields tree-decomposition bags ({v} union its not-yet-
// eliminated neighbors); subsumed bags are absorbed; each bag then greedily
// picks a cover from the hyperedges it intersects. Min-fill is not optimal
// (computing hypertree width is NP-hard) but recovers width 1 on acyclic
// inputs and small covers on the clique/cycle cores the planner cares about.
#ifndef PARAQUERY_HYPERGRAPH_HYPERTREE_H_
#define PARAQUERY_HYPERGRAPH_HYPERTREE_H_

#include <vector>

#include "common/status.hpp"
#include "hypergraph/hypergraph.hpp"

namespace paraquery {

/// One bag of a generalized hypertree decomposition.
struct HypertreeBag {
  /// chi: sorted distinct vertex ids covered by this bag.
  std::vector<int> vertices;
  /// lambda: hyperedge ids whose union covers `vertices`.
  std::vector<int> cover;
  /// Hyperedges homed at this bag (each edge of the hypergraph is homed at
  /// exactly one bag whose chi contains it). Always a subset of `cover`.
  std::vector<int> home_edges;
  /// |lambda| as picked by the greedy cover, BEFORE homed edges were folded
  /// into `cover`. This is the covering set the formal width counts: homed
  /// edges beyond it ride along for evaluation completeness but do not
  /// enlarge the cover needed for chi.
  size_t cover_width = 0;
};

/// Rooted generalized hypertree decomposition.
struct HypertreeDecomposition {
  std::vector<HypertreeBag> bags;
  int root = -1;
  /// parent[b] = parent bag id, or -1 for the root.
  std::vector<int> parent;
  std::vector<std::vector<int>> children;
  /// Bag ids, children strictly before parents (bottom-up order).
  std::vector<int> bottom_up;
  /// Bag ids, parents strictly before children (top-down order).
  std::vector<int> top_down;

  size_t size() const { return bags.size(); }
  /// Generalized hypertree width realized by this decomposition:
  /// max over bags of the greedy cover size (HypertreeBag::cover_width).
  /// Acyclic inputs realize 1; a triangle or clique of binary atoms, 2.
  size_t width() const;
};

/// Builds a GHD for `h` (min-fill elimination + greedy covers). Fails with
/// InvalidArgument when `h` has no edges. Acyclic inputs yield width 1.
Result<HypertreeDecomposition> BuildHypertreeDecomposition(
    const Hypergraph& h);

/// Verifies all GHD invariants of `d` against `h`: tree shape, running
/// intersection on chi, chi covered by lambda's union, every hyperedge homed
/// at exactly one bag with its vertices inside that bag's chi, and
/// home_edges subset-of cover. Used by tests and debug checks.
bool VerifyHypertreeDecomposition(const Hypergraph& h,
                                  const HypertreeDecomposition& d);

}  // namespace paraquery

#endif  // PARAQUERY_HYPERGRAPH_HYPERTREE_H_

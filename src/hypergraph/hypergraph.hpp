// Hypergraphs over integer vertices (query variables). The query hypergraph —
// one hyperedge per relational atom — drives the acyclicity machinery of
// Sections 4-5: GYO reduction, join trees, and the Y_j attribute sets of
// Theorem 2.
#ifndef PARAQUERY_HYPERGRAPH_HYPERGRAPH_H_
#define PARAQUERY_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

namespace paraquery {

/// Hypergraph on vertices 0..n-1 with ordered edge ids.
class Hypergraph {
 public:
  explicit Hypergraph(int num_vertices) : num_vertices_(num_vertices) {}

  int num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds a hyperedge (vertices are sorted and deduplicated); returns its id.
  /// Empty hyperedges are allowed (they model 0-ary / constant-only atoms).
  int AddEdge(std::vector<int> vertices);

  /// Sorted distinct vertex list of edge `e`.
  const std::vector<int>& edge(int e) const { return edges_[e]; }

  /// For each vertex, the ids of edges containing it.
  std::vector<std::vector<int>> VertexToEdges() const;

  /// True if edges `a` and `b` share at least one vertex.
  bool EdgesIntersect(int a, int b) const;

  /// True if vertices u and v occur together in some edge. O(edges).
  bool CoOccur(int u, int v) const;

  std::string ToString() const;

 private:
  int num_vertices_;
  std::vector<std::vector<int>> edges_;
};

}  // namespace paraquery

#endif  // PARAQUERY_HYPERGRAPH_HYPERGRAPH_H_

#include "hypergraph/hypertree.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace paraquery {

size_t HypertreeDecomposition::width() const {
  size_t w = 0;
  for (const HypertreeBag& b : bags) w = std::max(w, b.cover_width);
  return w;
}

namespace {

bool SortedContains(const std::vector<int>& haystack, int needle) {
  return std::binary_search(haystack.begin(), haystack.end(), needle);
}

bool SortedSubset(const std::vector<int>& sub, const std::vector<int>& sup) {
  return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Mutable bag during construction (before compaction).
struct RawBag {
  std::vector<int> chi;  // sorted
  int parent = -1;
  bool dead = false;
};

}  // namespace

Result<HypertreeDecomposition> BuildHypertreeDecomposition(
    const Hypergraph& h) {
  if (h.num_edges() == 0) {
    return Status::InvalidArgument(
        "hypertree decomposition requires at least one hyperedge");
  }
  const int n = h.num_vertices();

  // Primal graph: u ~ v iff they co-occur in some hyperedge. Dense adjacency
  // matrix — n is the number of query variables, which is small.
  std::vector<uint8_t> adj(static_cast<size_t>(n) * n, 0);
  std::vector<uint8_t> present(n, 0);
  for (size_t e = 0; e < h.num_edges(); ++e) {
    const std::vector<int>& vs = h.edge(static_cast<int>(e));
    for (int u : vs) present[u] = 1;
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        adj[static_cast<size_t>(vs[i]) * n + vs[j]] = 1;
        adj[static_cast<size_t>(vs[j]) * n + vs[i]] = 1;
      }
    }
  }

  // Min-fill elimination: repeatedly eliminate the vertex whose neighborhood
  // needs the fewest fill edges to become a clique (ties to the smallest
  // vertex id, for determinism), recording {v} + neighbors as a bag.
  std::vector<uint8_t> eliminated(n, 0);
  std::vector<int> elim_step(n, -1);   // vertex -> elimination step
  std::vector<RawBag> raw;
  std::vector<int> bag_of_step;        // elimination step -> raw bag id
  int remaining = 0;
  for (int v = 0; v < n; ++v) {
    if (present[v]) ++remaining;
  }
  while (remaining > 0) {
    int best = -1;
    long best_fill = -1;
    for (int v = 0; v < n; ++v) {
      if (!present[v] || eliminated[v]) continue;
      std::vector<int> nbrs;
      for (int u = 0; u < n; ++u) {
        if (!eliminated[u] && adj[static_cast<size_t>(v) * n + u]) {
          nbrs.push_back(u);
        }
      }
      long fill = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[static_cast<size_t>(nbrs[i]) * n + nbrs[j]]) ++fill;
        }
      }
      if (best == -1 || fill < best_fill) {
        best = v;
        best_fill = fill;
      }
    }
    std::vector<int> chi;
    chi.push_back(best);
    for (int u = 0; u < n; ++u) {
      if (u != best && !eliminated[u] &&
          adj[static_cast<size_t>(best) * n + u]) {
        chi.push_back(u);
      }
    }
    std::sort(chi.begin(), chi.end());
    // Connect the neighborhood into a clique (the fill edges).
    for (size_t i = 0; i < chi.size(); ++i) {
      for (size_t j = i + 1; j < chi.size(); ++j) {
        adj[static_cast<size_t>(chi[i]) * n + chi[j]] = 1;
        adj[static_cast<size_t>(chi[j]) * n + chi[i]] = 1;
      }
    }
    eliminated[best] = 1;
    elim_step[best] = static_cast<int>(raw.size());
    bag_of_step.push_back(static_cast<int>(raw.size()));
    raw.push_back(RawBag{std::move(chi), -1, false});
    --remaining;
  }
  if (raw.empty()) {
    // Only empty hyperedges (constant-only atoms): a single empty bag homes
    // them all.
    raw.push_back(RawBag{{}, -1, false});
  }

  // Tree shape: bag k's parent is the bag of its first-eliminated vertex
  // other than v_k (all of them are eliminated after step k). Bags with no
  // later vertices are component roots; extra roots attach to the first so
  // the result is one tree (as the join-tree builder does for forests).
  int first_root = -1;
  for (size_t k = 0; k < raw.size(); ++k) {
    int parent_step = -1;
    for (int u : raw[k].chi) {
      if (elim_step[u] == static_cast<int>(k)) continue;
      if (parent_step == -1 || elim_step[u] < parent_step) {
        parent_step = elim_step[u];
      }
    }
    if (parent_step != -1) {
      raw[k].parent = bag_of_step[parent_step];
    } else if (first_root == -1) {
      first_root = static_cast<int>(k);
    } else {
      raw[k].parent = first_root;
    }
  }

  // Absorb subsumed bags: merge a bag into its parent whenever one chi
  // contains the other. Keeps acyclic inputs at width 1 (their elimination
  // bags are cliques of a chordal primal graph, nested along the tree).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t k = 0; k < raw.size(); ++k) {
      if (raw[k].dead || raw[k].parent == -1) continue;
      int p = raw[k].parent;
      if (SortedSubset(raw[k].chi, raw[p].chi) ||
          SortedSubset(raw[p].chi, raw[k].chi)) {
        raw[p].chi = SortedUnion(raw[p].chi, raw[k].chi);
        for (RawBag& other : raw) {
          if (!other.dead && other.parent == static_cast<int>(k)) {
            other.parent = p;
          }
        }
        raw[k].dead = true;
        changed = true;
      }
    }
  }

  // Compact surviving bags into the final decomposition.
  HypertreeDecomposition d;
  std::vector<int> new_id(raw.size(), -1);
  for (size_t k = 0; k < raw.size(); ++k) {
    if (raw[k].dead) continue;
    new_id[k] = static_cast<int>(d.bags.size());
    d.bags.push_back(HypertreeBag{raw[k].chi, {}, {}});
  }
  d.parent.assign(d.bags.size(), -1);
  d.children.assign(d.bags.size(), {});
  for (size_t k = 0; k < raw.size(); ++k) {
    if (raw[k].dead) continue;
    int b = new_id[k];
    if (raw[k].parent != -1) {
      int p = new_id[raw[k].parent];
      d.parent[b] = p;
      d.children[p].push_back(b);
    } else {
      d.root = b;
    }
  }

  // Greedy edge cover per bag: repeatedly take the hyperedge covering the
  // most still-uncovered chi vertices (ties to the smallest edge id).
  for (HypertreeBag& bag : d.bags) {
    std::vector<int> uncovered = bag.vertices;
    while (!uncovered.empty()) {
      int best_e = -1;
      size_t best_hits = 0;
      for (size_t e = 0; e < h.num_edges(); ++e) {
        if (std::find(bag.cover.begin(), bag.cover.end(),
                      static_cast<int>(e)) != bag.cover.end()) {
          continue;
        }
        size_t hits = 0;
        for (int u : h.edge(static_cast<int>(e))) {
          if (SortedContains(uncovered, u)) ++hits;
        }
        if (hits > best_hits) {
          best_e = static_cast<int>(e);
          best_hits = hits;
        }
      }
      PQ_CHECK(best_e != -1, "hypertree bag vertex covered by no hyperedge");
      bag.cover.push_back(best_e);
      std::vector<int> rest;
      for (int u : uncovered) {
        if (!SortedContains(h.edge(best_e), u)) rest.push_back(u);
      }
      uncovered = std::move(rest);
    }
    bag.cover_width = bag.cover.size();  // homed edges added below don't count
  }

  // Home every hyperedge at the first bag whose chi contains it. One exists:
  // a hyperedge is a clique of the primal graph, and the elimination bag of
  // its first-eliminated vertex contains the whole clique (absorption only
  // grows chi sets). Homed edges join the bag's cover so the bag relation
  // keeps all their attributes.
  for (size_t e = 0; e < h.num_edges(); ++e) {
    int home = -1;
    for (size_t b = 0; b < d.bags.size(); ++b) {
      if (SortedSubset(h.edge(static_cast<int>(e)), d.bags[b].vertices)) {
        home = static_cast<int>(b);
        break;
      }
    }
    PQ_CHECK(home != -1, "hyperedge contained in no hypertree bag");
    d.bags[home].home_edges.push_back(static_cast<int>(e));
    if (std::find(d.bags[home].cover.begin(), d.bags[home].cover.end(),
                  static_cast<int>(e)) == d.bags[home].cover.end()) {
      d.bags[home].cover.push_back(static_cast<int>(e));
    }
  }

  // Bottom-up / top-down traversal orders.
  d.top_down.reserve(d.bags.size());
  d.top_down.push_back(d.root);
  for (size_t i = 0; i < d.top_down.size(); ++i) {
    for (int c : d.children[d.top_down[i]]) d.top_down.push_back(c);
  }
  d.bottom_up.assign(d.top_down.rbegin(), d.top_down.rend());
  PQ_CHECK(d.top_down.size() == d.bags.size(),
           "hypertree decomposition is not a single tree");
  return d;
}

bool VerifyHypertreeDecomposition(const Hypergraph& h,
                                  const HypertreeDecomposition& d) {
  const size_t nb = d.bags.size();
  if (nb == 0 || d.root < 0 || static_cast<size_t>(d.root) >= nb) return false;
  if (d.parent.size() != nb || d.children.size() != nb) return false;
  if (d.bottom_up.size() != nb || d.top_down.size() != nb) return false;
  // Tree shape and traversal orders.
  std::vector<int> depth(nb, -1);
  if (d.parent[d.root] != -1) return false;
  std::vector<size_t> pos(nb, 0);
  for (size_t i = 0; i < nb; ++i) {
    int b = d.top_down[i];
    if (b < 0 || static_cast<size_t>(b) >= nb) return false;
    pos[b] = i;
    if (b == d.root) {
      if (i != 0) return false;
      depth[b] = 0;
    } else {
      int p = d.parent[b];
      if (p < 0 || depth[p] < 0) return false;  // parent must come first
      depth[b] = depth[p] + 1;
    }
  }
  for (size_t i = 0; i < nb; ++i) {
    if (d.bottom_up[i] != d.top_down[nb - 1 - i]) return false;
  }
  for (size_t b = 0; b < nb; ++b) {
    for (int c : d.children[b]) {
      if (c < 0 || static_cast<size_t>(c) >= nb) return false;
      if (d.parent[c] != static_cast<int>(b)) return false;
    }
  }
  // Running intersection: for every vertex, exactly one "topmost" bag among
  // those containing it (every other such bag's parent contains it too).
  for (int v = 0; v < h.num_vertices(); ++v) {
    int topmost = 0;
    bool seen = false;
    for (size_t b = 0; b < nb; ++b) {
      if (!SortedContains(d.bags[b].vertices, v)) continue;
      seen = true;
      int p = d.parent[b];
      if (p == -1 || !SortedContains(d.bags[p].vertices, v)) ++topmost;
    }
    if (seen && topmost != 1) return false;
  }
  // Covers and homes.
  std::vector<int> homed(h.num_edges(), 0);
  for (size_t b = 0; b < nb; ++b) {
    const HypertreeBag& bag = d.bags[b];
    if (!std::is_sorted(bag.vertices.begin(), bag.vertices.end())) {
      return false;
    }
    for (int e : bag.cover) {
      if (e < 0 || static_cast<size_t>(e) >= h.num_edges()) return false;
    }
    // The greedy cover is the prefix of `cover` before homed edges were
    // appended; the prefix alone must already cover chi.
    if (bag.cover_width > bag.cover.size()) return false;
    for (int v : bag.vertices) {
      bool covered = false;
      for (size_t i = 0; i < bag.cover_width; ++i) {
        if (SortedContains(h.edge(bag.cover[i]), v)) covered = true;
      }
      if (!covered) return false;
    }
    for (int e : bag.home_edges) {
      if (e < 0 || static_cast<size_t>(e) >= h.num_edges()) return false;
      ++homed[e];
      if (!SortedSubset(h.edge(e), bag.vertices)) return false;
      if (std::find(bag.cover.begin(), bag.cover.end(), e) ==
          bag.cover.end()) {
        return false;
      }
    }
  }
  for (size_t e = 0; e < h.num_edges(); ++e) {
    if (homed[e] != 1) return false;
  }
  return true;
}

}  // namespace paraquery

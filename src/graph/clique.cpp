#include "graph/clique.hpp"

#include <algorithm>

namespace paraquery {

namespace {

// Shared DFS: extends `current` with vertices greater than `start`, adjacent
// to everything chosen so far. Returns true when size k is reached.
bool ExtendClique(const Graph& g, int k, int start, std::vector<int>* current) {
  if (static_cast<int>(current->size()) == k) return true;
  int need = k - static_cast<int>(current->size());
  for (int v = start; v + need <= g.num_vertices(); ++v) {
    bool ok = true;
    for (int u : *current) {
      if (!g.HasEdge(u, v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    current->push_back(v);
    if (ExtendClique(g, k, v + 1, current)) return true;
    current->pop_back();
  }
  return false;
}

uint64_t CountExtend(const Graph& g, int k, int start, std::vector<int>* current,
                     uint64_t cap, uint64_t count) {
  if (static_cast<int>(current->size()) == k) return count + 1;
  int need = k - static_cast<int>(current->size());
  for (int v = start; v + need <= g.num_vertices(); ++v) {
    bool ok = true;
    for (int u : *current) {
      if (!g.HasEdge(u, v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    current->push_back(v);
    count = CountExtend(g, k, v + 1, current, cap, count);
    current->pop_back();
    if (cap != 0 && count >= cap) return count;
  }
  return count;
}

// Greedy coloring of the candidate set; the number of colors bounds the
// largest clique within it (classic Tomita-style bound).
int ColorBound(const Graph& g, const std::vector<int>& candidates) {
  std::vector<int> color(candidates.size(), -1);
  int colors = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::vector<bool> used(colors, false);
    for (size_t j = 0; j < i; ++j) {
      if (color[j] >= 0 && g.HasEdge(candidates[i], candidates[j])) {
        used[color[j]] = true;
      }
    }
    int c = 0;
    while (c < colors && used[c]) ++c;
    if (c == colors) ++colors;
    color[i] = c;
  }
  return colors;
}

bool BbExtend(const Graph& g, int k, std::vector<int>* current,
              std::vector<int> candidates) {
  if (static_cast<int>(current->size()) == k) return true;
  int need = k - static_cast<int>(current->size());
  if (static_cast<int>(candidates.size()) < need) return false;
  if (ColorBound(g, candidates) < need) return false;
  while (!candidates.empty()) {
    if (static_cast<int>(candidates.size()) < need) return false;
    int v = candidates.back();
    candidates.pop_back();
    std::vector<int> next;
    for (int u : candidates) {
      if (g.HasEdge(u, v)) next.push_back(u);
    }
    current->push_back(v);
    if (BbExtend(g, k, current, std::move(next))) return true;
    current->pop_back();
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> FindCliqueNaive(const Graph& g, int k) {
  if (k < 0) return std::nullopt;
  std::vector<int> current;
  if (k == 0) return current;
  if (ExtendClique(g, k, 0, &current)) return current;
  return std::nullopt;
}

std::optional<std::vector<int>> FindCliqueBb(const Graph& g, int k) {
  if (k < 0) return std::nullopt;
  std::vector<int> current;
  if (k == 0) return current;
  std::vector<int> candidates(g.num_vertices());
  for (int i = 0; i < g.num_vertices(); ++i) candidates[i] = i;
  // Order by degree ascending so the high-degree vertices are tried first
  // (candidates are consumed from the back).
  std::sort(candidates.begin(), candidates.end(), [&g](int a, int b) {
    return g.Degree(a) < g.Degree(b);
  });
  if (BbExtend(g, k, &current, std::move(candidates))) return current;
  return std::nullopt;
}

uint64_t CountCliques(const Graph& g, int k, uint64_t cap) {
  if (k < 0) return 0;
  std::vector<int> current;
  if (k == 0) return 1;
  return CountExtend(g, k, 0, &current, cap, 0);
}

int MaxCliqueSize(const Graph& g) {
  int lo = 0;
  for (int k = 1; k <= g.num_vertices(); ++k) {
    if (FindCliqueBb(g, k).has_value()) {
      lo = k;
    } else {
      break;
    }
  }
  return lo;
}

}  // namespace paraquery

#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace paraquery {

Graph GnpRandom(int n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Chance(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph PlantedClique(int n, double p, int k, uint64_t seed) {
  Rng rng(seed);
  Graph g = GnpRandom(n, p, rng.Next());
  std::vector<int> vertices(n);
  std::iota(vertices.begin(), vertices.end(), 0);
  // Fisher-Yates prefix shuffle to pick k distinct vertices.
  for (int i = 0; i < k && i < n; ++i) {
    int j = i + static_cast<int>(rng.Below(static_cast<uint64_t>(n - i)));
    std::swap(vertices[i], vertices[j]);
  }
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) g.AddEdge(vertices[i], vertices[j]);
  }
  return g;
}

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  Graph g = PathGraph(n);
  if (n >= 3) g.AddEdge(n - 1, 0);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph TuranGraph(int k, int class_size) {
  int n = k * class_size;
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (u / class_size != v / class_size) g.AddEdge(u, v);
    }
  }
  return g;
}

}  // namespace paraquery

#include "graph/scc.hpp"

#include <algorithm>

namespace paraquery {

SccResult StronglyConnectedComponents(const Digraph& g) {
  int n = g.num_vertices();
  SccResult result;
  result.component.assign(n, -1);
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  // Explicit DFS stack: (vertex, next child position).
  struct Frame {
    int v;
    size_t child;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out = g.Out(f.v);
      if (f.child < out.size()) {
        int w = out[f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                              lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots an SCC; pop it.
          int comp = result.num_components++;
          for (;;) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = comp;
            if (w == v) break;
          }
        }
      }
    }
  }
  // Tarjan emits components in reverse topological order already.
  return result;
}

}  // namespace paraquery

#include "graph/graph.hpp"

#include "common/status.hpp"

namespace paraquery {

Graph::Graph(int n) : n_(n), words_(static_cast<size_t>((n + 63) / 64)) {
  PQ_CHECK(n >= 0, "Graph size must be non-negative");
  matrix_.assign(static_cast<size_t>(n_) * words_, 0);
  adj_.resize(n_);
}

void Graph::AddEdge(int u, int v) {
  PQ_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_, "AddEdge: vertex out of range");
  if (u == v || HasEdge(u, v)) return;
  matrix_[static_cast<size_t>(u) * words_ + (v >> 6)] |= uint64_t{1} << (v & 63);
  matrix_[static_cast<size_t>(v) * words_ + (u >> 6)] |= uint64_t{1} << (u & 63);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

Graph Graph::Complement() const {
  Graph out(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (!HasEdge(u, v)) out.AddEdge(u, v);
    }
  }
  return out;
}

bool Graph::IsClique(const std::vector<int>& vertices) const {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (vertices[i] == vertices[j]) return false;
      if (!HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace paraquery

// Undirected simple graphs with O(1) adjacency tests (bit-matrix) plus
// adjacency lists. Used by the clique/Hamiltonian solvers and all the
// graph-based reductions in the paper (Theorem 1 lower bound, footnote 2,
// Theorem 3, the Hamiltonian-path construction of Section 5).
#ifndef PARAQUERY_GRAPH_GRAPH_H_
#define PARAQUERY_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paraquery {

/// Undirected simple graph on vertices 0..n-1.
class Graph {
 public:
  explicit Graph(int n);

  int num_vertices() const { return n_; }
  size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; self-loops and duplicates are ignored.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const {
    return (matrix_[static_cast<size_t>(u) * words_ + (v >> 6)] >>
            (v & 63)) & 1;
  }

  const std::vector<int>& Neighbors(int v) const { return adj_[v]; }
  int Degree(int v) const { return static_cast<int>(adj_[v].size()); }

  /// Complement graph (no self-loops).
  Graph Complement() const;

  /// True if every pair in `vertices` is adjacent (a clique witness check).
  bool IsClique(const std::vector<int>& vertices) const;

 private:
  int n_;
  size_t words_;                  // 64-bit words per matrix row
  size_t num_edges_ = 0;
  std::vector<uint64_t> matrix_;  // n_ rows of `words_` words
  std::vector<std::vector<int>> adj_;
};

}  // namespace paraquery

#endif  // PARAQUERY_GRAPH_GRAPH_H_

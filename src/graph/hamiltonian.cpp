#include "graph/hamiltonian.hpp"

#include "common/status.hpp"

namespace paraquery {

std::optional<std::vector<int>> FindHamiltonianPath(const Graph& g) {
  int n = g.num_vertices();
  PQ_CHECK(n <= kMaxHamiltonianVertices,
           "FindHamiltonianPath: graph too large for bitmask DP");
  if (n == 0) return std::vector<int>{};
  if (n == 1) return std::vector<int>{0};
  size_t full = size_t{1} << n;
  // reach[mask][v]: a path visiting exactly `mask` can end at v.
  std::vector<uint32_t> reach(full, 0);
  for (int v = 0; v < n; ++v) reach[size_t{1} << v] = uint32_t{1} << v;
  for (size_t mask = 1; mask < full; ++mask) {
    uint32_t ends = reach[mask];
    if (ends == 0) continue;
    for (int v = 0; v < n; ++v) {
      if (!((ends >> v) & 1)) continue;
      for (int u : g.Neighbors(v)) {
        if ((mask >> u) & 1) continue;
        reach[mask | (size_t{1} << u)] |= uint32_t{1} << u;
      }
    }
  }
  size_t all = full - 1;
  if (reach[all] == 0) return std::nullopt;
  // Reconstruct backwards.
  std::vector<int> path;
  size_t mask = all;
  int end = 0;
  while (!((reach[all] >> end) & 1)) ++end;
  path.push_back(end);
  while (mask != (size_t{1} << path.back())) {
    int v = path.back();
    size_t prev_mask = mask & ~(size_t{1} << v);
    for (int u : g.Neighbors(v)) {
      if (((prev_mask >> u) & 1) && ((reach[prev_mask] >> u) & 1)) {
        path.push_back(u);
        mask = prev_mask;
        break;
      }
    }
  }
  return std::vector<int>(path.rbegin(), path.rend());
}

}  // namespace paraquery

// Directed graphs and strongly connected components (iterative Tarjan).
// Used by the comparison-constraint closure of Section 5 (Klug's consistency
// test: a system of </<= constraints is consistent iff no SCC contains a
// strict arc).
#ifndef PARAQUERY_GRAPH_SCC_H_
#define PARAQUERY_GRAPH_SCC_H_

#include <vector>

namespace paraquery {

/// Directed graph on vertices 0..n-1 (parallel arcs allowed).
class Digraph {
 public:
  explicit Digraph(int n) : adj_(n) {}

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  void AddArc(int from, int to) { adj_[from].push_back(to); }
  const std::vector<int>& Out(int v) const { return adj_[v]; }

 private:
  std::vector<std::vector<int>> adj_;
};

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (component 0 is a source component of the condensation).
  std::vector<int> component;
  int num_components = 0;
};

/// Tarjan's algorithm, iterative (no recursion depth limits).
SccResult StronglyConnectedComponents(const Digraph& g);

}  // namespace paraquery

#endif  // PARAQUERY_GRAPH_SCC_H_

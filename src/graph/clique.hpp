// k-clique solvers. The paper's Theorem 1 lower bound rests on clique being
// W[1]-complete: all known algorithms take n^Θ(k). We provide the canonical
// n^k enumerator (used by benches to exhibit exactly that scaling) and a
// pruned branch-and-bound used as ground truth in tests.
#ifndef PARAQUERY_GRAPH_CLIQUE_H_
#define PARAQUERY_GRAPH_CLIQUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace paraquery {

/// Finds a k-clique by ordered DFS extension (vertices in increasing order,
/// each adjacent to all chosen). Worst case O(n^k); this is the textbook
/// "parameter in the exponent" algorithm the paper refers to.
std::optional<std::vector<int>> FindCliqueNaive(const Graph& g, int k);

/// Branch-and-bound with greedy-coloring upper bound; much faster in
/// practice, same worst case. Used as the reference solver in tests.
std::optional<std::vector<int>> FindCliqueBb(const Graph& g, int k);

/// Counts k-cliques (ordered DFS; may be exponential). Capped at `cap`
/// (0 = unlimited).
uint64_t CountCliques(const Graph& g, int k, uint64_t cap = 0);

/// Size of a maximum clique (branch-and-bound).
int MaxCliqueSize(const Graph& g);

}  // namespace paraquery

#endif  // PARAQUERY_GRAPH_CLIQUE_H_

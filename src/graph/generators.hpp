// Deterministic graph generators for tests and benchmark workloads.
#ifndef PARAQUERY_GRAPH_GENERATORS_H_
#define PARAQUERY_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.hpp"

namespace paraquery {

/// Erdős–Rényi G(n, p).
Graph GnpRandom(int n, double p, uint64_t seed);

/// G(n, p) with a planted clique on `k` random vertices (guaranteed yes
/// instance for k-clique).
Graph PlantedClique(int n, double p, int k, uint64_t seed);

/// Path 0-1-...-n-1.
Graph PathGraph(int n);

/// Cycle 0-1-...-n-1-0.
Graph CycleGraph(int n);

/// Complete graph K_n.
Graph CompleteGraph(int n);

/// Complete k-partite graph with classes of size `class_size`: the canonical
/// graph whose max clique is exactly k (one vertex per class).
Graph TuranGraph(int k, int class_size);

}  // namespace paraquery

#endif  // PARAQUERY_GRAPH_GENERATORS_H_

// Hamiltonian path decision via Held-Karp bitmask dynamic programming.
// Ground truth for the Section 5 reduction (acyclic ≠-queries have
// NP-complete combined complexity via Hamiltonian path).
#ifndef PARAQUERY_GRAPH_HAMILTONIAN_H_
#define PARAQUERY_GRAPH_HAMILTONIAN_H_

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace paraquery {

/// Maximum vertex count accepted by FindHamiltonianPath (2^n DP table).
inline constexpr int kMaxHamiltonianVertices = 24;

/// Returns a Hamiltonian path (vertex sequence) if one exists.
/// Requires g.num_vertices() <= kMaxHamiltonianVertices.
std::optional<std::vector<int>> FindHamiltonianPath(const Graph& g);

}  // namespace paraquery

#endif  // PARAQUERY_GRAPH_HAMILTONIAN_H_

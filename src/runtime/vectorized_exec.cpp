#include "runtime/vectorized_exec.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/trace.hpp"
#include "relational/column_block.hpp"
#include "relational/vectorized.hpp"

namespace paraquery {

namespace {

// The inter-stage intermediate: schema-ordered column stripes over `rows`
// positions, of which either all (`dense`) or the ascending `sel` subset are
// live. `table` keeps the stripes' storage alive (null when rows == 0).
struct Batch {
  std::shared_ptr<const ColumnarTable> table;
  std::vector<AttrId> attrs;
  std::vector<const Value*> cols;  // parallel to attrs; null when rows == 0
  std::vector<vec::SelIdx> sel;    // ascending; used when !dense
  bool dense = true;
  size_t rows = 0;  // stripe length
  size_t count() const { return dense ? rows : sel.size(); }
};

Batch EmptyBatch(const std::vector<AttrId>& attrs) {
  Batch b;
  b.attrs = attrs;
  b.cols.assign(attrs.size(), nullptr);
  return b;
}

int ColumnOfAttr(const std::vector<AttrId>& attrs, AttrId a) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == a) return static_cast<int>(i);
  }
  return -1;
}

// Select stage: narrows the batch's selection by `pred`, morsel-parallel
// with per-chunk outputs concatenated in chunk order (positions stay
// ascending, exactly the row order the scalar Select keeps). Returns the
// chunk count.
size_t FilterStage(Batch& cur, const Predicate& pred, const VecExecEnv& env,
                   size_t grain) {
  const size_t m = cur.count();
  if (m == 0) {
    cur.sel.clear();
    cur.dense = false;
    return 0;
  }
  const size_t nchunks = (m + grain - 1) / grain;
  std::vector<std::vector<vec::SelIdx>> parts(nchunks);
  const Value* const* cols = cur.cols.data();
  ForChunks(env.pfor, m, grain, [&](size_t c, size_t b, size_t e) {
    if (env.runtime.Interrupted()) return;  // partial result discarded later
    TraceSpan span(env.runtime.tracer, "batch.filter");
    std::vector<vec::SelIdx>& out = parts[c];
    if (cur.dense) {
      vec::FilterRange(pred.constraints(), cols, b, e, out);
    } else {
      out.assign(cur.sel.begin() + b, cur.sel.begin() + e);
      size_t k = out.size();
      for (const Constraint& cst : pred.constraints()) {
        if (k == 0) break;
        k = vec::FilterSel(cst, cols, out.data(), k);
      }
      out.resize(k);
    }
  });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<vec::SelIdx> merged;
  merged.reserve(total);
  for (const auto& p : parts) merged.insert(merged.end(), p.begin(), p.end());
  cur.sel = std::move(merged);
  cur.dense = false;
  return nchunks;
}

// HashJoin stage: batch-probes `idx` (built over `right` by the caller's
// get_index), expands the match chains to (probe position, build row) pairs
// at deterministic per-chunk offsets, then gathers the output columns dense,
// column at a time. Replaces `cur` with the join result.
Status JoinStage(Batch& cur, PlanNode& sn, const NamedRelation& right,
                 const VecExecEnv& env, size_t grain, size_t* chunks_out) {
  // Column mappings, computed from the actual schemas exactly like the
  // scalar NaturalJoin: shared attributes in probe-attr order; output =
  // probe attrs then right-only attrs.
  std::vector<int> lcols, rcols;
  for (size_t i = 0; i < cur.attrs.size(); ++i) {
    int rc = ColumnOfAttr(right.attrs(), cur.attrs[i]);
    if (rc >= 0) {
      lcols.push_back(static_cast<int>(i));
      rcols.push_back(rc);
    }
  }
  std::vector<AttrId> out_attrs = cur.attrs;
  std::vector<int> right_extra;
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (ColumnOfAttr(cur.attrs, right.attrs()[i]) < 0) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  std::optional<RowIndex> local;
  const RowIndex& idx = env.get_index(*sn.children[1], right, rcols, local);

  const size_t m = cur.count();
  if (cur.dense) {
    cur.sel.resize(m);
    for (size_t i = 0; i < m; ++i) cur.sel[i] = static_cast<vec::SelIdx>(i);
    cur.dense = false;
  }
  const std::vector<vec::SelIdx>& sel = cur.sel;
  std::vector<const Value*> key_ptrs(lcols.size());
  for (size_t j = 0; j < lcols.size(); ++j) key_ptrs[j] = cur.cols[lcols[j]];

  // Pass 1: probe, and size each chunk's output exactly.
  const size_t nchunks = (m + grain - 1) / grain;
  *chunks_out = nchunks;
  std::vector<uint32_t> heads(m);
  std::vector<size_t> chunk_rows(nchunks, 0);
  ForChunks(env.pfor, m, grain, [&](size_t c, size_t b, size_t e) {
    if (env.runtime.Interrupted()) return;
    TraceSpan span(env.runtime.tracer, "batch.probe");
    std::vector<uint64_t> scratch(e - b);
    idx.BatchFind(key_ptrs, std::span<const uint32_t>(sel.data() + b, e - b),
                  heads.data() + b, scratch.data());
    size_t t = 0;
    for (size_t i = b; i < e; ++i) {
      if (heads[i] != RowIndex::kNone) t += idx.MatchCount(heads[i]);
    }
    chunk_rows[c] = t;
  });
  PQ_RETURN_NOT_OK(env.runtime.CheckInterrupt());
  std::vector<size_t> chunk_off(nchunks + 1, 0);
  for (size_t c = 0; c < nchunks; ++c) {
    chunk_off[c + 1] = chunk_off[c] + chunk_rows[c];
  }
  const size_t total = chunk_off[nchunks];

  // Pass 2: expand chains — ascending probe positions, each chain in
  // increasing build-row order, the scalar join's emit order.
  std::vector<vec::SelIdx> lpos(total);
  std::vector<uint32_t> rrow(total);
  ForChunks(env.pfor, m, grain, [&](size_t c, size_t b, size_t e) {
    if (env.runtime.Interrupted()) return;
    TraceSpan span(env.runtime.tracer, "batch.expand");
    size_t off = chunk_off[c];
    for (size_t i = b; i < e; ++i) {
      uint32_t rr = heads[i];
      if (rr == RowIndex::kNone) continue;
      const vec::SelIdx pos = sel[i];
      for (; rr != RowIndex::kNone; rr = idx.Next(rr)) {
        lpos[off] = pos;
        rrow[off] = rr;
        ++off;
      }
    }
  });
  PQ_RETURN_NOT_OK(env.runtime.CheckInterrupt());

  // Pass 3: gather the output dense, column at a time (probe columns by
  // position, right-only columns strided out of the build side's row-major
  // storage).
  const size_t larity = cur.attrs.size();
  const size_t out_arity = out_attrs.size();
  std::vector<std::vector<Value>> outv(out_arity);
  for (auto& v : outv) v.resize(total);
  const Value* rbase = right.rel().data().data();
  const size_t rarity = right.arity();
  ForChunks(env.pfor, total, grain, [&](size_t, size_t b, size_t e) {
    if (env.runtime.Interrupted()) return;
    TraceSpan span(env.runtime.tracer, "batch.gather");
    for (size_t j = 0; j < larity; ++j) {
      const Value* src = cur.cols[j];
      Value* dst = outv[j].data();
      for (size_t i = b; i < e; ++i) dst[i] = src[lpos[i]];
    }
    for (size_t k = 0; k < right_extra.size(); ++k) {
      const int rc = right_extra[k];
      Value* dst = outv[larity + k].data();
      for (size_t i = b; i < e; ++i) {
        dst[i] = rbase[static_cast<size_t>(rrow[i]) * rarity + rc];
      }
    }
  });
  PQ_RETURN_NOT_OK(env.runtime.CheckInterrupt());

  // Fresh dense intermediate; ColumnBlock charges the query's accountant.
  Batch next;
  next.attrs = std::move(out_attrs);
  next.cols.assign(out_arity, nullptr);
  std::vector<std::shared_ptr<const ColumnBlock>> blocks;
  blocks.reserve(out_arity);
  for (size_t c = 0; c < out_arity; ++c) {
    auto blk = std::make_shared<ColumnBlock>(std::move(outv[c]));
    next.cols[c] = blk->values.data();
    blocks.push_back(std::move(blk));
  }
  next.table = ColumnarTable::FromColumns(std::move(blocks), total);
  next.rows = total;
  cur = std::move(next);
  return Status::OK();
}

// Sink: transposes the live positions back to row-major storage.
Result<NamedRelation> Transpose(const Batch& cur, const VecExecEnv& env,
                                size_t grain, size_t* chunks_out) {
  const size_t m = cur.count();
  const size_t arity = cur.attrs.size();
  std::vector<Value> out(m * arity);
  const size_t nchunks = (m + grain - 1) / grain;
  *chunks_out = nchunks;
  ForChunks(env.pfor, m, grain, [&](size_t, size_t b, size_t e) {
    if (env.runtime.Interrupted()) return;
    TraceSpan span(env.runtime.tracer, "batch.transpose");
    Value* dst = out.data() + b * arity;
    if (cur.dense) {
      for (size_t i = b; i < e; ++i) {
        for (size_t c = 0; c < arity; ++c) *dst++ = cur.cols[c][i];
      }
    } else {
      for (size_t i = b; i < e; ++i) {
        const size_t pos = cur.sel[i];
        for (size_t c = 0; c < arity; ++c) *dst++ = cur.cols[c][pos];
      }
    }
  });
  PQ_RETURN_NOT_OK(env.runtime.CheckInterrupt());
  return NamedRelation{cur.attrs, Relation(arity, std::move(out))};
}

}  // namespace

Result<NamedRelation> ExecuteVecPipeline(const VecPipeline& pipe,
                                         const VecExecEnv& env) {
  PlanNode& mat = *pipe.materialize;
  const int slot = pipe.source->input_slot;
  if (slot < 0 || static_cast<size_t>(slot) >= env.inputs.size()) {
    return Status::Internal("plan scan references an unbound slot");
  }
  const NamedRelation& src = *env.inputs[slot];
  env.on_scan(*pipe.source, src.size());
  const size_t grain = std::max<size_t>(env.runtime.morsel_rows, 1);
  const bool parallel = static_cast<bool>(env.pfor);
  size_t batches = 0;

  Batch cur;
  cur.attrs = src.attrs();
  cur.rows = src.size();
  cur.cols.assign(cur.attrs.size(), nullptr);
  if (cur.rows > 0) {
    cur.table = src.rel().ColumnarView(env.pfor);
    for (size_t c = 0; c < cur.attrs.size(); ++c) {
      cur.cols[c] = cur.table->col(c);
    }
  }

  for (PlanNode* stage : pipe.stages) {
    PlanNode& sn = *stage;
    PQ_RETURN_NOT_OK(env.runtime.CheckInterrupt());
    TraceSpan stage_span(env.runtime.tracer, "vec.stage", PlanOpName(sn.op));
    switch (sn.op) {
      case PlanOp::kSelect: {
        size_t chunks = FilterStage(cur, sn.predicate, env, grain);
        batches += chunks;
        PQ_RETURN_NOT_OK(env.account(sn, &PlanStats::selects, cur.count(),
                                     parallel ? chunks : 0));
        break;
      }
      case PlanOp::kProject: {
        const bool same_attrs = sn.attrs == cur.attrs;
        std::vector<const Value*> ncols(sn.attrs.size(), nullptr);
        if (cur.rows > 0) {
          for (size_t i = 0; i < sn.attrs.size(); ++i) {
            int c = ColumnOfAttr(cur.attrs, sn.attrs[i]);
            if (c < 0) {
              return Status::Internal(
                  "vectorized Project: attribute not present in input");
            }
            ncols[i] = cur.cols[c];
          }
        }
        cur.cols = std::move(ncols);
        cur.attrs = sn.attrs;
        if (sn.dedup) {
          // Final sink stage (compile guarantees): materialize the projected
          // rows, then dedup — the scalar Project accounts its post-dedup
          // size, so dedup must precede the tally.
          size_t chunks = 0;
          PQ_ASSIGN_OR_RETURN(NamedRelation out,
                              Transpose(cur, env, grain, &chunks));
          batches += chunks;
          out.rel().HashDedup(env.pfor);
          mat.actual_batches = batches;
          PQ_RETURN_NOT_OK(env.account(sn, &PlanStats::projections, out.size(),
                                       parallel ? chunks : 0));
          return out;
        }
        if (same_attrs && env.on_zero_copy_projection) {
          env.on_zero_copy_projection();
        }
        PQ_RETURN_NOT_OK(
            env.account(sn, &PlanStats::projections, cur.count(), 0));
        break;
      }
      case PlanOp::kHashJoin: {
        // The scalar executor short-circuits an empty probe or build side:
        // the join returns its statically empty output without running — or
        // accounting — anything further; an empty probe side also skips the
        // build subtree entirely.
        if (cur.count() == 0) {
          sn.actual_rows = 0;
          cur = EmptyBatch(sn.attrs);
          break;
        }
        PQ_ASSIGN_OR_RETURN(NamedRelation right, env.exec_rows(*sn.children[1]));
        if (right.empty()) {
          sn.actual_rows = 0;
          cur = EmptyBatch(sn.attrs);
          break;
        }
        size_t chunks = 0;
        PQ_RETURN_NOT_OK(JoinStage(cur, sn, right, env, grain, &chunks));
        batches += chunks;
        PQ_RETURN_NOT_OK(env.account(sn, &PlanStats::joins, cur.count(),
                                     parallel ? chunks : 0));
        break;
      }
      default:
        return Status::Internal("unexpected vectorized stage operator");
    }
  }
  size_t chunks = 0;
  PQ_ASSIGN_OR_RETURN(NamedRelation out, Transpose(cur, env, grain, &chunks));
  batches += chunks;
  mat.actual_batches = batches;
  return out;
}

}  // namespace paraquery

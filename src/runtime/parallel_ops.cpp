#include "runtime/parallel_ops.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {

namespace {

// Positions of the common attributes, as (left column, right column) pairs
// in left-attribute order (the sequential kernels' CommonColumns).
std::vector<std::pair<int, int>> CommonColumns(const NamedRelation& left,
                                               const NamedRelation& right) {
  std::vector<std::pair<int, int>> out;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) out.emplace_back(static_cast<int>(i), rc);
  }
  return out;
}

// Concatenates per-morsel buffers (in morsel order) into one flat relation.
NamedRelation MergeMorsels(std::vector<AttrId> attrs, size_t arity,
                           const std::vector<std::vector<Value>>& bufs) {
  size_t total = 0;
  for (const std::vector<Value>& b : bufs) total += b.size();
  std::vector<Value> out(total);
  Value* dst = out.data();
  for (const std::vector<Value>& b : bufs) {
    std::copy(b.begin(), b.end(), dst);
    dst += b.size();
  }
  return NamedRelation{std::move(attrs), Relation(arity, std::move(out))};
}

// Exclusive prefix sum of per-chunk row counts; returns the total.
size_t PrefixOffsets(std::vector<size_t>* counts) {
  size_t total = 0;
  for (size_t& c : *counts) {
    size_t n = c;
    c = total;
    total += n;
  }
  return total;
}

}  // namespace

NamedRelation ParallelSelect(const NamedRelation& in, const Predicate& pred,
                             const RuntimeOptions& runtime, size_t* morsels) {
  if (pred.empty()) return in;  // identity selection: zero-copy view
  size_t n = in.size(), arity = in.arity();
  std::vector<std::vector<Value>> bufs(ChunkCount(n, runtime.morsel_rows));
  size_t chunks = ParallelChunks(
      runtime.scheduler, n, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        // Aborted query: skip the morsel. The executor re-checks the abort
        // after the operator, so a partially filled result never escapes.
        if (runtime.Interrupted()) return;
        TraceSpan span(runtime.tracer, "morsel.select");
        std::vector<Value>& buf = bufs[c];
        for (size_t r = begin; r < end; ++r) {
          auto row = in.rel().Row(r);
          if (pred.Eval(row)) buf.insert(buf.end(), row.begin(), row.end());
        }
      });
  if (morsels != nullptr) *morsels += chunks;
  return MergeMorsels(in.attrs(), arity, bufs);
}

NamedRelation ParallelProject(const NamedRelation& in,
                              const std::vector<AttrId>& attrs, bool dedup,
                              const RuntimeOptions& runtime, size_t* morsels) {
  if (attrs == in.attrs()) return Project(in, attrs, dedup);  // view path
  std::vector<int> cols(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    int c = in.ColumnOf(attrs[i]);
    PQ_CHECK(c >= 0, "ParallelProject: attribute not present in input");
    cols[i] = c;
  }
  size_t n = in.size(), out_arity = attrs.size();
  std::vector<std::vector<Value>> bufs(ChunkCount(n, runtime.morsel_rows));
  size_t chunks = ParallelChunks(
      runtime.scheduler, n, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        if (runtime.Interrupted()) return;  // abort: executor discards below
        TraceSpan span(runtime.tracer, "morsel.project");
        std::vector<Value>& buf = bufs[c];
        buf.reserve((end - begin) * out_arity);
        for (size_t r = begin; r < end; ++r) {
          for (int col : cols) buf.push_back(in.rel().At(r, col));
        }
      });
  if (morsels != nullptr) *morsels += chunks;
  NamedRelation out = MergeMorsels(attrs, out_arity, bufs);
  // Same order as the sequential kernel, so first-occurrence dedup keeps
  // identical rows in identical positions.
  if (dedup) out.rel().HashDedup();
  return out;
}

NamedRelation ParallelJoin(const NamedRelation& left,
                           const NamedRelation& right,
                           const RowIndex& right_index,
                           const RuntimeOptions& runtime, size_t* morsels) {
  PQ_DCHECK((right.arity() == 0 ||
             right_index.rel().SharesStorageWith(right.rel())) &&
                right_index.key_cols() == JoinKeyColumns(left, right),
            "ParallelJoin: index does not match the join's key columns");
  auto common = CommonColumns(left, right);
  std::vector<int> lcols;
  for (auto [lc, rc] : common) lcols.push_back(lc);
  std::vector<AttrId> out_attrs = left.attrs();
  std::vector<int> right_extra;
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (!left.HasAttr(right.attrs()[i])) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  size_t larity = left.arity();
  size_t out_arity = out_attrs.size();
  PQ_CHECK(out_arity > 0, "ParallelJoin requires a nonempty output schema");

  // Probe pass over left morsels: chain heads and per-morsel output sizes.
  size_t nl = left.size();
  std::vector<uint32_t> first(nl);
  std::vector<size_t> offsets(ChunkCount(nl, runtime.morsel_rows), 0);
  size_t chunks = ParallelChunks(
      runtime.scheduler, nl, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        if (runtime.Interrupted()) return;  // abort: executor discards below
        TraceSpan span(runtime.tracer, "morsel.join");
        size_t total = 0;
        for (size_t lr = begin; lr < end; ++lr) {
          uint32_t rr = right_index.Find(left.rel(), lr, lcols);
          first[lr] = rr;
          if (rr != RowIndex::kNone) total += right_index.MatchCount(rr);
        }
        offsets[c] = total;
      });
  size_t total = PrefixOffsets(&offsets);

  // Emit pass: every morsel writes its disjoint slice of one allocation.
  std::vector<Value> out_data(total * out_arity);
  const std::vector<Value>& ldata = left.rel().data();
  const std::vector<Value>& rdata = right.rel().data();
  size_t rarity = right.arity();
  ParallelChunks(
      runtime.scheduler, nl, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        if (runtime.Interrupted()) return;  // abort: executor discards below
        TraceSpan span(runtime.tracer, "morsel.join");
        Value* dst = out_data.data() + offsets[c] * out_arity;
        for (size_t lr = begin; lr < end; ++lr) {
          uint32_t rr = first[lr];
          if (rr == RowIndex::kNone) continue;
          const Value* lrow = ldata.data() + lr * larity;
          for (; rr != RowIndex::kNone; rr = right_index.Next(rr)) {
            for (size_t i = 0; i < larity; ++i) *dst++ = lrow[i];
            const Value* rrow =
                rdata.data() + static_cast<size_t>(rr) * rarity;
            for (int col : right_extra) *dst++ = rrow[col];
          }
        }
      });
  if (morsels != nullptr) *morsels += chunks;
  return NamedRelation{std::move(out_attrs),
                       Relation(out_arity, std::move(out_data))};
}

NamedRelation ParallelSemijoin(const NamedRelation& left,
                               const NamedRelation& right,
                               const RuntimeOptions& runtime,
                               size_t* morsels) {
  auto common = CommonColumns(left, right);
  std::vector<int> lcols, rcols;
  for (auto [lc, rc] : common) {
    lcols.push_back(lc);
    rcols.push_back(rc);
  }
  if (common.empty()) {
    // Degenerate semijoin: keep left iff right is nonempty (zero-copy).
    return right.empty() ? NamedRelation{left.attrs()} : left;
  }
  RowIndex index(right.rel(), std::move(rcols));
  size_t nl = left.size();
  std::vector<uint8_t> keep(nl, 0);
  std::vector<size_t> offsets(ChunkCount(nl, runtime.morsel_rows), 0);
  size_t chunks = ParallelChunks(
      runtime.scheduler, nl, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        if (runtime.Interrupted()) return;  // abort: executor discards below
        TraceSpan span(runtime.tracer, "morsel.semijoin");
        size_t kept = 0;
        for (size_t lr = begin; lr < end; ++lr) {
          if (index.Contains(left.rel(), lr, lcols)) {
            keep[lr] = 1;
            ++kept;
          }
        }
        offsets[c] = kept;
      });
  size_t total = PrefixOffsets(&offsets);
  if (morsels != nullptr) *morsels += chunks;
  // Every row survived: the result IS left — share its storage.
  if (total == nl) return left;
  size_t arity = left.arity();
  std::vector<Value> out_data(total * arity);
  const Value* src = left.rel().data().data();
  ParallelChunks(
      runtime.scheduler, nl, runtime.morsel_rows,
      [&](size_t c, size_t begin, size_t end) {
        if (runtime.Interrupted()) return;  // abort: executor discards below
        TraceSpan span(runtime.tracer, "morsel.semijoin");
        Value* dst = out_data.data() + offsets[c] * arity;
        for (size_t lr = begin; lr < end; ++lr) {
          if (!keep[lr]) continue;
          const Value* row = src + lr * arity;
          for (size_t i = 0; i < arity; ++i) *dst++ = row[i];
        }
      });
  return NamedRelation{left.attrs(), Relation(arity, std::move(out_data))};
}

}  // namespace paraquery

// Stage-at-a-time runner for compiled columnar pipelines (plan/
// vec_pipeline.hpp).
//
// Execution walks the chain source-to-sink. The intermediate between stages
// is a set of column stripes plus a selection vector: a Select narrows the
// selection (morsel-parallel, per-chunk outputs concatenated in chunk order,
// so positions stay ascending); a mid-chain Project remaps column pointers
// without touching data; a HashJoin batch-probes a RowIndex over its
// row-executed build side and gathers the matches into a fresh dense columnar
// intermediate; the sink transposes back to row-major storage (running the
// final deduplicating Project's HashDedup on the materialized rows).
//
// Byte-identity contract: selections keep ascending position order and join
// chains expand in increasing build-row order, so the materialized result is
// bit-for-bit the row-at-a-time executor's, at any execution width.
// Limit parity: stages are tallied through `account` in chain order with the
// exact row counts the row executor would see — a join whose probe side is
// empty (or whose build side comes out empty) is skipped without executing
// the build subtree and without accounting, reproducing the row path's
// short-circuit — so a query passes or fails its ResourceLimits identically
// with vectorization on or off.
#ifndef PARAQUERY_RUNTIME_VECTORIZED_EXEC_H_
#define PARAQUERY_RUNTIME_VECTORIZED_EXEC_H_

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/status.hpp"
#include "plan/vec_pipeline.hpp"
#include "relational/named_relation.hpp"
#include "relational/row_index.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Callbacks back into the plan executor, keeping budget charging, stats
/// locking, and node memoization in one place (the executor).
struct VecExecEnv {
  /// Scan slot table (same as ExecContext::inputs).
  std::span<const NamedRelation* const> inputs;
  RuntimeOptions runtime;
  /// Bound over the runtime's scheduler when parallel; empty = sequential.
  ParallelForFn pfor;
  /// Executes a row subtree (a join stage's build side) under the caller's
  /// charge.
  std::function<Result<NamedRelation>(PlanNode&)> exec_rows;
  /// Tallies one finished stage: sets the node's actuals and applies the
  /// executor's Account logic (stats, max_steps/max_rows) to `rows`.
  std::function<Status(PlanNode&, size_t PlanStats::*, uint64_t rows,
                       size_t morsels)>
      account;
  /// Records the source scan (stats->scans, actual_rows); scans are
  /// limit-exempt.
  std::function<void(PlanNode&, uint64_t rows)> on_scan;
  /// Records a projection the row path would answer zero-copy.
  std::function<void()> on_zero_copy_projection;
  /// Returns the build index for a join stage: the executor routes cached
  /// scans through their JoinIndexCache and otherwise builds into `local`.
  std::function<const RowIndex&(PlanNode& right_node,
                                const NamedRelation& right,
                                const std::vector<int>& rcols,
                                std::optional<RowIndex>& local)>
      get_index;
};

/// Runs the compiled pipeline and returns the materialized row-major result.
/// Sets pipe.materialize->actual_batches; the Materialize node itself is not
/// accounted (it produces no rows beyond its child's).
Result<NamedRelation> ExecuteVecPipeline(const VecPipeline& pipe,
                                         const VecExecEnv& env);

}  // namespace paraquery

#endif  // PARAQUERY_RUNTIME_VECTORIZED_EXEC_H_

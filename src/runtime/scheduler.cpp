#include "runtime/scheduler.hpp"

#include <algorithm>

namespace paraquery {

/// Shared state of one TaskGroup. Ref-counted separately from the TaskGroup
/// object because scheduler deques may still hold (stale) tokens for a group
/// whose tasks all completed and whose TaskGroup has been destroyed; a
/// popped stale token just finds an empty queue and is dropped.
struct TaskScheduler::GroupCore {
  std::mutex mutex;  // guards queue and status
  std::deque<std::function<void()>> queue;
  std::condition_variable done_cv;
  std::atomic<size_t> unfinished{0};
  std::atomic<bool> cancelled{false};
  Status status;

  /// Runs (or, when cancelled, drops) one queued task. False if the queue
  /// is empty.
  bool RunOne() {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (queue.empty()) return false;
      fn = std::move(queue.front());
      queue.pop_front();
    }
    if (!cancelled.load(std::memory_order_relaxed)) fn();
    if (unfinished.fetch_sub(1) == 1) {
      // Empty lock pairs the notification with Wait's predicate check.
      { std::lock_guard<std::mutex> lock(mutex); }
      done_cv.notify_all();
    }
    return true;
  }
};

namespace {
// Identifies worker threads of a pool so Announce can push to the local
// deque (work-stealing locality) instead of round-robin.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local size_t tls_queue_id = 0;
}  // namespace

size_t TaskScheduler::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

TaskScheduler::TaskScheduler(size_t threads)
    : threads_(std::max<size_t>(1, threads)) {
  // Queue 0 belongs to external (non-worker) threads; 1..threads-1 to the
  // spawned workers.
  queues_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads_ - 1);
  for (size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskScheduler::Announce(std::shared_ptr<GroupCore> core) {
  size_t q = tls_scheduler == this
                 ? tls_queue_id
                 : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tokens.push_back(std::move(core));
  }
  pending_tokens_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_one();
}

bool TaskScheduler::RunOneToken(size_t home) {
  std::shared_ptr<GroupCore> core;
  for (size_t k = 0; k < queues_.size() && core == nullptr; ++k) {
    size_t q = (home + k) % queues_.size();
    WorkerQueue& wq = *queues_[q];
    std::lock_guard<std::mutex> lock(wq.mutex);
    if (wq.tokens.empty()) continue;
    if (k == 0) {  // own deque: LIFO for locality
      core = std::move(wq.tokens.back());
      wq.tokens.pop_back();
    } else {  // steal: FIFO
      core = std::move(wq.tokens.front());
      wq.tokens.pop_front();
      counters_.steals.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (core == nullptr) return false;
  pending_tokens_.fetch_sub(1);
  counters_.tasks_run.fetch_add(1, std::memory_order_relaxed);
  core->RunOne();  // false (stale token) is fine: the task ran elsewhere
  return true;
}

void TaskScheduler::WorkerLoop(size_t id) {
  tls_scheduler = this;
  tls_queue_id = id;
  for (;;) {
    if (RunOneToken(id)) continue;
    counters_.idle_sleeps.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
      return stop_.load() || pending_tokens_.load() > 0;
    });
    if (stop_.load()) return;
  }
}

TaskGroup::TaskGroup(TaskScheduler* scheduler)
    : scheduler_(scheduler != nullptr && scheduler->threads() > 1 ? scheduler
                                                                  : nullptr),
      core_(std::make_shared<TaskScheduler::GroupCore>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn) {
  if (scheduler_ == nullptr) {  // inline: exactly the sequential behavior
    if (!core_->cancelled.load(std::memory_order_relaxed)) fn();
    return;
  }
  // The task may run on a worker thread, whose thread-local accountant slot
  // is empty: carry the spawner's accountant along so RowBlock allocations
  // inside the task charge the same query budget.
  if (const std::shared_ptr<MemoryAccountant>& acct =
          MemoryAccountant::Current();
      acct != nullptr) {
    fn = [acct, inner = std::move(fn)] {
      ScopedMemoryAccounting scope(acct);
      inner();
    };
  }
  core_->unfinished.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    core_->queue.push_back(std::move(fn));
  }
  core_->done_cv.notify_one();  // a Wait()er may be parked on an empty queue
  scheduler_->Announce(core_);
}

void TaskGroup::Wait() {
  for (;;) {
    if (core_->RunOne()) continue;
    std::unique_lock<std::mutex> lock(core_->mutex);
    if (core_->unfinished.load() == 0) return;
    if (!core_->queue.empty()) continue;  // a running task spawned more
    core_->done_cv.wait(lock, [this] {
      return core_->unfinished.load() == 0 || !core_->queue.empty();
    });
    if (core_->unfinished.load() == 0 && core_->queue.empty()) return;
  }
}

void TaskGroup::Cancel() {
  core_->cancelled.store(true, std::memory_order_relaxed);
}

bool TaskGroup::cancelled() const {
  return core_->cancelled.load(std::memory_order_relaxed);
}

void TaskGroup::RecordError(Status status) {
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    if (core_->status.ok()) core_->status = std::move(status);
  }
  Cancel();
}

Status TaskGroup::status() const {
  std::lock_guard<std::mutex> lock(core_->mutex);
  return core_->status;
}

size_t ParallelChunks(TaskScheduler* scheduler, size_t n, size_t grain,
                      const std::function<void(size_t, size_t, size_t)>& fn) {
  if (grain == 0) grain = 1;
  size_t chunks = ChunkCount(n, grain);
  if (scheduler == nullptr || scheduler->threads() <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return chunks;
  }
  TaskGroup group(scheduler);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * grain, end = std::min(n, (c + 1) * grain);
    group.Spawn([&fn, c, begin, end] { fn(c, begin, end); });
  }
  group.Wait();
  return chunks;
}

ParallelForFn MakeParallelFor(TaskScheduler* scheduler) {
  if (scheduler == nullptr || scheduler->threads() <= 1) return {};
  return [scheduler](size_t n, size_t grain, const ChunkFn& fn) {
    return ParallelChunks(scheduler, n, grain, fn);
  };
}

}  // namespace paraquery

// Work-stealing task scheduler: the parallel runtime under the plan
// executor and the structurally parallel evaluators (UCQ disjuncts,
// Yannakakis sibling subtrees, per-round Datalog rule firings).
//
// Model
// -----
// A TaskScheduler owns a fixed pool of worker threads, one task deque per
// worker. Tasks are spawned through TaskGroups: a group owns its task queue;
// the scheduler's deques hold group *tokens* ("group G has a task ready"),
// so a worker that pops or steals a token runs one task of that group.
// TaskGroup::Wait() runs the *group's own* queued tasks on the calling
// thread until none are left, then blocks until tasks claimed by other
// workers finish — the caller is a full participant, and helping is
// restricted to the waited-on group, which (together with the plan DAG
// being acyclic) rules out self-deadlock through nested groups.
//
// Cancellation is cooperative: Cancel() drops queued-but-unstarted tasks;
// running tasks may poll cancelled(). RecordError keeps the first non-OK
// Status (in arrival order) and cancels, for callers that only need "did
// anything fail". The structural evaluators instead store per-task Results
// and resolve the first error in task-index order themselves — the
// deterministic choice — calling Cancel() directly for short-circuits.
//
// A null scheduler (or a width-1 pool) degrades every primitive to inline
// execution on the calling thread, reproducing single-threaded behavior
// exactly; this is what EngineOptions.threads == 1 (the default) selects.
#ifndef PARAQUERY_RUNTIME_SCHEDULER_H_
#define PARAQUERY_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/query_context.hpp"
#include "common/status.hpp"

namespace paraquery {

class TaskGroup;
class Tracer;       // obs/trace.hpp
class PlanCapture;  // obs/analyze.hpp
struct QueryMetrics;  // obs/metrics.hpp

/// Fixed pool of workers with per-worker deques and work stealing.
class TaskScheduler {
 public:
  /// `threads` is the total execution width including the calling thread:
  /// the pool spawns threads - 1 workers (a width-1 scheduler spawns none
  /// and runs everything inline).
  explicit TaskScheduler(size_t threads);
  ~TaskScheduler();  // joins the workers; no TaskGroup may outlive the pool
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t threads() const { return threads_; }

  /// std::thread::hardware_concurrency with a floor of 1 (the meaning of
  /// EngineOptions.threads == 0).
  static size_t HardwareConcurrency();

  /// Worker-pool counters, bumped with relaxed atomics by the pool and
  /// scraped into the metrics registry by the engine after each query.
  struct Counters {
    std::atomic<uint64_t> tasks_run{0};    // tokens claimed and executed
    std::atomic<uint64_t> steals{0};       // tokens taken from foreign deques
    std::atomic<uint64_t> idle_sleeps{0};  // worker parks on the idle cv
  };
  const Counters& counters() const { return counters_; }

  /// Racy snapshot of queued-but-unclaimed task tokens (the instantaneous
  /// backlog across all deques).
  size_t QueuedTokens() const { return pending_tokens_.load(); }

 private:
  friend class TaskGroup;

  struct GroupCore;

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::shared_ptr<GroupCore>> tokens;
  };

  /// Publishes one runnable task of `core` (one token per spawned task).
  void Announce(std::shared_ptr<GroupCore> core);
  /// Pops a token from `home`'s deque (LIFO) or steals one from another
  /// deque (FIFO) and runs a task of that group. False if no token found.
  bool RunOneToken(size_t home);
  void WorkerLoop(size_t id);

  size_t threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> pending_tokens_{0};
  std::atomic<size_t> next_queue_{0};  // round-robin for external spawns
  std::atomic<bool> stop_{false};
  Counters counters_;
};

/// A set of tasks that complete together. Groups nest freely (a task may
/// create its own group); a group must be Wait()ed (the destructor does so)
/// before the objects its tasks reference go out of scope.
class TaskGroup {
 public:
  /// A null `scheduler` (or a width-1 pool) makes Spawn run the task
  /// immediately on the calling thread.
  explicit TaskGroup(TaskScheduler* scheduler);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn);

  /// Runs this group's queued tasks on the calling thread until none are
  /// left, then blocks until tasks claimed by other workers finish too.
  void Wait();

  /// Cooperative cancellation: queued-but-unstarted tasks are dropped;
  /// running tasks may poll cancelled().
  void Cancel();
  bool cancelled() const;

  /// Keeps the first non-OK status and cancels the group. Thread-safe.
  void RecordError(Status status);
  /// The first recorded error (OK if none). Meaningful after Wait().
  Status status() const;

 private:
  friend class TaskScheduler;

  TaskScheduler* scheduler_;
  std::shared_ptr<TaskScheduler::GroupCore> core_;
};

/// Splits [0, n) into chunks of at most `grain` indices and runs
/// fn(chunk_index, begin, end) for each — in order on the calling thread
/// when `scheduler` is null/width-1, as scheduler tasks otherwise (the
/// caller participates via Wait). Returns the number of chunks, so callers
/// can pre-size per-chunk output buffers with ChunkCount and merge them in
/// deterministic chunk order afterwards.
size_t ParallelChunks(TaskScheduler* scheduler, size_t n, size_t grain,
                      const std::function<void(size_t, size_t, size_t)>& fn);

/// Number of chunks ParallelChunks(n, grain) produces.
inline size_t ChunkCount(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// Binds the scheduler into the relational layer's scheduler-agnostic
/// parallel-for hook (common/parallel_for.hpp): the returned function runs
/// ParallelChunks over `scheduler`. A null/width-1 scheduler returns an
/// empty function, selecting the callers' inline sequential path.
ParallelForFn MakeParallelFor(TaskScheduler* scheduler);

/// Default rows per morsel for the data-parallel operators.
inline constexpr size_t kDefaultMorselRows = 4096;

/// Parallel-runtime binding threaded from EngineOptions through the
/// evaluator options into plan execution. Default-constructed it selects
/// sequential execution (today's single-threaded behavior).
struct RuntimeOptions {
  TaskScheduler* scheduler = nullptr;  // not owned; null = sequential
  size_t morsel_rows = kDefaultMorselRows;
  /// Minimum source rows for a Materialize boundary to engage the vectorized
  /// columnar pipeline; smaller sources run their chain row-at-a-time (the
  /// transpose and batch setup cost more than they save on typical Datalog
  /// delta batches). Mirrors EngineOptions::vec_min_source_rows.
  size_t vec_min_source_rows = 256;
  /// Shared abort state (deadline, cancellation, memory budget) of the
  /// running query, armed by the Engine. Not owned; null = unhardened
  /// execution with no abort polling.
  QueryContext* query_ctx = nullptr;
  /// Observability hooks, bound by the Engine (obs/). All optional and not
  /// owned; null = that facility is off and the instrumentation sites cost
  /// one pointer test. `tracer` collects spans; `metrics` carries
  /// pre-resolved histogram handles for hot-path observations; `analyze`
  /// snapshots executed-plan renders for EXPLAIN ANALYZE.
  Tracer* tracer = nullptr;
  const QueryMetrics* metrics = nullptr;
  PlanCapture* analyze = nullptr;

  bool parallel() const {
    return scheduler != nullptr && scheduler->threads() > 1;
  }
  /// True when a data-parallel operator should engage for `rows` input rows
  /// (parallel runtime active and at least two morsels of work).
  bool ShouldMorsel(size_t rows) const {
    size_t grain = morsel_rows == 0 ? 1 : morsel_rows;
    return parallel() && rows >= 2 * grain;
  }
  /// OK unless the bound query context has tripped (cancelled, past its
  /// deadline, or over its memory budget). Polled at operator, morsel,
  /// round, disjunct, and coloring boundaries.
  Status CheckInterrupt() const {
    return query_ctx == nullptr ? Status::OK() : query_ctx->Check();
  }
  /// Status-free form of CheckInterrupt for void contexts (morsel lambdas).
  bool Interrupted() const {
    return query_ctx != nullptr && query_ctx->Aborted();
  }
};

}  // namespace paraquery

#endif  // PARAQUERY_RUNTIME_SCHEDULER_H_

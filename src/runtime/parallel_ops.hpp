// Morsel-driven data-parallel relational operators: row-range morsels of the
// input RowBlock are processed by scheduler tasks into per-morsel output
// buffers, which are then merged in morsel order — so each operator's output
// holds exactly the rows, in exactly the order, its sequential counterpart
// in relational/ops.hpp produces. Join and semijoin probe a shared
// read-only RowIndex over the build side (built once, sequentially); the
// morsels split only the probe side.
//
// Callers (the plan executor) choose when to engage these via
// RuntimeOptions::ShouldMorsel; every function degrades to one inline chunk
// under a null/width-1 scheduler.
#ifndef PARAQUERY_RUNTIME_PARALLEL_OPS_H_
#define PARAQUERY_RUNTIME_PARALLEL_OPS_H_

#include <vector>

#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

class RowIndex;

/// Morsel-parallel σ. Output identical to Select(in, pred), including the
/// zero-copy view for an empty predicate. `morsels` (optional) accumulates
/// the number of morsels processed.
NamedRelation ParallelSelect(const NamedRelation& in, const Predicate& pred,
                             const RuntimeOptions& runtime,
                             size_t* morsels = nullptr);

/// Morsel-parallel π. Output identical to Project(in, attrs, dedup),
/// including the zero-copy view for a no-op projection (deduplication of
/// the merged output runs sequentially, preserving first occurrences).
NamedRelation ParallelProject(const NamedRelation& in,
                              const std::vector<AttrId>& attrs, bool dedup,
                              const RuntimeOptions& runtime,
                              size_t* morsels = nullptr);

/// Morsel-parallel ⋈ against a prebuilt index over `right` (see the indexed
/// NaturalJoin overload for the validity conditions). Implements the
/// unfiltered, unlimited fast path only — callers fall back to the
/// sequential kernel when a post filter or row cap applies. Output is
/// identical (rows and order) to NaturalJoin(left, right, right_index).
NamedRelation ParallelJoin(const NamedRelation& left,
                           const NamedRelation& right,
                           const RowIndex& right_index,
                           const RuntimeOptions& runtime,
                           size_t* morsels = nullptr);

/// Morsel-parallel ⋉. Output identical to Semijoin(left, right), including
/// the zero-copy all-survivors and nonempty-right degenerate paths.
NamedRelation ParallelSemijoin(const NamedRelation& left,
                               const NamedRelation& right,
                               const RuntimeOptions& runtime,
                               size_t* morsels = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_RUNTIME_PARALLEL_OPS_H_

#include "query/comparison_closure.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/scc.hpp"

namespace paraquery {

namespace {

// Graph node ids: variables 0..V-1, then one node per distinct constant.
struct NodeSpace {
  int num_vars;
  std::vector<Value> constants;  // sorted distinct

  int NodeOfConst(Value c) const {
    auto it = std::lower_bound(constants.begin(), constants.end(), c);
    return num_vars + static_cast<int>(it - constants.begin());
  }
  int NodeOf(const Term& t) const {
    return t.is_var() ? t.var() : NodeOfConst(t.value());
  }
  int total() const { return num_vars + static_cast<int>(constants.size()); }
  bool IsConstNode(int n) const { return n >= num_vars; }
  Value ConstOf(int n) const { return constants[n - num_vars]; }
};

}  // namespace

Result<ComparisonClosure> CollapseComparisons(const ConjunctiveQuery& query) {
  ComparisonClosure out;

  // Collect constants appearing in order/equality comparisons.
  std::set<Value> const_set;
  for (const CompareAtom& c : query.comparisons) {
    if (c.op == CompareOp::kNeq) continue;
    if (c.lhs.is_const()) const_set.insert(c.lhs.value());
    if (c.rhs.is_const()) const_set.insert(c.rhs.value());
  }
  NodeSpace space{query.NumVariables(),
                  std::vector<Value>(const_set.begin(), const_set.end())};

  // Build the constraint digraph; remember strict arcs for the SCC test.
  Digraph g(space.total());
  std::vector<std::pair<int, int>> strict_arcs;
  for (const CompareAtom& c : query.comparisons) {
    int u = space.NodeOf(c.lhs);
    int w = space.NodeOf(c.rhs);
    switch (c.op) {
      case CompareOp::kLt:
        g.AddArc(u, w);
        strict_arcs.push_back({u, w});
        break;
      case CompareOp::kLe:
        g.AddArc(u, w);
        break;
      case CompareOp::kEq:
        g.AddArc(u, w);
        g.AddArc(w, u);
        break;
      case CompareOp::kNeq:
        break;
    }
  }
  // Dense order between the constants themselves.
  for (size_t i = 0; i + 1 < space.constants.size(); ++i) {
    int u = space.num_vars + static_cast<int>(i);
    g.AddArc(u, u + 1);
    strict_arcs.push_back({u, u + 1});
  }

  SccResult scc = StronglyConnectedComponents(g);
  for (auto [u, w] : strict_arcs) {
    if (scc.component[u] == scc.component[w]) {
      out.consistent = false;
      return out;  // a strict arc inside an SCC: u < ... < u
    }
  }

  // Representative term per SCC: the constant if the component has one
  // (two constants in one SCC is impossible here: the chain arcs between
  // distinct constants are strict), else the smallest variable id.
  std::vector<Term> rep(scc.num_components, Term::Var(-1));
  std::vector<bool> rep_set(scc.num_components, false);
  for (int n = space.total() - 1; n >= 0; --n) {
    int comp = scc.component[n];
    if (space.IsConstNode(n)) {
      rep[comp] = Term::Const(space.ConstOf(n));
      rep_set[comp] = true;
    } else if (!rep_set[comp] || rep[comp].is_var()) {
      rep[comp] = Term::Var(n);
      rep_set[comp] = true;
    }
  }

  out.var_mapping.resize(query.NumVariables(), Term::Var(-1));
  for (int v = 0; v < query.NumVariables(); ++v) {
    out.var_mapping[v] = rep[scc.component[v]];
  }

  // Rewrite the query through the mapping.
  auto subst = [&](const Term& t) -> Term {
    return t.is_var() ? out.var_mapping[t.var()] : t;
  };
  ConjunctiveQuery& rq = out.rewritten;
  rq.vars = query.vars;
  rq.answer = query.answer;
  for (const Term& t : query.head) rq.head.push_back(subst(t));
  for (const Atom& a : query.body) {
    Atom na;
    na.relation = a.relation;
    for (const Term& t : a.terms) na.terms.push_back(subst(t));
    rq.body.push_back(std::move(na));
  }

  // Rebuild the comparison set on representatives.
  std::set<std::tuple<int, bool, long long, bool, long long>> seen;
  auto key = [](CompareOp op, const Term& a, const Term& b) {
    return std::make_tuple(static_cast<int>(op), a.is_var(),
                           a.is_var() ? static_cast<long long>(a.var())
                                      : static_cast<long long>(a.value()),
                           b.is_var(),
                           b.is_var() ? static_cast<long long>(b.var())
                                      : static_cast<long long>(b.value()));
  };
  for (const CompareAtom& c : query.comparisons) {
    Term a = subst(c.lhs);
    Term b = subst(c.rhs);
    if (c.op == CompareOp::kEq) continue;  // guaranteed by the collapse
    if (a.is_const() && b.is_const()) {
      if (!CompareAtom::Apply(c.op, a.value(), b.value())) {
        out.consistent = false;
        return out;
      }
      continue;  // trivially true; drop
    }
    if (a == b) {
      if (c.op == CompareOp::kLe) continue;  // x <= x holds
      out.consistent = false;  // x != x or x < x
      return out;
    }
    if (seen.insert(key(c.op, a, b)).second) {
      rq.comparisons.push_back({c.op, a, b});
    }
  }

  out.consistent = true;
  return out;
}

}  // namespace paraquery

// First-order queries (relational calculus): atoms, comparisons, ∧, ∨, ¬,
// ∃, ∀ over a database schema. This is the most expressive non-recursive
// language in the paper's classification (Theorem 1: W[t]-hard for all t
// under parameter q, W[P]-hard under parameter v).
//
// Variable shadowing is permitted (a quantifier may rebind a variable bound
// or free outside it); the paper's θ_{2i} construction depends on this to
// keep the variable count at k+2.
#ifndef PARAQUERY_QUERY_FIRST_ORDER_QUERY_H_
#define PARAQUERY_QUERY_FIRST_ORDER_QUERY_H_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "query/term.hpp"

namespace paraquery {

/// A first-order query {t0 | φ} with an explicit AST for φ.
class FirstOrderQuery {
 public:
  /// AST node kinds.
  enum class NodeKind { kAtom, kCompare, kAnd, kOr, kNot, kExists, kForall };

  struct Node {
    NodeKind kind = NodeKind::kAtom;
    /// kAtom: index into `atoms`.
    int atom = -1;
    /// kCompare: the comparison.
    CompareAtom compare;
    /// kAnd / kOr: >= 1 children; kNot / kExists / kForall: exactly 1.
    std::vector<int> children;
    /// kExists / kForall: bound variables (>= 1).
    std::vector<VarId> bound;
  };

  /// Output tuple t0; its variables are the intended free variables of root.
  std::vector<Term> head;
  std::vector<Atom> atoms;
  std::vector<Node> nodes;
  int root = -1;
  VarTable vars;
  /// Requested answer shape. For counting formulas (`COUNT(...) := φ`) the
  /// head holds the group keys (a subset of the free variables; empty for
  /// `COUNT(*)`), and the count ranges over the remaining free variables.
  AnswerSpec answer;

  // -- construction helpers (return the new node id) --
  int AddAtomNode(Atom atom);
  int AddCompareNode(CompareAtom compare);
  int AddAnd(std::vector<int> children);
  int AddOr(std::vector<int> children);
  int AddNot(int child);
  int AddExists(std::vector<VarId> bound, int child);
  int AddForall(std::vector<VarId> bound, int child);

  int NumVariables() const { return vars.size(); }

  /// Symbol-count size q of the query (atoms contribute 1 + arity, every
  /// connective/quantifier contributes 1 per node plus bound variables).
  size_t QuerySize() const;

  /// Free variables of node `n` (respecting shadowing), sorted.
  std::vector<VarId> FreeVariables(int n) const;

  /// Free variables of the root.
  std::vector<VarId> FreeVariables() const;

  /// Checks: root set, child ids in range and acyclic (children < parent is
  /// NOT required; an explicit DAG check runs instead), quantifiers bind at
  /// least one variable, free(root) ⊆ head variables. Counting formulas
  /// instead require head variables ⊆ free(root) (the group keys select a
  /// subset of the free variables; the rest are counted over) and a head of
  /// distinct variables.
  Status Validate() const;

  /// True if φ uses only kAtom, kAnd, kOr, kExists (a positive query).
  bool IsPositive() const;

  std::string ToString() const;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_FIRST_ORDER_QUERY_H_

// Text syntax for queries.
//
// Rule syntax (conjunctive queries, Datalog):
//     ans(x, y) :- E(x, z), E(z, y), x != y, z < 5.
//     tc(x, y)  :- E(x, y).
//     tc(x, y)  :- E(x, z), tc(z, y).
//     @goal tc.
//
// First-order / positive syntax:
//     q(x) := exists y . (E(x, y) and not forall z . (E(y, z) or z = x)).
//
// Identifiers in term position are variables; integers (and 'quoted strings',
// interned through the supplied Dictionary) are constants. `and`, `or`,
// `not`, `exists`, `forall` are reserved words. `%` and `#` start comments.
// Quantifier scope extends as far right as possible; parenthesize to limit.
#ifndef PARAQUERY_QUERY_PARSER_H_
#define PARAQUERY_QUERY_PARSER_H_

#include <string_view>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "query/first_order_query.hpp"
#include "query/positive_query.hpp"
#include "relational/dictionary.hpp"

namespace paraquery {

/// Parses a single rule with optional comparison atoms.
/// `dict` may be null if the text contains no string constants.
Result<ConjunctiveQuery> ParseConjunctive(std::string_view text,
                                          Dictionary* dict = nullptr);

/// Parses a Datalog program (one or more rules plus optional `@goal r.`;
/// the default goal is the head relation of the first rule).
Result<DatalogProgram> ParseDatalog(std::string_view text,
                                    Dictionary* dict = nullptr);

/// Parses `head := formula.` into a first-order query.
Result<FirstOrderQuery> ParseFirstOrder(std::string_view text,
                                        Dictionary* dict = nullptr);

/// Parses a first-order text and validates it is positive.
Result<PositiveQuery> ParsePositive(std::string_view text,
                                    Dictionary* dict = nullptr);

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_PARSER_H_

#include "query/term.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace paraquery {

std::vector<VarId> Atom::Variables() const {
  std::vector<VarId> vars;
  for (const Term& t : terms) {
    if (t.is_var() && std::find(vars.begin(), vars.end(), t.var()) ==
                          vars.end()) {
      vars.push_back(t.var());
    }
  }
  return vars;
}

VarId VarTable::Intern(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VarId>(i);
  }
  names_.push_back(name);
  return static_cast<VarId>(names_.size()) - 1;
}

VarId VarTable::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VarId>(i);
  }
  return -1;
}

VarId VarTable::Fresh(const std::string& hint) {
  std::string name = hint;
  int suffix = static_cast<int>(names_.size());
  while (Find(name) != -1) {
    name = hint + "#" + std::to_string(suffix++);
  }
  names_.push_back(name);
  return static_cast<VarId>(names_.size()) - 1;
}

}  // namespace paraquery

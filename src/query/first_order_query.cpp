#include "query/first_order_query.hpp"

#include <algorithm>
#include <set>

namespace paraquery {

namespace {
std::vector<VarId> SortedUnique(std::vector<VarId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

int FirstOrderQuery::AddAtomNode(Atom atom) {
  atoms.push_back(std::move(atom));
  Node n;
  n.kind = NodeKind::kAtom;
  n.atom = static_cast<int>(atoms.size()) - 1;
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddCompareNode(CompareAtom compare) {
  Node n;
  n.kind = NodeKind::kCompare;
  n.compare = compare;
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddAnd(std::vector<int> children) {
  PQ_CHECK(!children.empty(), "AND requires children");
  Node n;
  n.kind = NodeKind::kAnd;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddOr(std::vector<int> children) {
  PQ_CHECK(!children.empty(), "OR requires children");
  Node n;
  n.kind = NodeKind::kOr;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddNot(int child) {
  Node n;
  n.kind = NodeKind::kNot;
  n.children = {child};
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddExists(std::vector<VarId> bound, int child) {
  PQ_CHECK(!bound.empty(), "EXISTS requires bound variables");
  Node n;
  n.kind = NodeKind::kExists;
  n.bound = std::move(bound);
  n.children = {child};
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int FirstOrderQuery::AddForall(std::vector<VarId> bound, int child) {
  PQ_CHECK(!bound.empty(), "FORALL requires bound variables");
  Node n;
  n.kind = NodeKind::kForall;
  n.bound = std::move(bound);
  n.children = {child};
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

size_t FirstOrderQuery::QuerySize() const {
  size_t q = 1 + head.size();
  for (const Node& n : nodes) {
    q += 1 + n.bound.size();
    if (n.kind == NodeKind::kAtom) q += atoms[n.atom].terms.size();
    if (n.kind == NodeKind::kCompare) q += 2;
  }
  return q;
}

std::vector<VarId> FirstOrderQuery::FreeVariables(int n) const {
  // Memoized over node ids: the AST is a DAG (the paper's θ_{2t} chain shares
  // each θ_{2i-2} subformula), so plain recursion could revisit nodes.
  std::vector<std::vector<VarId>> memo(nodes.size());
  std::vector<char> done(nodes.size(), 0);
  auto compute = [&](auto&& self, int id) -> const std::vector<VarId>& {
    if (done[id]) return memo[id];
    const Node& node = nodes[id];
    std::vector<VarId> out;
    switch (node.kind) {
      case NodeKind::kAtom:
        out = atoms[node.atom].Variables();
        break;
      case NodeKind::kCompare:
        if (node.compare.lhs.is_var()) out.push_back(node.compare.lhs.var());
        if (node.compare.rhs.is_var()) out.push_back(node.compare.rhs.var());
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr:
        for (int c : node.children) {
          const auto& sub = self(self, c);
          out.insert(out.end(), sub.begin(), sub.end());
        }
        break;
      case NodeKind::kNot:
        out = self(self, node.children[0]);
        break;
      case NodeKind::kExists:
      case NodeKind::kForall: {
        const auto& sub = self(self, node.children[0]);
        for (VarId v : sub) {
          if (std::find(node.bound.begin(), node.bound.end(), v) ==
              node.bound.end()) {
            out.push_back(v);
          }
        }
        break;
      }
    }
    memo[id] = SortedUnique(std::move(out));
    done[id] = 1;
    return memo[id];
  };
  return compute(compute, n);
}

std::vector<VarId> FirstOrderQuery::FreeVariables() const {
  PQ_CHECK(root >= 0, "FreeVariables: root not set");
  return FreeVariables(root);
}

Status FirstOrderQuery::Validate() const {
  if (root < 0 || root >= static_cast<int>(nodes.size())) {
    return Status::InvalidArgument("first-order query: root not set");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    for (int c : n.children) {
      if (c < 0 || c >= static_cast<int>(nodes.size())) {
        return Status::InvalidArgument("first-order query: bad child id");
      }
    }
    switch (n.kind) {
      case NodeKind::kAtom:
        if (n.atom < 0 || n.atom >= static_cast<int>(atoms.size())) {
          return Status::InvalidArgument("first-order query: bad atom index");
        }
        break;
      case NodeKind::kNot:
        if (n.children.size() != 1) {
          return Status::InvalidArgument("NOT requires exactly one child");
        }
        break;
      case NodeKind::kExists:
      case NodeKind::kForall:
        if (n.children.size() != 1 || n.bound.empty()) {
          return Status::InvalidArgument(
              "quantifier requires one child and bound variables");
        }
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr:
        if (n.children.empty()) {
          return Status::InvalidArgument("AND/OR requires children");
        }
        break;
      case NodeKind::kCompare:
        break;
    }
    for (VarId v : n.bound) {
      if (v < 0 || v >= vars.size()) {
        return Status::InvalidArgument("bound variable id out of range");
      }
    }
  }
  // DAG check: DFS from root detecting cycles.
  std::vector<int> state(nodes.size(), 0);  // 0=unseen, 1=open, 2=done
  std::vector<std::pair<int, size_t>> stack = {{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    auto& [n, child] = stack.back();
    if (child < nodes[n].children.size()) {
      int c = nodes[n].children[child++];
      if (state[c] == 1) {
        return Status::InvalidArgument("first-order query AST has a cycle");
      }
      if (state[c] == 0) {
        state[c] = 1;
        stack.push_back({c, 0});
      }
    } else {
      state[n] = 2;
      stack.pop_back();
    }
  }
  // Head covers the free variables of the root (tuples mode); counting heads
  // are distinct variables selecting a subset of the free variables instead.
  std::set<VarId> head_vars;
  for (const Term& t : head) {
    if (t.is_var()) {
      if (t.var() < 0 || t.var() >= vars.size()) {
        return Status::InvalidArgument("head variable id out of range");
      }
      if (answer.counting() && head_vars.count(t.var())) {
        return Status::InvalidArgument(internal::StrCat(
            "counting query: repeated group key '", vars.name(t.var()), "'"));
      }
      head_vars.insert(t.var());
    } else if (answer.counting()) {
      return Status::InvalidArgument(
          "counting query: COUNT group keys must be variables");
    }
  }
  std::vector<VarId> free = FreeVariables(root);
  if (answer.counting()) {
    for (VarId v : head_vars) {
      if (std::find(free.begin(), free.end(), v) == free.end()) {
        return Status::InvalidArgument(internal::StrCat(
            "counting query: group key '", vars.name(v),
            "' is not a free variable of the formula"));
      }
    }
    return Status::OK();
  }
  for (VarId v : free) {
    if (head_vars.count(v) == 0) {
      return Status::InvalidArgument(internal::StrCat(
          "free variable '", vars.name(v), "' missing from the head"));
    }
  }
  return Status::OK();
}

bool FirstOrderQuery::IsPositive() const {
  for (const Node& n : nodes) {
    if (n.kind == NodeKind::kNot || n.kind == NodeKind::kForall ||
        n.kind == NodeKind::kCompare) {
      return false;
    }
  }
  return true;
}

}  // namespace paraquery

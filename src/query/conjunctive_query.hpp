// Conjunctive queries G(t0) :- R_i1(t1), ..., R_is(ts) [, comparisons] —
// the central query class of the paper. Carries optional ≠ / < / ≤ atoms so
// one type serves Theorem 1 (pure CQs), Theorem 2 (acyclic + ≠), and
// Theorem 3 (acyclic + comparisons).
#ifndef PARAQUERY_QUERY_CONJUNCTIVE_QUERY_H_
#define PARAQUERY_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hypergraph/hypergraph.hpp"
#include "query/term.hpp"

namespace paraquery {

/// What shape of answer a query asks for. The default (kTuples) is the
/// classical contract: a materialized relation of head tuples. Counting
/// queries (`COUNT(*) :- ...` / `COUNT(x, y) :- ...`) instead ask for the
/// NUMBER of satisfying assignments — total or per group — and the engine is
/// free to answer them without ever materializing the join output.
struct AnswerSpec {
  enum class Kind {
    kTuples,        ///< materialized head tuples (the classical contract)
    kCount,         ///< one scalar: # assignments to all body variables
    kGroupedCount,  ///< per head-tuple group: (group values..., count)
  };
  Kind kind = Kind::kTuples;

  bool counting() const { return kind != Kind::kTuples; }

  static AnswerSpec Tuples() { return {Kind::kTuples}; }
  static AnswerSpec Count() { return {Kind::kCount}; }
  static AnswerSpec GroupedCount() { return {Kind::kGroupedCount}; }

  bool operator==(const AnswerSpec& o) const { return kind == o.kind; }
};

/// A conjunctive query with optional comparison atoms.
class ConjunctiveQuery {
 public:
  /// Head terms t0 (variables must occur in the body: safety).
  std::vector<Term> head;
  /// Relational atoms of the body.
  std::vector<Atom> body;
  /// Comparison atoms (≠, <, ≤; = is only produced by parsing and is
  /// eliminated by the comparison closure).
  std::vector<CompareAtom> comparisons;
  /// Variable names (ids index into this table).
  VarTable vars;
  /// Requested answer shape. For counting queries the head holds the group
  /// keys (empty for the scalar `COUNT(*)`), the count column is implicit,
  /// and the count ranges over assignments to the REMAINING body variables.
  AnswerSpec answer;

  /// Number of distinct variables v (the paper's second parameter).
  int NumVariables() const { return vars.size(); }

  /// Query size q: symbol count of the standard encoding (relation name +
  /// terms per atom, head included, 3 per comparison). This is the paper's
  /// first parameter, up to the constant factor irrelevant for parametrized
  /// statements.
  size_t QuerySize() const;

  /// Variables occurring in the head / body (order of first occurrence).
  std::vector<VarId> HeadVariables() const;
  std::vector<VarId> BodyVariables() const;

  /// True if the query is Boolean (0-ary head).
  bool IsBoolean() const { return head.empty(); }

  /// Hypergraph over variables with one edge per *relational* atom — the
  /// object whose acyclicity defines "acyclic query" in Section 5 (inequality
  /// atoms are deliberately NOT edges).
  Hypergraph BuildHypergraph() const;

  /// True if BuildHypergraph() is acyclic.
  bool IsAcyclic() const;

  /// True if all comparison atoms are ≠.
  bool HasOnlyInequalities() const;
  /// True if some comparison atom is < or ≤.
  bool HasOrderComparisons() const;
  bool HasComparisons() const { return !comparisons.empty(); }

  /// Safety / well-formedness: head variables and comparison variables occur
  /// in relational atoms; term arities are positive; variable ids in range.
  /// Counting queries additionally require the head (the group keys) to be a
  /// list of DISTINCT VARIABLES — constants and repeats have no grouping
  /// meaning.
  Status Validate() const;

  /// Substitutes constants for variables (used to turn the decision problem
  /// "t ∈ Q(d)?" into an emptiness problem, as the paper does). `bindings`
  /// maps VarId -> Value for the variables to replace; the head is replaced
  /// by the empty (Boolean) head.
  ConjunctiveQuery BindHead(const std::vector<Value>& tuple) const;

  std::string ToString() const;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_CONJUNCTIVE_QUERY_H_

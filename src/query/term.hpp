// Terms (variables / constants) and relational atoms — the shared vocabulary
// of every query language in the paper (Section 3).
#ifndef PARAQUERY_QUERY_TERM_H_
#define PARAQUERY_QUERY_TERM_H_

#include <string>
#include <vector>

#include "relational/value.hpp"

namespace paraquery {

/// Dense variable id within one query (index into its variable table).
using VarId = int;

/// A term: either a query variable or a domain constant.
class Term {
 public:
  static Term Var(VarId v) {
    Term t;
    t.is_var_ = true;
    t.var_ = v;
    return t;
  }
  static Term Const(Value c) {
    Term t;
    t.is_var_ = false;
    t.value_ = c;
    return t;
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }
  VarId var() const { return var_; }
  Value value() const { return value_; }

  bool operator==(const Term& o) const {
    if (is_var_ != o.is_var_) return false;
    return is_var_ ? var_ == o.var_ : value_ == o.value_;
  }

 private:
  bool is_var_ = true;
  VarId var_ = -1;
  Value value_ = 0;
};

/// A relational atom R(t1, ..., tr). The relation is referenced by name and
/// resolved against a Database at evaluation time.
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  size_t arity() const { return terms.size(); }

  /// Distinct variables occurring in the atom, in order of first occurrence.
  std::vector<VarId> Variables() const;
};

/// Comparison operators allowed in query bodies. The paper distinguishes
/// inequalities (≠, Theorem 2: f.p. tractable for acyclic queries) from order
/// comparisons (<, ≤, Theorem 3: W[1]-complete already for acyclic queries).
enum class CompareOp { kNeq, kLt, kLe, kEq };

/// A comparison atom `lhs op rhs` between terms.
struct CompareAtom {
  CompareOp op = CompareOp::kNeq;
  Term lhs = Term::Var(-1);
  Term rhs = Term::Var(-1);

  /// Evaluates the comparison on concrete values.
  static bool Apply(CompareOp op, Value a, Value b) {
    switch (op) {
      case CompareOp::kNeq:
        return a != b;
      case CompareOp::kLt:
        return a < b;
      case CompareOp::kLe:
        return a <= b;
      case CompareOp::kEq:
        return a == b;
    }
    return false;
  }
};

/// Symbol table mapping variable names to dense ids.
class VarTable {
 public:
  /// Id for `name`, creating it on first use.
  VarId Intern(const std::string& name);

  /// Id for `name` or -1.
  VarId Find(const std::string& name) const;

  /// Creates a fresh variable with a unique generated name.
  VarId Fresh(const std::string& hint = "v");

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(VarId v) const { return names_[v]; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_TERM_H_

// Datalog programs: positive rules with recursion (IDB relations defined by
// rules over EDB relations). Section 4 of the paper: with fixed-arity EDB and
// IDB relations, Datalog evaluation is W[1]-complete; without the arity bound
// the query size provably appears in the exponent (Vardi).
#ifndef PARAQUERY_QUERY_DATALOG_H_
#define PARAQUERY_QUERY_DATALOG_H_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "query/term.hpp"
#include "relational/schema.hpp"

namespace paraquery {

/// One rule head :- body. Variables are scoped to the rule (each rule has
/// its own variable table).
struct DatalogRule {
  Atom head;
  std::vector<Atom> body;
  VarTable vars;

  /// Safety: every head variable occurs in the body.
  Status Validate() const;

  std::string ToString() const;
};

/// A Datalog program with a designated goal (output) relation.
class DatalogProgram {
 public:
  std::vector<DatalogRule> rules;
  /// Name of the goal relation (must be an IDB relation).
  std::string goal;

  /// Relations appearing in rule heads, in order of first definition.
  std::vector<std::string> IdbRelations() const;

  /// True if `name` is defined by some rule head.
  bool IsIdb(const std::string& name) const;

  /// Checks rule safety, consistent arities per relation across the program,
  /// and that the goal is an IDB relation.
  Status Validate() const;

  /// Arity of `relation` as used in this program, or -1 if absent.
  int ArityOf(const std::string& relation) const;

  /// Largest IDB arity — the quantity the paper's bounded-arity W[1]
  /// membership argument is parameterized by.
  int MaxIdbArity() const;

  /// Largest number of distinct variables in a single rule (parameter v).
  int MaxRuleVariables() const;

  /// Total symbol count (parameter q).
  size_t QuerySize() const;

  std::string ToString() const;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_DATALOG_H_

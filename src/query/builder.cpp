#include "query/builder.hpp"

namespace paraquery {

CqBuilder& CqBuilder::Head(std::initializer_list<Term> terms) {
  PQ_CHECK(!head_set_, "CqBuilder::Head called twice");
  q_.head.assign(terms.begin(), terms.end());
  head_set_ = true;
  return *this;
}

CqBuilder& CqBuilder::Atom(const std::string& relation,
                           std::initializer_list<Term> ts) {
  paraquery::Atom atom;
  atom.relation = relation;
  atom.terms.assign(ts.begin(), ts.end());
  q_.body.push_back(std::move(atom));
  return *this;
}

CqBuilder& CqBuilder::Compare(CompareOp op, Term a, Term b) {
  q_.comparisons.push_back({op, a, b});
  return *this;
}

Result<ConjunctiveQuery> CqBuilder::Build() {
  PQ_RETURN_NOT_OK(q_.Validate());
  return q_;
}

DatalogBuilder::RuleBuilder& DatalogBuilder::RuleBuilder::Head(
    const std::string& relation, std::initializer_list<Term> ts) {
  rule_.head.relation = relation;
  rule_.head.terms.assign(ts.begin(), ts.end());
  return *this;
}

DatalogBuilder::RuleBuilder& DatalogBuilder::RuleBuilder::Atom(
    const std::string& relation, std::initializer_list<Term> ts) {
  paraquery::Atom atom;
  atom.relation = relation;
  atom.terms.assign(ts.begin(), ts.end());
  rule_.body.push_back(std::move(atom));
  return *this;
}

DatalogBuilder::RuleBuilder& DatalogBuilder::Rule() {
  rules_.emplace_back();
  return rules_.back();
}

DatalogBuilder& DatalogBuilder::Goal(const std::string& relation) {
  goal_ = relation;
  return *this;
}

Result<DatalogProgram> DatalogBuilder::Build() {
  DatalogProgram program;
  for (RuleBuilder& rb : rules_) program.rules.push_back(std::move(rb.rule_));
  if (!goal_.empty()) {
    program.goal = goal_;
  } else if (!program.rules.empty()) {
    program.goal = program.rules.front().head.relation;
  }
  PQ_RETURN_NOT_OK(program.Validate());
  return program;
}

}  // namespace paraquery

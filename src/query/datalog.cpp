#include "query/datalog.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

namespace paraquery {

Status DatalogRule::Validate() const {
  std::set<VarId> body_vars;
  for (const Atom& a : body) {
    if (a.relation.empty()) {
      return Status::InvalidArgument("rule body atom with empty relation");
    }
    for (const Term& t : a.terms) {
      if (t.is_var()) body_vars.insert(t.var());
    }
  }
  for (const Term& t : head.terms) {
    if (t.is_var() && body_vars.count(t.var()) == 0) {
      return Status::InvalidArgument(internal::StrCat(
          "unsafe rule: head variable '", vars.name(t.var()),
          "' does not occur in the body"));
    }
  }
  return Status::OK();
}

std::string DatalogRule::ToString() const {
  std::ostringstream oss;
  auto print_atom = [this, &oss](const Atom& a) {
    oss << a.relation << "(";
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (i > 0) oss << ",";
      const Term& t = a.terms[i];
      if (t.is_var()) {
        oss << vars.name(t.var());
      } else {
        oss << t.value();
      }
    }
    oss << ")";
  };
  print_atom(head);
  oss << " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) oss << ", ";
    print_atom(body[i]);
  }
  oss << ".";
  return oss.str();
}

std::vector<std::string> DatalogProgram::IdbRelations() const {
  std::vector<std::string> out;
  for (const DatalogRule& r : rules) {
    if (std::find(out.begin(), out.end(), r.head.relation) == out.end()) {
      out.push_back(r.head.relation);
    }
  }
  return out;
}

bool DatalogProgram::IsIdb(const std::string& name) const {
  for (const DatalogRule& r : rules) {
    if (r.head.relation == name) return true;
  }
  return false;
}

Status DatalogProgram::Validate() const {
  if (rules.empty()) {
    return Status::InvalidArgument("Datalog program has no rules");
  }
  std::unordered_map<std::string, size_t> arity;
  for (const DatalogRule& r : rules) {
    PQ_RETURN_NOT_OK(r.Validate());
    auto check = [&arity](const Atom& a) -> Status {
      auto [it, inserted] = arity.emplace(a.relation, a.terms.size());
      if (!inserted && it->second != a.terms.size()) {
        return Status::InvalidArgument(internal::StrCat(
            "relation '", a.relation, "' used with arities ", it->second,
            " and ", a.terms.size()));
      }
      return Status::OK();
    };
    PQ_RETURN_NOT_OK(check(r.head));
    for (const Atom& a : r.body) PQ_RETURN_NOT_OK(check(a));
  }
  if (!IsIdb(goal)) {
    return Status::InvalidArgument(internal::StrCat(
        "goal relation '", goal, "' is not defined by any rule"));
  }
  return Status::OK();
}

int DatalogProgram::ArityOf(const std::string& relation) const {
  for (const DatalogRule& r : rules) {
    if (r.head.relation == relation) {
      return static_cast<int>(r.head.terms.size());
    }
    for (const Atom& a : r.body) {
      if (a.relation == relation) return static_cast<int>(a.terms.size());
    }
  }
  return -1;
}

int DatalogProgram::MaxIdbArity() const {
  int m = 0;
  for (const std::string& name : IdbRelations()) {
    m = std::max(m, ArityOf(name));
  }
  return m;
}

int DatalogProgram::MaxRuleVariables() const {
  int m = 0;
  for (const DatalogRule& r : rules) m = std::max(m, r.vars.size());
  return m;
}

size_t DatalogProgram::QuerySize() const {
  size_t q = 0;
  for (const DatalogRule& r : rules) {
    q += 1 + r.head.terms.size();
    for (const Atom& a : r.body) q += 1 + a.terms.size();
  }
  return q;
}

std::string DatalogProgram::ToString() const {
  std::ostringstream oss;
  for (const DatalogRule& r : rules) oss << r.ToString() << "\n";
  oss << "% goal: " << goal << "\n";
  return oss.str();
}

}  // namespace paraquery

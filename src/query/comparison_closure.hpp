// Comparison-constraint preprocessing (Section 5, "Comparison Constraints").
//
// Given a conjunctive query with < / ≤ atoms, the paper (following Klug)
// first checks consistency and collapses implied equalities: build the
// directed constraint graph over variables and constants with an arc u → w
// for u < w or u ≤ w (and between ordered constants); the system is
// consistent iff no strongly connected component contains a strict arc, and
// all members of an SCC are equal and are collapsed. Acyclicity of a
// comparison query (Theorem 3) is defined on the *collapsed* query.
#ifndef PARAQUERY_QUERY_COMPARISON_CLOSURE_H_
#define PARAQUERY_QUERY_COMPARISON_CLOSURE_H_

#include <vector>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"

namespace paraquery {

/// Result of collapsing the comparison constraints of a query.
struct ComparisonClosure {
  /// False if the constraints are unsatisfiable (an SCC contains a strict
  /// arc, two distinct constants are forced equal, or a ≠ atom collapses to
  /// x ≠ x). An inconsistent query has empty answer on every database.
  bool consistent = false;

  /// The rewritten query: equal variables merged, variables equal to a
  /// constant substituted, comparisons deduplicated, and the comparison
  /// graph now acyclic. Only meaningful when `consistent`.
  ConjunctiveQuery rewritten;

  /// For each original variable: the term it was mapped to in `rewritten`.
  std::vector<Term> var_mapping;
};

/// Computes the closure. The input query may contain =, ≠, <, ≤ atoms; the
/// output contains only ≠, <, ≤ atoms (and is inconsistency-free).
/// Constants are ordered as integers over a dense order, per the paper.
Result<ComparisonClosure> CollapseComparisons(const ConjunctiveQuery& query);

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_COMPARISON_CLOSURE_H_

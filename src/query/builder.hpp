// Fluent C++ builders for constructing queries programmatically without
// going through the text parser — the API a library user embeds.
//
//   CqBuilder b;
//   auto e = b.Var("e"); auto p = b.Var("p"); auto q = b.Var("q");
//   ConjunctiveQuery query = b.Head({e})
//                             .Atom("EP", {e, p})
//                             .Atom("EP", {e, q})
//                             .Neq(p, q)
//                             .Build()
//                             .ValueOrDie();
#ifndef PARAQUERY_QUERY_BUILDER_H_
#define PARAQUERY_QUERY_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"

namespace paraquery {

/// Builder for conjunctive queries (with ≠ / < / ≤ atoms).
class CqBuilder {
 public:
  /// Returns the term for variable `name` (interned on first use).
  Term Var(const std::string& name) { return Term::Var(q_.vars.Intern(name)); }

  /// Convenience for constants.
  static Term Const(Value v) { return Term::Const(v); }

  /// Sets the head tuple; call once.
  CqBuilder& Head(std::initializer_list<Term> terms);

  /// Appends a relational atom.
  CqBuilder& Atom(const std::string& relation, std::initializer_list<Term> ts);

  CqBuilder& Neq(Term a, Term b) { return Compare(CompareOp::kNeq, a, b); }
  CqBuilder& Lt(Term a, Term b) { return Compare(CompareOp::kLt, a, b); }
  CqBuilder& Le(Term a, Term b) { return Compare(CompareOp::kLe, a, b); }
  CqBuilder& Eq(Term a, Term b) { return Compare(CompareOp::kEq, a, b); }
  CqBuilder& Compare(CompareOp op, Term a, Term b);

  /// Validates and returns the query. The builder can be reused afterwards
  /// only by constructing a new one.
  Result<ConjunctiveQuery> Build();

 private:
  ConjunctiveQuery q_;
  bool head_set_ = false;
};

/// Builder for Datalog programs: one RuleBuilder per rule.
class DatalogBuilder {
 public:
  class RuleBuilder {
   public:
    Term Var(const std::string& name) {
      return Term::Var(rule_.vars.Intern(name));
    }
    RuleBuilder& Head(const std::string& relation,
                      std::initializer_list<Term> ts);
    RuleBuilder& Atom(const std::string& relation,
                      std::initializer_list<Term> ts);

   private:
    friend class DatalogBuilder;
    DatalogRule rule_;
  };

  /// Starts a new rule; the returned reference is valid until the next
  /// Rule() or Build() call.
  RuleBuilder& Rule();

  /// Sets the goal relation (defaults to the first rule's head).
  DatalogBuilder& Goal(const std::string& relation);

  Result<DatalogProgram> Build();

 private:
  std::vector<RuleBuilder> rules_;
  std::string goal_;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_BUILDER_H_

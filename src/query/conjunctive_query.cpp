#include "query/conjunctive_query.hpp"

#include <algorithm>
#include <set>

#include "hypergraph/gyo.hpp"

namespace paraquery {

size_t ConjunctiveQuery::QuerySize() const {
  size_t q = 1 + head.size();
  for (const Atom& a : body) q += 1 + a.terms.size();
  q += 3 * comparisons.size();
  return q;
}

std::vector<VarId> ConjunctiveQuery::HeadVariables() const {
  std::vector<VarId> out;
  for (const Term& t : head) {
    if (t.is_var() &&
        std::find(out.begin(), out.end(), t.var()) == out.end()) {
      out.push_back(t.var());
    }
  }
  return out;
}

std::vector<VarId> ConjunctiveQuery::BodyVariables() const {
  std::vector<VarId> out;
  for (const Atom& a : body) {
    for (const Term& t : a.terms) {
      if (t.is_var() &&
          std::find(out.begin(), out.end(), t.var()) == out.end()) {
        out.push_back(t.var());
      }
    }
  }
  return out;
}

Hypergraph ConjunctiveQuery::BuildHypergraph() const {
  Hypergraph h(vars.size());
  for (const Atom& a : body) h.AddEdge(a.Variables());
  return h;
}

bool ConjunctiveQuery::IsAcyclic() const {
  if (body.empty()) return true;
  return paraquery::IsAcyclic(BuildHypergraph());
}

bool ConjunctiveQuery::HasOnlyInequalities() const {
  for (const CompareAtom& c : comparisons) {
    if (c.op != CompareOp::kNeq) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasOrderComparisons() const {
  for (const CompareAtom& c : comparisons) {
    if (c.op == CompareOp::kLt || c.op == CompareOp::kLe) return true;
  }
  return false;
}

Status ConjunctiveQuery::Validate() const {
  std::set<VarId> body_vars;
  auto check_var = [this](const Term& t) -> Status {
    if (t.is_var() && (t.var() < 0 || t.var() >= vars.size())) {
      return Status::InvalidArgument("variable id out of range");
    }
    return Status::OK();
  };
  for (const Atom& a : body) {
    if (a.relation.empty()) {
      return Status::InvalidArgument("atom with empty relation name");
    }
    for (const Term& t : a.terms) {
      PQ_RETURN_NOT_OK(check_var(t));
      if (t.is_var()) body_vars.insert(t.var());
    }
  }
  for (const Term& t : head) {
    PQ_RETURN_NOT_OK(check_var(t));
    if (t.is_var() && body_vars.count(t.var()) == 0) {
      return Status::InvalidArgument(internal::StrCat(
          "unsafe query: head variable '", vars.name(t.var()),
          "' does not occur in any relational atom"));
    }
  }
  if (answer.counting()) {
    std::set<VarId> seen;
    for (const Term& t : head) {
      if (t.is_const()) {
        return Status::InvalidArgument(
            "counting query: COUNT group keys must be variables");
      }
      if (!seen.insert(t.var()).second) {
        return Status::InvalidArgument(internal::StrCat(
            "counting query: repeated group key '", vars.name(t.var()), "'"));
      }
    }
    if (answer.kind == AnswerSpec::Kind::kCount && !head.empty()) {
      return Status::InvalidArgument(
          "counting query: COUNT(*) takes no group keys");
    }
    if (answer.kind == AnswerSpec::Kind::kGroupedCount && head.empty()) {
      return Status::InvalidArgument(
          "counting query: grouped COUNT needs at least one group key");
    }
  }
  for (const CompareAtom& c : comparisons) {
    PQ_RETURN_NOT_OK(check_var(c.lhs));
    PQ_RETURN_NOT_OK(check_var(c.rhs));
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var() && body_vars.count(t->var()) == 0) {
        return Status::InvalidArgument(internal::StrCat(
            "unsafe query: comparison variable '", vars.name(t->var()),
            "' does not occur in any relational atom"));
      }
    }
  }
  return Status::OK();
}

ConjunctiveQuery ConjunctiveQuery::BindHead(
    const std::vector<Value>& tuple) const {
  PQ_CHECK(tuple.size() == head.size(),
           "BindHead: tuple arity does not match head arity");
  // Map head variables to the constants of `tuple`.
  std::vector<bool> bound(vars.size(), false);
  std::vector<Value> binding(vars.size(), 0);
  for (size_t i = 0; i < head.size(); ++i) {
    if (head[i].is_var()) {
      bound[head[i].var()] = true;
      binding[head[i].var()] = tuple[i];
    }
    // A constant head term must match the tuple; if it cannot, the caller
    // notices via an atom that can never be satisfied — encode by leaving it
    // to the evaluator (we add a contradiction below).
  }
  ConjunctiveQuery out;
  out.vars = vars;
  auto subst = [&](const Term& t) {
    if (t.is_var() && bound[t.var()]) return Term::Const(binding[t.var()]);
    return t;
  };
  for (const Atom& a : body) {
    Atom na;
    na.relation = a.relation;
    for (const Term& t : a.terms) na.terms.push_back(subst(t));
    out.body.push_back(std::move(na));
  }
  for (const CompareAtom& c : comparisons) {
    out.comparisons.push_back({c.op, subst(c.lhs), subst(c.rhs)});
  }
  // Constant head positions that disagree with `tuple` make Q(t) false;
  // encode as an always-false comparison.
  for (size_t i = 0; i < head.size(); ++i) {
    if (head[i].is_const() && head[i].value() != tuple[i]) {
      out.comparisons.push_back(
          {CompareOp::kNeq, Term::Const(0), Term::Const(0)});
    }
  }
  return out;
}

}  // namespace paraquery

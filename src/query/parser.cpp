#include "query/parser.hpp"

#include <cctype>
#include <charconv>
#include <string>
#include <vector>

namespace paraquery {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kRuleArrow,  // :-
  kDefArrow,   // :=
  kEq,         // =
  kNeq,        // !=
  kLt,         // <
  kLe,         // <=
  kStar,       // * (only valid inside a COUNT head)
  kAtGoal,     // @goal
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int64_t number = 0;
  size_t pos = 0;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%' || c == '#') {
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (IsIdentStart(c)) {
        while (i < text_.size() && IsIdentChar(text_[i])) ++i;
        out.push_back({TokKind::kIdent,
                       std::string(text_.substr(start, i - start)), 0, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        Token t{TokKind::kInt, std::string(text_.substr(start, i - start)), 0,
                start};
        // Same admission rule as the CSV loader: reject literals that
        // overflow Value (std::stoll would throw out_of_range and abort) or
        // fall in the dictionary's reserved code range, where they would
        // alias interned strings' codes.
        auto [ptr, ec] = std::from_chars(
            t.text.data(), t.text.data() + t.text.size(), t.number);
        if (ec != std::errc() || ptr != t.text.data() + t.text.size() ||
            Dictionary::InCodeRange(t.number)) {
          return Status::InvalidArgument(
              Err(start, "integer literal '" + t.text +
                             "' is out of the representable value range"));
        }
        out.push_back(std::move(t));
        continue;
      }
      switch (c) {
        case '\'': {
          ++i;
          size_t body = i;
          while (i < text_.size() && text_[i] != '\'') ++i;
          if (i == text_.size()) {
            return Status::InvalidArgument(
                Err(start, "unterminated string literal"));
          }
          out.push_back({TokKind::kString,
                         std::string(text_.substr(body, i - body)), 0, start});
          ++i;
          break;
        }
        case '(':
          out.push_back({TokKind::kLParen, "(", 0, start});
          ++i;
          break;
        case ')':
          out.push_back({TokKind::kRParen, ")", 0, start});
          ++i;
          break;
        case ',':
          out.push_back({TokKind::kComma, ",", 0, start});
          ++i;
          break;
        case '.':
          out.push_back({TokKind::kDot, ".", 0, start});
          ++i;
          break;
        case ':':
          if (i + 1 < text_.size() && text_[i + 1] == '-') {
            out.push_back({TokKind::kRuleArrow, ":-", 0, start});
            i += 2;
          } else if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kDefArrow, ":=", 0, start});
            i += 2;
          } else {
            return Status::InvalidArgument(Err(start, "expected ':-' or ':='"));
          }
          break;
        case '=':
          out.push_back({TokKind::kEq, "=", 0, start});
          ++i;
          break;
        case '*':
          out.push_back({TokKind::kStar, "*", 0, start});
          ++i;
          break;
        case '!':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kNeq, "!=", 0, start});
            i += 2;
          } else {
            return Status::InvalidArgument(Err(start, "expected '!='"));
          }
          break;
        case '<':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokKind::kLe, "<=", 0, start});
            i += 2;
          } else {
            out.push_back({TokKind::kLt, "<", 0, start});
            ++i;
          }
          break;
        case '@': {
          ++i;
          size_t ws = i;
          while (i < text_.size() && IsIdentChar(text_[i])) ++i;
          std::string word(text_.substr(ws, i - ws));
          if (word != "goal") {
            return Status::InvalidArgument(
                Err(start, "unknown directive '@" + word + "'"));
          }
          out.push_back({TokKind::kAtGoal, "@goal", 0, start});
          break;
        }
        default:
          return Status::InvalidArgument(
              Err(start, std::string("unexpected character '") + c + "'"));
      }
    }
    out.push_back({TokKind::kEnd, "", 0, text_.size()});
    return out;
  }

 private:
  std::string Err(size_t pos, const std::string& msg) const {
    return internal::StrCat("parse error at offset ", pos, ": ", msg);
  }
  std::string_view text_;
};

bool IsKeyword(const std::string& s) {
  return s == "and" || s == "or" || s == "not" || s == "exists" ||
         s == "forall";
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Dictionary* dict)
      : tokens_(std::move(tokens)), dict_(dict) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool At(TokKind k) const { return Peek().kind == k; }
  bool Accept(TokKind k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const char* what) {
    if (!Accept(k)) {
      return Status::InvalidArgument(internal::StrCat(
          "parse error at offset ", Peek().pos, ": expected ", what,
          ", found '", Peek().text, "'"));
    }
    return Status::OK();
  }

  // term := IDENT | INT | STRING — variables interned into `vars`.
  Result<Term> ParseTerm(VarTable* vars) {
    if (At(TokKind::kIdent)) {
      const Token& t = Next();
      if (IsKeyword(t.text)) {
        return Status::InvalidArgument(internal::StrCat(
            "parse error at offset ", t.pos, ": keyword '", t.text,
            "' cannot be a term"));
      }
      return Term::Var(vars->Intern(t.text));
    }
    if (At(TokKind::kInt)) {
      return Term::Const(Next().number);
    }
    if (At(TokKind::kString)) {
      const Token& t = Next();
      if (dict_ == nullptr) {
        return Status::InvalidArgument(internal::StrCat(
            "parse error at offset ", t.pos,
            ": string constant requires a Dictionary"));
      }
      return Term::Const(dict_->Intern(t.text));
    }
    return Status::InvalidArgument(internal::StrCat(
        "parse error at offset ", Peek().pos, ": expected a term, found '",
        Peek().text, "'"));
  }

  // atom := IDENT '(' [term (',' term)*] ')'
  Result<Atom> ParseAtom(VarTable* vars) {
    Atom atom;
    if (!At(TokKind::kIdent)) {
      return Status::InvalidArgument(internal::StrCat(
          "parse error at offset ", Peek().pos, ": expected relation name"));
    }
    atom.relation = Next().text;
    PQ_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    if (!Accept(TokKind::kRParen)) {
      for (;;) {
        PQ_ASSIGN_OR_RETURN(Term t, ParseTerm(vars));
        atom.terms.push_back(t);
        if (Accept(TokKind::kRParen)) break;
        PQ_RETURN_NOT_OK(Expect(TokKind::kComma, "','"));
      }
    }
    return atom;
  }

  // Comparison operator lookahead after a term.
  static bool IsCompare(TokKind k) {
    return k == TokKind::kEq || k == TokKind::kNeq || k == TokKind::kLt ||
           k == TokKind::kLe;
  }
  static CompareOp OpOf(TokKind k) {
    switch (k) {
      case TokKind::kEq:
        return CompareOp::kEq;
      case TokKind::kNeq:
        return CompareOp::kNeq;
      case TokKind::kLt:
        return CompareOp::kLt;
      default:
        return CompareOp::kLe;
    }
  }

  // body item: atom or comparison (term OP term).
  // Returns true if an atom was parsed, false for a comparison.
  Result<bool> ParseBodyItem(VarTable* vars, Atom* atom, CompareAtom* cmp) {
    // Atom iff IDENT followed by '('.
    if (At(TokKind::kIdent) && tokens_[pos_ + 1].kind == TokKind::kLParen) {
      PQ_ASSIGN_OR_RETURN(*atom, ParseAtom(vars));
      return true;
    }
    PQ_ASSIGN_OR_RETURN(Term lhs, ParseTerm(vars));
    if (!IsCompare(Peek().kind)) {
      return Status::InvalidArgument(internal::StrCat(
          "parse error at offset ", Peek().pos,
          ": expected comparison operator"));
    }
    CompareOp op = OpOf(Next().kind);
    PQ_ASSIGN_OR_RETURN(Term rhs, ParseTerm(vars));
    *cmp = {op, lhs, rhs};
    return false;
  }

  // A counting head: the exact (all-caps) token COUNT followed by '('.
  // Lowercase "count" stays available as an ordinary relation name.
  bool AtCountHead() const {
    return At(TokKind::kIdent) && Peek().text == "COUNT" &&
           tokens_[pos_ + 1].kind == TokKind::kLParen;
  }

  // count head := 'COUNT' '(' ('*' | term (',' term)*) ')'
  // `COUNT(*)` asks for the scalar count; `COUNT(x, ...)` for per-group
  // counts keyed on the listed variables (distinctness checked by Validate).
  Status ParseCountHead(VarTable* vars, std::vector<Term>* head,
                        AnswerSpec* answer) {
    Next();  // COUNT
    PQ_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    if (Accept(TokKind::kStar)) {
      PQ_RETURN_NOT_OK(Expect(TokKind::kRParen, "')' after '*'"));
      head->clear();
      *answer = AnswerSpec::Count();
      return Status::OK();
    }
    for (;;) {
      PQ_ASSIGN_OR_RETURN(Term t, ParseTerm(vars));
      head->push_back(t);
      if (Accept(TokKind::kRParen)) break;
      PQ_RETURN_NOT_OK(Expect(TokKind::kComma, "','"));
    }
    *answer = AnswerSpec::GroupedCount();
    return Status::OK();
  }

  // rule := (atom | counthead) ':-' bodyitem (',' bodyitem)* '.'
  // (body may be empty)
  Result<ConjunctiveQuery> ParseRule() {
    ConjunctiveQuery q;
    if (AtCountHead()) {
      PQ_RETURN_NOT_OK(ParseCountHead(&q.vars, &q.head, &q.answer));
      head_relation_ = "COUNT";
    } else {
      PQ_ASSIGN_OR_RETURN(Atom head, ParseAtom(&q.vars));
      q.head = head.terms;
      head_relation_ = head.relation;
    }
    PQ_RETURN_NOT_OK(Expect(TokKind::kRuleArrow, "':-'"));
    if (!Accept(TokKind::kDot)) {
      for (;;) {
        Atom atom;
        CompareAtom cmp;
        PQ_ASSIGN_OR_RETURN(bool is_atom, ParseBodyItem(&q.vars, &atom, &cmp));
        if (is_atom) {
          q.body.push_back(std::move(atom));
        } else {
          q.comparisons.push_back(cmp);
        }
        if (Accept(TokKind::kDot)) break;
        PQ_RETURN_NOT_OK(Expect(TokKind::kComma, "','"));
      }
    }
    return q;
  }

  // -- first-order formulas --
  // or := and ('or' and)* ; and := unary ('and' unary)* ;
  // unary := 'not' unary | ('exists'|'forall') varlist '.' or
  //        | '(' or ')' | atom | comparison
  Result<int> ParseOr(FirstOrderQuery* q) {
    PQ_ASSIGN_OR_RETURN(int first, ParseAnd(q));
    std::vector<int> children = {first};
    while (AtKeyword("or")) {
      Next();
      PQ_ASSIGN_OR_RETURN(int next, ParseAnd(q));
      children.push_back(next);
    }
    if (children.size() == 1) return children[0];
    return q->AddOr(std::move(children));
  }

  Result<int> ParseAnd(FirstOrderQuery* q) {
    PQ_ASSIGN_OR_RETURN(int first, ParseUnary(q));
    std::vector<int> children = {first};
    while (AtKeyword("and")) {
      Next();
      PQ_ASSIGN_OR_RETURN(int next, ParseUnary(q));
      children.push_back(next);
    }
    if (children.size() == 1) return children[0];
    return q->AddAnd(std::move(children));
  }

  bool AtKeyword(const char* kw) const {
    return At(TokKind::kIdent) && Peek().text == kw;
  }

  Result<int> ParseUnary(FirstOrderQuery* q) {
    if (AtKeyword("not")) {
      Next();
      PQ_ASSIGN_OR_RETURN(int child, ParseUnary(q));
      return q->AddNot(child);
    }
    if (AtKeyword("exists") || AtKeyword("forall")) {
      bool is_exists = Peek().text == "exists";
      Next();
      std::vector<VarId> bound;
      for (;;) {
        if (!At(TokKind::kIdent) || IsKeyword(Peek().text)) {
          return Status::InvalidArgument(internal::StrCat(
              "parse error at offset ", Peek().pos,
              ": expected quantified variable name"));
        }
        bound.push_back(q->vars.Intern(Next().text));
        if (!Accept(TokKind::kComma)) break;
      }
      PQ_RETURN_NOT_OK(Expect(TokKind::kDot, "'.' after quantifier"));
      PQ_ASSIGN_OR_RETURN(int child, ParseOr(q));
      return is_exists ? q->AddExists(std::move(bound), child)
                       : q->AddForall(std::move(bound), child);
    }
    if (Accept(TokKind::kLParen)) {
      PQ_ASSIGN_OR_RETURN(int inner, ParseOr(q));
      PQ_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    // Atom or comparison.
    if (At(TokKind::kIdent) && !IsKeyword(Peek().text) &&
        tokens_[pos_ + 1].kind == TokKind::kLParen) {
      PQ_ASSIGN_OR_RETURN(Atom atom, ParseAtom(&q->vars));
      return q->AddAtomNode(std::move(atom));
    }
    PQ_ASSIGN_OR_RETURN(Term lhs, ParseTerm(&q->vars));
    if (!IsCompare(Peek().kind)) {
      return Status::InvalidArgument(internal::StrCat(
          "parse error at offset ", Peek().pos,
          ": expected comparison operator"));
    }
    CompareOp op = OpOf(Next().kind);
    PQ_ASSIGN_OR_RETURN(Term rhs, ParseTerm(&q->vars));
    return q->AddCompareNode({op, lhs, rhs});
  }

  Result<FirstOrderQuery> ParseFoQuery() {
    FirstOrderQuery q;
    if (AtCountHead()) {
      PQ_RETURN_NOT_OK(ParseCountHead(&q.vars, &q.head, &q.answer));
    } else {
      PQ_ASSIGN_OR_RETURN(Atom head, ParseAtom(&q.vars));
      q.head = head.terms;
    }
    PQ_RETURN_NOT_OK(Expect(TokKind::kDefArrow, "':='"));
    PQ_ASSIGN_OR_RETURN(q.root, ParseOr(&q));
    PQ_RETURN_NOT_OK(Expect(TokKind::kDot, "'.'"));
    PQ_RETURN_NOT_OK(Expect(TokKind::kEnd, "end of input"));
    PQ_RETURN_NOT_OK(q.Validate());
    return q;
  }

  const std::string& head_relation() const { return head_relation_; }
  bool AtEnd() const { return At(TokKind::kEnd); }

  Result<std::string> ParseGoalDirective() {
    PQ_RETURN_NOT_OK(Expect(TokKind::kAtGoal, "'@goal'"));
    if (!At(TokKind::kIdent)) {
      return Status::InvalidArgument("expected relation name after @goal");
    }
    std::string goal = Next().text;
    PQ_RETURN_NOT_OK(Expect(TokKind::kDot, "'.'"));
    return goal;
  }

 private:
  std::vector<Token> tokens_;
  Dictionary* dict_;
  size_t pos_ = 0;
  std::string head_relation_;
};

}  // namespace

Result<ConjunctiveQuery> ParseConjunctive(std::string_view text,
                                          Dictionary* dict) {
  PQ_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens), dict);
  PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, p.ParseRule());
  if (!p.AtEnd()) {
    return Status::InvalidArgument(
        "trailing input after rule (use ParseDatalog for programs)");
  }
  PQ_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<DatalogProgram> ParseDatalog(std::string_view text, Dictionary* dict) {
  PQ_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens), dict);
  DatalogProgram program;
  bool goal_set = false;
  while (!p.AtEnd()) {
    if (p.Peek().kind == TokKind::kAtGoal) {
      PQ_ASSIGN_OR_RETURN(program.goal, p.ParseGoalDirective());
      goal_set = true;
      continue;
    }
    PQ_ASSIGN_OR_RETURN(ConjunctiveQuery cq, p.ParseRule());
    if (!cq.comparisons.empty()) {
      return Status::Unimplemented(
          "comparison atoms are not supported in Datalog rules");
    }
    if (cq.answer.counting()) {
      return Status::Unimplemented(
          "COUNT heads are not supported in Datalog rules");
    }
    DatalogRule rule;
    rule.head.relation = p.head_relation();
    rule.head.terms = cq.head;
    rule.body = std::move(cq.body);
    rule.vars = std::move(cq.vars);
    if (!goal_set && program.rules.empty()) {
      program.goal = rule.head.relation;
    }
    program.rules.push_back(std::move(rule));
  }
  PQ_RETURN_NOT_OK(program.Validate());
  return program;
}

Result<FirstOrderQuery> ParseFirstOrder(std::string_view text,
                                        Dictionary* dict) {
  PQ_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens), dict);
  return p.ParseFoQuery();
}

Result<PositiveQuery> ParsePositive(std::string_view text, Dictionary* dict) {
  PQ_ASSIGN_OR_RETURN(FirstOrderQuery fo, ParseFirstOrder(text, dict));
  return PositiveQuery::FromFirstOrder(std::move(fo));
}

}  // namespace paraquery

#include "query/ineq_formula.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace paraquery {

int IneqFormula::AddAtom(CompareAtom atom) {
  PQ_CHECK(atom.op == CompareOp::kNeq, "IneqFormula accepts only != atoms");
  Node n;
  n.kind = NodeKind::kAtom;
  n.atom = atom;
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int IneqFormula::AddAnd(std::vector<int> children) {
  PQ_CHECK(!children.empty(), "AND requires children");
  Node n;
  n.kind = NodeKind::kAnd;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int IneqFormula::AddOr(std::vector<int> children) {
  PQ_CHECK(!children.empty(), "OR requires children");
  Node n;
  n.kind = NodeKind::kOr;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

std::vector<VarId> IneqFormula::Variables() const {
  std::set<VarId> vars;
  for (const Node& n : nodes) {
    if (n.kind != NodeKind::kAtom) continue;
    if (n.atom.lhs.is_var()) vars.insert(n.atom.lhs.var());
    if (n.atom.rhs.is_var()) vars.insert(n.atom.rhs.var());
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

std::vector<Value> IneqFormula::Constants() const {
  std::set<Value> consts;
  for (const Node& n : nodes) {
    if (n.kind != NodeKind::kAtom) continue;
    if (n.atom.lhs.is_const()) consts.insert(n.atom.lhs.value());
    if (n.atom.rhs.is_const()) consts.insert(n.atom.rhs.value());
  }
  return std::vector<Value>(consts.begin(), consts.end());
}

int IneqFormula::HashRange() const {
  return static_cast<int>(Variables().size() + Constants().size());
}

bool IneqFormula::Evaluate(
    const std::function<Value(const Term&)>& value_of) const {
  PQ_CHECK(root >= 0, "IneqFormula::Evaluate: root not set");
  auto eval = [&](auto&& self, int id) -> bool {
    const Node& n = nodes[id];
    switch (n.kind) {
      case NodeKind::kAtom:
        return value_of(n.atom.lhs) != value_of(n.atom.rhs);
      case NodeKind::kAnd:
        for (int c : n.children) {
          if (!self(self, c)) return false;
        }
        return true;
      case NodeKind::kOr:
        for (int c : n.children) {
          if (self(self, c)) return true;
        }
        return false;
    }
    return false;
  };
  return eval(eval, root);
}

Result<std::vector<std::vector<CompareAtom>>> IneqFormula::ToDnf(
    uint64_t max_disjuncts) const {
  PQ_RETURN_NOT_OK(Validate());
  auto expand = [&](auto&& self,
                    int id) -> Result<std::vector<std::vector<CompareAtom>>> {
    const Node& n = nodes[id];
    switch (n.kind) {
      case NodeKind::kAtom:
        return std::vector<std::vector<CompareAtom>>{{n.atom}};
      case NodeKind::kOr: {
        std::vector<std::vector<CompareAtom>> out;
        for (int c : n.children) {
          PQ_ASSIGN_OR_RETURN(auto sub, self(self, c));
          out.insert(out.end(), sub.begin(), sub.end());
          if (out.size() > max_disjuncts) {
            return Status::ResourceExhausted("DNF expansion too large");
          }
        }
        return out;
      }
      case NodeKind::kAnd: {
        std::vector<std::vector<CompareAtom>> acc = {{}};
        for (int c : n.children) {
          PQ_ASSIGN_OR_RETURN(auto sub, self(self, c));
          if (acc.size() * sub.size() > max_disjuncts) {
            return Status::ResourceExhausted("DNF expansion too large");
          }
          std::vector<std::vector<CompareAtom>> next;
          next.reserve(acc.size() * sub.size());
          for (const auto& a : acc) {
            for (const auto& b : sub) {
              auto merged = a;
              merged.insert(merged.end(), b.begin(), b.end());
              next.push_back(std::move(merged));
            }
          }
          acc = std::move(next);
        }
        return acc;
      }
    }
    return Status::Internal("unreachable");
  };
  return expand(expand, root);
}

Status IneqFormula::Validate() const {
  if (root < 0 || root >= static_cast<int>(nodes.size())) {
    return Status::InvalidArgument("inequality formula: root not set");
  }
  for (const Node& n : nodes) {
    if (n.kind == NodeKind::kAtom) {
      if (n.atom.op != CompareOp::kNeq) {
        return Status::InvalidArgument("inequality formula: non-!= atom");
      }
    } else if (n.children.empty()) {
      return Status::InvalidArgument("inequality formula: empty connective");
    }
    for (int c : n.children) {
      if (c < 0 || c >= static_cast<int>(nodes.size())) {
        return Status::InvalidArgument("inequality formula: bad child id");
      }
    }
  }
  // Cycle check via DFS.
  std::vector<int> state(nodes.size(), 0);
  std::vector<std::pair<int, size_t>> stack = {{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    auto& [id, child] = stack.back();
    if (child < nodes[id].children.size()) {
      int c = nodes[id].children[child++];
      if (state[c] == 1) {
        return Status::InvalidArgument("inequality formula: cyclic AST");
      }
      if (state[c] == 0) {
        state[c] = 1;
        stack.push_back({c, 0});
      }
    } else {
      state[id] = 2;
      stack.pop_back();
    }
  }
  return Status::OK();
}

std::string IneqFormula::ToString(const VarTable& vars) const {
  if (root < 0) return "<empty>";
  std::ostringstream oss;
  auto print = [&](auto&& self, int id) -> void {
    const Node& n = nodes[id];
    auto term = [&](const Term& t) {
      if (t.is_var()) {
        oss << (t.var() >= 0 && t.var() < vars.size() ? vars.name(t.var())
                                                      : "?");
      } else {
        oss << t.value();
      }
    };
    switch (n.kind) {
      case NodeKind::kAtom:
        term(n.atom.lhs);
        oss << " != ";
        term(n.atom.rhs);
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr: {
        const char* op = n.kind == NodeKind::kAnd ? " and " : " or ";
        oss << "(";
        for (size_t i = 0; i < n.children.size(); ++i) {
          if (i > 0) oss << op;
          self(self, n.children[i]);
        }
        oss << ")";
        break;
      }
    }
  };
  print(print, root);
  return oss.str();
}

}  // namespace paraquery

// ToString implementations for query types (round-trips through the parser
// syntax in parser.hpp).

#include <sstream>

#include "query/conjunctive_query.hpp"
#include "query/first_order_query.hpp"

namespace paraquery {

namespace {

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

void PrintTerm(std::ostringstream& oss, const VarTable& vars, const Term& t) {
  if (t.is_var()) {
    oss << (t.var() >= 0 && t.var() < vars.size() ? vars.name(t.var())
                                                  : "?badvar");
  } else {
    oss << t.value();
  }
}

// Head prefix "name(" or "COUNT(" / "COUNT(*" for counting queries.
void PrintHead(std::ostringstream& oss, const VarTable& vars,
               const std::vector<Term>& head, const AnswerSpec& answer,
               const char* tuple_name) {
  oss << (answer.counting() ? "COUNT" : tuple_name) << "(";
  if (answer.kind == AnswerSpec::Kind::kCount) {
    oss << "*";
  } else {
    for (size_t i = 0; i < head.size(); ++i) {
      if (i > 0) oss << ",";
      PrintTerm(oss, vars, head[i]);
    }
  }
  oss << ")";
}

void PrintAtom(std::ostringstream& oss, const VarTable& vars, const Atom& a) {
  oss << a.relation << "(";
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (i > 0) oss << ",";
    PrintTerm(oss, vars, a.terms[i]);
  }
  oss << ")";
}

}  // namespace

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream oss;
  PrintHead(oss, vars, head, answer, "ans");
  oss << " :- ";
  bool first = true;
  for (const Atom& a : body) {
    if (!first) oss << ", ";
    first = false;
    PrintAtom(oss, vars, a);
  }
  for (const CompareAtom& c : comparisons) {
    if (!first) oss << ", ";
    first = false;
    PrintTerm(oss, vars, c.lhs);
    oss << " " << OpText(c.op) << " ";
    PrintTerm(oss, vars, c.rhs);
  }
  oss << ".";
  return oss.str();
}

std::string FirstOrderQuery::ToString() const {
  std::ostringstream oss;
  PrintHead(oss, vars, head, answer, "q");
  oss << " := ";
  auto print = [&](auto&& self, int id) -> void {
    const Node& n = nodes[id];
    switch (n.kind) {
      case NodeKind::kAtom:
        PrintAtom(oss, vars, atoms[n.atom]);
        break;
      case NodeKind::kCompare:
        PrintTerm(oss, vars, n.compare.lhs);
        oss << " " << OpText(n.compare.op) << " ";
        PrintTerm(oss, vars, n.compare.rhs);
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr: {
        const char* op = n.kind == NodeKind::kAnd ? " and " : " or ";
        oss << "(";
        for (size_t i = 0; i < n.children.size(); ++i) {
          if (i > 0) oss << op;
          self(self, n.children[i]);
        }
        oss << ")";
        break;
      }
      case NodeKind::kNot:
        oss << "not ";
        self(self, n.children[0]);
        break;
      case NodeKind::kExists:
      case NodeKind::kForall:
        oss << (n.kind == NodeKind::kExists ? "exists " : "forall ");
        for (size_t i = 0; i < n.bound.size(); ++i) {
          if (i > 0) oss << ",";
          oss << vars.name(n.bound[i]);
        }
        oss << " . (";
        self(self, n.children[0]);
        oss << ")";
        break;
    }
  };
  if (root >= 0) {
    print(print, root);
  } else {
    oss << "<unset>";
  }
  oss << ".";
  return oss.str();
}

}  // namespace paraquery

// Boolean combinations of inequality atoms — the parameter-q extension the
// paper sketches after Theorem 2: "instead of a conjunction of inequalities
// in the body, we have an arbitrary Boolean formula φ built from inequality
// atoms using ∨ and ∧". The hash range becomes k = #variables + #constants
// of φ, and the selection is applied at the root of the join tree (it cannot
// be pushed down past an ∨).
#ifndef PARAQUERY_QUERY_INEQ_FORMULA_H_
#define PARAQUERY_QUERY_INEQ_FORMULA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "query/term.hpp"

namespace paraquery {

/// An ∧/∨ tree over ≠ atoms.
class IneqFormula {
 public:
  enum class NodeKind { kAtom, kAnd, kOr };

  struct Node {
    NodeKind kind = NodeKind::kAtom;
    CompareAtom atom;            // kAtom (op must be kNeq)
    std::vector<int> children;   // kAnd / kOr, nonempty
  };

  std::vector<Node> nodes;
  int root = -1;

  int AddAtom(CompareAtom atom);
  int AddAnd(std::vector<int> children);
  int AddOr(std::vector<int> children);

  bool empty() const { return root < 0; }

  /// Distinct variables / constants appearing in the formula (sorted).
  std::vector<VarId> Variables() const;
  std::vector<Value> Constants() const;

  /// The parameter of the extension: #variables + #constants.
  int HashRange() const;

  /// Evaluates the formula; `value_of` resolves a term to a value (either
  /// the real value of a variable or its color — the caller decides).
  bool Evaluate(const std::function<Value(const Term&)>& value_of) const;

  /// Expands to DNF: each disjunct is a conjunction of ≠ atoms (used as
  /// ground truth in tests; exponential in the formula size). Fails with
  /// ResourceExhausted beyond `max_disjuncts`.
  Result<std::vector<std::vector<CompareAtom>>> ToDnf(
      uint64_t max_disjuncts = 100'000) const;

  /// Structural checks: root set, ≠ atoms only, children in range, acyclic.
  Status Validate() const;

  std::string ToString(const VarTable& vars) const;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_INEQ_FORMULA_H_

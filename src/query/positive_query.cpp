#include "query/positive_query.hpp"

#include <algorithm>
#include <unordered_map>

namespace paraquery {

Result<PositiveQuery> PositiveQuery::FromFirstOrder(FirstOrderQuery fo) {
  PQ_RETURN_NOT_OK(fo.Validate());
  if (!fo.IsPositive()) {
    return Status::InvalidArgument(
        "positive query may not contain NOT, FORALL, or comparison atoms");
  }
  PositiveQuery q;
  q.fo_ = std::move(fo);
  return q;
}

namespace {

// A partial disjunct during expansion: a list of atoms with variables
// already renamed apart into the output variable table.
using AtomList = std::vector<Atom>;

struct Expander {
  const FirstOrderQuery& fo;
  uint64_t max_disjuncts;
  VarTable out_vars;  // variable table of the expanded CQs

  // Environment: fo VarId -> renamed VarId. Free (head) variables map to
  // themselves; quantifiers push fresh bindings.
  std::unordered_map<VarId, VarId> env;

  Status status = Status::OK();

  // Renames the variables of an atom through env. Unbound variables are an
  // internal error (Validate guarantees free(root) ⊆ head).
  Atom Rename(const Atom& a) {
    Atom out;
    out.relation = a.relation;
    for (const Term& t : a.terms) {
      if (t.is_const()) {
        out.terms.push_back(t);
        continue;
      }
      auto it = env.find(t.var());
      PQ_CHECK(it != env.end(), "expansion: unbound variable in atom");
      out.terms.push_back(Term::Var(it->second));
    }
    return out;
  }

  // Returns the disjunct expansion of node `n` (each AtomList is one CQ
  // body). Resets `status` on resource exhaustion.
  std::vector<AtomList> Expand(int n) {
    if (!status.ok()) return {};
    const auto& node = fo.nodes[n];
    using Kind = FirstOrderQuery::NodeKind;
    switch (node.kind) {
      case Kind::kAtom:
        return {{Rename(fo.atoms[node.atom])}};
      case Kind::kOr: {
        std::vector<AtomList> out;
        for (int c : node.children) {
          auto sub = Expand(c);
          out.insert(out.end(), std::make_move_iterator(sub.begin()),
                     std::make_move_iterator(sub.end()));
          if (out.size() > max_disjuncts) {
            status = Status::ResourceExhausted(
                "positive query expansion exceeds disjunct limit");
            return {};
          }
        }
        return out;
      }
      case Kind::kAnd: {
        std::vector<AtomList> acc = {{}};
        for (int c : node.children) {
          auto sub = Expand(c);
          if (!status.ok()) return {};
          std::vector<AtomList> next;
          if (acc.size() * sub.size() > max_disjuncts) {
            status = Status::ResourceExhausted(
                "positive query expansion exceeds disjunct limit");
            return {};
          }
          next.reserve(acc.size() * sub.size());
          for (const AtomList& a : acc) {
            for (const AtomList& b : sub) {
              AtomList merged = a;
              merged.insert(merged.end(), b.begin(), b.end());
              next.push_back(std::move(merged));
            }
          }
          acc = std::move(next);
        }
        return acc;
      }
      case Kind::kExists: {
        // Standardize apart: bind each quantified variable to a fresh name.
        std::vector<std::pair<VarId, bool>> saved;  // (old mapping, had one)
        std::vector<VarId> old_values;
        for (VarId v : node.bound) {
          auto it = env.find(v);
          saved.push_back({v, it != env.end()});
          old_values.push_back(it != env.end() ? it->second : -1);
          env[v] = out_vars.Fresh(fo.vars.name(v));
        }
        auto out = Expand(node.children[0]);
        for (size_t i = 0; i < saved.size(); ++i) {
          if (saved[i].second) {
            env[saved[i].first] = old_values[i];
          } else {
            env.erase(saved[i].first);
          }
        }
        return out;
      }
      case Kind::kCompare:
      case Kind::kNot:
      case Kind::kForall:
        PQ_CHECK(false, "non-positive node in positive query expansion");
    }
    return {};
  }
};

}  // namespace

Result<std::vector<ConjunctiveQuery>> PositiveQuery::ToUnionOfCqs(
    uint64_t max_disjuncts) const {
  Expander ex{fo_, max_disjuncts, {}, {}, Status::OK()};
  // Free (head) variables keep their names.
  for (const Term& t : fo_.head) {
    if (t.is_var()) {
      ex.env[t.var()] = ex.out_vars.Intern(fo_.vars.name(t.var()));
    }
  }
  auto disjuncts = ex.Expand(fo_.root);
  PQ_RETURN_NOT_OK(ex.status);

  std::vector<ConjunctiveQuery> out;
  out.reserve(disjuncts.size());
  for (AtomList& atoms : disjuncts) {
    ConjunctiveQuery cq;
    cq.vars = ex.out_vars;
    for (const Term& t : fo_.head) {
      cq.head.push_back(t.is_var() ? Term::Var(ex.env[t.var()]) : t);
    }
    cq.body = std::move(atoms);
    Status safe = cq.Validate();
    if (!safe.ok()) {
      return Status::InvalidArgument(internal::StrCat(
          "positive query has an unsafe disjunct: ", safe.message()));
    }
    out.push_back(std::move(cq));
  }
  return out;
}

}  // namespace paraquery

// Positive queries: first-order queries restricted to atoms, ∧, ∨, ∃.
// Theorem 1 classifies them W[1]-complete under parameter q (via the
// exponential expansion into a union of conjunctive queries implemented
// here) and W[SAT]-hard under parameter v.
#ifndef PARAQUERY_QUERY_POSITIVE_QUERY_H_
#define PARAQUERY_QUERY_POSITIVE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "query/first_order_query.hpp"

namespace paraquery {

/// A positive query, represented as a validated positive FO AST.
class PositiveQuery {
 public:
  /// Wraps `fo` after checking positivity (no ¬, ∀, or comparison nodes)
  /// and well-formedness.
  static Result<PositiveQuery> FromFirstOrder(FirstOrderQuery fo);

  const FirstOrderQuery& fo() const { return fo_; }

  size_t QuerySize() const { return fo_.QuerySize(); }
  int NumVariables() const { return fo_.NumVariables(); }

  /// Expands into an equivalent union of conjunctive queries by
  /// standardizing variables apart and distributing ∧ over ∨ — the paper's
  /// "union of (exponentially many in q) conjunctive queries". Fails with
  /// ResourceExhausted if more than `max_disjuncts` disjuncts arise, and
  /// with InvalidArgument if some disjunct is unsafe (a head variable not
  /// covered by a relational atom in that disjunct).
  Result<std::vector<ConjunctiveQuery>> ToUnionOfCqs(
      uint64_t max_disjuncts = 1'000'000) const;

  std::string ToString() const { return fo_.ToString(); }

 private:
  FirstOrderQuery fo_;
};

}  // namespace paraquery

#endif  // PARAQUERY_QUERY_POSITIVE_QUERY_H_

// Wall-clock timer for examples and ad-hoc measurements (benchmarks use
// google-benchmark's own timing).
#ifndef PARAQUERY_COMMON_TIMER_H_
#define PARAQUERY_COMMON_TIMER_H_

#include <chrono>

namespace paraquery {

/// Monotonic nanosecond timestamp (steady_clock). The span clock of the
/// tracing layer (obs/trace.hpp): span endpoints taken on different threads
/// are directly comparable.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace paraquery

#endif  // PARAQUERY_COMMON_TIMER_H_

#include "common/status.hpp"

namespace paraquery {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::Expect(const char* context) const {
  if (ok()) return;
  std::cerr << "Fatal status";
  if (context != nullptr && context[0] != '\0') std::cerr << " in " << context;
  std::cerr << ": " << ToString() << "\n";
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace paraquery

// Small combinatorial helpers shared by solvers and the color-coding driver.
#ifndef PARAQUERY_COMMON_COMBINATORICS_H_
#define PARAQUERY_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace paraquery {

/// Binomial coefficient C(n, k), saturating at UINT64_MAX on overflow.
uint64_t Binomial(uint64_t n, uint64_t k);

/// Bell number B(n) (number of set partitions), saturating on overflow.
uint64_t Bell(uint64_t n);

/// Iterates over all k-element subsets of {0,...,n-1} in lexicographic order,
/// invoking `fn` with the current subset. Stops early if `fn` returns false.
/// Returns false iff stopped early.
bool ForEachKSubset(int n, int k,
                    const std::function<bool(const std::vector<int>&)>& fn);

/// Iterates over all set partitions of {0,...,n-1}, presented as a block-id
/// vector (partition[i] = block index of element i, blocks numbered in order
/// of first appearance). Stops early if `fn` returns false; returns false iff
/// stopped early.
bool ForEachSetPartition(int n,
                         const std::function<bool(const std::vector<int>&)>& fn);

/// Number of set partitions of an n-set into at most k blocks.
uint64_t StirlingPartialSum(uint64_t n, uint64_t k);

}  // namespace paraquery

#endif  // PARAQUERY_COMMON_COMBINATORICS_H_

#include "common/query_context.hpp"

#include <chrono>

namespace paraquery {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::shared_ptr<MemoryAccountant>& MemoryAccountant::CurrentSlot() {
  thread_local std::shared_ptr<MemoryAccountant> current;
  return current;
}

const std::shared_ptr<MemoryAccountant>& MemoryAccountant::Current() {
  return CurrentSlot();
}

void QueryContext::ArmDeadline(uint64_t max_wall_ms) {
  max_wall_ms_ = max_wall_ms;
  deadline_ns_.store(
      max_wall_ms == 0
          ? 0
          : NowNs() + static_cast<int64_t>(max_wall_ms) * 1000000,
      std::memory_order_relaxed);
}

void QueryContext::ArmMemory(uint64_t max_bytes) {
  memory_ = max_bytes == 0 ? nullptr
                           : std::make_shared<MemoryAccountant>(max_bytes);
}

void QueryContext::Reset() {
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  max_wall_ms_ = 0;
  memory_ = nullptr;
}

Status QueryContext::Check() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNs() >= deadline) {
    return Status::DeadlineExceeded(internal::StrCat(
        "query deadline of ", max_wall_ms_, " ms exceeded"));
  }
  if (memory_ != nullptr && memory_->tripped()) {
    return Status::ResourceExhausted(internal::StrCat(
        "query memory budget of ", memory_->limit(), " bytes exceeded (peak ",
        memory_->peak(), " bytes)"));
  }
  return Status::OK();
}

bool QueryContext::Aborted() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNs() >= deadline) return true;
  return memory_ != nullptr && memory_->tripped();
}

}  // namespace paraquery

#include "common/fault_injection.hpp"

#include <mutex>

namespace paraquery {

std::atomic<bool> FaultInjector::armed_{false};

namespace {

// All slow-path state lives behind one mutex; the armed_ flag outside is the
// only thing probes touch when disarmed.
struct InjectorState {
  std::mutex mu;
  bool recording = false;
  std::vector<std::string> recorded;
  uint64_t hit_count = 0;
  bool fired = false;
  // Nth-hit arming: fail when hit_count reaches nth_target (0 = off).
  uint64_t nth_target = 0;
  // Named arming: fail on the point_countdown-th hit of point_name
  // (empty name = off).
  std::string point_name;
  uint64_t point_countdown = 0;
};

InjectorState& State() {
  static InjectorState state;
  return state;
}

}  // namespace

Status FaultInjector::Hit(const char* point) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.hit_count;
  if (s.recording) s.recorded.emplace_back(point);
  bool inject = false;
  if (s.nth_target != 0 && s.hit_count == s.nth_target) {
    inject = true;
  } else if (!s.point_name.empty() && s.point_name == point &&
             s.point_countdown > 0 && --s.point_countdown == 0) {
    inject = true;
  }
  if (inject) {
    s.fired = true;
    return Status::Internal(
        internal::StrCat("injected fault at ", point));
  }
  return Status::OK();
}

void FaultInjector::StartRecording() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.recording = true;
  s.recorded.clear();
  s.hit_count = 0;
  s.fired = false;
  s.nth_target = 0;
  s.point_name.clear();
  s.point_countdown = 0;
  armed_.store(true, std::memory_order_relaxed);
}

std::vector<std::string> FaultInjector::StopRecording() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.recording = false;
  std::vector<std::string> out = std::move(s.recorded);
  s.recorded.clear();
  bool still_armed = s.nth_target != 0 || !s.point_name.empty();
  armed_.store(still_armed, std::memory_order_relaxed);
  return out;
}

void FaultInjector::ArmNth(uint64_t k) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.hit_count = 0;
  s.fired = false;
  s.nth_target = k;
  s.point_name.clear();
  s.point_countdown = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmPoint(std::string point, uint64_t countdown) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.hit_count = 0;
  s.fired = false;
  s.nth_target = 0;
  s.point_name = std::move(point);
  s.point_countdown = countdown == 0 ? 1 : countdown;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.recording = false;
  s.recorded.clear();
  s.hit_count = 0;
  s.fired = false;
  s.nth_target = 0;
  s.point_name.clear();
  s.point_countdown = 0;
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultInjector::hits() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.hit_count;
}

bool FaultInjector::fired() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.fired;
}

}  // namespace paraquery

#include "common/rng.hpp"

// Header-only; this TU anchors the library target.

#include "common/combinatorics.hpp"

#include <limits>

namespace paraquery {

namespace {
constexpr uint64_t kSaturated = std::numeric_limits<uint64_t>::max();

// a*b with saturation.
uint64_t MulSat(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

uint64_t AddSat(uint64_t a, uint64_t b) {
  if (a > kSaturated - b) return kSaturated;
  return a + b;
}
}  // namespace

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    // result * (n-k+i) / i is always integral when applied in this order,
    // but the intermediate product may overflow; saturate.
    uint64_t num = n - k + i;
    if (result > kSaturated / num) return kSaturated;
    result = result * num / i;
  }
  return result;
}

uint64_t Bell(uint64_t n) {
  // Bell triangle with saturation; B(25) already exceeds 4e18.
  std::vector<uint64_t> row = {1};
  uint64_t bell = 1;
  for (uint64_t i = 1; i <= n; ++i) {
    std::vector<uint64_t> next(i + 1);
    next[0] = row.back();
    for (uint64_t j = 0; j + 1 <= i; ++j) next[j + 1] = AddSat(next[j], row[j]);
    row = std::move(next);
    bell = row[0];
    if (bell == kSaturated) return kSaturated;
  }
  return bell;
}

bool ForEachKSubset(int n, int k,
                    const std::function<bool(const std::vector<int>&)>& fn) {
  if (k < 0 || k > n) return true;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) return fn(idx);
  for (;;) {
    if (!fn(idx)) return false;
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return true;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

bool ForEachSetPartition(
    int n, const std::function<bool(const std::vector<int>&)>& fn) {
  if (n == 0) {
    std::vector<int> empty;
    return fn(empty);
  }
  // Restricted-growth strings: blocks[i] <= 1 + max(blocks[0..i-1]).
  std::vector<int> blocks(n, 0);
  std::vector<int> maxes(n, 0);  // maxes[i] = max(blocks[0..i])
  for (;;) {
    if (!fn(blocks)) return false;
    int i = n - 1;
    while (i > 0 && blocks[i] == maxes[i - 1] + 1) --i;
    if (i == 0) return true;
    ++blocks[i];
    maxes[i] = std::max(maxes[i - 1], blocks[i]);
    for (int j = i + 1; j < n; ++j) {
      blocks[j] = 0;
      maxes[j] = maxes[i];
    }
  }
}

uint64_t StirlingPartialSum(uint64_t n, uint64_t k) {
  // S(n, j) via the triangle S(n, j) = j*S(n-1, j) + S(n-1, j-1).
  std::vector<uint64_t> row(n + 1, 0);
  row[0] = 1;  // S(0,0) = 1
  for (uint64_t i = 1; i <= n; ++i) {
    std::vector<uint64_t> next(n + 1, 0);
    for (uint64_t j = 1; j <= i; ++j) {
      next[j] = AddSat(MulSat(j, row[j]), row[j - 1]);
    }
    row = std::move(next);
  }
  uint64_t total = 0;
  for (uint64_t j = 0; j <= k && j <= n; ++j) total = AddSat(total, row[j]);
  return total;
}

}  // namespace paraquery

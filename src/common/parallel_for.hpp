// A scheduler-agnostic parallel-for hook for the relational layer.
//
// The storage/kernel code in src/relational/ must not depend on the task
// scheduler in src/runtime/ (the runtime already depends on relational).
// Data-parallel relational primitives — the partitioned RowIndex build,
// parallel HashDedup, the row->column transpose — instead accept a
// ParallelForFn: the runtime binds one over its work-stealing scheduler
// (MakeParallelFor in runtime/scheduler.hpp), while a null/empty function
// means "run inline, sequentially, in chunk order".
//
// Contract (mirrors runtime/ParallelChunks): the function splits [0, n)
// into chunks of at most `grain` indices, invokes fn(chunk_index, begin,
// end) once per chunk, returns the number of chunks, and does not return
// before every invocation has finished. Callers must produce results that
// are byte-identical to the sequential in-order execution — per-chunk
// outputs merged in chunk order, disjoint pre-sized output slices, etc.
#ifndef PARAQUERY_COMMON_PARALLEL_FOR_H_
#define PARAQUERY_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace paraquery {

/// One chunk of a parallel loop: fn(chunk_index, begin, end).
using ChunkFn = std::function<void(size_t, size_t, size_t)>;

/// Parallel-for binding; empty = sequential.
using ParallelForFn = std::function<size_t(size_t, size_t, const ChunkFn&)>;

/// Runs fn over [0, n) in chunks of `grain` through `pfor` when bound, or
/// inline in chunk order otherwise. Returns the chunk count.
inline size_t ForChunks(const ParallelForFn& pfor, size_t n, size_t grain,
                        const ChunkFn& fn) {
  if (pfor) return pfor(n, grain, fn);
  if (grain == 0) grain = 1;
  size_t chunks = 0;
  for (size_t begin = 0; begin < n; begin += grain, ++chunks) {
    fn(chunks, begin, begin + grain < n ? begin + grain : n);
  }
  return chunks;
}

}  // namespace paraquery

#endif  // PARAQUERY_COMMON_PARALLEL_FOR_H_

// Deterministic fault injection for exercising error-unwind paths.
//
// Library code marks recoverable failure sites with PQ_FAULT_POINT("name");
// when the injector is disarmed (the default, including all production use)
// each probe costs one relaxed atomic load of a global flag. Tests arm the
// injector to make the k-th probe hit — or the k-th hit of one named probe —
// return Status::Internal, then assert that the failure surfaces as a clean
// Status and that the engine remains usable.
//
// The registry is process-global and mutex-guarded on the armed slow path, so
// sweeps are deterministic at threads=1 and well-defined (first-arrival) at
// higher thread counts. Typical sweep shape:
//
//   FaultInjector::StartRecording();
//   RunWorkload();                                  // count the probes
//   auto points = FaultInjector::StopRecording();
//   for (uint64_t k = 1; k <= points.size(); ++k) {
//     FaultInjector::ArmNth(k);
//     ExpectCleanFailureOrVerifiedOk(RunWorkload());
//     FaultInjector::Disarm();
//     ExpectBaselineAnswer(RunWorkload());          // engine still healthy
//   }
#ifndef PARAQUERY_COMMON_FAULT_INJECTION_H_
#define PARAQUERY_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace paraquery {

/// Process-global fault-injection registry. All methods are thread-safe.
class FaultInjector {
 public:
  /// Fast path checked by PQ_FAULT_POINT: true iff recording or armed.
  static bool armed() { return armed_.load(std::memory_order_relaxed); }

  /// Slow path: registers a probe hit; returns the injected failure when
  /// this hit is the armed one, OK otherwise.
  static Status Hit(const char* point);

  /// Starts recording probe-hit names (clears previous recording).
  static void StartRecording();
  /// Stops recording and returns the hit names in arrival order.
  static std::vector<std::string> StopRecording();

  /// Arms the k-th probe hit (1-based, counted globally from now) to fail.
  static void ArmNth(uint64_t k);
  /// Arms the `countdown`-th hit (1-based) of the named probe to fail.
  static void ArmPoint(std::string point, uint64_t countdown);

  /// Disarms everything and clears counters; probes return to the cheap path.
  static void Disarm();

  /// Total probe hits since the last Disarm/Arm*/StartRecording.
  static uint64_t hits();
  /// True iff an armed fault has actually fired since arming.
  static bool fired();

 private:
  static std::atomic<bool> armed_;
};

}  // namespace paraquery

/// Marks a recoverable failure site inside a Status-returning function.
/// Near-zero cost when the injector is disarmed.
#define PQ_FAULT_POINT(point_name)                                       \
  do {                                                                   \
    if (::paraquery::FaultInjector::armed()) {                           \
      ::paraquery::Status _pq_fault =                                    \
          ::paraquery::FaultInjector::Hit(point_name);                   \
      if (!_pq_fault.ok()) return _pq_fault;                             \
    }                                                                    \
  } while (false)

#endif  // PARAQUERY_COMMON_FAULT_INJECTION_H_

// Query-hardening primitives: a wall-clock deadline, a caller-driven
// cancellation token, and a byte-level memory accountant, bundled into one
// QueryContext shared by every thread of a query's execution.
//
// Design
// ------
// The engine arms one QueryContext per Run (from EngineOptions::limits, or
// the caller supplies a long-lived token through EngineOptions::query_ctx to
// cancel from another thread) and threads a raw pointer through
// RuntimeOptions into the plan executor, the morsel loops, the Datalog
// fixpoint, the UCQ disjunct fan-out, and the Theorem 2 coloring loop. Each
// of those polls Check() at its natural quantum — per operator, per morsel,
// per round, per disjunct, per coloring — so an abort lands within one
// quantum of the trigger at any thread count. All state is atomics: Cancel()
// may be called from any thread while a query runs.
//
// Memory is charged at the storage layer, not at the check sites: every
// RowBlock captures the thread-current MemoryAccountant at creation
// (MemoryAccountant::Current), charges its buffer capacity on allocation and
// growth, and releases it on destruction. ScopedMemoryAccounting installs
// the accountant for a scope; TaskGroup::Spawn propagates the spawner's
// accountant into scheduler tasks, so worker-thread allocations are charged
// to the same budget. Exceeding the budget latches `tripped`; the next
// Check() anywhere surfaces it as ResourceExhausted — allocation sites never
// fail mid-copy.
#ifndef PARAQUERY_COMMON_QUERY_CONTEXT_H_
#define PARAQUERY_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.hpp"

namespace paraquery {

/// Atomic byte meter with an optional hard limit. Thread-safe; shared
/// (shared_ptr) between the QueryContext that checks it and every RowBlock
/// that charges it, so blocks outliving the query release cleanly.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Adds `delta` bytes (negative on release). Trips the latch when a
  /// nonzero limit is exceeded; never fails — Check() surfaces the trip.
  void Charge(int64_t delta) {
    uint64_t now = used_.fetch_add(static_cast<uint64_t>(delta),
                                   std::memory_order_relaxed) +
                   static_cast<uint64_t>(delta);
    if (delta > 0) {
      uint64_t peak = peak_.load(std::memory_order_relaxed);
      while (now > peak &&
             !peak_.compare_exchange_weak(peak, now,
                                          std::memory_order_relaxed)) {
      }
      if (limit_ != 0 && now > limit_) {
        tripped_.store(true, std::memory_order_relaxed);
      }
    }
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  /// Latched: once the limit is exceeded the budget stays tripped even if
  /// blocks are freed, so an aborting query cannot "un-fail" mid-unwind.
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// The accountant RowBlock allocations on this thread are charged to
  /// (null = unaccounted, the default outside engine runs).
  static const std::shared_ptr<MemoryAccountant>& Current();

 private:
  friend class ScopedMemoryAccounting;
  static std::shared_ptr<MemoryAccountant>& CurrentSlot();

  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> tripped_{false};
};

/// RAII: installs `accountant` as the thread-current one for the scope
/// (restores the previous on destruction). Null installs "unaccounted".
class ScopedMemoryAccounting {
 public:
  explicit ScopedMemoryAccounting(std::shared_ptr<MemoryAccountant> accountant)
      : prev_(std::move(MemoryAccountant::CurrentSlot())) {
    MemoryAccountant::CurrentSlot() = std::move(accountant);
  }
  ~ScopedMemoryAccounting() {
    MemoryAccountant::CurrentSlot() = std::move(prev_);
  }
  ScopedMemoryAccounting(const ScopedMemoryAccounting&) = delete;
  ScopedMemoryAccounting& operator=(const ScopedMemoryAccounting&) = delete;

 private:
  std::shared_ptr<MemoryAccountant> prev_;
};

/// Shared per-query abort state: deadline + cancellation + memory budget.
/// Arm* methods are called before execution fans out (or between runs);
/// Cancel() and Check() are thread-safe at any time.
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Sets the deadline to now + `max_wall_ms` (0 disarms).
  void ArmDeadline(uint64_t max_wall_ms);

  /// Installs a FRESH accountant with the given byte limit (0 disarms).
  /// Fresh per arm: bytes charged by earlier runs' still-live blocks are
  /// theirs, not this run's.
  void ArmMemory(uint64_t max_bytes);

  /// Requests cancellation. Sticky until Reset() — callers owning a token
  /// across runs reset it between them.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Clears cancellation, the deadline, and the memory budget.
  void Reset();

  /// First tripped condition as a Status: kCancelled, then
  /// kDeadlineExceeded, then ResourceExhausted (memory). OK otherwise.
  Status Check() const;

  /// Cheap polling form of Check() for loops that cannot return a Status
  /// (morsel lambdas): true iff Check() would fail.
  bool Aborted() const;

  /// The armed memory budget (null when ArmMemory was not called).
  const std::shared_ptr<MemoryAccountant>& memory() const { return memory_; }

 private:
  std::atomic<bool> cancelled_{false};
  /// Deadline as steady-clock nanoseconds-since-epoch; 0 = unarmed.
  std::atomic<int64_t> deadline_ns_{0};
  uint64_t max_wall_ms_ = 0;  // for the error message
  std::shared_ptr<MemoryAccountant> memory_;
};

}  // namespace paraquery

#endif  // PARAQUERY_COMMON_QUERY_CONTEXT_H_

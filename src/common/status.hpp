// Status / Result error model, following the Arrow/RocksDB idiom: no exceptions
// cross library boundaries; fallible functions return Status or Result<T>.
#ifndef PARAQUERY_COMMON_STATUS_H_
#define PARAQUERY_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace paraquery {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy in the OK case (single enum); error details are stored in an
/// inline string. Follows the Google/Arrow convention: functions that can fail
/// return Status (or Result<T>), and callers propagate with PQ_RETURN_NOT_OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process if not OK; used at the edges (examples, benches).
  void Expect(const char* context = "") const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& st);

/// A value-or-error sum type: holds either a T or a non-OK Status.
///
/// The moved-from accessors follow Arrow's Result: `ValueOrDie()` aborts on
/// error (edge use only); library code uses PQ_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Aborts if `status` is OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; undefined if !ok() (checked in debug).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or aborts with the error message.
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_ << "\n";
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

namespace internal {
/// Builds an error message from stream-style fragments.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace internal

}  // namespace paraquery

/// Propagates a non-OK Status from the current function.
#define PQ_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::paraquery::Status _pq_st = (expr);         \
    if (!_pq_st.ok()) return _pq_st;             \
  } while (false)

#define PQ_CONCAT_IMPL(a, b) a##b
#define PQ_CONCAT(a, b) PQ_CONCAT_IMPL(a, b)

/// Assigns the value of a Result<T> expression to `lhs` or propagates error.
#define PQ_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto PQ_CONCAT(_pq_result_, __LINE__) = (rexpr);              \
  if (!PQ_CONCAT(_pq_result_, __LINE__).ok())                   \
    return PQ_CONCAT(_pq_result_, __LINE__).status();           \
  lhs = std::move(PQ_CONCAT(_pq_result_, __LINE__)).value()

/// Invariant check active in all build types (cheap conditions only).
#define PQ_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "PQ_CHECK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " << (msg) << "\n";                                \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#ifndef NDEBUG
#define PQ_DCHECK(cond, msg) PQ_CHECK(cond, msg)
#else
#define PQ_DCHECK(cond, msg) \
  do {                       \
  } while (false)
#endif

#endif  // PARAQUERY_COMMON_STATUS_H_

// Deterministic, explicitly-seeded pseudo-random generation.
//
// Every randomized component of the library (color coding, workload
// generators, Monte Carlo drivers) takes an explicit seed so that tests and
// benchmarks are reproducible run to run.
#ifndef PARAQUERY_COMMON_RNG_H_
#define PARAQUERY_COMMON_RNG_H_

#include <cstdint>

namespace paraquery {

/// SplitMix64: fast, high-quality 64-bit PRNG with a 64-bit state.
///
/// Chosen over std::mt19937_64 for speed, tiny state, and a trivially
/// reproducible specification (important: libstdc++ distributions are not
/// portable across versions, so we implement our own bounded sampling).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    // Debiased via rejection from the top of the range.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p) draw; p in [0,1].
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

 private:
  uint64_t state_;
};

}  // namespace paraquery

#endif  // PARAQUERY_COMMON_RNG_H_

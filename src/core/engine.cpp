#include "core/engine.hpp"

#include <algorithm>

#include "core/explain.hpp"
#include "eval/acyclic.hpp"
#include "query/comparison_closure.hpp"
#include "query/parser.hpp"

namespace paraquery {

namespace {

// Heuristic syntax dispatch for RunText/ExplainText.
enum class TextKind { kRule, kDatalogProgram, kFormula };

TextKind SniffKind(const std::string& text) {
  if (text.find(":=") != std::string::npos) return TextKind::kFormula;
  // Count rule arrows outside comments: two or more (or a @goal directive)
  // means a Datalog program.
  size_t arrows = 0;
  for (size_t pos = 0; (pos = text.find(":-", pos)) != std::string::npos;
       pos += 2) {
    ++arrows;
  }
  if (arrows >= 2 || text.find("@goal") != std::string::npos) {
    return TextKind::kDatalogProgram;
  }
  return TextKind::kRule;
}

}  // namespace

Result<Relation> Engine::Run(const ConjunctiveQuery& q) const {
  stats_ = EngineStats{};
  PQ_RETURN_NOT_OK(q.Validate());
  const ConjunctiveQuery* effective = &q;
  ComparisonClosure closure;
  if (q.HasComparisons() && !q.HasOnlyInequalities()) {
    PQ_ASSIGN_OR_RETURN(closure, CollapseComparisons(q));
    if (!closure.consistent) return Relation(q.head.size());
    effective = &closure.rewritten;
  }
  if (effective->body.empty()) {
    // No relational atoms: the head must be constant-only (safety).
    Relation out(effective->head.size());
    ValueVec row;
    for (const Term& t : effective->head) row.push_back(t.value());
    out.Add(row);
    return out;
  }
  if (effective->IsAcyclic()) {
    if (!effective->HasComparisons()) {
      return AcyclicEvaluate(*db_, *effective, {}, &stats_.acyclic);
    }
    if (effective->HasOnlyInequalities()) {
      return IneqEvaluate(*db_, *effective, options_.inequality);
    }
  }
  return NaiveEvaluateCq(*db_, *effective, options_.naive);
}

Result<Relation> Engine::Run(const PositiveQuery& q) const {
  stats_ = EngineStats{};
  return EvaluatePositive(*db_, q, options_.ucq);
}

Result<Relation> Engine::Run(const FirstOrderQuery& q) const {
  stats_ = EngineStats{};
  if (q.IsPositive()) {
    auto positive = PositiveQuery::FromFirstOrder(q);
    if (positive.ok()) return Run(positive.value());
  }
  return EvaluateFirstOrder(*db_, q, options_.fo);
}

Result<Relation> Engine::Run(const DatalogProgram& p) const {
  stats_ = EngineStats{};
  return EvaluateDatalog(*db_, p, options_.datalog, &stats_.datalog);
}

Result<Relation> Engine::RunText(const std::string& text, Dictionary* dict) {
  switch (SniffKind(text)) {
    case TextKind::kFormula: {
      PQ_ASSIGN_OR_RETURN(FirstOrderQuery q, ParseFirstOrder(text, dict));
      return Run(q);
    }
    case TextKind::kDatalogProgram: {
      PQ_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalog(text, dict));
      return Run(p);
    }
    case TextKind::kRule: {
      PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctive(text, dict));
      return Run(q);
    }
  }
  return Status::Internal("unreachable");
}

Result<std::string> Engine::ExplainText(const std::string& text) {
  switch (SniffKind(text)) {
    case TextKind::kFormula: {
      PQ_ASSIGN_OR_RETURN(FirstOrderQuery q, ParseFirstOrder(text, nullptr));
      return ExplainFirstOrder(q);
    }
    case TextKind::kDatalogProgram: {
      PQ_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalog(text, nullptr));
      return ExplainDatalog(p);
    }
    case TextKind::kRule: {
      PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctive(text, nullptr));
      return ExplainConjunctive(q);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace paraquery

#include "core/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/timer.hpp"
#include "core/explain.hpp"
#include "eval/acyclic.hpp"
#include "eval/counting.hpp"
#include "query/comparison_closure.hpp"
#include "query/parser.hpp"
#include "relational/storage_cache_stats.hpp"

namespace paraquery {

namespace {

// Heuristic syntax dispatch for RunText/ExplainText.
enum class TextKind { kRule, kDatalogProgram, kFormula };

TextKind SniffKind(const std::string& text) {
  if (text.find(":=") != std::string::npos) return TextKind::kFormula;
  // Count rule arrows outside comments: two or more (or a @goal directive)
  // means a Datalog program.
  size_t arrows = 0;
  for (size_t pos = 0; (pos = text.find(":-", pos)) != std::string::npos;
       pos += 2) {
    ++arrows;
  }
  if (arrows >= 2 || text.find("@goal") != std::string::npos) {
    return TextKind::kDatalogProgram;
  }
  return TextKind::kRule;
}

// Engine-level limits override the per-evaluator options (whose own legacy
// aliases apply only where the engine sets nothing).
ResourceLimits Overlay(const ResourceLimits& engine,
                       const ResourceLimits& evaluator) {
  return engine.MergedWith(evaluator.max_rows, evaluator.max_steps);
}

// The empty answer in the query's answer shape: no rows for tuple and
// grouped-count queries (arity = group keys + count), the single [0] row
// for a scalar COUNT(*).
Relation EmptyAnswer(const ConjunctiveQuery& q) {
  switch (q.answer.kind) {
    case AnswerSpec::Kind::kCount: {
      Relation out(1);
      out.Add(std::vector<Value>{0});
      return out;
    }
    case AnswerSpec::Kind::kGroupedCount:
      return Relation(q.head.size() + 1);
    case AnswerSpec::Kind::kTuples:
      break;
  }
  return Relation(q.head.size());
}

}  // namespace

std::string EngineStats::ToString() const {
  std::ostringstream oss;
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.3f", wall_seconds * 1e3);
  oss << "query: wall_ms=" << wall;
  if (!abort_reason.empty()) oss << " abort=" << abort_reason;
  oss << "\n";
  oss << "plan: " << plan.ToString() << "\n";
  oss << "plan_cache: " << plan_cache.ToString() << "\n";
  if (ineq.family_size > 0) {
    oss << "ineq: k=" << ineq.k << " i1_atoms=" << ineq.i1_atoms
        << " i2_atoms=" << ineq.i2_atoms
        << " family_size=" << ineq.family_size << " trials=" << ineq.trials
        << " certified=" << (ineq.certified ? "yes" : "no")
        << " peak_rows=" << ineq.peak_rows << "\n";
  }
  if (datalog.iterations > 0) {
    oss << "datalog: iterations=" << datalog.iterations
        << " derived_tuples=" << datalog.derived_tuples
        << " rule_firings=" << datalog.rule_firings
        << " skipped_firings=" << datalog.skipped_firings
        << "\n  edb_materializations=" << datalog.edb_materializations
        << " edb_cache_hits=" << datalog.edb_cache_hits
        << " edb_index_builds=" << datalog.edb_index_builds
        << " edb_index_hits=" << datalog.edb_index_hits
        << "\n  plans_built=" << datalog.plans_built
        << " plan_reuses=" << datalog.plan_reuses
        << " replans=" << datalog.replans << "\n";
  }
  if (ucq.disjuncts_expanded > 0) {
    oss << "ucq: disjuncts_expanded=" << ucq.disjuncts_expanded
        << " deduped=" << ucq.disjuncts_deduped
        << " evaluated=" << ucq.disjuncts_evaluated
        << " acyclic=" << ucq.acyclic_disjuncts
        << " naive=" << ucq.naive_disjuncts;
    if (ucq.ie_subsets > 0) {
      oss << " ie_subsets=" << ucq.ie_subsets
          << " ie_pruned=" << ucq.ie_pruned;
    }
    oss << "\n";
  }
  return oss.str();
}

Engine::Engine(const Database& db, EngineOptions options)
    : db_(&db), options_(std::move(options)) {
  m_.queries = &metrics_.counter("pq_queries_total", "queries run");
  m_.counting_queries = &metrics_.counter(
      "pq_counting_queries_total", "counting (COUNT head) queries run");
  m_.count_groups = &metrics_.histogram(
      "pq_counting_groups", "groups returned per grouped counting query");
  m_.latency_us = &metrics_.histogram("pq_query_latency_us",
                                      "end-to-end query wall time (us)");
  m_.peak_bytes = &metrics_.histogram(
      "pq_query_peak_bytes", "peak accounted bytes per hardened query");
  m_.aborts_cancelled =
      &metrics_.counter("pq_aborts_cancelled_total", "queries cancelled");
  m_.aborts_deadline = &metrics_.counter("pq_aborts_deadline_total",
                                         "queries past their deadline");
  m_.aborts_resource = &metrics_.counter(
      "pq_aborts_resource_exhausted_total",
      "queries over a row/step/memory budget");
  m_.rows_produced = &metrics_.counter("pq_operator_rows_total",
                                       "rows produced by plan operators");
  m_.morsels = &metrics_.counter("pq_morsels_total",
                                 "morsels processed by parallel operators");
  m_.vec_batches = &metrics_.counter(
      "pq_vec_batches_total", "column batches through vectorized stages");
  m_.plan_cache_hits =
      &metrics_.counter("pq_plan_cache_hits_total", "plan cache hits");
  m_.plan_cache_misses =
      &metrics_.counter("pq_plan_cache_misses_total", "plan cache misses");
  m_.plan_cache_stale = &metrics_.counter(
      "pq_plan_cache_stale_total", "plan cache entries dropped as stale");
  m_.plan_cache_evictions = &metrics_.counter("pq_plan_cache_evictions_total",
                                              "plan cache LRU evictions");
  m_.plan_cache_entries =
      &metrics_.gauge("pq_plan_cache_entries", "live plan cache entries");
  m_.sched_tasks =
      &metrics_.counter("pq_scheduler_tasks_total", "scheduler tasks run");
  m_.sched_steals =
      &metrics_.counter("pq_scheduler_steals_total", "work-stealing pops");
  m_.sched_idle_sleeps = &metrics_.counter("pq_scheduler_idle_sleeps_total",
                                           "worker parks on an empty pool");
  m_.sched_queue_depth = &metrics_.gauge("pq_scheduler_queue_depth",
                                         "tasks queued at last scrape");
  m_.trie_hits =
      &metrics_.counter("pq_trie_cache_hits_total", "trie view cache hits");
  m_.trie_builds =
      &metrics_.counter("pq_trie_cache_builds_total", "trie view builds");
  m_.columnar_hits = &metrics_.counter("pq_columnar_cache_hits_total",
                                       "columnar mirror cache hits");
  m_.columnar_builds = &metrics_.counter("pq_columnar_cache_builds_total",
                                         "columnar mirror builds");
  query_metrics_.operator_rows = &metrics_.histogram(
      "pq_operator_rows", "rows produced per executed plan operator");
}

RuntimeOptions Engine::Runtime() const {
  size_t want = options_.threads == 0 ? TaskScheduler::HardwareConcurrency()
                                      : options_.threads;
  // Sanity bound: an absurd width would die spawning real threads.
  want = std::min<size_t>(want, 1024);
  plan_cache_.set_capacity(options_.plan_cache_capacity);
  RuntimeOptions runtime;
  runtime.morsel_rows = options_.morsel_rows;
  runtime.vec_min_source_rows = options_.vec_min_source_rows;
  runtime.metrics = &query_metrics_;
  runtime.analyze = analyze_;
  if (options_.trace) {
    if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
    runtime.tracer = tracer_.get();
  }
  if (want <= 1) {
    scheduler_.reset();  // back to sequential: drop the idle pool
    return runtime;
  }
  if (scheduler_ == nullptr || scheduler_->threads() != want) {
    scheduler_ = std::make_unique<TaskScheduler>(want);
  }
  runtime.scheduler = scheduler_.get();
  return runtime;
}

Result<Relation> Engine::Run(const ConjunctiveQuery& q) const {
  stats_ = EngineStats{};
  TraceSpan query_span(PrepareTracer(), "query", "cq");
  Timer timer;
  // Hardening: arm the query context (deadline / memory budget /
  // cancellation token) and account every RowBlock allocated on this thread
  // — worker threads inherit the accountant through TaskGroup::Spawn.
  QueryContext* qc = ArmQueryContext();
  ScopedMemoryAccounting accounting(qc != nullptr ? qc->memory() : nullptr);
  // Every exit refreshes the cumulative cache counters, error and
  // early-return paths included — .stats must never show stale zeros for a
  // cache that still holds entries.
  auto finish = [&](Result<Relation> r) {
    stats_.plan_cache = plan_cache_.stats();
    FinishQuery(timer.Seconds(), r.status(), qc);
    return r;
  };
  if (Status s = q.Validate(); !s.ok()) return finish(std::move(s));
  const ConjunctiveQuery* effective = &q;
  ComparisonClosure closure;
  if (q.HasComparisons() && !q.HasOnlyInequalities()) {
    auto collapsed = CollapseComparisons(q);
    if (!collapsed.ok()) return finish(collapsed.status());
    closure = std::move(collapsed).value();
    if (!closure.consistent) return finish(EmptyAnswer(q));
    effective = &closure.rewritten;
    // The collapse is count-preserving (merging equal variables bijects the
    // satisfying assignments), but it can merge or constant-fold a GROUP
    // key, leaving an invalid counting head; count over the original query
    // then — the enumeration route applies the comparisons directly.
    if (q.answer.counting() && !effective->Validate().ok()) effective = &q;
  }
  if (q.answer.counting()) {
    m_.counting_queries->Increment();
    CountingOptions cnt;
    cnt.limits = Overlay(options_.limits, options_.acyclic.EffectiveLimits());
    cnt.runtime = Runtime();
    cnt.runtime.query_ctx = qc;
    cnt.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
    cnt.full_reducer = options_.acyclic.full_reducer;
    cnt.vectorize = options_.vectorize;
    cnt.wcoj = options_.wcoj;
    auto result = CountingEvaluate(*db_, *effective, cnt, &stats_.plan);
    if (result.ok() && q.answer.kind == AnswerSpec::Kind::kGroupedCount) {
      m_.count_groups->Observe(result.value().size());
    }
    return finish(std::move(result));
  }
  if (effective->body.empty()) {
    // No relational atoms: the head must be constant-only (safety).
    Relation out(effective->head.size());
    ValueVec row;
    for (const Term& t : effective->head) row.push_back(t.value());
    out.Add(row);
    return finish(std::move(out));
  }
  if (effective->IsAcyclic()) {
    if (!effective->HasComparisons()) {
      AcyclicOptions eff = options_.acyclic;
      eff.limits = Overlay(options_.limits, eff.EffectiveLimits());
      eff.max_rows = 0;
      eff.runtime = Runtime();
      eff.runtime.query_ctx = qc;
      eff.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
      return finish(AcyclicEvaluate(*db_, *effective, eff, &stats_.acyclic,
                                    &stats_.plan));
    }
    if (effective->HasOnlyInequalities()) {
      // Theorem 2 route: since the plan lowering, this is plan-routed too —
      // it inherits the unified limits, the parallel runtime, and the plan
      // cache (one residual plan per query, re-executed per coloring).
      IneqOptions ineq = options_.inequality;
      ineq.limits = Overlay(options_.limits, ineq.EffectiveLimits());
      ineq.max_rows = 0;
      ineq.runtime = Runtime();
      ineq.runtime.query_ctx = qc;
      ineq.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
      return finish(
          IneqEvaluate(*db_, *effective, ineq, &stats_.ineq, &stats_.plan));
    }
  }
  NaiveOptions eff = options_.naive;
  eff.limits = Overlay(options_.limits, eff.EffectiveLimits());
  eff.max_steps = 0;
  eff.runtime = Runtime();
  eff.runtime.query_ctx = qc;
  eff.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
  eff.vectorize = options_.vectorize;
  eff.wcoj = options_.wcoj;
  return finish(NaiveEvaluateCq(*db_, *effective, eff, &stats_.plan));
}

Result<Relation> Engine::Run(const PositiveQuery& q) const {
  stats_ = EngineStats{};
  TraceSpan query_span(PrepareTracer(), "query", "ucq");
  Timer timer;
  QueryContext* qc = ArmQueryContext();
  ScopedMemoryAccounting accounting(qc != nullptr ? qc->memory() : nullptr);
  UcqOptions eff = options_.ucq;
  eff.limits = Overlay(options_.limits, eff.EffectiveLimits());
  eff.naive_max_steps = 0;
  eff.runtime = Runtime();
  eff.runtime.query_ctx = qc;
  eff.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
  eff.vectorize = options_.vectorize;
  const bool counting = q.fo().answer.counting();
  if (counting) m_.counting_queries->Increment();
  auto result = counting ? EvaluatePositiveCount(*db_, q, eff, &stats_.ucq)
                         : EvaluatePositive(*db_, q, eff, &stats_.ucq);
  if (counting && result.ok() &&
      q.fo().answer.kind == AnswerSpec::Kind::kGroupedCount) {
    m_.count_groups->Observe(result.value().size());
  }
  stats_.plan = stats_.ucq.plan;
  stats_.plan_cache = plan_cache_.stats();
  FinishQuery(timer.Seconds(), result.status(), qc);
  return result;
}

Result<Relation> Engine::Run(const FirstOrderQuery& q) const {
  stats_ = EngineStats{};
  if (q.IsPositive()) {
    auto positive = PositiveQuery::FromFirstOrder(q);
    if (positive.ok()) return Run(positive.value());
  }
  // The non-positive path runs on the active-domain algebra. It is hardened
  // like the plan-routed engines: the armed QueryContext carries deadlines,
  // cancellation, and the memory budget (polled inside FoEval), and every
  // RowBlock allocated during evaluation is charged to the accountant.
  TraceSpan query_span(PrepareTracer(), "query", "fo");
  Timer timer;
  QueryContext* qc = ArmQueryContext();
  ScopedMemoryAccounting accounting(qc != nullptr ? qc->memory() : nullptr);
  FoOptions fo = options_.fo;
  if (options_.limits.max_rows != 0) fo.max_rows = options_.limits.max_rows;
  fo.runtime = Runtime();
  fo.runtime.query_ctx = qc;
  auto finish = [&](Result<Relation> r) {
    stats_.plan_cache = plan_cache_.stats();
    FinishQuery(timer.Seconds(), r.status(), qc);
    return r;
  };
  if (q.answer.counting()) {
    // Active-domain counting: evaluate the formula once over the FULL
    // free-variable head (the distinct satisfying assignments), then group
    // by the head's group keys in memory — the algebra itself needs no
    // counting operators.
    if (Status s = q.Validate(); !s.ok()) return finish(std::move(s));
    m_.counting_queries->Increment();
    const std::vector<VarId> free_vars = q.FreeVariables();
    FirstOrderQuery enum_q = q;
    enum_q.answer = AnswerSpec::Tuples();
    enum_q.head.clear();
    for (VarId v : free_vars) enum_q.head.push_back(Term::Var(v));
    auto rows = EvaluateFirstOrder(*db_, enum_q, fo);
    if (!rows.ok()) return finish(rows.status());
    std::vector<int> gcols;
    for (const Term& t : q.head) {
      auto it = std::find(free_vars.begin(), free_vars.end(), t.var());
      gcols.push_back(static_cast<int>(it - free_vars.begin()));
    }
    Relation counts = GroupCountRows(rows.value(), gcols);
    if (q.answer.kind == AnswerSpec::Kind::kGroupedCount) {
      m_.count_groups->Observe(counts.size());
    }
    return finish(std::move(counts));
  }
  return finish(EvaluateFirstOrder(*db_, q, fo));
}

Result<Relation> Engine::Run(const DatalogProgram& p) const {
  stats_ = EngineStats{};
  TraceSpan query_span(PrepareTracer(), "query", "datalog");
  Timer timer;
  QueryContext* qc = ArmQueryContext();
  ScopedMemoryAccounting accounting(qc != nullptr ? qc->memory() : nullptr);
  DatalogOptions eff = options_.datalog;
  eff.limits = Overlay(options_.limits, eff.EffectiveLimits());
  eff.max_rows = 0;
  eff.runtime = Runtime();
  eff.runtime.query_ctx = qc;
  eff.plan_cache = options_.use_plan_cache ? &plan_cache_ : nullptr;
  eff.vectorize = options_.vectorize;
  auto result = EvaluateDatalog(*db_, p, eff, &stats_.datalog);
  stats_.plan = stats_.datalog.plan;
  stats_.plan_cache = plan_cache_.stats();
  FinishQuery(timer.Seconds(), result.status(), qc);
  return result;
}

Result<Relation> Engine::RunText(const std::string& text, Dictionary* dict) {
  switch (SniffKind(text)) {
    case TextKind::kFormula: {
      PQ_ASSIGN_OR_RETURN(FirstOrderQuery q, ParseFirstOrder(text, dict));
      return Run(q);
    }
    case TextKind::kDatalogProgram: {
      PQ_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalog(text, dict));
      return Run(p);
    }
    case TextKind::kRule: {
      PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctive(text, dict));
      return Run(q);
    }
  }
  return Status::Internal("unreachable");
}

Tracer* Engine::PrepareTracer() const {
  if (!options_.trace) return nullptr;
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
  tracer_->Clear();
  return tracer_.get();
}

void Engine::FinishQuery(double seconds, const Status& status,
                         const QueryContext* qc) const {
  stats_.wall_seconds = seconds;
  m_.queries->Increment();
  m_.latency_us->Observe(static_cast<uint64_t>(seconds * 1e6));
  switch (status.code()) {
    case StatusCode::kCancelled:
      stats_.abort_reason = "cancelled";
      m_.aborts_cancelled->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      stats_.abort_reason = "deadline_exceeded";
      m_.aborts_deadline->Increment();
      break;
    case StatusCode::kResourceExhausted:
      stats_.abort_reason = "resource_exhausted";
      m_.aborts_resource->Increment();
      break;
    default:
      break;
  }
  // memory() is null unless a byte budget was armed.
  if (qc != nullptr && qc->memory() != nullptr) {
    m_.peak_bytes->Observe(qc->memory()->peak());
  }
  m_.rows_produced->Add(stats_.plan.rows_produced);
  m_.morsels->Add(stats_.plan.morsels);
  m_.vec_batches->Add(stats_.plan.vec_batches);
  // Scrapes of external monotonic sources (Counter::Set, not Add): the
  // plan cache, the scheduler, and the process-wide storage caches all
  // keep their own cumulative counters.
  const PlanCacheStats pc = plan_cache_.stats();
  m_.plan_cache_hits->Set(pc.hits);
  m_.plan_cache_misses->Set(pc.misses);
  m_.plan_cache_stale->Set(pc.stale_entries);
  m_.plan_cache_evictions->Set(pc.evictions);
  m_.plan_cache_entries->Set(static_cast<int64_t>(pc.entries));
  if (scheduler_ != nullptr) {
    const TaskScheduler::Counters& c = scheduler_->counters();
    m_.sched_tasks->Set(c.tasks_run.load(std::memory_order_relaxed));
    m_.sched_steals->Set(c.steals.load(std::memory_order_relaxed));
    m_.sched_idle_sleeps->Set(c.idle_sleeps.load(std::memory_order_relaxed));
    m_.sched_queue_depth->Set(
        static_cast<int64_t>(scheduler_->QueuedTokens()));
  }
  const StorageCacheStats& sc = GlobalStorageCacheStats();
  m_.trie_hits->Set(sc.trie_hits.load(std::memory_order_relaxed));
  m_.trie_builds->Set(sc.trie_builds.load(std::memory_order_relaxed));
  m_.columnar_hits->Set(sc.columnar_hits.load(std::memory_order_relaxed));
  m_.columnar_builds->Set(sc.columnar_builds.load(std::memory_order_relaxed));
}

QueryContext* Engine::ArmQueryContext() const {
  const uint64_t wall = options_.limits.max_wall_ms;
  const uint64_t bytes = options_.limits.max_bytes;
  if (options_.query_ctx != nullptr) {
    QueryContext* qc = options_.query_ctx;
    if (wall != 0) qc->ArmDeadline(wall);
    if (bytes != 0) qc->ArmMemory(bytes);
    return qc;  // caller controls cancellation; sticky until caller Reset()s
  }
  if (wall == 0 && bytes == 0) return nullptr;
  if (run_ctx_ == nullptr) run_ctx_ = std::make_unique<QueryContext>();
  run_ctx_->Reset();
  if (wall != 0) run_ctx_->ArmDeadline(wall);
  if (bytes != 0) run_ctx_->ArmMemory(bytes);
  return run_ctx_.get();
}

Result<std::string> Engine::ExplainText(const std::string& text) {
  switch (SniffKind(text)) {
    case TextKind::kFormula: {
      PQ_ASSIGN_OR_RETURN(FirstOrderQuery q, ParseFirstOrder(text, nullptr));
      return ExplainFirstOrder(q, db_);
    }
    case TextKind::kDatalogProgram: {
      PQ_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalog(text, nullptr));
      return ExplainDatalog(p, db_);
    }
    case TextKind::kRule: {
      PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctive(text, nullptr));
      return ExplainConjunctive(q, db_);
    }
  }
  return Status::Internal("unreachable");
}

Result<std::string> Engine::AnalyzeText(const std::string& text,
                                        Dictionary* dict) {
  PlanCapture capture;
  analyze_ = &capture;
  auto result = RunText(text, dict);
  analyze_ = nullptr;
  if (!result.ok()) return result.status();
  std::ostringstream oss;
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.3f", stats_.wall_seconds * 1e3);
  oss << "rows=" << result.value().size() << " wall_ms=" << wall << "\n";
  if (capture.plan_count() == 0) {
    oss << "(no plan-routed execution: the query ran on the active-domain "
           "algebra, or produced its answer without executing a plan)\n";
  } else {
    oss << capture.Report();
  }
  return oss.str();
}

Result<std::string> Engine::PlanText(const std::string& text,
                                     Dictionary* dict) {
  switch (SniffKind(text)) {
    case TextKind::kFormula: {
      PQ_ASSIGN_OR_RETURN(FirstOrderQuery q, ParseFirstOrder(text, dict));
      if (!q.IsPositive()) {
        return Status::InvalidArgument(
            "no physical plan: non-positive first-order queries run on the "
            "active-domain algebra");
      }
      PQ_ASSIGN_OR_RETURN(PositiveQuery pq,
                          PositiveQuery::FromFirstOrder(std::move(q)));
      return RenderPositivePlan(*db_, pq);
    }
    case TextKind::kDatalogProgram: {
      PQ_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalog(text, dict));
      return RenderDatalogPlan(*db_, p);
    }
    case TextKind::kRule: {
      PQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctive(text, dict));
      return RenderConjunctivePlan(*db_, q);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace paraquery

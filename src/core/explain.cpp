#include "core/explain.hpp"

#include <sstream>

#include "query/comparison_closure.hpp"

namespace paraquery {

std::string ExplainConjunctive(const ConjunctiveQuery& q) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  if (q.HasComparisons() && !q.HasOnlyInequalities()) {
    auto closure = CollapseComparisons(q);
    if (closure.ok() && !closure.value().consistent) {
      oss << "comparison closure: INCONSISTENT — the answer is empty on "
             "every database (Section 5 / Klug)\n";
      return oss.str();
    }
    if (closure.ok()) {
      oss << "comparison closure: collapsed to "
          << closure.value().rewritten.ToString() << "\n";
      oss << ClassifyConjunctive(closure.value().rewritten).ToString();
      return oss.str();
    }
  }
  oss << ClassifyConjunctive(q).ToString();
  return oss.str();
}

std::string ExplainPositive(const PositiveQuery& q) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  oss << ClassifyPositive(q).ToString();
  return oss.str();
}

std::string ExplainFirstOrder(const FirstOrderQuery& q) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  oss << ClassifyFirstOrder(q).ToString();
  return oss.str();
}

std::string ExplainDatalog(const DatalogProgram& p) {
  std::ostringstream oss;
  oss << "program:\n" << p.ToString();
  oss << ClassifyDatalog(p).ToString();
  return oss.str();
}

}  // namespace paraquery

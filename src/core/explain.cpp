#include "core/explain.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "eval/inequality.hpp"
#include "eval/ucq.hpp"
#include "plan/planner.hpp"
#include "query/comparison_closure.hpp"

namespace paraquery {

namespace {

// Appends a plan render (or the planner's failure) under a header line.
void AppendPlanSection(std::ostringstream* oss,
                       const Result<std::string>& render) {
  *oss << "physical plan:\n";
  if (render.ok()) {
    *oss << render.value();
  } else {
    *oss << "  unavailable: " << render.status().message() << "\n";
  }
}

// Indents every line of `text` by `spaces`.
std::string Indent(const std::string& text, int spaces) {
  std::string pad(spaces, ' ');
  std::ostringstream out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out << pad << line << "\n";
  return out.str();
}

// Marks scans whose build-time cardinality is unknown (IDB atoms and
// unresolvable EDB atoms in the static Datalog render) as est "?", and
// propagates the unknown upward: an operator over an unknown input has an
// unknown estimate too. Returns true if `node`'s estimate is unknown.
bool ClearScanEstimates(PlanNode* node,
                        const std::unordered_set<int>& unknown_slots) {
  bool unknown =
      node->op == PlanOp::kScan && unknown_slots.count(node->input_slot) > 0;
  for (const PlanNodePtr& c : node->children) {
    unknown |= ClearScanEstimates(c.get(), unknown_slots);
  }
  if (unknown) node->est_rows = -1.0;
  return unknown;
}

}  // namespace

Result<std::string> RenderConjunctivePlan(const Database& db,
                                          const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  const ConjunctiveQuery* effective = &q;
  ComparisonClosure closure;
  std::ostringstream oss;
  if (q.HasComparisons() && !q.HasOnlyInequalities()) {
    PQ_ASSIGN_OR_RETURN(closure, CollapseComparisons(q));
    if (!closure.consistent) {
      return std::string(
          "(empty plan: the comparison closure is inconsistent)\n");
    }
    effective = &closure.rewritten;
    oss << "-- after comparison closure: " << effective->ToString() << "\n";
  }
  if (q.answer.counting()) {
    // Mirror the engine: if the closure merged or constant-folded a group
    // key, the collapsed query is no longer a valid counting head, and the
    // engine evaluates the original query instead.
    if (!effective->Validate().ok()) effective = &q;
    if (effective->body.empty()) {
      return std::string(
          "(no plan: empty body, the count is answered directly)\n");
    }
    PQ_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanConjunctive(db, *effective));
    std::string rendered = plan.Render();
    if (!effective->HasComparisons() && effective->IsAcyclic()) {
      oss << "-- route: counting Yannakakis (upward multiplicity folding; "
             "the join output is never materialized)\n";
    } else if (rendered.find("SemijoinCount") != std::string::npos) {
      oss << "-- route: counting over the hypertree decomposition "
             "(multiplicity folding across bags)\n";
    } else {
      oss << "-- route: enumerate distinct assignments, aggregate at the "
             "root\n";
    }
    oss << rendered;
    return oss.str();
  }
  bool acyclic_route =
      !effective->HasComparisons() && !effective->body.empty() &&
      effective->IsAcyclic();
  if (acyclic_route) {
    oss << "-- route: Yannakakis join-tree schedule (GYO order)\n";
  } else if (effective->IsAcyclic() && effective->HasOnlyInequalities() &&
             !effective->body.empty()) {
    // Theorem 2 route: show the real lowered residual plan (falling back to
    // the relational plan if the color-coding compiler rejects the query).
    oss << "-- route: Theorem 2 color coding\n";
    auto ineq = IneqPlanText(db, *effective);
    if (ineq.ok()) {
      oss << ineq.value();
      return oss.str();
    }
    oss << "-- (color-coding plan unavailable: " << ineq.status().message()
        << "; relational fallback shown)\n";
  } else {
    // Cyclic route: the planner picks multiway (WCOJ) or binary per bag, so
    // report what the rendered plan actually contains.
    PQ_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanConjunctive(db, *effective));
    std::string rendered = plan.Render();
    if (rendered.find("MultiwayJoin") != std::string::npos) {
      oss << "-- route: worst-case-optimal multiway join "
             "(Yannakakis over a hypertree decomposition)\n";
    } else {
      oss << "-- route: greedy left-deep join order (smallest connected "
             "atom first)\n";
    }
    oss << rendered;
    return oss.str();
  }
  PQ_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanConjunctive(db, *effective));
  oss << plan.Render();
  return oss.str();
}

Result<std::string> RenderPositivePlan(const Database& db,
                                       const PositiveQuery& q) {
  // Expand with the evaluator's own cap (so anything the engine can run,
  // this can report on), but keep the render readable by showing at most
  // kExplainRenderCap disjunct subplans and summarizing the rest.
  constexpr size_t kExplainRenderCap = 64;
  UcqStats stats;
  PQ_ASSIGN_OR_RETURN(
      auto cqs, ExpandDedupedDisjuncts(q, UcqOptions{}.max_disjuncts, &stats));
  std::ostringstream oss;
  oss << "Union [" << cqs.size() << " disjunct" << (cqs.size() == 1 ? "" : "s");
  if (stats.disjuncts_deduped > 0) {
    oss << ", " << stats.disjuncts_deduped
        << " syntactic duplicate(s) dropped";
  }
  oss << "]\n";
  size_t shown = std::min(cqs.size(), kExplainRenderCap);
  // Each disjunct carries its own variable table (ToUnionOfCqs standardizes
  // apart), so the subplans are rendered one at a time with their own names.
  for (size_t i = 0; i < shown; ++i) {
    oss << "  disjunct " << i + 1 << ": " << cqs[i].ToString() << "\n";
    auto plan = PlanConjunctive(db, cqs[i]);
    if (plan.ok()) {
      oss << Indent(plan.value().Render(), 4);
    } else {
      oss << "    unavailable: " << plan.status().message() << "\n";
    }
  }
  if (shown < cqs.size()) {
    oss << "  ... (" << cqs.size() - shown << " more disjunct plans omitted)\n";
  }
  return oss.str();
}

Result<std::string> RenderDatalogPlan(const Database& db,
                                      const DatalogProgram& p) {
  PQ_RETURN_NOT_OK(p.Validate());
  std::ostringstream oss;
  oss << "Fixpoint(" << p.goal << ") [semi-naive, " << p.rules.size()
      << " rule" << (p.rules.size() == 1 ? "" : "s")
      << "; delta-substituted variants are planned at first firing]\n";
  for (size_t ri = 0; ri < p.rules.size(); ++ri) {
    const DatalogRule& rule = p.rules[ri];
    oss << "  rule " << ri << ": " << rule.ToString() << "\n";
    if (rule.body.empty()) {
      oss << "    (constant head; fires once)\n";
      continue;
    }
    std::vector<std::vector<AttrId>> attrs;
    std::vector<size_t> sizes;
    std::vector<JoinIndexCache*> caches(rule.body.size(), nullptr);
    std::unordered_set<int> unknown_slots;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Atom& a = rule.body[i];
      attrs.push_back(a.Variables());
      if (p.IsIdb(a.relation)) {
        // IDB inputs start empty and grow with the fixpoint: size unknown.
        sizes.push_back(0);
        unknown_slots.insert(static_cast<int>(i));
      } else {
        auto found = db.FindRelation(a.relation);
        if (found.ok()) {
          sizes.push_back(db.relation(found.value()).size());
        } else {
          sizes.push_back(0);
          unknown_slots.insert(static_cast<int>(i));
        }
      }
    }
    auto plan = PlanRuleBody(rule, attrs, sizes, caches, /*delta_pos=*/-1);
    if (!plan.ok()) {
      oss << "    unavailable: " << plan.status().message() << "\n";
      continue;
    }
    ClearScanEstimates(plan.value().get(), unknown_slots);
    oss << Indent(RenderPlan(*plan.value(), &rule.vars), 4);
  }
  return oss.str();
}

std::string ExplainConjunctive(const ConjunctiveQuery& q, const Database* db) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  if (q.HasComparisons() && !q.HasOnlyInequalities()) {
    auto closure = CollapseComparisons(q);
    if (closure.ok() && !closure.value().consistent) {
      oss << "comparison closure: INCONSISTENT — the answer is empty on "
             "every database (Section 5 / Klug)\n";
      return oss.str();
    }
    if (closure.ok()) {
      oss << "comparison closure: collapsed to "
          << closure.value().rewritten.ToString() << "\n";
      oss << ClassifyConjunctive(closure.value().rewritten).ToString();
      if (db != nullptr) {
        AppendPlanSection(&oss, RenderConjunctivePlan(*db, q));
      }
      return oss.str();
    }
  }
  oss << ClassifyConjunctive(q).ToString();
  if (db != nullptr) AppendPlanSection(&oss, RenderConjunctivePlan(*db, q));
  return oss.str();
}

std::string ExplainPositive(const PositiveQuery& q, const Database* db) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  oss << ClassifyPositive(q).ToString();
  if (db != nullptr) AppendPlanSection(&oss, RenderPositivePlan(*db, q));
  return oss.str();
}

std::string ExplainFirstOrder(const FirstOrderQuery& q, const Database* db) {
  std::ostringstream oss;
  oss << "query: " << q.ToString() << "\n";
  oss << ClassifyFirstOrder(q).ToString();
  if (db != nullptr && q.IsPositive()) {
    auto positive = PositiveQuery::FromFirstOrder(q);
    if (positive.ok()) {
      AppendPlanSection(&oss, RenderPositivePlan(*db, positive.value()));
    }
  }
  return oss.str();
}

std::string ExplainDatalog(const DatalogProgram& p, const Database* db) {
  std::ostringstream oss;
  oss << "program:\n" << p.ToString();
  oss << ClassifyDatalog(p).ToString();
  if (db != nullptr) AppendPlanSection(&oss, RenderDatalogPlan(*db, p));
  return oss.str();
}

}  // namespace paraquery

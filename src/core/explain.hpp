// Human-readable classification reports ("EXPLAIN" for parametrized
// complexity): what the paper says about this query, and what the engine
// will do about it. When a database is supplied, the report also renders the
// physical plan (plan/planner.hpp) the engine would execute, with per-node
// cardinality estimates; after execution the same tree carries actual rows.
#ifndef PARAQUERY_CORE_EXPLAIN_H_
#define PARAQUERY_CORE_EXPLAIN_H_

#include <string>

#include "common/status.hpp"
#include "core/classifier.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Renders a report for a conjunctive query (runs the comparison closure
/// first when order/equality atoms are present, and reports both views).
/// With `db`, appends the rendered physical plan.
std::string ExplainConjunctive(const ConjunctiveQuery& q,
                               const Database* db = nullptr);

std::string ExplainPositive(const PositiveQuery& q,
                            const Database* db = nullptr);
std::string ExplainFirstOrder(const FirstOrderQuery& q,
                              const Database* db = nullptr);
std::string ExplainDatalog(const DatalogProgram& p,
                           const Database* db = nullptr);

/// Plan-only renders (the shell's `.plan` command): the physical plan the
/// engine would run, without executing it.
Result<std::string> RenderConjunctivePlan(const Database& db,
                                          const ConjunctiveQuery& q);
Result<std::string> RenderPositivePlan(const Database& db,
                                       const PositiveQuery& q);
Result<std::string> RenderDatalogPlan(const Database& db,
                                      const DatalogProgram& p);

}  // namespace paraquery

#endif  // PARAQUERY_CORE_EXPLAIN_H_

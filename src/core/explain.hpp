// Human-readable classification reports ("EXPLAIN" for parametrized
// complexity): what the paper says about this query, and what the engine
// will do about it.
#ifndef PARAQUERY_CORE_EXPLAIN_H_
#define PARAQUERY_CORE_EXPLAIN_H_

#include <string>

#include "core/classifier.hpp"

namespace paraquery {

/// Renders a report for a conjunctive query (runs the comparison closure
/// first when order/equality atoms are present, and reports both views).
std::string ExplainConjunctive(const ConjunctiveQuery& q);

std::string ExplainPositive(const PositiveQuery& q);
std::string ExplainFirstOrder(const FirstOrderQuery& q);
std::string ExplainDatalog(const DatalogProgram& p);

}  // namespace paraquery

#endif  // PARAQUERY_CORE_EXPLAIN_H_

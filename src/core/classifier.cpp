#include "core/classifier.hpp"

#include <sstream>

namespace paraquery {

const char* QueryLanguageName(QueryLanguage lang) {
  switch (lang) {
    case QueryLanguage::kConjunctive:
      return "conjunctive";
    case QueryLanguage::kPositive:
      return "positive";
    case QueryLanguage::kFirstOrder:
      return "first-order";
    case QueryLanguage::kDatalog:
      return "Datalog";
  }
  return "?";
}

const char* EngineChoiceName(EngineChoice engine) {
  switch (engine) {
    case EngineChoice::kAcyclic:
      return "acyclic (Yannakakis)";
    case EngineChoice::kInequality:
      return "acyclic+inequality (Theorem 2 color coding)";
    case EngineChoice::kNaive:
      return "naive backtracking";
    case EngineChoice::kUcq:
      return "union-of-CQs expansion";
    case EngineChoice::kFo:
      return "active-domain relational calculus";
    case EngineChoice::kDatalog:
      return "semi-naive fixpoint";
    case EngineChoice::kCounting:
      return "counting (Yannakakis multiplicity folding / "
             "enumerate-then-aggregate)";
  }
  return "?";
}

Classification ClassifyConjunctive(const ConjunctiveQuery& q) {
  Classification c;
  c.language = QueryLanguage::kConjunctive;
  c.q = q.QuerySize();
  c.v = q.NumVariables();
  c.acyclic = q.IsAcyclic();
  c.has_inequalities = q.HasComparisons() && q.HasOnlyInequalities();
  c.has_order = q.HasOrderComparisons();
  if (q.HasComparisons() && !q.HasOnlyInequalities() && !c.has_order) {
    // Only = atoms beyond relational ones; closure removes them.
    c.has_inequalities = false;
  }

  if (c.acyclic && !q.HasComparisons()) {
    c.fixed_parameter_tractable = true;
    c.class_under_q = "PTIME (combined complexity)";
    c.class_under_v = "PTIME (combined complexity)";
    c.basis = "Yannakakis 1981; cited as the classical acyclic tractability";
    c.engine = EngineChoice::kAcyclic;
  } else if (c.acyclic && q.HasOnlyInequalities()) {
    c.fixed_parameter_tractable = true;
    c.class_under_q = "FPT: O(g(q) * n log n)";
    c.class_under_v = "FPT: O(2^{O(v log v)} * q * n log n)";
    c.basis = "Theorem 2 (acyclic conjunctive queries with !=)";
    c.engine = EngineChoice::kInequality;
  } else if (c.acyclic && c.has_order) {
    c.fixed_parameter_tractable = false;
    c.class_under_q = "W[1]-complete";
    c.class_under_v = "W[1]-complete";
    c.basis = "Theorem 3 (acyclic conjunctive queries with comparisons)";
    c.engine = EngineChoice::kNaive;
  } else {
    c.fixed_parameter_tractable = false;
    c.class_under_q = "W[1]-complete";
    c.class_under_v = "W[1]-complete";
    c.basis = "Theorem 1, row 1 (conjunctive queries)";
    c.engine = EngineChoice::kNaive;
  }
  if (q.answer.counting()) {
    // The decision classification above still governs; counting adds its
    // own verdict. These are FULL counts (every body variable is either a
    // group key or counted — nothing is projected away before counting),
    // the tractable side of the counting trichotomy.
    c.counting = true;
    c.engine = EngineChoice::kCounting;
    if (c.acyclic && !q.HasComparisons()) {
      c.counting_class =
          "FP: counting Yannakakis, poly(n) without materializing the join "
          "(full acyclic #CQ; Pichler-Skritek / Chen-Mengel trichotomy)";
    } else if (!q.HasComparisons()) {
      c.counting_class =
          "poly(n^{ghw}): multiplicity folding over the hypertree "
          "decomposition (bounded generalized hypertree width)";
    } else {
      c.counting_class =
          "enumeration-bound: distinct assignments enumerated under the "
          "decision class above, then aggregated";
    }
  }
  return c;
}

namespace {
bool IsPrenexPositive(const FirstOrderQuery& fo) {
  if (fo.root < 0) return false;
  const auto& root = fo.nodes[fo.root];
  if (root.kind != FirstOrderQuery::NodeKind::kExists) return false;
  std::vector<int> stack = {root.children[0]};
  while (!stack.empty()) {
    const auto& n = fo.nodes[stack.back()];
    stack.pop_back();
    if (n.kind == FirstOrderQuery::NodeKind::kExists ||
        n.kind == FirstOrderQuery::NodeKind::kForall) {
      return false;
    }
    for (int c : n.children) stack.push_back(c);
  }
  return true;
}
}  // namespace

Classification ClassifyPositive(const PositiveQuery& q) {
  Classification c;
  c.language = QueryLanguage::kPositive;
  c.q = q.QuerySize();
  c.v = q.NumVariables();
  c.prenex = IsPrenexPositive(q.fo());
  c.fixed_parameter_tractable = false;
  c.class_under_q = "W[1]-complete";
  c.class_under_v =
      c.prenex ? "W[SAT]-complete (prenex)" : "W[SAT]-hard";
  c.basis = "Theorem 1, row 2 (positive queries)";
  c.engine = EngineChoice::kUcq;
  if (q.fo().answer.counting()) {
    c.counting = true;
    c.counting_class =
        "union counted by inclusion-exclusion over disjunct subsets (each "
        "deduplicated disjunct evaluated once; the union itself is never "
        "materialized)";
  }
  return c;
}

Classification ClassifyFirstOrder(const FirstOrderQuery& q) {
  Classification c;
  c.language = QueryLanguage::kFirstOrder;
  c.q = q.QuerySize();
  c.v = q.NumVariables();
  if (q.IsPositive()) {
    auto pos = PositiveQuery::FromFirstOrder(q);
    if (pos.ok()) return ClassifyPositive(pos.value());
  }
  c.fixed_parameter_tractable = false;
  c.class_under_q = "W[t]-hard for all t (AW[*]-complete per Downey-Fellows-Taylor)";
  c.class_under_v = "W[P]-hard (AW[P]-hard with alternation)";
  c.basis = "Theorem 1, row 3 (first-order queries)";
  c.engine = EngineChoice::kFo;
  if (q.answer.counting()) {
    c.counting = true;
    c.counting_class =
        "active-domain enumeration of free-variable assignments, then "
        "group-count (no counting shortcut for general first-order queries)";
  }
  return c;
}

Classification ClassifyDatalog(const DatalogProgram& p) {
  Classification c;
  c.language = QueryLanguage::kDatalog;
  c.q = p.QuerySize();
  c.v = p.MaxRuleVariables();
  c.max_idb_arity = p.MaxIdbArity();
  c.fixed_parameter_tractable = false;
  // The bounded-arity remark of Section 4.
  std::ostringstream basis;
  if (c.max_idb_arity <= 2) {
    c.class_under_q = "W[1]-complete (bounded-arity Datalog)";
    c.class_under_v = "W[1]-complete (bounded-arity Datalog)";
    basis << "Section 4 remark: fixed-arity Datalog is in W[1]";
  } else {
    c.class_under_q =
        "query size provably in the exponent for unbounded arity (Vardi)";
    c.class_under_v = c.class_under_q;
    basis << "Section 4: Vardi's lower bound for fixpoint/Datalog";
  }
  c.basis = basis.str();
  c.engine = EngineChoice::kDatalog;
  return c;
}

std::string Classification::ToString() const {
  std::ostringstream oss;
  oss << "language: " << QueryLanguageName(language) << "\n";
  oss << "q (query size): " << q << ", v (variables): " << v << "\n";
  if (language == QueryLanguage::kConjunctive) {
    oss << "acyclic: " << (acyclic ? "yes" : "no")
        << ", inequalities: " << (has_inequalities ? "yes" : "no")
        << ", order comparisons: " << (has_order ? "yes" : "no") << "\n";
  }
  if (language == QueryLanguage::kDatalog) {
    oss << "max IDB arity: " << max_idb_arity << "\n";
  }
  oss << "parametrized class (parameter q): " << class_under_q << "\n";
  oss << "parametrized class (parameter v): " << class_under_v << "\n";
  oss << "fixed-parameter tractable here: "
      << (fixed_parameter_tractable ? "yes" : "no") << "\n";
  oss << "basis: " << basis << "\n";
  if (counting) oss << "counting: " << counting_class << "\n";
  oss << "engine: " << EngineChoiceName(engine) << "\n";
  return oss.str();
}

}  // namespace paraquery

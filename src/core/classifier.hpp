// Query classification according to the paper's results: given a query,
// report its language class, the parameters q and v, structural properties
// (acyclicity, inequality/comparison usage), the parametrized-complexity
// verdict of Theorem 1/2/3 for both parameters, and the evaluation engine
// this library would pick.
#ifndef PARAQUERY_CORE_CLASSIFIER_H_
#define PARAQUERY_CORE_CLASSIFIER_H_

#include <string>

#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "query/first_order_query.hpp"
#include "query/positive_query.hpp"

namespace paraquery {

/// Query language classes of the paper (Section 3).
enum class QueryLanguage { kConjunctive, kPositive, kFirstOrder, kDatalog };

/// Engines this library can route a query to.
enum class EngineChoice {
  kAcyclic,     // Yannakakis (acyclic, comparison-free)
  kInequality,  // Theorem 2 color-coding engine (acyclic + ≠)
  kNaive,       // backtracking (anything conjunctive)
  kUcq,         // positive via union of CQs
  kFo,          // active-domain relational calculus
  kDatalog,     // semi-naive fixpoint
  kCounting,    // counting Yannakakis / aggregate-at-root (COUNT heads)
};

const char* QueryLanguageName(QueryLanguage lang);
const char* EngineChoiceName(EngineChoice engine);

/// The classification verdict.
struct Classification {
  QueryLanguage language = QueryLanguage::kConjunctive;
  size_t q = 0;  // query size
  int v = 0;     // number of variables

  bool acyclic = false;          // hypergraph of relational atoms
  bool has_inequalities = false; // ≠ atoms
  bool has_order = false;        // < / ≤ atoms
  bool prenex = false;           // for positive/FO queries
  int max_idb_arity = 0;         // for Datalog

  /// Counting workload (AnswerSpec is COUNT(*) or a grouped count): the
  /// query asks for answer counts, not answer tuples.
  bool counting = false;
  /// Counting-tractability verdict. The engine's COUNT counts assignments
  /// to ALL body variables (group keys select, nothing is projected away
  /// before counting), which is the tractable side of the Pichler–Skritek /
  /// Chen–Mengel counting trichotomy for acyclic queries; quantified
  /// (projected) counting would be #P-hard even on acyclic queries.
  std::string counting_class;

  /// True if this library evaluates the query in f.p. polynomial time
  /// (g(parameter) · poly(n)).
  bool fixed_parameter_tractable = false;

  /// Theorem 1/2/3 verdict under each parameter, e.g. "W[1]-complete".
  std::string class_under_q;
  std::string class_under_v;

  /// Citation within the paper backing the verdict.
  std::string basis;

  EngineChoice engine = EngineChoice::kNaive;

  std::string ToString() const;
};

Classification ClassifyConjunctive(const ConjunctiveQuery& q);
Classification ClassifyPositive(const PositiveQuery& q);
Classification ClassifyFirstOrder(const FirstOrderQuery& q);
Classification ClassifyDatalog(const DatalogProgram& p);

}  // namespace paraquery

#endif  // PARAQUERY_CORE_CLASSIFIER_H_

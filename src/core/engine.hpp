// The ParaQuery engine facade: parse -> classify -> plan -> execute.
//
// Routing policy (the operational content of the paper):
//   * conjunctive, acyclic, comparison-free      -> Yannakakis plan
//   * conjunctive, acyclic, only ≠ atoms         -> Theorem 2 color coding
//   * conjunctive with order comparisons         -> Klug closure, then the
//     best applicable engine on the rewritten query (naive if < / ≤ remain:
//     Theorem 3 says nothing better exists in general)
//   * cyclic conjunctive                         -> greedy left-deep plan
//   * positive                                   -> union-of-CQs expansion
//   * first-order                                -> active-domain algebra
//   * Datalog                                    -> semi-naive fixpoint over
//                                                   cached per-rule plans
//
// Every plan-routed query runs through the shared executor in src/plan/;
// EngineStats::plan carries its counters for the most recent call.
#ifndef PARAQUERY_CORE_ENGINE_H_
#define PARAQUERY_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "common/query_context.hpp"
#include "core/classifier.hpp"
#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "eval/acyclic.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "relational/database.hpp"
#include "runtime/scheduler.hpp"

namespace paraquery {

/// Engine-wide options (forwarded to the individual evaluators).
struct EngineOptions {
  /// Unified resource guard, forwarded to every evaluator. Nonzero members
  /// override the per-evaluator legacy aliases (AcyclicOptions::max_rows,
  /// NaiveOptions::max_steps, UcqOptions::naive_max_steps,
  /// DatalogOptions::max_rows, IneqOptions::max_rows). The color-coding
  /// engine is plan-routed since the Theorem 2 lowering, so both members
  /// apply to it (max_steps per coloring execution); the active-domain
  /// algebra (FoOptions) honors max_rows plus the deadline/memory members
  /// through its polled QueryContext (max_steps does not apply there).
  ResourceLimits limits;
  /// Execution width of the parallel runtime: 1 (default) runs every plan
  /// sequentially — exactly the historical engine; 0 means hardware
  /// concurrency; N > 1 runs plan-routed queries on an N-thread
  /// work-stealing scheduler (src/runtime/). Successful results are
  /// byte-identical to threads = 1, and speculative subtree work is charged
  /// tentatively, so a query that passes its ResourceLimits at threads = 1
  /// passes them at any width (see plan/executor.hpp). Plan-routed engines
  /// (now including Theorem 2 color coding, whose per-coloring plans
  /// execute on the runtime) go parallel; only the active-domain algebra
  /// stays sequential.
  size_t threads = 1;
  /// Rows per morsel for the data-parallel operators (mainly a test knob;
  /// the default suits real workloads).
  size_t morsel_rows = kDefaultMorselRows;
  /// Engine-owned cross-query plan cache (see Engine::plan_cache()). Off
  /// disables all lookups/inserts — for memory-constrained embeddings and
  /// benchmarks that must pay full per-query planning on every run.
  bool use_plan_cache = true;
  /// LRU capacity of the plan cache in entries (0 = unlimited). Applied on
  /// the next Run; shrinking evicts immediately.
  size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Caller-owned cancellation/abort token. When set, every Run arms THIS
  /// context (deadline/memory from `limits`) instead of an engine-internal
  /// one, so another thread may Cancel() it mid-query. The caller controls
  /// its lifecycle: cancellation is sticky until QueryContext::Reset().
  QueryContext* query_ctx = nullptr;
  /// Master switch for vectorized columnar execution: forwarded onto the
  /// naive/UCQ/Datalog evaluators, whose planners place Materialize
  /// boundaries over eligible Select/Project/HashJoin chains. Results are
  /// byte-identical on or off; off forces row-at-a-time execution.
  bool vectorize = true;
  /// Master switch for worst-case-optimal multiway joins: comparison-free
  /// cyclic CQs route through a generalized hypertree decomposition with
  /// leapfrog-triejoin bags (PlannerOptions::wcoj). Results are
  /// byte-identical on or off; off keeps the binary left-deep chains.
  bool wcoj = true;
  /// Minimum source rows for a Materialize boundary to engage the vectorized
  /// columnar pipeline; below it the chain runs row-at-a-time (batch setup
  /// costs more than it saves on small inputs — e.g. Datalog delta batches).
  /// The default (256) matches the previously hard-coded executor threshold.
  size_t vec_min_source_rows = 256;
  /// Query tracing: when on, every Run records hierarchical spans (query →
  /// route → fixpoint round / disjunct / coloring → plan operator → morsel)
  /// into the engine-owned Tracer, cleared at the start of each Run and
  /// exportable afterwards through Engine::tracer() (Chrome trace-event
  /// JSON or text profile). Results are byte-identical on or off; off costs
  /// one null-pointer test per instrumentation site.
  bool trace = false;
  AcyclicOptions acyclic;
  IneqOptions inequality;
  NaiveOptions naive;
  FoOptions fo;
  UcqOptions ucq;
  DatalogOptions datalog;
};

/// Instrumentation from the most recent Run/RunText call, per evaluator.
/// Every Run overload zeroes the whole struct up front, then only the
/// evaluator that actually ran populates its members — so counters never
/// carry over from an earlier query.
struct EngineStats {
  /// End-to-end wall clock of the last Run, measured at the engine: covers
  /// planning, routing, and execution on EVERY route — including the
  /// active-domain algebra and plan-cache-hit paths, which PlanStats'
  /// per-plan-execution wall_seconds does not see.
  double wall_seconds = 0;
  /// Why the last Run aborted ("cancelled", "deadline_exceeded",
  /// "resource_exhausted"), empty on success and on other errors. The
  /// cumulative per-reason counts live in Engine::metrics()
  /// (pq_aborts_*_total).
  std::string abort_reason;
  /// Shared plan-executor counters for whatever plan(s) the last call ran
  /// (the unified home of the former per-evaluator operator counters).
  PlanStats plan;
  DatalogStats datalog;
  AcyclicStats acyclic;
  UcqStats ucq;
  /// Theorem 2 color-coding instrumentation (set when the last call routed
  /// through the inequality engine).
  IneqStats ineq;
  /// Program-wide plan cache counters. Unlike the sections above these are
  /// CUMULATIVE over the engine's lifetime (the cache outlives queries —
  /// that is its point); refreshed on every Run/RunText.
  PlanCacheStats plan_cache;

  std::string ToString() const;
};

/// Facade bound to one database instance (not owned).
class Engine {
 public:
  explicit Engine(const Database& db, EngineOptions options = {});

  /// Evaluates a conjunctive query (with any comparison atoms) using the
  /// best applicable algorithm.
  Result<Relation> Run(const ConjunctiveQuery& q) const;

  /// Evaluates a positive query.
  Result<Relation> Run(const PositiveQuery& q) const;

  /// Evaluates a first-order query.
  Result<Relation> Run(const FirstOrderQuery& q) const;

  /// Evaluates a Datalog program.
  Result<Relation> Run(const DatalogProgram& p) const;

  /// Parses `text` (rule syntax with ":-", formula syntax with ":=",
  /// multiple rules = Datalog) and evaluates it. String constants in the
  /// query require `dict` (usually the database's own dictionary) so they
  /// can be interned to value codes; without it they are a parse error.
  Result<Relation> RunText(const std::string& text,
                           Dictionary* dict = nullptr);

  /// Classification + physical plan for a query, as a human-readable report.
  Result<std::string> ExplainText(const std::string& text);

  /// Renders the physical plan for `text` without executing it (the shell's
  /// `.plan` command). Cardinalities are planner estimates only.
  Result<std::string> PlanText(const std::string& text,
                               Dictionary* dict = nullptr);

  /// EXPLAIN ANALYZE: executes `text` and returns the executed plan(s)
  /// annotated with per-node actual rows and wall time (self and
  /// cumulative), plus the result cardinality and end-to-end wall clock.
  /// Datalog programs report each distinct rule plan with its execution
  /// count; non-positive first-order queries execute but have no plan to
  /// render (the active-domain algebra is not plan-routed).
  Result<std::string> AnalyzeText(const std::string& text,
                                  Dictionary* dict = nullptr);

  const Database& db() const { return *db_; }
  EngineOptions& options() { return options_; }

  /// Evaluator instrumentation from the most recent Run/RunText call (e.g.
  /// the shared plan-executor counters, the Datalog EDB-cache hit counters).
  const EngineStats& last_stats() const { return stats_; }

  /// The engine-owned cross-query plan cache: compiled CQ/UCQ-disjunct
  /// plans, Theorem 2 residual compilations, and Datalog rule-variant plans
  /// keyed by canonical signature. Entries record the per-relation
  /// generation stamps of the stored relations they read; a mutation of the
  /// database (an `.insert`, a LoadCsv — anything reaching a mutable
  /// Database::relation handle) stales exactly the entries that read the
  /// mutated relation, dropped at their next lookup. Capacity-bounded LRU
  /// (EngineOptions::plan_cache_capacity).
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// The engine-wide metrics registry: query counts/latency, per-operator
  /// row histograms, abort reasons, scheduler activity, plan-cache and
  /// trie/columnar cache hit rates. Cumulative over the engine's lifetime
  /// (storage-cache counters are process-wide); scraped/refreshed at the
  /// end of every Run.
  MetricsRegistry& metrics() const { return metrics_; }

  /// The spans of the most recent traced Run (EngineOptions::trace); null
  /// until the first traced query. Export with Tracer::ChromeTraceJson()
  /// or Tracer::TextProfile(); stable until the next traced Run.
  Tracer* tracer() const { return tracer_.get(); }

 private:
  /// The parallel-runtime binding options().threads selects: a null
  /// scheduler for threads == 1, otherwise a lazily created (and reused)
  /// TaskScheduler of the resolved width. Rebuilt when the option changes.
  RuntimeOptions Runtime() const;

  /// The QueryContext for one Run: the caller's (options().query_ctx) if
  /// set, else a lazily created engine-owned context when `limits` arms a
  /// deadline or memory budget, else null (unhardened). Engine-owned
  /// contexts are Reset() and re-armed per Run.
  QueryContext* ArmQueryContext() const;

  /// When tracing is on: ensures the tracer exists, Clear()s it for the new
  /// query, and returns it (the calling thread becomes track 0). Returns
  /// null when tracing is off. Called once at the top of each Run overload.
  Tracer* PrepareTracer() const;

  /// End-of-Run bookkeeping shared by every route: records the engine-level
  /// wall clock and abort reason into stats_, and updates/scrapes the
  /// metrics registry (latency and peak-bytes histograms, per-reason abort
  /// counters, plan-cache / scheduler / storage-cache gauges).
  void FinishQuery(double seconds, const Status& status,
                   const QueryContext* qc) const;

  /// Pre-resolved registry handles (see QueryMetrics: hot paths must not
  /// pay name lookups).
  struct MetricHandles {
    Counter* queries = nullptr;
    Counter* counting_queries = nullptr;
    Histogram* count_groups = nullptr;
    Histogram* latency_us = nullptr;
    Histogram* peak_bytes = nullptr;
    Counter* aborts_cancelled = nullptr;
    Counter* aborts_deadline = nullptr;
    Counter* aborts_resource = nullptr;
    Counter* rows_produced = nullptr;
    Counter* morsels = nullptr;
    Counter* vec_batches = nullptr;
    Counter* plan_cache_hits = nullptr;
    Counter* plan_cache_misses = nullptr;
    Counter* plan_cache_stale = nullptr;
    Counter* plan_cache_evictions = nullptr;
    Gauge* plan_cache_entries = nullptr;
    Counter* sched_tasks = nullptr;
    Counter* sched_steals = nullptr;
    Counter* sched_idle_sleeps = nullptr;
    Gauge* sched_queue_depth = nullptr;
    Counter* trie_hits = nullptr;
    Counter* trie_builds = nullptr;
    Counter* columnar_hits = nullptr;
    Counter* columnar_builds = nullptr;
  };

  const Database* db_;
  EngineOptions options_;
  mutable std::unique_ptr<TaskScheduler> scheduler_;
  mutable std::unique_ptr<QueryContext> run_ctx_;
  mutable PlanCache plan_cache_;
  mutable EngineStats stats_;
  mutable MetricsRegistry metrics_;
  mutable std::unique_ptr<Tracer> tracer_;
  MetricHandles m_;
  QueryMetrics query_metrics_;
  /// Armed by AnalyzeText for the duration of one RunText; bound into
  /// RuntimeOptions::analyze by Runtime().
  mutable PlanCapture* analyze_ = nullptr;
};

}  // namespace paraquery

#endif  // PARAQUERY_CORE_ENGINE_H_

#include "workload/generators.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "query/parser.hpp"

namespace paraquery {

Database GraphDatabase(const Graph& g) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
  }
  RelId vr = db.AddRelation("V", 1).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) db.relation(vr).Add({u});
  return db;
}

Database EmployeeProjects(int employees, int projects, int min_assignments,
                          int max_assignments, uint64_t seed) {
  PQ_CHECK(min_assignments >= 0 && max_assignments >= min_assignments &&
               projects >= 1,
           "EmployeeProjects: bad parameters");
  Rng rng(seed);
  Database db;
  RelId ep = db.AddRelation("EP", 2).ValueOrDie();
  for (int e = 0; e < employees; ++e) {
    int count = static_cast<int>(
        rng.Range(min_assignments, max_assignments));
    // Sample `count` distinct projects (rejection; count is small).
    std::vector<Value> chosen;
    while (static_cast<int>(chosen.size()) < count) {
      Value p = rng.Range(0, projects - 1);
      if (std::find(chosen.begin(), chosen.end(), p) == chosen.end()) {
        chosen.push_back(p);
      }
    }
    for (Value p : chosen) db.relation(ep).Add({e, 1'000'000 + p});
  }
  return db;
}

ConjunctiveQuery MultiProjectQuery() {
  return ParseConjunctive("g(e) :- EP(e, p), EP(e, q), p != q.").ValueOrDie();
}

Database StudentCourses(int students, int courses, int departments,
                        int courses_per_student, double outside_fraction,
                        uint64_t seed) {
  PQ_CHECK(departments >= 2 && courses >= departments,
           "StudentCourses: need >= 2 departments and enough courses");
  Rng rng(seed);
  Database db;
  RelId sd = db.AddRelation("SD", 2).ValueOrDie();
  RelId sc = db.AddRelation("SC", 2).ValueOrDie();
  RelId cd = db.AddRelation("CD", 2).ValueOrDie();
  // Courses are assigned round-robin to departments.
  const Value kCourseBase = 10'000'000;
  const Value kDeptBase = 20'000'000;
  for (int c = 0; c < courses; ++c) {
    db.relation(cd).Add({kCourseBase + c, kDeptBase + (c % departments)});
  }
  for (int s = 0; s < students; ++s) {
    Value dept = rng.Range(0, departments - 1);
    db.relation(sd).Add({s, kDeptBase + dept});
    bool forced_outside = rng.Chance(outside_fraction);
    for (int i = 0; i < courses_per_student; ++i) {
      Value course;
      if (forced_outside && i == 0) {
        // A course from a different department (exists since courses are
        // round-robin over >= 2 departments).
        do {
          course = rng.Range(0, courses - 1);
        } while (course % departments == dept);
      } else {
        // A course from the student's own department.
        Value per_dept = (courses + departments - 1) / departments;
        Value idx = rng.Range(0, per_dept - 1);
        course = idx * departments + dept;
        if (course >= courses) course = dept;  // wrap to a valid course
      }
      db.relation(sc).Add({s, kCourseBase + course});
    }
  }
  return db;
}

ConjunctiveQuery OutsideDepartmentQuery() {
  return ParseConjunctive(
             "g(s) :- SD(s, d), SC(s, c), CD(c, e), d != e.")
      .ValueOrDie();
}

Database EmployeeSalaries(int employees, Value max_salary, uint64_t seed) {
  Rng rng(seed);
  Database db;
  RelId em = db.AddRelation("EM", 2).ValueOrDie();
  RelId es = db.AddRelation("ES", 2).ValueOrDie();
  const Value kSalaryBase = 30'000'000;
  for (int e = 0; e < employees; ++e) {
    int manager = e == 0 ? 0 : static_cast<int>(rng.Below(e));  // tree
    if (e != 0) db.relation(em).Add({e, manager});
    db.relation(es).Add({e, kSalaryBase + rng.Range(1, max_salary)});
  }
  return db;
}

ConjunctiveQuery HigherPaidThanManagerQuery() {
  return ParseConjunctive(
             "g(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.")
      .ValueOrDie();
}

ConjunctiveQuery ChainQuery(int length, bool boolean_head) {
  PQ_CHECK(length >= 1, "ChainQuery: length must be >= 1");
  ConjunctiveQuery q;
  std::vector<VarId> xs;
  for (int i = 0; i <= length; ++i) {
    std::string name = "x";
    name += std::to_string(i + 1);
    xs.push_back(q.vars.Intern(name));
  }
  for (int i = 0; i < length; ++i) {
    q.body.push_back(Atom{"E", {Term::Var(xs[i]), Term::Var(xs[i + 1])}});
  }
  if (!boolean_head) {
    q.head = {Term::Var(xs.front()), Term::Var(xs.back())};
  }
  return q;
}

ConjunctiveQuery SimplePathQuery(int k) {
  ConjunctiveQuery q = ChainQuery(k);
  for (int i = 0; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) {
      q.comparisons.push_back(
          {CompareOp::kNeq, Term::Var(i), Term::Var(j)});
    }
  }
  return q;
}

DatalogProgram TransitiveClosureProgram() {
  return ParseDatalog(
             "tc(x, y) :- E(x, y).\n"
             "tc(x, y) :- E(x, z), tc(z, y).\n")
      .ValueOrDie();
}

DatalogProgram ArityRWalkProgram(int r) {
  PQ_CHECK(r >= 2, "ArityRWalkProgram: arity must be >= 2");
  auto var = [](int i) {
    std::string name = "x";
    name += std::to_string(i);
    return name;
  };
  std::string base = "p(";
  for (int i = 1; i <= r; ++i) {
    if (i > 1) base += ", ";
    base += var(i);
  }
  base += ") :- ";
  for (int i = 1; i < r; ++i) {
    if (i > 1) base += ", ";
    base += "E(" + var(i) + ", " + var(i + 1) + ")";
  }
  base += ".\n";
  std::string step = "p(";
  for (int i = 1; i <= r; ++i) {
    if (i > 1) step += ", ";
    step += var(i);
  }
  step += ") :- p(";
  for (int i = 0; i < r; ++i) {
    if (i > 0) step += ", ";
    step += var(i);
  }
  step += "), E(" + var(r - 1) + ", " + var(r) + ").\n";
  return ParseDatalog(base + step).ValueOrDie();
}

Database RandomBinaryDatabase(int count, int rows_each, Value domain,
                              uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (int i = 0; i < count; ++i) {
    std::string name = "R";
    name += std::to_string(i);
    RelId id = db.AddRelation(name, 2).ValueOrDie();
    for (int r = 0; r < rows_each; ++r) {
      db.relation(id).Add({rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  }
  return db;
}

ConjunctiveQuery RandomAcyclicNeqQuery(int relations, int atoms, int neq_atoms,
                                       uint64_t seed) {
  PQ_CHECK(relations >= 1 && atoms >= 1, "RandomAcyclicNeqQuery: bad shape");
  Rng rng(seed);
  ConjunctiveQuery q;
  std::vector<VarId> pool = {q.vars.Intern("v0")};
  for (int i = 0; i < atoms; ++i) {
    VarId shared = pool[rng.Below(pool.size())];
    std::string name = "v";
    name += std::to_string(i + 1);
    VarId fresh = q.vars.Intern(name);
    std::string rel = "R";
    rel += std::to_string(rng.Below(static_cast<uint64_t>(relations)));
    Atom a{rel, {Term::Var(shared), Term::Var(fresh)}};
    if (rng.Chance(0.5)) std::swap(a.terms[0], a.terms[1]);
    q.body.push_back(std::move(a));
    pool.push_back(fresh);
  }
  int added = 0, attempts = 0;
  while (added < neq_atoms && attempts < neq_atoms * 10) {
    ++attempts;
    VarId x = pool[rng.Below(pool.size())];
    VarId y = pool[rng.Below(pool.size())];
    if (x == y) continue;
    q.comparisons.push_back({CompareOp::kNeq, Term::Var(x), Term::Var(y)});
    ++added;
  }
  return q;
}

ConjunctiveQuery CountingVariant(ConjunctiveQuery q, size_t keep_keys) {
  std::vector<Term> keys;
  std::vector<VarId> seen;
  for (const Term& t : q.head) {
    if (keys.size() >= keep_keys) break;
    if (!t.is_var()) continue;
    if (std::find(seen.begin(), seen.end(), t.var()) != seen.end()) continue;
    seen.push_back(t.var());
    keys.push_back(t);
  }
  q.head = std::move(keys);
  q.answer =
      q.head.empty() ? AnswerSpec::Count() : AnswerSpec::GroupedCount();
  return q;
}

ConjunctiveQuery StarCountQuery(int arms) {
  PQ_CHECK(arms >= 1, "StarCountQuery: need at least one arm");
  ConjunctiveQuery q;
  VarId hub = q.vars.Intern("c");
  for (int i = 0; i < arms; ++i) {
    std::string rel = "R";
    rel += std::to_string(i);
    std::string name = "x";
    name += std::to_string(i + 1);
    VarId leaf = q.vars.Intern(name);
    q.body.push_back(Atom{rel, {Term::Var(hub), Term::Var(leaf)}});
  }
  q.answer = AnswerSpec::Count();
  return q;
}

}  // namespace paraquery

// Workload generators for the examples and benchmarks: the paper's
// motivating scenarios (employee-project, student-course-department,
// salary/manager), graph databases, path/clique queries, and random acyclic
// queries with inequalities.
#ifndef PARAQUERY_WORKLOAD_GENERATORS_H_
#define PARAQUERY_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// A database with a binary relation "E" holding both directions of every
/// edge of `g`, plus a unary "V" with all vertices.
Database GraphDatabase(const Graph& g);

/// Employee-project database: EP(employee, project). Employees get between
/// `min_assignments` and `max_assignments` random projects each.
Database EmployeeProjects(int employees, int projects, int min_assignments,
                          int max_assignments, uint64_t seed);

/// The paper's query "employees that work on more than one project":
/// g(e) :- EP(e, p), EP(e, p'), p != p'.
ConjunctiveQuery MultiProjectQuery();

/// Students/courses/departments: SD(student, dept), SC(student, course),
/// CD(course, dept). Each student takes `courses_per_student` random
/// courses; a fraction `outside_fraction` of students provably takes some
/// course outside their department.
Database StudentCourses(int students, int courses, int departments,
                        int courses_per_student, double outside_fraction,
                        uint64_t seed);

/// The paper's query "students that take courses outside their department":
/// g(s) :- SD(s, d), SC(s, c), CD(c, d'), d != d'.
ConjunctiveQuery OutsideDepartmentQuery();

/// Employees with manager and salary: EM(employee, manager),
/// ES(employee, salary).
Database EmployeeSalaries(int employees, Value max_salary, uint64_t seed);

/// The paper's comparison example "employees with a higher salary than
/// their manager": g(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.
ConjunctiveQuery HigherPaidThanManagerQuery();

/// Chain query ans() :- E(x1,x2), ..., E(x_{k}, x_{k+1}) — acyclic,
/// comparison-free.
ConjunctiveQuery ChainQuery(int length, bool boolean_head = true);

/// Simple-path query of length `k` (edges): the chain query plus all-pairs
/// ≠ atoms — the color-coding workload (Monien / Alon-Yuster-Zwick).
ConjunctiveQuery SimplePathQuery(int k);

/// The transitive-closure Datalog program over "E" with goal "tc".
DatalogProgram TransitiveClosureProgram();

/// Datalog program whose IDB has arity `r`, walking r-tuples of a graph:
///   p(x_1..x_r)  :- E(x_1, x_2), E(x_2, x_3), ..., E(x_{r-1}, x_r).
///   p(x_1..x_r)  :- p(x_0, x_1, ..., x_{r-1}), E(x_{r-1}, x_r).
/// Used to exhibit the arity-in-the-exponent behavior (Vardi).
DatalogProgram ArityRWalkProgram(int r);

/// Random database with `count` binary relations named R0..R{count-1}.
Database RandomBinaryDatabase(int count, int rows_each, Value domain,
                              uint64_t seed);

/// Random acyclic conjunctive query over R0..R{relations-1} with
/// `atoms` binary atoms arranged in a random tree, plus `neq_atoms`
/// random ≠ atoms.
ConjunctiveQuery RandomAcyclicNeqQuery(int relations, int atoms, int neq_atoms,
                                       uint64_t seed);

/// Rewrites `q` into its counting variant: the first `keep_keys` distinct
/// head variables become the group keys (`COUNT(k1, ..)`); `keep_keys == 0`
/// yields the scalar `COUNT(*)`. Comparisons and body are untouched, so the
/// counting answer agrees with group-counting the tuple answer of the full
/// query (all body variables in the head).
ConjunctiveQuery CountingVariant(ConjunctiveQuery q, size_t keep_keys);

/// Star join over R0..R{arms-1} sharing a hub variable:
///   COUNT(*) :- R0(c, x1), R1(c, x2), ..., R{arms-1}(c, x_arms).
/// Acyclic, comparison-free; the tuple output is the product of per-hub
/// fanouts, while counting Yannakakis never materializes it.
ConjunctiveQuery StarCountQuery(int arms);

}  // namespace paraquery

#endif  // PARAQUERY_WORKLOAD_GENERATORS_H_

// Color-coding hash families for the Theorem 2 driver.
//
// The paper evaluates Q(d) = ∪_h Q_h(d) over functions h : D -> {1..k}. Two
// regimes are implemented:
//
//  * Monte Carlo (the paper's randomized algorithm): c·e^k independent random
//    colorings. If a satisfying instantiation exists, each trial is consistent
//    with it with probability >= l!/l^k > e^-k, so all trials fail with
//    probability <= (1 - e^-k)^{c·e^k} <= e^-c.
//
//  * Certified (the deterministic algorithm): the paper invokes a k-perfect
//    family of size 2^{O(k)} log |D| from Alon-Yuster-Zwick. We substitute a
//    seeded construction that is *certified* k-perfect on a known ground set
//    (the active domain of the relevant columns): members are added until
//    every k-subset of the ground set is injectively colored by some member.
//    Expected size is O(e^k · k · log |ground|) (coupon collector), matching
//    the paper's g(v) = 2^{O(v log v)} budget; the certification makes the
//    union ∪_h Q_h(d) provably exact. See DESIGN.md §2 for the substitution
//    rationale.
#ifndef PARAQUERY_HASHING_COLORING_H_
#define PARAQUERY_HASHING_COLORING_H_

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "relational/value.hpp"

namespace paraquery {

/// A finite family of colorings h_i : Value -> {1..k}.
class ColoringFamily {
 public:
  /// Monte Carlo family of ceil(c · e^k) seeded random colorings.
  /// `c` is the error exponent: failure probability <= e^-c on satisfiable
  /// instances. k must be >= 0; for k <= 1 a single member suffices and the
  /// family is exact.
  static ColoringFamily MonteCarlo(int k, double c, uint64_t seed);

  /// Deterministic family certified k-perfect on `ground` (sorted distinct
  /// values): for every k-subset S of `ground`, some member is injective on
  /// S. Fails with ResourceExhausted if C(|ground|, k) > max_subsets or more
  /// than max_members members would be needed.
  static Result<ColoringFamily> Certified(const std::vector<Value>& ground,
                                          int k, uint64_t seed,
                                          uint64_t max_subsets = 2'000'000,
                                          size_t max_members = 100'000);

  int k() const { return k_; }
  size_t size() const { return seeds_.size(); }
  bool certified() const { return certified_; }

  /// Color of `v` under member `member`, in {1..k} (always 1 when k <= 1).
  Value Color(size_t member, Value v) const {
    if (k_ <= 1) return 1;
    return 1 + static_cast<Value>(HashValue(static_cast<Value>(
                                      static_cast<uint64_t>(v) ^
                                      seeds_[member])) %
                                  static_cast<uint64_t>(k_));
  }

  /// True if `member` assigns pairwise-distinct colors to `values`.
  bool InjectiveOn(size_t member, const std::vector<Value>& values) const;

  /// Exhaustive check that the family is k-perfect on `ground`
  /// (test helper; cost C(|ground|, k) · size()).
  bool IsPerfectOn(const std::vector<Value>& ground) const;

 private:
  ColoringFamily(int k, std::vector<uint64_t> seeds, bool certified)
      : k_(k), seeds_(std::move(seeds)), certified_(certified) {}

  int k_;
  std::vector<uint64_t> seeds_;
  bool certified_;
};

}  // namespace paraquery

#endif  // PARAQUERY_HASHING_COLORING_H_

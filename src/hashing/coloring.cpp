#include "hashing/coloring.hpp"

#include <algorithm>
#include <cmath>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"

namespace paraquery {

ColoringFamily ColoringFamily::MonteCarlo(int k, double c, uint64_t seed) {
  PQ_CHECK(k >= 0, "MonteCarlo: negative k");
  PQ_CHECK(c > 0, "MonteCarlo: error exponent must be positive");
  size_t members = 1;
  if (k > 1) {
    double raw = std::ceil(c * std::exp(static_cast<double>(k)));
    members = static_cast<size_t>(std::max(1.0, raw));
  }
  Rng rng(seed);
  std::vector<uint64_t> seeds(members);
  for (auto& s : seeds) s = rng.Next();
  return ColoringFamily(k, std::move(seeds), /*certified=*/k <= 1);
}

Result<ColoringFamily> ColoringFamily::Certified(
    const std::vector<Value>& ground, int k, uint64_t seed,
    uint64_t max_subsets, size_t max_members) {
  PQ_CHECK(k >= 0, "Certified: negative k");
  int n = static_cast<int>(ground.size());
  if (k <= 1 || n <= k) {
    // One member suffices: with n <= k we may still need injectivity, which a
    // single hash seed might miss, so for 1 < n <= k fall through to the
    // search below over all (= one) subsets.
    if (k <= 1) {
      return ColoringFamily(k, {0xabcdef1234567890ull}, /*certified=*/true);
    }
  }
  uint64_t num_subsets = Binomial(static_cast<uint64_t>(n),
                                  static_cast<uint64_t>(k));
  if (num_subsets > max_subsets) {
    return Status::ResourceExhausted(internal::StrCat(
        "Certified coloring family: C(", n, ",", k, ") = ", num_subsets,
        " exceeds limit ", max_subsets));
  }
  // Collect all k-subsets (by ground indices), then cover them greedily with
  // seeded random members.
  std::vector<std::vector<int>> uncovered;
  uncovered.reserve(num_subsets);
  ForEachKSubset(n, k, [&](const std::vector<int>& subset) {
    uncovered.push_back(subset);
    return true;
  });

  Rng rng(seed);
  std::vector<uint64_t> seeds;
  std::vector<Value> colors(k);
  while (!uncovered.empty()) {
    if (seeds.size() >= max_members) {
      return Status::ResourceExhausted(internal::StrCat(
          "Certified coloring family: exceeded ", max_members, " members with ",
          uncovered.size(), " subsets uncovered"));
    }
    uint64_t s = rng.Next();
    ColoringFamily probe(k, {s}, false);
    size_t kept = 0;
    for (size_t i = 0; i < uncovered.size(); ++i) {
      bool injective = true;
      for (int j = 0; j < k; ++j) {
        colors[j] = probe.Color(0, ground[uncovered[i][j]]);
        for (int l = 0; l < j; ++l) {
          if (colors[l] == colors[j]) {
            injective = false;
            break;
          }
        }
        if (!injective) break;
      }
      if (!injective) {
        if (kept != i) uncovered[kept] = std::move(uncovered[i]);
        ++kept;
      }
    }
    bool useful = kept < uncovered.size();
    uncovered.resize(kept);
    if (useful) seeds.push_back(s);
  }
  if (seeds.empty()) seeds.push_back(rng.Next());
  return ColoringFamily(k, std::move(seeds), /*certified=*/true);
}

bool ColoringFamily::InjectiveOn(size_t member,
                                 const std::vector<Value>& values) const {
  std::vector<Value> colors;
  colors.reserve(values.size());
  for (Value v : values) colors.push_back(Color(member, v));
  std::sort(colors.begin(), colors.end());
  return std::adjacent_find(colors.begin(), colors.end()) == colors.end();
}

bool ColoringFamily::IsPerfectOn(const std::vector<Value>& ground) const {
  if (k_ <= 1) return true;
  int n = static_cast<int>(ground.size());
  bool all_covered = true;
  ForEachKSubset(n, k_, [&](const std::vector<int>& subset) {
    std::vector<Value> values;
    values.reserve(subset.size());
    for (int i : subset) values.push_back(ground[i]);
    for (size_t m = 0; m < size(); ++m) {
      if (InjectiveOn(m, values)) return true;  // next subset
    }
    all_covered = false;
    return false;  // stop
  });
  return all_covered;
}

}  // namespace paraquery

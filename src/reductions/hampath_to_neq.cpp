#include "reductions/hampath_to_neq.hpp"

#include <string>

#include "common/status.hpp"

namespace paraquery {

HamPathToNeqResult HamPathToNeq(const Graph& g) {
  int n = g.num_vertices();
  PQ_CHECK(n >= 1, "HamPathToNeq: graph must have at least one vertex");
  HamPathToNeqResult out;
  RelId e = out.db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < n; ++u) {
    for (int v : g.Neighbors(u)) out.db.relation(e).Add({u, v});
  }
  // Vertex relation so the n = 1 query stays well-formed (and isolated
  // vertices appear in the domain).
  RelId vr = out.db.AddRelation("V", 1).ValueOrDie();
  for (int u = 0; u < n; ++u) out.db.relation(vr).Add({u});

  std::vector<VarId> xs;
  for (int i = 1; i <= n; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    xs.push_back(out.query.vars.Intern(name));
  }
  if (n == 1) {
    out.query.body.push_back(Atom{"V", {Term::Var(xs[0])}});
    return out;
  }
  for (int i = 0; i + 1 < n; ++i) {
    out.query.body.push_back(
        Atom{"E", {Term::Var(xs[i]), Term::Var(xs[i + 1])}});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      out.query.comparisons.push_back(
          {CompareOp::kNeq, Term::Var(xs[i]), Term::Var(xs[j])});
    }
  }
  return out;
}

}  // namespace paraquery

#include "reductions/positive_to_wformula.hpp"

#include <algorithm>
#include <map>

namespace paraquery {

Result<PositiveToWFormulaResult> PrenexPositiveToWFormula(
    const Database& db, const PositiveQuery& q) {
  const FirstOrderQuery& fo = q.fo();
  if (!fo.head.empty()) {
    return Status::InvalidArgument(
        "reduction requires a closed (Boolean) query; bind the head first");
  }
  using Kind = FirstOrderQuery::NodeKind;
  const auto& root = fo.nodes[fo.root];
  if (root.kind != Kind::kExists) {
    return Status::InvalidArgument(
        "reduction requires prenex form: root must be an ∃ block");
  }
  // The body must be quantifier-free.
  std::vector<int> stack = {root.children[0]};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    const auto& n = fo.nodes[id];
    if (n.kind == Kind::kExists || n.kind == Kind::kForall) {
      return Status::InvalidArgument(
          "reduction requires prenex form: quantifier inside the body");
    }
    for (int c : n.children) stack.push_back(c);
  }
  const std::vector<VarId>& ys = root.bound;
  int k = static_cast<int>(ys.size());
  auto index_of = [&ys](VarId v) -> int {
    auto it = std::find(ys.begin(), ys.end(), v);
    return it == ys.end() ? -1 : static_cast<int>(it - ys.begin());
  };

  std::vector<Value> adom = db.ActiveDomain();
  if (adom.empty() || k == 0) {
    return Status::InvalidArgument(
        "reduction requires a nonempty active domain and k >= 1");
  }
  PositiveToWFormulaResult out;
  out.k = k;
  // Inputs z_{i,c}: dense layout i * |adom| + index(c).
  out.formula = Circuit(k * static_cast<int>(adom.size()));
  std::map<Value, int> adom_index;
  for (size_t i = 0; i < adom.size(); ++i) {
    adom_index[adom[i]] = static_cast<int>(i);
  }
  for (int i = 0; i < k; ++i) {
    for (Value c : adom) out.input_origin.push_back({i, c});
  }
  auto z = [&](int i, int c_idx) {
    return i * static_cast<int>(adom.size()) + c_idx;
  };

  Circuit& f = out.formula;
  // θ_a per atom node; memoized translation of the body.
  std::map<int, int> memo;
  auto translate = [&](auto&& self, int id) -> Result<int> {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const auto& n = fo.nodes[id];
    int gate = -1;
    switch (n.kind) {
      case Kind::kAtom: {
        const Atom& a = fo.atoms[n.atom];
        PQ_ASSIGN_OR_RETURN(RelId rid, db.FindRelation(a.relation));
        const Relation& rel = db.relation(rid);
        if (rel.arity() != a.terms.size()) {
          return Status::InvalidArgument(
              internal::StrCat("atom ", a.relation, " arity mismatch"));
        }
        std::vector<int> disjuncts;
        for (size_t r = 0; r < rel.size(); ++r) {
          auto row = rel.Row(r);
          bool consistent = true;
          std::vector<int> lits;
          for (size_t c = 0; c < a.terms.size() && consistent; ++c) {
            const Term& t = a.terms[c];
            if (t.is_const()) {
              consistent = (row[c] == t.value());
            } else {
              int yi = index_of(t.var());
              if (yi < 0) {
                return Status::InvalidArgument(
                    "body variable not bound by the prenex block");
              }
              lits.push_back(z(yi, adom_index.at(row[c])));
            }
          }
          if (!consistent) continue;
          if (lits.empty()) {
            // Ground atom matched: θ_a is TRUE — represent as
            // (z_{0,c0} OR NOT z_{0,c0}).
            int first = z(0, 0);
            int neg = f.AddGate(GateKind::kNot, {first});
            disjuncts.push_back(f.AddGate(GateKind::kOr, {first, neg}));
          } else if (lits.size() == 1) {
            disjuncts.push_back(lits[0]);
          } else {
            disjuncts.push_back(f.AddGate(GateKind::kAnd, std::move(lits)));
          }
        }
        if (disjuncts.empty()) {
          // No consistent tuple: FALSE = (z AND NOT z).
          int first = z(0, 0);
          int neg = f.AddGate(GateKind::kNot, {first});
          gate = f.AddGate(GateKind::kAnd, {first, neg});
        } else if (disjuncts.size() == 1) {
          gate = disjuncts[0];
        } else {
          gate = f.AddGate(GateKind::kOr, std::move(disjuncts));
        }
        break;
      }
      case Kind::kAnd:
      case Kind::kOr: {
        std::vector<int> kids;
        for (int c : n.children) {
          PQ_ASSIGN_OR_RETURN(int kid, self(self, c));
          kids.push_back(kid);
        }
        gate = n.kind == Kind::kAnd ? f.AddGate(GateKind::kAnd, std::move(kids))
                                    : f.AddGate(GateKind::kOr, std::move(kids));
        break;
      }
      default:
        return Status::Internal("non-positive node in prenex body");
    }
    memo[id] = gate;
    return gate;
  };
  PQ_ASSIGN_OR_RETURN(int body_gate, translate(translate, root.children[0]));

  // At-most-one constant per variable.
  std::vector<int> conjuncts;
  for (int i = 0; i < k; ++i) {
    for (size_t c1 = 0; c1 < adom.size(); ++c1) {
      for (size_t c2 = c1 + 1; c2 < adom.size(); ++c2) {
        int n1 = f.AddGate(GateKind::kNot, {z(i, static_cast<int>(c1))});
        int n2 = f.AddGate(GateKind::kNot, {z(i, static_cast<int>(c2))});
        conjuncts.push_back(f.AddGate(GateKind::kOr, {n1, n2}));
      }
    }
  }
  conjuncts.push_back(body_gate);
  f.SetOutput(conjuncts.size() == 1
                  ? conjuncts[0]
                  : f.AddGate(GateKind::kAnd, std::move(conjuncts)));
  return out;
}

}  // namespace paraquery

// Footnote 2 of the paper: transforming query evaluation back into clique,
// making the positive-query upper bound a parametric *transformation*.
//
// CQ decision -> clique: run the 2-CNF construction (cq_to_w2cnf.hpp), then
// build the compatibility graph — one node per variable z_{a,s}, an edge
// between nodes not sharing a clause. Q nonempty iff the graph has a clique
// of size k = #atoms.
//
// Positive query -> clique: expand into a union of CQs, transform each
// disjunct Q_i to (G_i, k_i), pad every G_i to the common k = max k_i by
// adding k - k_i universal vertices, and take the disjoint union.
#ifndef PARAQUERY_REDUCTIONS_CQ_TO_CLIQUE_H_
#define PARAQUERY_REDUCTIONS_CQ_TO_CLIQUE_H_

#include <cstdint>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "query/conjunctive_query.hpp"
#include "query/positive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// A clique decision instance.
struct CliqueInstance {
  Graph graph = Graph(0);
  int k = 0;
};

/// Builds the compatibility-graph instance for a Boolean comparison-free CQ.
Result<CliqueInstance> CqDecisionToClique(const Database& db,
                                          const ConjunctiveQuery& q);

/// Builds a single clique instance for a closed positive query via UCQ
/// expansion (bounded by `max_disjuncts`) and padded disjoint union.
Result<CliqueInstance> PositiveToClique(const Database& db,
                                        const PositiveQuery& q,
                                        uint64_t max_disjuncts = 10'000);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_CQ_TO_CLIQUE_H_

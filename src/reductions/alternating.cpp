#include "reductions/alternating.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "circuit/normalize.hpp"
#include "common/combinatorics.hpp"

namespace paraquery {

Status AlternatingInstance::Validate() const {
  if (circuit.output() < 0) {
    return Status::InvalidArgument("alternating instance: output not set");
  }
  if (!circuit.IsMonotone()) {
    return Status::InvalidArgument("alternating instance: circuit not monotone");
  }
  if (blocks.empty() || blocks.size() != weights.size()) {
    return Status::InvalidArgument(
        "alternating instance: blocks/weights mismatch or empty");
  }
  std::set<int> seen;
  for (const auto& block : blocks) {
    for (int v : block) {
      if (v < 0 || v >= circuit.num_inputs()) {
        return Status::InvalidArgument("alternating instance: input out of range");
      }
      if (!seen.insert(v).second) {
        return Status::InvalidArgument("alternating instance: blocks overlap");
      }
    }
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0) {
      return Status::InvalidArgument("alternating instance: negative weight");
    }
  }
  return Status::OK();
}

namespace {

// Recursion over blocks: existential blocks need SOME k-subset to succeed,
// universal blocks need ALL k-subsets to succeed. A weight larger than the
// block makes ∃ false and ∀ vacuously true.
bool Recurse(const AlternatingInstance& inst, size_t block,
             std::vector<bool>* assignment) {
  if (block == inst.blocks.size()) {
    return inst.circuit.Evaluate(*assignment);
  }
  const auto& vs = inst.blocks[block];
  int k = inst.weights[block];
  bool exists = inst.IsExistential(block);
  if (k > static_cast<int>(vs.size())) return !exists;
  bool result = !exists;  // ∃: until found false; ∀: until refuted true
  ForEachKSubset(static_cast<int>(vs.size()), k,
                 [&](const std::vector<int>& subset) {
                   for (int idx : subset) (*assignment)[vs[idx]] = true;
                   bool sub = Recurse(inst, block + 1, assignment);
                   for (int idx : subset) (*assignment)[vs[idx]] = false;
                   if (exists && sub) {
                     result = true;
                     return false;  // stop: witness found
                   }
                   if (!exists && !sub) {
                     result = false;
                     return false;  // stop: counterexample found
                   }
                   return true;
                 });
  return result;
}

}  // namespace

Result<bool> SolveAlternatingWeightedSat(const AlternatingInstance& instance) {
  PQ_RETURN_NOT_OK(instance.Validate());
  std::vector<bool> assignment(instance.circuit.num_inputs(), false);
  return Recurse(instance, 0, &assignment);
}

Result<AlternatingToFoResult> AlternatingToFo(const AlternatingInstance& inst) {
  PQ_RETURN_NOT_OK(inst.Validate());
  for (size_t i = 0; i < inst.weights.size(); ++i) {
    if (inst.weights[i] < 1) {
      return Status::InvalidArgument("alternating reduction: weights must be >= 1");
    }
  }
  PQ_ASSIGN_OR_RETURN(AlternatingCircuit alt, NormalizeMonotone(inst.circuit));
  AlternatingToFoResult out;
  out.top_level = alt.top_level;
  const Circuit& cc = alt.circuit;

  // Wiring relation with input self-loops.
  RelId c_rel = out.db.AddRelation("C", 2).ValueOrDie();
  for (int g = 0; g < cc.num_gates(); ++g) {
    const Gate& gate = cc.gate(g);
    if (gate.kind == GateKind::kInput) {
      out.db.relation(c_rel).Add({g, g});
      continue;
    }
    for (int in : gate.inputs) out.db.relation(c_rel).Add({g, in});
  }
  // Partition relation P = {(a, c*_i)} with c*_i = first input of block i.
  // (Input gate ids are preserved by the normalizer: inputs are 0..n-1.)
  RelId p_rel = out.db.AddRelation("P", 2).ValueOrDie();
  std::vector<Value> reps;
  for (const auto& block : inst.blocks) {
    if (block.empty()) {
      return Status::InvalidArgument("alternating reduction: empty block");
    }
    reps.push_back(block.front());
    for (int a : block) out.db.relation(p_rel).Add({a, block.front()});
  }

  FirstOrderQuery& fo = out.query;
  // Variables x_ij per block, plus the shared hole w and child y.
  std::vector<std::vector<VarId>> xs(inst.blocks.size());
  for (size_t i = 0; i < inst.blocks.size(); ++i) {
    for (int j = 0; j < inst.weights[i]; ++j) {
      std::string name = "x";
      name += std::to_string(i + 1);
      name += "_";
      name += std::to_string(j + 1);
      xs[i].push_back(fo.vars.Intern(name));
    }
  }
  VarId w = fo.vars.Intern("w");
  VarId y = fo.vars.Intern("y");

  auto c_atom = [&fo](Term a, Term b) {
    Atom atom;
    atom.relation = "C";
    atom.terms = {a, b};
    return fo.AddAtomNode(std::move(atom));
  };
  auto p_atom = [&fo](Term a, Term b) {
    Atom atom;
    atom.relation = "P";
    atom.terms = {a, b};
    return fo.AddAtomNode(std::move(atom));
  };

  // θ chain over ALL chosen variables (both block kinds).
  std::vector<int> theta0;
  for (const auto& block_vars : xs) {
    for (VarId x : block_vars) {
      theta0.push_back(c_atom(Term::Var(w), Term::Var(x)));
    }
  }
  int theta = theta0.size() == 1 ? theta0[0] : fo.AddOr(std::move(theta0));
  auto wrap = [&](int inner, Term arg) {
    int guard = fo.AddNot(c_atom(Term::Var(y), Term::Var(w)));
    int body = fo.AddForall({w}, fo.AddOr({guard, inner}));
    int conj = fo.AddAnd({c_atom(arg, Term::Var(y)), body});
    return fo.AddExists({y}, conj);
  };
  for (int level = 2; level < alt.top_level; level += 2) {
    theta = wrap(theta, Term::Var(w));
  }
  int theta_top = wrap(theta, Term::Const(cc.output()));

  // ψ_i: block-i variables denote distinct input gates of V_i.
  auto psi = [&](size_t i) {
    std::vector<int> conj;
    for (size_t j = 0; j < xs[i].size(); ++j) {
      conj.push_back(p_atom(Term::Var(xs[i][j]), Term::Const(reps[i])));
      for (size_t l = 0; l < xs[i].size(); ++l) {
        if (l == j) continue;
        conj.push_back(
            fo.AddNot(c_atom(Term::Var(xs[i][j]), Term::Var(xs[i][l]))));
      }
    }
    return conj.size() == 1 ? conj[0] : fo.AddAnd(std::move(conj));
  };

  std::vector<int> exist_psis, forall_psis;
  for (size_t i = 0; i < inst.blocks.size(); ++i) {
    (inst.IsExistential(i) ? exist_psis : forall_psis).push_back(psi(i));
  }
  std::vector<int> first_disjunct = {theta_top};
  first_disjunct.insert(first_disjunct.end(), exist_psis.begin(),
                        exist_psis.end());
  int body = first_disjunct.size() == 1 ? first_disjunct[0]
                                        : fo.AddAnd(std::move(first_disjunct));
  if (!forall_psis.empty()) {
    int all_proper = forall_psis.size() == 1
                         ? forall_psis[0]
                         : fo.AddAnd(std::move(forall_psis));
    body = fo.AddOr({body, fo.AddNot(all_proper)});
  }

  // Quantifier prefix, innermost block first.
  int node = body;
  for (size_t i = inst.blocks.size(); i-- > 0;) {
    node = inst.IsExistential(i) ? fo.AddExists(xs[i], node)
                                 : fo.AddForall(xs[i], node);
  }
  fo.root = node;
  PQ_RETURN_NOT_OK(fo.Validate());
  return out;
}

}  // namespace paraquery

// Theorem 1 upper bound (parameter v, prenex case): prenex positive query
// evaluation ≤ weighted formula satisfiability.
//
// For a closed prenex positive query Q = ∃y_1..y_k ψ (ψ quantifier-free)
// and a database d, introduce Boolean variables z_{i,c} ("y_i maps to
// constant c") for every i and every active-domain constant c. The formula
// is the conjunction of at-most-one clauses (¬z_{i,c} ∨ ¬z_{i,c'}) with ψ
// where each atom a = R(τ) is replaced by
//     θ_a = ⋁_{s ∈ R consistent with τ's constants} ⋀_j z_{i_j, s[j]},
// the conjunction ranging over the positions j holding variable y_{i_j}.
// Q is true on d iff the formula has a weight-k satisfying assignment.
#ifndef PARAQUERY_REDUCTIONS_POSITIVE_TO_WFORMULA_H_
#define PARAQUERY_REDUCTIONS_POSITIVE_TO_WFORMULA_H_

#include <vector>

#include "circuit/circuit.hpp"
#include "common/status.hpp"
#include "query/positive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the reduction.
struct PositiveToWFormulaResult {
  Circuit formula = Circuit(0);
  int k = 0;  // required weight = number of quantified variables
  /// input_origin[b] = (variable index i, constant) for formula input b.
  std::vector<std::pair<int, Value>> input_origin;
};

/// Builds the reduction. The query must be closed (Boolean head) and
/// prenex: a single outermost ∃ block over a quantifier-free positive body.
Result<PositiveToWFormulaResult> PrenexPositiveToWFormula(
    const Database& db, const PositiveQuery& q);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_POSITIVE_TO_WFORMULA_H_

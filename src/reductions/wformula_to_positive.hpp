// Theorem 1 lower bound (parameter v): weighted formula satisfiability ≤
// positive-query evaluation.
//
// For a Boolean formula φ over x_1..x_n and weight k, the database holds
//   EQ  = {(i, i)   : 1 <= i <= n}
//   NEQ = {(i, j)   : 1 <= i != j <= n}
// and the positive query is
//   Q = ∃y_1..y_k [ ⋀_{i<j} NEQ(y_i, y_j) ] ∧ ψ,
// where ψ replaces each positive occurrence of x_i by ⋁_j EQ(i, y_j) and
// each negative occurrence by ⋀_j NEQ(i, y_j). φ has a weight-k satisfying
// assignment iff Q is true on the database. The query uses k variables, so
// the reduction gives W[SAT]-hardness under parameter v.
#ifndef PARAQUERY_REDUCTIONS_WFORMULA_TO_POSITIVE_H_
#define PARAQUERY_REDUCTIONS_WFORMULA_TO_POSITIVE_H_

#include "circuit/circuit.hpp"
#include "common/status.hpp"
#include "query/positive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the reduction.
struct WFormulaToPositiveResult {
  Database db;          // EQ and NEQ over {1..n}
  PositiveQuery query;  // Boolean positive query with k variables
};

/// Builds the reduction for a formula given as a circuit (NOT gates are
/// pushed to the leaves during the translation, so any circuit shape is
/// accepted; for the W[SAT] statement the input is a fan-out-1 formula).
/// Requires k >= 1 and an output gate.
Result<WFormulaToPositiveResult> WFormulaToPositive(const Circuit& formula,
                                                    int k);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_WFORMULA_TO_POSITIVE_H_

#include "reductions/clique_to_comparisons.hpp"

#include <string>

namespace paraquery {

Result<CliqueToComparisonsResult> CliqueToComparisons(const Graph& g, int k) {
  int n = g.num_vertices();
  if (k < 2 || n < 1) {
    return Status::InvalidArgument(
        "CliqueToComparisons requires k >= 2 and a nonempty graph");
  }
  CliqueToComparisonsResult out;
  RelId p = out.db.AddRelation("P", 2).ValueOrDie();
  RelId r = out.db.AddRelation("R", 2).ValueOrDie();
  // P over edges plus self-loops (the paper assumes every node has one).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j || g.HasEdge(i, j)) {
        out.db.relation(p).Add(
            {EncodeTriple(n, i, j, 0), EncodeTriple(n, i, j, 1)});
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int j2 = 0; j2 < n; ++j2) {
        out.db.relation(r).Add(
            {EncodeTriple(n, i, j, 1), EncodeTriple(n, i, j2, 0)});
      }
    }
  }

  // Variables x_ij and x'_ij, 1-based in names, 0-based indices here.
  ConjunctiveQuery& q = out.query;
  std::vector<std::vector<VarId>> x(k, std::vector<VarId>(k));
  std::vector<std::vector<VarId>> xp(k, std::vector<VarId>(k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      std::string base = "x";
      base += std::to_string(i + 1);
      base += "_";
      base += std::to_string(j + 1);
      x[i][j] = q.vars.Intern(base);
      xp[i][j] = q.vars.Intern(base + "'");
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      q.body.push_back(Atom{"P", {Term::Var(x[i][j]), Term::Var(xp[i][j])}});
      if (j + 1 < k) {
        q.body.push_back(
            Atom{"R", {Term::Var(xp[i][j]), Term::Var(x[i][j + 1])}});
      }
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      q.comparisons.push_back(
          {CompareOp::kLt, Term::Var(x[i][j]), Term::Var(x[j][i])});
      q.comparisons.push_back(
          {CompareOp::kLt, Term::Var(x[j][i]), Term::Var(xp[i][j])});
    }
  }
  PQ_RETURN_NOT_OK(q.Validate());
  return out;
}

}  // namespace paraquery

#include "reductions/cq_to_clique.hpp"

#include <set>

#include "reductions/cq_to_w2cnf.hpp"

namespace paraquery {

Result<CliqueInstance> CqDecisionToClique(const Database& db,
                                          const ConjunctiveQuery& q) {
  PQ_ASSIGN_OR_RETURN(CqToW2CnfResult red, CqToW2Cnf(db, q));
  CliqueInstance out;
  out.k = red.k;
  int n = red.instance.num_vars;
  out.graph = Graph(n);
  // Edge iff the pair shares no clause (compatible choices).
  std::set<std::pair<int, int>> conflicts;
  for (auto [a, b] : red.instance.clauses) {
    conflicts.insert({std::min(a, b), std::max(a, b)});
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (conflicts.count({u, v}) == 0) out.graph.AddEdge(u, v);
    }
  }
  return out;
}

Result<CliqueInstance> PositiveToClique(const Database& db,
                                        const PositiveQuery& q,
                                        uint64_t max_disjuncts) {
  if (!q.fo().head.empty()) {
    return Status::InvalidArgument(
        "PositiveToClique requires a closed (Boolean) query");
  }
  PQ_ASSIGN_OR_RETURN(auto cqs, q.ToUnionOfCqs(max_disjuncts));
  std::vector<CliqueInstance> parts;
  int k = 0;
  for (const ConjunctiveQuery& cq : cqs) {
    PQ_ASSIGN_OR_RETURN(CliqueInstance inst, CqDecisionToClique(db, cq));
    k = std::max(k, inst.k);
    parts.push_back(std::move(inst));
  }
  if (parts.empty()) return CliqueInstance{Graph(0), 0};
  // Normalize: pad each part with (k - k_i) universal vertices, then take
  // the disjoint union.
  int total = 0;
  for (const CliqueInstance& part : parts) {
    total += part.graph.num_vertices() + (k - part.k);
  }
  CliqueInstance out;
  out.k = k;
  out.graph = Graph(total);
  int offset = 0;
  for (const CliqueInstance& part : parts) {
    int n = part.graph.num_vertices();
    for (int u = 0; u < n; ++u) {
      for (int v : part.graph.Neighbors(u)) {
        if (u < v) out.graph.AddEdge(offset + u, offset + v);
      }
    }
    // Universal pad vertices: adjacent to everything in this part.
    int pad = k - part.k;
    for (int i = 0; i < pad; ++i) {
      int pv = offset + n + i;
      for (int u = 0; u < n + i; ++u) out.graph.AddEdge(pv, offset + u);
    }
    offset += n + pad;
  }
  return out;
}

}  // namespace paraquery

// Theorem 1 upper bound (parameter q): conjunctive-query decision ≤
// weighted 2-CNF satisfiability.
//
// For each atom a of Q and each tuple s of the corresponding database
// relation *consistent* with a (constants match, repeated variables equal),
// introduce a Boolean variable z_{a,s} ("atom a maps to tuple s"). Clauses:
//   (¬z_{a,s} ∨ ¬z_{a,s'})   for every atom a and distinct tuples s ≠ s';
//   (¬z_{a,s} ∨ ¬z_{a',s'})  whenever atoms a, a' share a variable in
//                            columns j, j' but s[j] != s'[j'].
// Q is nonempty on d iff the 2-CNF has a satisfying assignment with exactly
// k = (number of atoms) true variables.
#ifndef PARAQUERY_REDUCTIONS_CQ_TO_W2CNF_H_
#define PARAQUERY_REDUCTIONS_CQ_TO_W2CNF_H_

#include <vector>

#include "circuit/cnf.hpp"
#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the CQ -> weighted 2-CNF reduction.
struct CqToW2CnfResult {
  GroupedW2Cnf instance;
  /// var_origin[z] = (atom index, row index within that atom's relation in
  /// `db`) — used to decode a solution back into an instantiation.
  std::vector<std::pair<int, size_t>> var_origin;
  int k = 0;  // number of atoms (the weight)
};

/// Builds the reduction for a Boolean (or head-bound) comparison-free query.
Result<CqToW2CnfResult> CqToW2Cnf(const Database& db,
                                  const ConjunctiveQuery& q);

/// Decodes a solution (one chosen variable per group) into a variable
/// binding for the query. Returns one Value per query VarId (unconstrained
/// variables keep 0).
Result<std::vector<Value>> DecodeW2CnfSolution(
    const Database& db, const ConjunctiveQuery& q, const CqToW2CnfResult& red,
    const std::vector<int>& chosen);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_CQ_TO_W2CNF_H_

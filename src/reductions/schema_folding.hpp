// Theorem 1 upper bound (parameter v): folding a query of unbounded size
// into one of size <= 2^v over a derived database.
//
// For each set S of variables such that some atoms use exactly the variable
// set S, the folded database stores R_S = ⋂_{a ∈ A_S} P_a, where P_a is the
// relation of instantiations of S satisfying atom a. The folded query has
// one atom R_S(S) per nonempty class, hence at most 2^v atoms, and the same
// variables — reducing the parameter-v problem to the parameter-q problem.
#ifndef PARAQUERY_REDUCTIONS_SCHEMA_FOLDING_H_
#define PARAQUERY_REDUCTIONS_SCHEMA_FOLDING_H_

#include "common/status.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the folding transformation.
struct SchemaFoldingResult {
  Database db;             // relations R_S, named "FOLD_<vars>"
  ConjunctiveQuery query;  // one atom per class; same head, same variables
};

/// Builds the folded instance. Q(d) = Q'(d') tuple-for-tuple.
/// Requires a comparison-free query.
Result<SchemaFoldingResult> FoldSchema(const Database& db,
                                       const ConjunctiveQuery& q);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_SCHEMA_FOLDING_H_

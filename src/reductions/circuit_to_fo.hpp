// Theorem 1 lower bound (first-order queries): monotone weighted circuit
// satisfiability ≤ first-order query evaluation.
//
// The monotone circuit is normalized to alternating leveled form with an OR
// output at even level 2t (circuit/normalize.hpp). The database stores the
// wiring relation C = {(a, b) : gate a has input b} ∪ {(c, c) : c level-0},
// over the domain of gates. The query chain
//   θ_0(x)  = C(x, x_1) ∨ ... ∨ C(x, x_k)
//   θ_2i(x) = ∃y [ C(x, y) ∧ ∀x (¬C(y, x) ∨ θ_{2i-2}(x)) ]
//   Q       = ∃x_1 ... ∃x_k θ_2t(o)
// uses k + 2 variables (x is deliberately reused under the ∀ — the AST
// supports shadowing) and has size O(t + k). The circuit has a weight-k
// satisfying input iff Q is true — W[P]-hardness under parameter v, and
// since monotone depth-t weighted satisfiability is W[t]-complete,
// W[t]-hardness for every t under parameter q.
#ifndef PARAQUERY_REDUCTIONS_CIRCUIT_TO_FO_H_
#define PARAQUERY_REDUCTIONS_CIRCUIT_TO_FO_H_

#include "circuit/circuit.hpp"
#include "common/status.hpp"
#include "query/first_order_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the reduction.
struct CircuitToFoResult {
  Database db;           // binary wiring relation "C" over gate ids
  FirstOrderQuery query; // Boolean query with k + 2 variables
  int top_level = 0;     // 2t of the normalized circuit
};

/// Builds the reduction. `circuit` must be monotone with an output set;
/// k >= 1.
Result<CircuitToFoResult> MonotoneCircuitToFo(const Circuit& circuit, int k);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_CIRCUIT_TO_FO_H_

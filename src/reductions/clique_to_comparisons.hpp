// Theorem 3: clique ≤ acyclic conjunctive queries with comparisons —
// order constraints (<) make even acyclic path queries W[1]-complete.
//
// For (G, k) with n vertices (self-loops assumed on every vertex), encode
//   [i, j, b] = (i + j)·n³ + |i − j|·n² + b·n + i.
// The database holds
//   P = {([i,j,0], [i,j,1]) : (i,j) ∈ E ∪ self-loops}
//   R = {([i,j,1], [i,j',0]) : all i, j, j'}
// and the query (k alternating P/R paths x_i1 x'_i1 x_i2 ... x_ik x'_ik)
//   S :- ⋀_{i,j} P(x_ij, x'_ij), ⋀_{i, j<k} R(x'_ij, x_{i,j+1}),
//        ⋀_{i<j} x_ij < x_ji < x'_ij.
// G has a k-clique iff the query is nonempty; the query hypergraph is a
// disjoint union of paths (acyclic) and the comparison graph is acyclic.
#ifndef PARAQUERY_REDUCTIONS_CLIQUE_TO_COMPARISONS_H_
#define PARAQUERY_REDUCTIONS_CLIQUE_TO_COMPARISONS_H_

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the Theorem 3 reduction.
struct CliqueToComparisonsResult {
  Database db;             // relations P and R (R has n·n·n tuples)
  ConjunctiveQuery query;  // acyclic, only < comparisons
};

/// Encodes [i, j, b] for an n-vertex graph.
inline Value EncodeTriple(int n, int i, int j, int b) {
  Value nn = n;
  return (Value{i} + j) * nn * nn * nn +
         (i > j ? Value{i} - j : Value{j} - i) * nn * nn + Value{b} * nn + i;
}

/// Builds the reduction. Requires k >= 2 and n >= 1; the R relation has n³
/// tuples, so keep n moderate.
Result<CliqueToComparisonsResult> CliqueToComparisons(const Graph& g, int k);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_CLIQUE_TO_COMPARISONS_H_

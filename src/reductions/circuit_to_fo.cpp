#include "reductions/circuit_to_fo.hpp"

#include <string>
#include <vector>

#include "circuit/normalize.hpp"

namespace paraquery {

Result<CircuitToFoResult> MonotoneCircuitToFo(const Circuit& circuit, int k) {
  if (k < 1) return Status::InvalidArgument("weight k must be >= 1");
  PQ_ASSIGN_OR_RETURN(AlternatingCircuit alt, NormalizeMonotone(circuit));
  CircuitToFoResult out;
  out.top_level = alt.top_level;

  // Wiring relation over gate ids.
  RelId c_rel = out.db.AddRelation("C", 2).ValueOrDie();
  const Circuit& cc = alt.circuit;
  for (int g = 0; g < cc.num_gates(); ++g) {
    const Gate& gate = cc.gate(g);
    if (gate.kind == GateKind::kInput) {
      out.db.relation(c_rel).Add({g, g});  // self-loop convention
      continue;
    }
    for (int in : gate.inputs) out.db.relation(c_rel).Add({g, in});
  }

  FirstOrderQuery& fo = out.query;
  std::vector<VarId> xs;
  for (int i = 1; i <= k; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    xs.push_back(fo.vars.Intern(name));
  }
  VarId w = fo.vars.Intern("w");  // the reused "hole" variable
  VarId y = fo.vars.Intern("y");

  auto c_atom = [&fo](Term a, Term b) {
    Atom atom;
    atom.relation = "C";
    atom.terms = {a, b};
    return fo.AddAtomNode(std::move(atom));
  };

  // θ_0(w) = ⋁_j C(w, x_j).
  std::vector<int> disj;
  for (VarId x : xs) disj.push_back(c_atom(Term::Var(w), Term::Var(x)));
  int theta = disj.size() == 1 ? disj[0] : fo.AddOr(std::move(disj));

  // θ_2i(arg) = ∃y [C(arg, y) ∧ ∀w (¬C(y, w) ∨ θ_{2i-2}(w))].
  auto wrap = [&](int inner, Term arg) {
    int guard = fo.AddNot(c_atom(Term::Var(y), Term::Var(w)));
    int body = fo.AddForall({w}, fo.AddOr({guard, inner}));
    int conj = fo.AddAnd({c_atom(arg, Term::Var(y)), body});
    return fo.AddExists({y}, conj);
  };
  int t2 = alt.top_level;  // even, >= 2
  for (int level = 2; level < t2; level += 2) {
    theta = wrap(theta, Term::Var(w));
  }
  // Top level: argument is the constant output gate o.
  int top = wrap(theta, Term::Const(cc.output()));
  fo.root = fo.AddExists(xs, top);
  PQ_RETURN_NOT_OK(fo.Validate());
  return out;
}

}  // namespace paraquery

#include "reductions/wformula_to_positive.hpp"

#include <string>
#include <vector>

namespace paraquery {

Result<WFormulaToPositiveResult> WFormulaToPositive(const Circuit& formula,
                                                    int k) {
  if (formula.output() < 0) {
    return Status::InvalidArgument("formula has no output gate");
  }
  if (k < 1) {
    return Status::InvalidArgument("weight k must be >= 1");
  }
  int n = formula.num_inputs();
  WFormulaToPositiveResult out;
  RelId eq = out.db.AddRelation("EQ", 2).ValueOrDie();
  RelId neq = out.db.AddRelation("NEQ", 2).ValueOrDie();
  for (Value i = 1; i <= n; ++i) {
    out.db.relation(eq).Add({i, i});
    for (Value j = 1; j <= n; ++j) {
      if (i != j) out.db.relation(neq).Add({i, j});
    }
  }

  FirstOrderQuery fo;
  std::vector<VarId> ys;
  for (int i = 1; i <= k; ++i) {
    std::string name = "y";
    name += std::to_string(i);
    ys.push_back(fo.vars.Intern(name));
  }

  // ψ: NNF translation of the formula. polarity=true for positive context.
  // Memoized per (gate, polarity) since formulas may share subtrees.
  std::vector<int> memo_pos(formula.num_gates(), -1);
  std::vector<int> memo_neg(formula.num_gates(), -1);
  auto translate = [&](auto&& self, int gate, bool pos) -> int {
    int& slot = pos ? memo_pos[gate] : memo_neg[gate];
    if (slot >= 0) return slot;
    const Gate& g = formula.gate(gate);
    int node = -1;
    switch (g.kind) {
      case GateKind::kInput: {
        // Positive occurrence of x_i: ⋁_j EQ(i, y_j); negative: ⋀_j NEQ.
        std::vector<int> kids;
        for (VarId y : ys) {
          Atom a;
          a.relation = pos ? "EQ" : "NEQ";
          a.terms = {Term::Const(gate + 1), Term::Var(y)};
          kids.push_back(fo.AddAtomNode(std::move(a)));
        }
        node = pos ? fo.AddOr(std::move(kids)) : fo.AddAnd(std::move(kids));
        break;
      }
      case GateKind::kNot:
        node = self(self, g.inputs[0], !pos);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<int> kids;
        for (int in : g.inputs) kids.push_back(self(self, in, pos));
        bool make_and = (g.kind == GateKind::kAnd) == pos;  // De Morgan
        node = make_and ? fo.AddAnd(std::move(kids))
                        : fo.AddOr(std::move(kids));
        break;
      }
    }
    slot = node;
    return node;
  };
  int psi = translate(translate, formula.output(), /*pos=*/true);

  std::vector<int> conjuncts;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      Atom a;
      a.relation = "NEQ";
      a.terms = {Term::Var(ys[i]), Term::Var(ys[j])};
      conjuncts.push_back(fo.AddAtomNode(std::move(a)));
    }
  }
  conjuncts.push_back(psi);
  int body = conjuncts.size() == 1 ? conjuncts[0]
                                   : fo.AddAnd(std::move(conjuncts));
  fo.root = fo.AddExists(ys, body);
  PQ_ASSIGN_OR_RETURN(out.query, PositiveQuery::FromFirstOrder(std::move(fo)));
  return out;
}

}  // namespace paraquery

#include "reductions/cq_to_w2cnf.hpp"

#include <algorithm>

namespace paraquery {

namespace {

// True if tuple `row` of the stored relation is consistent with `atom`
// (constants match; repeated variables receive equal values).
bool Consistent(const Atom& atom, std::span<const Value> row) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_const() && row[i] != t.value()) return false;
    if (t.is_var()) {
      for (size_t j = 0; j < i; ++j) {
        if (atom.terms[j].is_var() && atom.terms[j].var() == t.var() &&
            row[j] != row[i]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

Result<CqToW2CnfResult> CqToW2Cnf(const Database& db,
                                  const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.HasComparisons()) {
    return Status::InvalidArgument(
        "CqToW2Cnf requires a comparison-free conjunctive query");
  }
  CqToW2CnfResult out;
  out.k = static_cast<int>(q.body.size());

  // Enumerate consistent (atom, tuple) pairs.
  std::vector<const Relation*> rels;
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(a.relation));
    if (db.relation(id).arity() != a.terms.size()) {
      return Status::InvalidArgument(internal::StrCat(
          "atom ", a.relation, " arity mismatch with stored relation"));
    }
    rels.push_back(&db.relation(id));
  }
  for (size_t ai = 0; ai < q.body.size(); ++ai) {
    std::vector<int> group;
    for (size_t r = 0; r < rels[ai]->size(); ++r) {
      if (!Consistent(q.body[ai], rels[ai]->Row(r))) continue;
      group.push_back(out.instance.num_vars);
      out.var_origin.push_back({static_cast<int>(ai), r});
      ++out.instance.num_vars;
    }
    out.instance.groups.push_back(std::move(group));
  }

  // Clause set (i): at most one tuple per atom.
  for (const auto& group : out.instance.groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        out.instance.clauses.push_back({group[i], group[j]});
      }
    }
  }
  // Clause set (ii): conflicting variable assignments across atoms.
  // Precompute, per atom, the columns of each variable.
  std::vector<std::vector<std::pair<VarId, int>>> var_cols(q.body.size());
  for (size_t ai = 0; ai < q.body.size(); ++ai) {
    for (size_t c = 0; c < q.body[ai].terms.size(); ++c) {
      if (q.body[ai].terms[c].is_var()) {
        var_cols[ai].push_back({q.body[ai].terms[c].var(),
                                static_cast<int>(c)});
      }
    }
  }
  for (size_t a = 0; a < q.body.size(); ++a) {
    for (size_t b = a + 1; b < q.body.size(); ++b) {
      // Shared variables and their column pairs.
      std::vector<std::pair<int, int>> shared;
      for (auto [va, ca] : var_cols[a]) {
        for (auto [vb, cb] : var_cols[b]) {
          if (va == vb) shared.push_back({ca, cb});
        }
      }
      if (shared.empty()) continue;
      for (int za : out.instance.groups[a]) {
        auto sa = rels[a]->Row(out.var_origin[za].second);
        for (int zb : out.instance.groups[b]) {
          auto sb = rels[b]->Row(out.var_origin[zb].second);
          for (auto [ca, cb] : shared) {
            if (sa[ca] != sb[cb]) {
              out.instance.clauses.push_back({za, zb});
              break;
            }
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<Value>> DecodeW2CnfSolution(
    const Database& db, const ConjunctiveQuery& q, const CqToW2CnfResult& red,
    const std::vector<int>& chosen) {
  if (chosen.size() != q.body.size()) {
    return Status::InvalidArgument("solution must pick one tuple per atom");
  }
  std::vector<Value> binding(std::max(1, q.NumVariables()), 0);
  std::vector<bool> bound(std::max(1, q.NumVariables()), false);
  for (size_t ai = 0; ai < q.body.size(); ++ai) {
    int z = chosen[ai];
    if (z < 0 || z >= red.instance.num_vars ||
        red.var_origin[z].first != static_cast<int>(ai)) {
      return Status::InvalidArgument("chosen variable not in the atom group");
    }
    PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(q.body[ai].relation));
    auto row = db.relation(id).Row(red.var_origin[z].second);
    for (size_t c = 0; c < q.body[ai].terms.size(); ++c) {
      const Term& t = q.body[ai].terms[c];
      if (!t.is_var()) continue;
      if (bound[t.var()] && binding[t.var()] != row[c]) {
        return Status::Internal("inconsistent decoded binding");
      }
      bound[t.var()] = true;
      binding[t.var()] = row[c];
    }
  }
  return binding;
}

}  // namespace paraquery

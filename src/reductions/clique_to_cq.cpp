#include "reductions/clique_to_cq.hpp"

#include <string>

#include "common/status.hpp"

namespace paraquery {

CliqueToCqResult CliqueToCq(const Graph& g, int k) {
  PQ_CHECK(k >= 0, "CliqueToCq: negative k");
  CliqueToCqResult out;
  RelId rel = out.db.AddRelation("G", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) {
      out.db.relation(rel).Add({u, v});  // both directions via adjacency
    }
  }
  std::vector<VarId> vars;
  for (int i = 1; i <= k; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    vars.push_back(out.query.vars.Intern(name));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      out.query.body.push_back(
          Atom{"G", {Term::Var(vars[i]), Term::Var(vars[j])}});
    }
  }
  // k <= 1: no pairs to check; the query must still be satisfiable exactly
  // when a clique of size k exists (any vertex for k = 1, trivially for 0).
  if (k == 1) {
    out.query.body.push_back(Atom{"G", {Term::Var(vars[0]), Term::Var(vars[0])}});
    // A single vertex forms a 1-clique regardless of edges; a self-join atom
    // would wrongly require a self-loop, so instead use a unary "V" relation.
    out.query.body.pop_back();
    RelId vrel = out.db.AddRelation("V", 1).ValueOrDie();
    for (int u = 0; u < g.num_vertices(); ++u) out.db.relation(vrel).Add({u});
    out.query.body.push_back(Atom{"V", {Term::Var(vars[0])}});
  }
  return out;
}

}  // namespace paraquery

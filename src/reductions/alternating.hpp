// Section 4's alternating extension: AW[P]-hardness of first-order queries
// under parameter v.
//
// The alternating weighted satisfiability problem partitions the inputs of
// a monotone circuit into blocks V_1..V_r with weights k_1..k_r and asks
//   ∃ S_1 ⊆ V_1, |S_1| = k_1, ∀ S_2 ⊆ V_2, |S_2| = k_2, ... (alternating)
//   such that C accepts the input setting exactly ∪S_i to true.
//
// The paper adapts the Theorem 1 reduction: the database gains a partition
// relation P = {(a, c*_i) : a ∈ V_i} (c*_i an arbitrary representative of
// block i), the query prefix becomes Q_1 x_11..x_1k_1 ... Q_r x_r1..x_rk_r,
// and the body is
//   [ θ_2t(o) ∧ ⋀_{i : Q_i = ∃} ψ_i ] ∨ ¬[ ⋀_{i : Q_i = ∀} ψ_i ],
// where ψ_i = ⋀_j [ P(x_ij, c*_i) ∧ ⋀_{l != j} ¬C(x_ij, x_il) ] states that
// the i-th block's variables denote distinct input gates of V_i (the input
// self-loops make ¬C(a, b) equivalent to a != b on input gates).
#ifndef PARAQUERY_REDUCTIONS_ALTERNATING_H_
#define PARAQUERY_REDUCTIONS_ALTERNATING_H_

#include <vector>

#include "circuit/circuit.hpp"
#include "common/status.hpp"
#include "query/first_order_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// An alternating weighted satisfiability instance. Block i is existential
/// for even i (0-based) and universal for odd i — the paper's Q_1 = ∃
/// convention.
struct AlternatingInstance {
  Circuit circuit = Circuit(0);
  /// Disjoint input blocks V_1..V_r (need not cover all inputs; inputs
  /// outside every block are fixed to 0).
  std::vector<std::vector<int>> blocks;
  /// Weights k_1..k_r (parallel to blocks).
  std::vector<int> weights;

  bool IsExistential(size_t block) const { return block % 2 == 0; }

  /// Structural checks: monotone circuit with output, disjoint in-range
  /// blocks, 0 <= k_i <= |V_i| would be allowed to fail (then the quantifier
  /// is vacuous), r >= 1.
  Status Validate() const;
};

/// Ground-truth solver: direct recursion over k-subsets per block.
/// Exponential; intended for small instances (tests, examples).
Result<bool> SolveAlternatingWeightedSat(const AlternatingInstance& instance);

/// Output of the alternating reduction.
struct AlternatingToFoResult {
  Database db;            // wiring relation C plus partition relation P
  FirstOrderQuery query;  // alternating-prefix Boolean query
  int top_level = 0;
};

/// Builds the reduction; the instance must validate and every weight must
/// be >= 1.
Result<AlternatingToFoResult> AlternatingToFo(const AlternatingInstance& inst);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_ALTERNATING_H_

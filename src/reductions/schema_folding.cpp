#include "reductions/schema_folding.hpp"

#include <algorithm>
#include <map>

#include "eval/common.hpp"
#include "relational/ops.hpp"

namespace paraquery {

Result<SchemaFoldingResult> FoldSchema(const Database& db,
                                       const ConjunctiveQuery& q) {
  PQ_RETURN_NOT_OK(q.Validate());
  if (q.HasComparisons()) {
    return Status::InvalidArgument(
        "FoldSchema requires a comparison-free conjunctive query");
  }
  SchemaFoldingResult out;
  out.query.vars = q.vars;
  out.query.head = q.head;

  // Group atoms by their (sorted) variable set.
  std::map<std::vector<VarId>, std::vector<size_t>> classes;
  for (size_t i = 0; i < q.body.size(); ++i) {
    std::vector<VarId> s = q.body[i].Variables();
    std::sort(s.begin(), s.end());
    classes[s].push_back(i);
  }

  for (const auto& [vars, atom_ids] : classes) {
    // Intersection of the per-atom relations, aligned to `vars` order.
    NamedRelation acc{std::vector<AttrId>(vars.begin(), vars.end())};
    bool first = true;
    for (size_t ai : atom_ids) {
      PQ_ASSIGN_OR_RETURN(NamedRelation pa, AtomToRelation(db, q.body[ai]));
      NamedRelation aligned =
          Project(pa, std::vector<AttrId>(vars.begin(), vars.end()));
      acc = first ? std::move(aligned) : Intersect(acc, aligned);
      first = false;
    }
    // Store R_S and emit the folded atom.
    std::string name = "FOLD";
    for (VarId v : vars) {
      name += "_";
      name += q.vars.name(v);
    }
    PQ_ASSIGN_OR_RETURN(RelId id, out.db.AddRelation(name, vars.size()));
    for (size_t r = 0; r < acc.size(); ++r) {
      out.db.relation(id).Add(acc.rel().Row(r));
    }
    Atom folded;
    folded.relation = name;
    for (VarId v : vars) folded.terms.push_back(Term::Var(v));
    out.query.body.push_back(std::move(folded));
  }
  return out;
}

}  // namespace paraquery

// Section 5: the combined complexity of acyclic conjunctive queries with
// inequalities is NP-complete — shown by reducing Hamiltonian path.
//
// For a graph (V, E) with n vertices, the database stores E (both
// directions) and the query is
//   G :- E(x_1, x_2), ..., E(x_{n-1}, x_n), ⋀_{i<j} x_i != x_j.
// The query hypergraph is a path (acyclic), every inequality is in I1, and
// the query is as large as the database — exactly the regime where
// Theorem 2's f(k) factor blows up.
#ifndef PARAQUERY_REDUCTIONS_HAMPATH_TO_NEQ_H_
#define PARAQUERY_REDUCTIONS_HAMPATH_TO_NEQ_H_

#include "graph/graph.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the Hamiltonian-path reduction.
struct HamPathToNeqResult {
  Database db;
  ConjunctiveQuery query;  // Boolean; n variables, n-1 atoms, C(n,2) ≠ atoms
};

/// Builds the reduction; the graph must have at least one vertex.
HamPathToNeqResult HamPathToNeq(const Graph& g);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_HAMPATH_TO_NEQ_H_

// Theorem 1 lower bound: clique ≤ conjunctive-query evaluation.
//
// For an instance (G, k) of clique, build a database holding the edge
// relation and the Boolean query  P :- ⋀_{1<=i<j<=k} G(x_i, x_j).
// The query has size q = O(k²) and v = k variables, so the reduction
// establishes W[1]-hardness for both parameters (clique is W[1]-complete).
#ifndef PARAQUERY_REDUCTIONS_CLIQUE_TO_CQ_H_
#define PARAQUERY_REDUCTIONS_CLIQUE_TO_CQ_H_

#include "graph/graph.hpp"
#include "query/conjunctive_query.hpp"
#include "relational/database.hpp"

namespace paraquery {

/// Output of the clique -> CQ reduction.
struct CliqueToCqResult {
  Database db;          // one binary relation "G" (both edge directions)
  ConjunctiveQuery query;  // Boolean clique query with k variables
};

/// Builds the reduction. G has a k-clique iff `query` is nonempty on `db`.
CliqueToCqResult CliqueToCq(const Graph& g, int k);

}  // namespace paraquery

#endif  // PARAQUERY_REDUCTIONS_CLIQUE_TO_CQ_H_

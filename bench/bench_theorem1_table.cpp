// E1 — Theorem 1 classification table.
//
// The paper's table states that conjunctive, positive, and first-order
// queries are (increasingly) parametrically intractable: every known
// algorithm has the parameter in the exponent of n. This bench regenerates
// the empirical content of each row:
//   * row 1 (conjunctive, W[1]): clique-query evaluation scales like n^k —
//     time jumps by orders of magnitude with each k at fixed n;
//   * upper-bound route: the CQ -> weighted-2CNF reduction plus the grouped
//     solver tracks the same instances;
//   * row 2 (positive, W[SAT] under v): evaluating the weighted-formula
//     reduction image through UCQ expansion scales exponentially in k;
//   * row 3 (first-order, W[P] under v): evaluating the circuit reduction
//     image costs n^{Θ(k)} in the active-domain algebra (v = k + 2).
#include <benchmark/benchmark.h>

#include "circuit/weighted_sat.hpp"
#include "eval/fo.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/generators.hpp"
#include "reductions/circuit_to_fo.hpp"
#include "reductions/clique_to_cq.hpp"
#include "reductions/cq_to_w2cnf.hpp"
#include "reductions/wformula_to_positive.hpp"

namespace paraquery {
namespace {

// Worst-case clique instances: max clique is k-1, so the search is
// exhaustive and the n^k shape is fully exposed.
Graph NoInstance(int n, int k) { return TuranGraph(k - 1, n / (k - 1)); }

void BM_ConjunctiveCliqueQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Graph g = NoInstance(n, k);
  CliqueToCqResult red = CliqueToCq(g, k);
  for (auto _ : state) {
    auto r = NaiveCqNonempty(red.db, red.query);
    benchmark::DoNotOptimize(r);
    if (!r.ok() || r.value()) state.SkipWithError("unexpected result");
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["q"] = static_cast<double>(red.query.QuerySize());
}
BENCHMARK(BM_ConjunctiveCliqueQuery)
    ->ArgsProduct({{24, 48, 96}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_CliqueQueryViaW2Cnf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Graph g = NoInstance(n, k);
  CliqueToCqResult red = CliqueToCq(g, k);
  for (auto _ : state) {
    auto inst = CqToW2Cnf(red.db, red.query);
    if (!inst.ok()) state.SkipWithError("reduction failed");
    auto sol = SolveGroupedW2Cnf(inst.value().instance);
    benchmark::DoNotOptimize(sol);
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
}
BENCHMARK(BM_CliqueQueryViaW2Cnf)
    ->ArgsProduct({{24, 48}, {2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_PositiveWeightedFormula(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  // A fixed CNF-ish monotone-plus-negation formula over 12 variables whose
  // weighted satisfiability is nontrivial for each k.
  Circuit formula(12);
  std::vector<int> clauses;
  for (int i = 0; i < 12; i += 3) {
    int n0 = formula.AddGate(GateKind::kNot, {i});
    clauses.push_back(formula.AddGate(GateKind::kOr, {n0, i + 1, i + 2}));
  }
  formula.SetOutput(formula.AddGate(GateKind::kAnd, clauses));
  auto red = WFormulaToPositive(formula, k).ValueOrDie();
  for (auto _ : state) {
    auto r = PositiveNonempty(red.db, red.query);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("evaluation failed");
  }
  state.counters["k"] = k;
  state.counters["q"] = static_cast<double>(red.query.QuerySize());
}
BENCHMARK(BM_PositiveWeightedFormula)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_FirstOrderCircuitQuery(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  // Fixed monotone circuit; the FO image uses v = k + 2 variables and the
  // active-domain evaluation pays |gates|^{Θ(k)} — keep the gate count
  // small so the k = 3 point stays in the seconds range.
  Circuit mono(5);
  int g1 = mono.AddGate(GateKind::kOr, {0, 1});
  int g2 = mono.AddGate(GateKind::kOr, {2, 3});
  mono.SetOutput(mono.AddGate(GateKind::kAnd, {g1, g2, 4}));
  auto red = MonotoneCircuitToFo(mono, k).ValueOrDie();
  for (auto _ : state) {
    auto r = FirstOrderNonempty(red.db, red.query);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("evaluation failed");
  }
  state.counters["k"] = k;
  state.counters["v"] = k + 2;
}
BENCHMARK(BM_FirstOrderCircuitQuery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery

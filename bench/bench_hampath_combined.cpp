// E4 — Section 5: the combined complexity of acyclic ≠-queries is
// NP-complete (Hamiltonian path).
//
// When the query grows with the database (k = v = n), Theorem 2's f(k)
// factor is exponential and nothing better is expected. The series shows
// the blowup of both the naive evaluator and the color-coding engine as n
// grows, against the bitmask-DP solver as ground truth.
#include <benchmark/benchmark.h>

#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "graph/hamiltonian.hpp"
#include "reductions/hampath_to_neq.hpp"

namespace paraquery {
namespace {

// Hard-ish no-instances: sparse graphs usually lack Hamiltonian paths, so
// the solvers cannot stop early.
Graph Sparse(int n) { return GnpRandom(n, 1.6 / n, /*seed=*/n * 7 + 1); }

void BM_HamPathNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  HamPathToNeqResult red = HamPathToNeq(Sparse(n));
  for (auto _ : state) {
    auto r = NaiveCqNonempty(red.db, red.query);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
  state.counters["q"] = static_cast<double>(red.query.QuerySize());
}
BENCHMARK(BM_HamPathNaive)
    ->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_HamPathColorCoding(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  HamPathToNeqResult red = HamPathToNeq(Sparse(n));
  IneqOptions mc;
  mc.driver = IneqOptions::Driver::kMonteCarlo;
  mc.mc_error_exponent = 1.0;  // e^n trials explode anyway; keep c minimal
  mc.seed = 99;
  for (auto _ : state) {
    auto r = IneqNonempty(red.db, red.query, mc);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_HamPathColorCoding)
    ->DenseRange(6, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_HamPathBitmaskDp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = Sparse(n);
  for (auto _ : state) {
    auto r = FindHamiltonianPath(g);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_HamPathBitmaskDp)
    ->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery

// E6 — Section 4 on recursive languages: bounded-arity Datalog is
// W[1]-complete, and for unbounded IDB arity the query size provably sits
// in the exponent (Vardi's fixpoint lower bound).
//
// Series:
//   * TransitiveClosure/n: semi-naive TC scales with the output (bounded
//     arity r = 2);
//   * ArityWalk/r: the r-ary walk program on a fixed dense graph — the
//     derived-tuple count (reported as a counter) and the runtime grow
//     geometrically with r: the arity is in the exponent.
#include <benchmark/benchmark.h>

#include "eval/datalog_eval.hpp"
#include "graph/generators.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

void BM_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = GraphDatabase(GnpRandom(n, 2.0 / n, /*seed=*/n));
  DatalogProgram tc = TransitiveClosureProgram();
  DatalogStats stats;
  for (auto _ : state) {
    auto r = EvaluateDatalog(db, tc, {}, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("datalog failed");
  }
  state.counters["n"] = n;
  state.counters["derived"] = static_cast<double>(stats.derived_tuples);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
}
BENCHMARK(BM_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(100, 800)
    ->Unit(benchmark::kMillisecond);

void BM_ArityWalk(benchmark::State& state) {
  int r = static_cast<int>(state.range(0));
  Database db = GraphDatabase(GnpRandom(14, 0.5, /*seed=*/99));
  DatalogProgram prog = ArityRWalkProgram(r);
  DatalogStats stats;
  for (auto _ : state) {
    auto out = EvaluateDatalog(db, prog, {}, &stats);
    benchmark::DoNotOptimize(out);
    if (!out.ok()) state.SkipWithError("datalog failed");
  }
  state.counters["arity"] = r;
  state.counters["derived"] = static_cast<double>(stats.derived_tuples);
}
BENCHMARK(BM_ArityWalk)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery

// Observability-overhead benchmark with machine-readable JSON output: CI
// gates tracing-off overhead (instrumentation compiled in but disabled —
// one null-pointer test per site) at <= 2% and tracing-on overhead at
// <= 5% against an identically configured baseline engine, on the
// bench_parallel workload mix:
//
//   * cyclic_join: triangle join with an inequality — a large
//     morsel-parallel probe pipeline (millions of intermediate rows).
//   * ucq_mix: four two-atom disjuncts — structural parallelism, many
//     small operator executions (the per-span cost ceiling).
//
// "baseline" and "tracing_off" are BOTH trace-disabled engines: their
// ratio is an honest same-configuration noise floor for the gate (the
// instrumentation cannot be compiled out — what the off-gate bounds is
// the enabled-but-dormant path plus measurement noise). "tracing_on"
// records the full span hierarchy every rep.
//
// The binary exits nonzero if any impl's answer differs byte-for-byte
// from the baseline's.
//
// Output: a JSON array of {"bench", "impl", "rows", "seconds",
// "output_rows", "overhead_vs_baseline"}.
//
// Usage: bench_observability [--quick] [--threads N] [--trace-out FILE]
//   --trace-out FILE also runs a 4-thread Datalog fixpoint with tracing
//   on (row-at-a-time operators, small morsels), writes its Chrome
//   trace-event JSON to FILE, and asserts the trace carries per-round,
//   per-firing, and per-morsel spans.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double overhead = 0;  // best seconds / baseline best seconds
};

std::vector<Entry> g_entries;

void ExpectIdentical(const char* bench, const Relation& reference,
                     const Relation& candidate) {
  if (reference.arity() == candidate.arity() &&
      reference.size() == candidate.size() &&
      reference.data() == candidate.data()) {
    return;
  }
  std::fprintf(stderr, "FATAL: %s: output is not byte-identical\n", bench);
  std::exit(1);
}

Engine MakeEngine(const Database& db, size_t threads, bool trace) {
  EngineOptions options;
  options.threads = threads;
  options.trace = trace;
  // Every impl must pay identical planning work per rep; the plan cache
  // would hide the planning side of the instrumentation cost.
  options.use_plan_cache = false;
  return Engine(db, options);
}

// One bench: the same pre-parsed query through three engines — baseline
// (trace off), tracing_off (trace off, a second identically configured
// engine: the noise control), tracing_on — interleaved round-robin so
// load/frequency drift hits all three alike; the gate compares best-of.
template <typename Query>
void RunBench(const std::string& bench, const Database& db, const Query& q,
              size_t rows, int reps, size_t threads) {
  Engine baseline = MakeEngine(db, threads, false);
  Engine off = MakeEngine(db, threads, false);
  Engine on = MakeEngine(db, threads, true);
  Relation reference = std::move(baseline.Run(q)).ValueOrDie();
  ExpectIdentical(bench.c_str(), reference,
                  std::move(off.Run(q)).ValueOrDie());
  ExpectIdentical(bench.c_str(), reference,
                  std::move(on.Run(q)).ValueOrDie());
  double best_base = 1e300, best_off = 1e300, best_on = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      Relation out = std::move(baseline.Run(q)).ValueOrDie();
      best_base = std::min(best_base, t.Seconds());
      ExpectIdentical(bench.c_str(), reference, out);
    }
    {
      Timer t;
      Relation out = std::move(off.Run(q)).ValueOrDie();
      best_off = std::min(best_off, t.Seconds());
      ExpectIdentical(bench.c_str(), reference, out);
    }
    {
      Timer t;
      Relation out = std::move(on.Run(q)).ValueOrDie();
      best_on = std::min(best_on, t.Seconds());
      ExpectIdentical(bench.c_str(), reference, out);
    }
  }
  auto push = [&](const std::string& impl, double best) {
    g_entries.push_back(
        Entry{bench, impl, rows, best, reference.size(), best / best_base});
  };
  push("baseline", best_base);
  push("tracing_off", best_off);
  push("tracing_on", best_on);
}

// The bench_parallel workload mix (same seeds, same shapes).

void BenchCyclicJoin(size_t scale, int reps, size_t threads) {
  Rng rng(314159);
  const Value domain = 2000;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  size_t na = 3 * scale, nb = 2 * scale, nc = 3 * scale;
  fill(a, na);
  fill(b, nb);
  fill(c, nc);
  auto q = ParseConjunctive("ans(x, y) :- B(y, z), C(z, x), A(x, y), x != z.")
               .ValueOrDie();
  RunBench("cyclic_join", db, q, na + nb + nc, reps, threads);
}

void BenchUcqMix(size_t scale, int reps, size_t threads) {
  Rng rng(271828);
  const Value domain = 1500;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  fill(a, scale);
  fill(b, scale);
  fill(c, scale);
  auto q = ParsePositive(
               "ans(x) := exists y . exists z . ((A(x, y) and B(y, z)) or "
               "(B(x, y) and C(y, z)) or (A(x, y) and C(y, z)) or "
               "(C(x, y) and A(y, z))).")
               .ValueOrDie();
  RunBench("ucq_mix", db, q, 3 * scale, reps, threads);
}

// --trace-out: export a real 4-thread Datalog fixpoint trace and assert
// the span hierarchy the Perfetto acceptance check relies on.
int ExportDatalogTrace(const std::string& path) {
  Rng rng(161803);
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (size_t i = 0; i < 900; ++i) {
    db.relation(e).Add({rng.Range(0, 199), rng.Range(0, 199)});
  }
  EngineOptions options;
  options.threads = 4;
  options.trace = true;
  // Row-at-a-time operators and small morsels: the trace must show the
  // morsel tier, not just vectorized batches.
  options.vectorize = false;
  options.morsel_rows = 256;
  Engine engine(db, options);
  auto result = engine.RunText(
      "path(x, y) :- E(x, y).\n"
      "path(x, y) :- path(x, z), E(z, y).\n"
      "@goal path.\n");
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: trace fixpoint failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::string json = engine.tracer()->ChromeTraceJson();
  for (const char* needle : {"\"round\"", "\"firing\"", "morsel."}) {
    if (json.find(needle) == std::string::npos) {
      std::fprintf(stderr, "FATAL: exported trace lacks %s spans\n", needle);
      return 1;
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "trace: %zu spans -> %s\n",
               engine.tracer()->event_count(), path.c_str());
  return 0;
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"overhead_vs_baseline\": %.4f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.overhead,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = 4;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[i + 1];
    }
  }
  // Best-of over many interleaved reps: the CI gate compares ratios in the
  // low single-digit percent range, and best-of-5 still carries ~3% noise
  // on a loaded machine; best-of-13 keeps the gate stable.
  paraquery::BenchCyclicJoin(quick ? 30000 : 60000, quick ? 13 : 15, threads);
  paraquery::BenchUcqMix(quick ? 150000 : 300000, quick ? 13 : 15, threads);
  paraquery::PrintJson();
  if (!trace_out.empty()) return paraquery::ExportDatalogTrace(trace_out);
  return 0;
}

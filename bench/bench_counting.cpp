// Counting benchmark with machine-readable JSON output: CI gates the
// tentpole claim — answering an acyclic COUNT(*) with counting Yannakakis
// (upward multiplicity folding, the join output never materialized) must be
// >= 3x faster than materialize-then-count on a star join whose output is
// orders of magnitude larger than its inputs.
//
// The instance is a star join: R0(c, x1), R1(c, x2), R2(c, x3) over H hub
// values with fanout f per arm. The join output has H * f^3 rows while the
// inputs hold 3 * H * f; the counting plan's peak intermediate stays at the
// input scale (asserted here via PlanStats::peak_intermediate_rows).
//
//   * star_count   : COUNT(*) counting vs materialize-then-count  [gated]
//   * star_grouped : COUNT(c) per-hub counts vs brute force       [reported]
//
// Before timing anything, a parity sweep runs 20 random acyclic counting
// queries (scalar and grouped) at threads 1 and 4 and exits nonzero unless
// every answer is byte-identical to brute-force enumeration + group-count.
//
// Output: a JSON array of
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_counting [--quick] [--threads N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/engine.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

Engine MakeEngine(const Database& db, size_t threads) {
  EngineOptions options;
  options.threads = threads;
  // Plan every run: the comparison is execution + planning, not cache hits.
  options.use_plan_cache = false;
  return Engine(db, options);
}

void ExpectIdentical(const char* bench, const Relation& reference,
                     const Relation& candidate) {
  if (reference.arity() == candidate.arity() &&
      reference.size() == candidate.size() &&
      reference.data() == candidate.data()) {
    return;
  }
  std::fprintf(stderr, "FATAL: %s: counting answer is not byte-identical\n",
               bench);
  std::exit(1);
}

// Brute-force reference: enumerate the distinct assignments to ALL body
// variables (tuple mode), then group-count by the counting query's keys.
Relation BruteForceCount(const Database& db, const ConjunctiveQuery& q) {
  ConjunctiveQuery enumq = q;
  enumq.answer = AnswerSpec::Tuples();
  enumq.head.clear();
  for (VarId v = 0; v < enumq.vars.size(); ++v) {
    enumq.head.push_back(Term::Var(v));
  }
  Relation rows = std::move(MakeEngine(db, 1).Run(enumq)).ValueOrDie();
  rows.SortAndDedup();
  std::vector<size_t> gcols;
  for (const Term& t : q.head) gcols.push_back(static_cast<size_t>(t.var()));
  if (gcols.empty()) {
    Relation out(1);
    out.Add(std::vector<Value>{static_cast<Value>(rows.size())});
    return out;
  }
  std::map<std::vector<Value>, Value> groups;
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<Value> key;
    for (size_t c : gcols) key.push_back(rows.At(r, c));
    ++groups[key];
  }
  Relation out(gcols.size() + 1);
  for (const auto& [key, count] : groups) {
    std::vector<Value> row = key;
    row.push_back(count);
    out.Add(row);
  }
  return out;
}

// Parity sweep: random acyclic counting queries, scalar and grouped, at
// threads 1 and 4, each checked byte-for-byte against brute force.
void ParitySweep(uint64_t seeds) {
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Database db = RandomBinaryDatabase(3, 120, 14, seed);
    ConjunctiveQuery base = RandomAcyclicNeqQuery(3, 4, 0, seed * 23);
    base.head.clear();
    for (VarId v = 0; v < base.vars.size(); ++v) {
      base.head.push_back(Term::Var(v));
    }
    for (size_t keys = 0; keys <= 2; ++keys) {
      ConjunctiveQuery q = CountingVariant(base, keys);
      Relation want = BruteForceCount(db, q);
      for (size_t threads : {size_t{1}, size_t{4}}) {
        Relation got = std::move(MakeEngine(db, threads).Run(q)).ValueOrDie();
        ExpectIdentical("parity_sweep", want, got);
      }
    }
  }
}

// Star database: H hub values, each arm relation Ri holds (hub, leaf) for
// `fanout` distinct leaves per hub. Join output: hubs * fanout^3 rows.
Database StarDatabase(size_t hubs, size_t fanout) {
  Database db;
  for (int i = 0; i < 3; ++i) {
    RelId r = db.AddRelation("R" + std::to_string(i), 2).ValueOrDie();
    Relation& rel = db.relation(r);
    for (size_t h = 0; h < hubs; ++h) {
      for (size_t v = 0; v < fanout; ++v) {
        rel.Add({static_cast<Value>(h),
                 static_cast<Value>(1'000'000 * (i + 1) + h * fanout + v)});
      }
    }
  }
  return db;
}

size_t InputRows(const Database& db) {
  size_t rows = 0;
  for (size_t r = 0; r < db.relation_count(); ++r) {
    rows += db.relation(static_cast<RelId>(r)).size();
  }
  return rows;
}

void Push(const std::string& bench, const std::string& impl, size_t rows,
          double seconds, size_t output_rows) {
  g_entries.push_back(Entry{bench, impl, rows, seconds, output_rows,
                            static_cast<double>(rows) / seconds});
}

// The gated cell: COUNT(*) on the star join, counting Yannakakis vs
// materialize-then-count (the same engine evaluating the full-head tuple
// query and counting its rows).
void BenchStarCount(size_t hubs, size_t fanout, int reps, size_t threads) {
  const std::string bench = "star_count_t" + std::to_string(threads);
  Database db = StarDatabase(hubs, fanout);
  const size_t rows = InputRows(db);
  ConjunctiveQuery count_q = StarCountQuery(3);
  ConjunctiveQuery enum_q = count_q;
  enum_q.answer = AnswerSpec::Tuples();
  for (VarId v = 0; v < enum_q.vars.size(); ++v) {
    enum_q.head.push_back(Term::Var(v));
  }
  Engine engine = MakeEngine(db, threads);
  const size_t expect =
      hubs * fanout * fanout * fanout;  // every arm combination per hub
  Relation counted = std::move(engine.Run(count_q)).ValueOrDie();
  if (counted.size() != 1 ||
      counted.At(0, 0) != static_cast<Value>(expect)) {
    std::fprintf(stderr, "FATAL: %s: wrong count\n", bench.c_str());
    std::exit(1);
  }
  if (engine.last_stats().plan.aggregates == 0 ||
      engine.last_stats().plan.semijoin_counts == 0) {
    std::fprintf(stderr,
                 "FATAL: %s: counting plan never ran Aggregate/SemijoinCount\n",
                 bench.c_str());
    std::exit(1);
  }
  // The tentpole bound: the join output (hubs * fanout^3 rows) never
  // exists; the peak intermediate stays at input scale.
  if (engine.last_stats().plan.peak_intermediate_rows > rows) {
    std::fprintf(stderr, "FATAL: %s: counting materialized an intermediate "
                         "larger than the inputs (%zu > %zu)\n",
                 bench.c_str(),
                 engine.last_stats().plan.peak_intermediate_rows, rows);
    std::exit(1);
  }
  Relation materialized = std::move(engine.Run(enum_q)).ValueOrDie();
  if (materialized.size() != expect) {
    std::fprintf(stderr, "FATAL: %s: wrong materialized cardinality\n",
                 bench.c_str());
    std::exit(1);
  }
  double best_count = 1e300, best_mat = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      counted = std::move(engine.Run(count_q)).ValueOrDie();
      best_count = std::min(best_count, t.Seconds());
    }
    {
      Timer t;
      materialized = std::move(engine.Run(enum_q)).ValueOrDie();
      best_mat = std::min(best_mat, t.Seconds());
    }
  }
  Push(bench, "counting", rows, best_count, counted.size());
  Push(bench, "materialize", rows, best_mat, materialized.size());
}

// Reported: per-hub grouped counts against brute force.
void BenchStarGrouped(size_t hubs, size_t fanout, int reps, size_t threads) {
  const std::string bench = "star_grouped_t" + std::to_string(threads);
  Database db = StarDatabase(hubs, fanout);
  ConjunctiveQuery q = CountingVariant(
      [] {
        ConjunctiveQuery s = StarCountQuery(3);
        s.head.push_back(Term::Var(0));  // the hub variable c
        return s;
      }(),
      1);
  Relation want = BruteForceCount(db, q);
  Engine engine = MakeEngine(db, threads);
  Relation got = std::move(engine.Run(q)).ValueOrDie();
  ExpectIdentical(bench.c_str(), want, got);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    got = std::move(engine.Run(q)).ValueOrDie();
    best = std::min(best, t.Seconds());
  }
  Push(bench, "counting", InputRows(db), best, got.size());
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  paraquery::ParitySweep(20);
  const size_t hubs = quick ? 12 : 16;
  const size_t fanout = quick ? 36 : 48;
  const int reps = quick ? 5 : 7;
  paraquery::BenchStarCount(hubs, fanout, reps, 1);
  paraquery::BenchStarGrouped(hubs, fanout, reps, 1);
  // Parallel cells: the morsel-partitioned aggregation path, byte-identical
  // to threads=1 (the parity sweep covers both widths too).
  paraquery::BenchStarCount(hubs, fanout, reps, threads);
  paraquery::BenchStarGrouped(hubs, fanout, reps, threads);
  paraquery::PrintJson();
  return 0;
}

// E5 — Theorem 3: acyclic conjunctive queries with comparisons are
// W[1]-complete.
//
// The [i,j,b] clique encoding produces acyclic path queries with only <
// atoms; evaluating them costs n^{Θ(k)} (that is the hardness). Series:
//   * CliqueComparisonQuery/n/k: naive evaluation time on no-instance
//     graphs — k in the exponent of n;
//   * ComparisonClosure: the Klug consistency/collapse preprocessing is
//     cheap (polynomial), so the hardness is in evaluation, not closure.
#include <benchmark/benchmark.h>

#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "query/comparison_closure.hpp"
#include "reductions/clique_to_comparisons.hpp"

namespace paraquery {
namespace {

void BM_CliqueComparisonQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  // No-instance: Turán graph with max clique k-1.
  Graph g = TuranGraph(k - 1, n / (k - 1));
  auto red = CliqueToComparisons(g, k).ValueOrDie();
  for (auto _ : state) {
    auto r = NaiveCqNonempty(red.db, red.query);
    benchmark::DoNotOptimize(r);
    if (!r.ok() || r.value()) state.SkipWithError("unexpected witness");
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  RelId rr = red.db.FindRelation("R").ValueOrDie();
  state.counters["db_tuples"] = static_cast<double>(red.db.relation(rr).size());
}
BENCHMARK(BM_CliqueComparisonQuery)
    ->ArgsProduct({{6, 9, 12}, {2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_ComparisonClosure(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Graph g = GnpRandom(10, 0.5, /*seed=*/3);
  auto red = CliqueToComparisons(g, k).ValueOrDie();
  for (auto _ : state) {
    auto closure = CollapseComparisons(red.query);
    benchmark::DoNotOptimize(closure);
    if (!closure.ok() || !closure.value().consistent) {
      state.SkipWithError("closure failed");
    }
  }
  state.counters["k"] = k;
  state.counters["comparisons"] =
      static_cast<double>(red.query.comparisons.size());
}
BENCHMARK(BM_ComparisonClosure)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace paraquery

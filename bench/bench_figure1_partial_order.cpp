// E2 — Figure 1: the partial order of the four parametrizations
// (parameter q vs parameter v, fixed vs variable schema).
//
// Proposition 1 says hardness flows up the partial order via identity maps.
// Empirically this bench shows the two independent axes:
//   * q-sweep at fixed v: adding atoms over a fixed variable set increases
//     q but the evaluation cost stays polynomial (the n^v backtracking
//     frontier does not move);
//   * v-sweep at fixed per-atom size: each extra variable multiplies the
//     naive cost by ~n (the parameter is in the exponent);
//   * schema folding (variable -> fixed schema, the paper's 2^v
//     construction): evaluation after folding collapses the q-sweep to at
//     most 2^v atoms, at a polynomial preprocessing price.
#include <benchmark/benchmark.h>

#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "reductions/schema_folding.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// Query with `atoms` binary atoms over only 3 variables (x,y,z), cycling
// relation names R0..R2.
ConjunctiveQuery ManyAtomsFewVars(int atoms) {
  ConjunctiveQuery q;
  VarId x = q.vars.Intern("x"), y = q.vars.Intern("y"), z = q.vars.Intern("z");
  const VarId vs[3] = {x, y, z};
  for (int i = 0; i < atoms; ++i) {
    std::string rel = "R";
    rel += std::to_string(i % 3);
    q.body.push_back(Atom{rel, {Term::Var(vs[i % 3]), Term::Var(vs[(i + 1) % 3])}});
  }
  return q;
}

void BM_QSweepAtFixedV(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Database db = RandomBinaryDatabase(3, 4000, 60, /*seed=*/5);
  ConjunctiveQuery q = ManyAtomsFewVars(atoms);
  for (auto _ : state) {
    auto r = NaiveCqNonempty(db, q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["q"] = static_cast<double>(q.QuerySize());
  state.counters["v"] = q.NumVariables();
}
BENCHMARK(BM_QSweepAtFixedV)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_VSweepChainQuery(benchmark::State& state) {
  int v = static_cast<int>(state.range(0));
  // Chain with v variables on a dense graph: naive cost ~ n * d^{v-1}.
  Database db = GraphDatabase(GnpRandom(40, 0.5, /*seed=*/9));
  ConjunctiveQuery q = ChainQuery(v - 1);
  // Force full exploration: ask for all endpoints instead of a witness.
  q.head = {};
  for (auto _ : state) {
    auto r = NaiveEvaluateCq(db, q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["v"] = v;
  state.counters["q"] = static_cast<double>(q.QuerySize());
}
BENCHMARK(BM_VSweepChainQuery)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_SchemaFoldingPreprocess(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Database db = RandomBinaryDatabase(3, 4000, 60, /*seed=*/5);
  ConjunctiveQuery q = ManyAtomsFewVars(atoms);
  for (auto _ : state) {
    auto folded = FoldSchema(db, q);
    benchmark::DoNotOptimize(folded);
    if (!folded.ok()) state.SkipWithError("folding failed");
  }
  state.counters["q"] = static_cast<double>(q.QuerySize());
}
BENCHMARK(BM_SchemaFoldingPreprocess)
    ->Arg(6)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_FoldedEvaluation(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Database db = RandomBinaryDatabase(3, 4000, 60, /*seed=*/5);
  ConjunctiveQuery q = ManyAtomsFewVars(atoms);
  auto folded = FoldSchema(db, q).ValueOrDie();
  for (auto _ : state) {
    auto r = NaiveCqNonempty(folded.db, folded.query);
    benchmark::DoNotOptimize(r);
  }
  state.counters["folded_atoms"] =
      static_cast<double>(folded.query.body.size());
}
BENCHMARK(BM_FoldedEvaluation)
    ->Arg(6)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery
